// SQL-92 assertion checking (paper Section 6), through the SQL front end:
// the DeptConstraint assertion from the paper's introduction is declared
// verbatim, modeled as a maintained-to-emptiness view, and checked after
// every transaction at the cost of a glance at the maintained view.
//
// Build & run:  cmake --build build && ./build/examples/assertion_checking

#include <cstdio>

#include "auxview.h"

namespace {

constexpr char kScript[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);

-- The paper's Example 1.1, spelled exactly as in the text:
CREATE VIEW ProblemDept (DName) AS
  SELECT Dept.DName FROM Emp, Dept
  WHERE Dept.DName = Emp.DName
  GROUPBY Dept.DName, Budget
  HAVING SUM(Salary) > Budget;

CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
)sql";

int Run() {
  using namespace auxview;

  // --- Parse + bind the script -------------------------------------------
  Catalog catalog;
  Binder binder(&catalog);
  if (Status st = binder.Run(kScript); !st.ok()) {
    std::fprintf(stderr, "bind: %s\n", st.ToString().c_str());
    return 1;
  }
  const BoundAssertion& assertion = binder.assertions().front();
  std::printf("assertion %s over:\n%s\n", assertion.name.c_str(),
              assertion.expr->TreeToString().c_str());

  // --- Data: 8 departments, generous budgets ------------------------------
  Database db;
  {
    ScopedCountingDisabled guard(&db.counter());
    Table* emp = *db.CreateTable(*catalog.GetTable("Emp"));
    Table* dept = *db.CreateTable(*catalog.GetTable("Dept"));
    for (int d = 0; d < 8; ++d) {
      const std::string dname = "dept" + std::to_string(d);
      int64_t sum = 0;
      for (int k = 0; k < 4; ++k) {
        const int64_t salary = 50000 + 1000 * d + 10 * k;
        sum += salary;
        (void)emp->Insert({Value::String(dname + "/e" + std::to_string(k)),
                           Value::String(dname), Value::Int64(salary)});
      }
      (void)dept->Insert({Value::String(dname),
                          Value::String("mgr" + std::to_string(d)),
                          Value::Int64(sum + 20000)});
    }
    RelationStats emp_stats = db.FindTable("Emp")->ComputeStats();
    (void)catalog.SetStats("Emp", emp_stats);
    (void)catalog.SetStats("Dept", db.FindTable("Dept")->ComputeStats());
  }

  // --- Choose auxiliary views for cheap incremental checking --------------
  const std::vector<TransactionType> txns = {
      SingleModifyTxn(">Emp", "Emp", {"Salary"}, 3),
      SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)};
  auto memo = BuildExpandedMemo(assertion.expr, catalog);
  if (!memo.ok()) return 1;
  ViewSelector selector(&*memo, &catalog);
  auto chosen = selector.Exhaustive(txns);
  if (!chosen.ok()) return 1;
  std::printf("materializing %s (expected %.3g I/Os per update)\n\n",
              ViewSetToString(chosen->views).c_str(), chosen->weighted_cost);

  ViewManager manager(&*memo, &catalog, &db);
  if (!manager.Materialize(chosen->views).ok()) return 1;
  AssertionChecker checker(&manager);

  // --- A little story of updates ------------------------------------------
  auto modify_dept_budget = [&](int d, int64_t budget) -> Status {
    Table* dept = db.FindTable("Dept");
    Row old_row;
    for (const CountedRow& cr : dept->SnapshotUncharged()) {
      if (cr.row[0].str() == "dept" + std::to_string(d)) old_row = cr.row;
    }
    Row new_row = old_row;
    new_row[2] = Value::Int64(budget);
    ConcreteTxn txn;
    txn.type_name = ">Dept";
    txn.updates.push_back(TableUpdate{"Dept", {}, {}, {{old_row, new_row}}});
    auto plan = selector.BestTrack(chosen->views, txns[1]);
    AUXVIEW_RETURN_IF_ERROR(plan.status());
    return manager.ApplyTransaction(txn, txns[1], plan->track);
  };

  auto report = [&]() {
    auto check = checker.Check("DeptConstraint", memo->root());
    if (check.ok()) std::printf("  %s\n", check->ToString().c_str());
  };

  std::printf("initially:\n");
  report();

  std::printf("\ndept3's budget is slashed to 10:\n");
  if (!modify_dept_budget(3, 10).ok()) return 1;
  report();

  std::printf("\ndept5's budget is slashed too:\n");
  if (!modify_dept_budget(5, 99).ok()) return 1;
  report();

  std::printf("\nbudgets restored:\n");
  if (!modify_dept_budget(3, 500000).ok()) return 1;
  if (!modify_dept_budget(5, 500000).ok()) return 1;
  report();

  if (Status st = manager.CheckConsistency(); !st.ok()) {
    std::fprintf(stderr, "INCONSISTENT: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nmaintained views verified against recomputation.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
