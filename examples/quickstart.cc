// Quickstart: the paper's running example, end to end.
//
//  1. declare Emp/Dept and the ProblemDept view,
//  2. let Algorithm OptimalViewSet pick the auxiliary views to materialize,
//  3. materialize them and maintain everything through real transactions,
//  4. watch the page-I/O counter agree with the optimizer's estimate.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "auxview.h"

namespace {

int Run() {
  using namespace auxview;

  // --- 1. Schema, data and the view -------------------------------------
  EmpDeptConfig config;
  config.num_depts = 100;
  config.emps_per_dept = 10;
  EmpDeptWorkload workload(config);

  Database db;
  if (Status st = workload.Populate(&db); !st.ok()) {
    std::fprintf(stderr, "populate: %s\n", st.ToString().c_str());
    return 1;
  }

  auto view = workload.ProblemDeptTree();  // Figure 1's right tree
  if (!view.ok()) return 1;
  std::printf("ProblemDept view:\n%s\n", (*view)->TreeToString().c_str());

  // --- 2. Build the expression DAG and optimize -------------------------
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  auto memo = BuildExpandedMemo(*view, workload.catalog());
  if (!memo.ok()) return 1;
  std::printf("expression DAG:\n%s\n", memo->ToString().c_str());

  ViewSelector selector(&*memo, &workload.catalog());
  auto chosen = selector.Exhaustive(txns);
  if (!chosen.ok()) {
    std::fprintf(stderr, "optimize: %s\n", chosen.status().ToString().c_str());
    return 1;
  }
  std::printf("optimal view set: %s, expected %.4g page I/Os per txn\n",
              ViewSetToString(chosen->views).c_str(), chosen->weighted_cost);
  for (GroupId g : chosen->views) {
    if (g == memo->root()) continue;
    auto aux = memo->ExtractOriginalTree(g);
    if (aux.ok()) {
      std::printf("auxiliary view N%d (the paper's SumOfSals):\n%s", g,
                  (*aux)->TreeToString().c_str());
    }
  }

  // --- 3. Materialize and maintain ---------------------------------------
  ViewManager manager(&*memo, &workload.catalog(), &db);
  if (!manager.Materialize(chosen->views).ok()) return 1;

  TxnGenerator gen(2026);
  const int kSteps = 50;
  db.counter().Reset();
  for (int i = 0; i < kSteps; ++i) {
    const TransactionType& type = txns[i % txns.size()];
    auto plan = selector.BestTrack(chosen->views, type);
    auto txn = gen.Generate(type, db);
    if (!plan.ok() || !txn.ok()) return 1;
    if (Status st = manager.ApplyTransaction(*txn, type, plan->track);
        !st.ok()) {
      std::fprintf(stderr, "maintain: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // --- 4. Verify ----------------------------------------------------------
  const double measured =
      static_cast<double>(db.counter().total()) / kSteps;
  std::printf("\nafter %d transactions: %.4g page I/Os per txn "
              "(optimizer estimated %.4g)\n",
              kSteps, measured, chosen->weighted_cost);
  if (Status st = manager.CheckConsistency(); !st.ok()) {
    std::fprintf(stderr, "INCONSISTENT: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("all maintained views equal from-scratch recomputation.\n");
  auto contents = manager.ViewContents(memo->root());
  if (contents.ok()) {
    std::printf("ProblemDept currently has %lld row(s).\n",
                static_cast<long long>(contents->total_count()));
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
