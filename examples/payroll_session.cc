// The full product surface: a Session speaking SQL. Schema, views and the
// paper's assertion are declared; DML flows through optimizer-chosen update
// tracks; a transaction that would break the budget constraint is rejected
// and rolled back — the SIGMOD'96 "trading space for time" machinery acting
// as a real integrity-constraint enforcer.
//
// Build & run:  cmake --build build && ./build/examples/payroll_session

#include <cstdio>

#include "auxview.h"

namespace {

using auxview::ExecResult;
using auxview::Session;
using auxview::SingleModifyTxn;
using auxview::Status;

void Show(Session& session, const char* sql) {
  std::printf("sql> %s\n", sql);
  auto result = session.Execute(sql);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->rejected()) {
    std::printf("  REJECTED: would violate assertion %s (rolled back)\n",
                result->violated_assertion.c_str());
    return;
  }
  switch (result->kind) {
    case ExecResult::Kind::kDdl:
      std::printf("  ok\n");
      break;
    case ExecResult::Kind::kDml:
      std::printf("  ok, %lld row(s) affected\n",
                  static_cast<long long>(result->affected));
      break;
    case ExecResult::Kind::kRows:
      for (const auto& [row, count] : result->rows->SortedRows()) {
        for (int64_t i = 0; i < count; ++i) {
          std::printf("  %s\n", auxview::RowToString(row).c_str());
        }
      }
      if (result->rows->empty()) std::printf("  (empty)\n");
      break;
  }
}

int Run() {
  Session session;

  Show(session, R"sql(
    CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                      INDEX (DName));
    CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
    CREATE VIEW SumOfSals (DName, SalSum) AS
      SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
    CREATE ASSERTION DeptConstraint CHECK
      (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
                   WHERE Dept.DName = Emp.DName
                   GROUPBY Dept.DName, Budget
                   HAVING SUM(Salary) > Budget));
  )sql");

  Show(session,
       "INSERT INTO Dept VALUES ('eng', 'ada', 300000), "
       "('sales', 'sam', 150000);");
  Show(session,
       "INSERT INTO Emp VALUES ('alice', 'eng', 120000), "
       "('bob', 'eng', 110000), ('carol', 'sales', 90000), "
       "('dave', 'sales', 50000);");

  session.DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 5),
                           SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
  if (Status st = session.Prepare(); !st.ok()) {
    std::fprintf(stderr, "prepare: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nprepared: materialized %s, expected %.3g page I/Os per "
              "weighted update\n\n",
              auxview::ViewSetToString(session.plan().views).c_str(),
              session.plan().weighted_cost);

  Show(session, "SELECT * FROM SumOfSals;");
  Show(session, "UPDATE Emp SET Salary = 130000 WHERE EName = 'alice';");
  Show(session, "SELECT * FROM SumOfSals;");

  std::printf("\na raise that would blow the engineering budget:\n");
  Show(session, "UPDATE Emp SET Salary = 250000 WHERE EName = 'bob';");
  Show(session, "SELECT Salary FROM Emp WHERE EName = 'bob';");

  std::printf("\nbudget cuts: one survivable, one rejected:\n");
  Show(session, "UPDATE Dept SET Budget = 260000 WHERE DName = 'eng';");
  Show(session, "UPDATE Dept SET Budget = 100000 WHERE DName = 'eng';");

  std::printf("\nhiring and attrition flow through the same machinery:\n");
  Show(session, "INSERT INTO Emp VALUES ('erin', 'sales', 5000);");
  Show(session, "DELETE FROM Emp WHERE EName = 'dave';");
  Show(session, "SELECT * FROM SumOfSals;");

  if (Status st = session.CheckConsistency(); !st.ok()) {
    std::fprintf(stderr, "INCONSISTENT: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nall maintained views verified against recomputation "
              "(%s charged so far).\n",
              session.counter().ToString().c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
