// Example 3.1 / Figure 3 as an application scenario: a reporting view over
// type-A departments (ADeptsStatus) whose update stream is dominated by
// departments entering/leaving the A-list. The optimizer discovers that a
// query-optimal plan (drive from the small ADepts) is the wrong thing to
// materialize: the right auxiliary view is V1 = the Emp-Dept salary
// rollup, which an ADepts change merely probes.
//
// Build & run:  cmake --build build && ./build/examples/warehouse_adepts

#include <cstdio>

#include "auxview.h"

namespace {

int Run() {
  using namespace auxview;

  EmpDeptConfig config;
  config.num_depts = 500;
  config.emps_per_dept = 10;
  config.with_adepts = true;
  config.num_adepts = 25;
  EmpDeptWorkload workload(config);

  Database db;
  if (!workload.Populate(&db).ok()) return 1;

  auto view = workload.ADeptsStatusTree();
  if (!view.ok()) return 1;
  std::printf("ADeptsStatus view:\n%s\n", (*view)->TreeToString().c_str());

  auto memo = BuildExpandedMemo(*view, workload.catalog());
  if (!memo.ok()) return 1;
  ViewSelector selector(&*memo, &workload.catalog());

  // Scenario A: only ADepts changes (the paper's Example 3.1).
  {
    const std::vector<TransactionType> txns = {workload.TxnInsertADept()};
    auto chosen = selector.Exhaustive(txns);
    auto nothing = selector.CostViewSet(txns, {memo->root()});
    if (!chosen.ok() || !nothing.ok()) return 1;
    std::printf("scenario A (only ADepts updated):\n");
    std::printf("  chosen auxiliary views: %s\n",
                ViewSetToString(chosen->views).c_str());
    for (GroupId g : chosen->views) {
      if (g == memo->root()) continue;
      auto t = memo->ExtractOriginalTree(g);
      if (t.ok()) std::printf("%s", (*t)->TreeToString().c_str());
    }
    std::printf("  %.3g I/Os per update vs %.3g without auxiliary views "
                "(%.1fx better)\n\n",
                chosen->weighted_cost, nothing->weighted_cost,
                nothing->weighted_cost / chosen->weighted_cost);

    // Prove it on the runtime: add departments to the A-list and maintain.
    ViewManager manager(&*memo, &workload.catalog(), &db);
    if (!manager.Materialize(chosen->views).ok()) return 1;
    TxnGenerator gen(7);
    db.counter().Reset();
    const int kSteps = 20;
    for (int i = 0; i < kSteps; ++i) {
      auto plan = selector.BestTrack(chosen->views, txns[0]);
      auto txn = gen.Generate(txns[0], db);
      if (!plan.ok() || !txn.ok()) return 1;
      if (!manager.ApplyTransaction(*txn, txns[0], plan->track).ok()) {
        return 1;
      }
    }
    std::printf("  measured: %.3g I/Os per ADepts insertion over %d txns\n",
                static_cast<double>(db.counter().total()) / kSteps, kSteps);
    if (!manager.CheckConsistency().ok()) {
      std::fprintf(stderr, "INCONSISTENT\n");
      return 1;
    }
    std::printf("  views verified against recomputation.\n\n");
  }

  // Scenario B: salaries and budgets churn too — the optimizer rebalances
  // (maintaining the rollup now has a cost).
  {
    const std::vector<TransactionType> txns = {
        workload.TxnInsertADept(1), workload.TxnModEmp(5),
        workload.TxnModDept(2)};
    auto chosen = selector.Exhaustive(txns);
    if (!chosen.ok()) return 1;
    std::printf("scenario B (salary/budget churn dominates):\n");
    std::printf("  chosen auxiliary views: %s, %.3g I/Os per weighted txn\n",
                ViewSetToString(chosen->views).c_str(),
                chosen->weighted_cost);
    for (const TxnPlan& plan : chosen->plans) {
      std::printf("    %-10s -> %.3g I/Os (%zu queries posed)\n",
                  plan.txn_name.c_str(), plan.cost.total(),
                  plan.cost.queries.size());
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
