// The Figure 5 scenario as an application: a per-item revenue rollup
// SUM(Quantity * Price) joined against a table of per-region targets. The
// revenue aggregate is an articulation node of the expression DAG, so the
// shielding principle optimizes the order/pricing sub-DAG locally and the
// two searches provably agree — this example shows both, then maintains
// the chosen views through a mixed update stream.
//
// Build & run:  cmake --build build && ./build/examples/order_revenue

#include <cstdio>

#include "auxview.h"
#include "memo/articulation.h"

namespace {

int Run() {
  using namespace auxview;

  Fig5Config config;
  config.num_items = 200;
  config.orders_per_item = 10;
  Fig5Workload workload(config);

  Database db;
  if (!workload.Populate(&db).ok()) return 1;

  auto view = workload.ViewTree();
  if (!view.ok()) return 1;
  std::printf("revenue-vs-target view:\n%s\n",
              (*view)->TreeToString().c_str());

  auto memo = BuildExpandedMemo(*view, workload.catalog());
  if (!memo.ok()) return 1;

  const std::set<GroupId> arts = FindArticulationGroups(*memo);
  std::printf("articulation equivalence nodes:");
  for (GroupId g : arts) {
    if (!memo->group(g).is_leaf) std::printf(" N%d", g);
  }
  std::printf("  (the revenue aggregate shields its sub-DAG)\n\n");

  ViewSelector selector(&*memo, &workload.catalog());
  const std::vector<TransactionType> txns = {
      workload.TxnModS(10),  // order quantities churn constantly
      workload.TxnModT(1),   // prices change rarely
      workload.TxnModR(1)};  // targets change rarely

  auto exhaustive = selector.Exhaustive(txns);
  auto shielded = selector.Shielding(txns);
  if (!exhaustive.ok() || !shielded.ok()) return 1;
  std::printf("exhaustive: %s at %.4g I/Os (%lld view sets)\n",
              ViewSetToString(exhaustive->views).c_str(),
              exhaustive->weighted_cost,
              static_cast<long long>(exhaustive->viewsets_costed));
  std::printf("shielding:  %s at %.4g I/Os (%lld costed, %lld pruned)\n\n",
              ViewSetToString(shielded->views).c_str(),
              shielded->weighted_cost,
              static_cast<long long>(shielded->viewsets_costed),
              static_cast<long long>(shielded->viewsets_pruned));

  ViewManager manager(&*memo, &workload.catalog(), &db);
  if (!manager.Materialize(exhaustive->views).ok()) return 1;
  TxnGenerator gen(31);
  db.counter().Reset();
  int steps = 0;
  for (int round = 0; round < 10; ++round) {
    for (const TransactionType& type : txns) {
      auto plan = selector.BestTrack(exhaustive->views, type);
      auto txn = gen.Generate(type, db);
      if (!plan.ok() || !txn.ok()) return 1;
      if (!manager.ApplyTransaction(*txn, type, plan->track).ok()) return 1;
      ++steps;
    }
  }
  std::printf("maintained %d mixed transactions at %.4g page I/Os each\n",
              steps, static_cast<double>(db.counter().total()) / steps);
  if (!manager.CheckConsistency().ok()) {
    std::fprintf(stderr, "INCONSISTENT\n");
    return 1;
  }
  std::printf("views verified against recomputation.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
