
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/builder.cc" "src/CMakeFiles/auxview.dir/algebra/builder.cc.o" "gcc" "src/CMakeFiles/auxview.dir/algebra/builder.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/auxview.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/auxview.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/scalar.cc" "src/CMakeFiles/auxview.dir/algebra/scalar.cc.o" "gcc" "src/CMakeFiles/auxview.dir/algebra/scalar.cc.o.d"
  "/root/repo/src/api/session.cc" "src/CMakeFiles/auxview.dir/api/session.cc.o" "gcc" "src/CMakeFiles/auxview.dir/api/session.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/auxview.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/auxview.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/fd.cc" "src/CMakeFiles/auxview.dir/catalog/fd.cc.o" "gcc" "src/CMakeFiles/auxview.dir/catalog/fd.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/auxview.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/auxview.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/CMakeFiles/auxview.dir/catalog/statistics.cc.o" "gcc" "src/CMakeFiles/auxview.dir/catalog/statistics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/auxview.dir/common/status.cc.o" "gcc" "src/CMakeFiles/auxview.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/auxview.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/auxview.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/auxview.dir/common/value.cc.o" "gcc" "src/CMakeFiles/auxview.dir/common/value.cc.o.d"
  "/root/repo/src/cost/io_cost_model.cc" "src/CMakeFiles/auxview.dir/cost/io_cost_model.cc.o" "gcc" "src/CMakeFiles/auxview.dir/cost/io_cost_model.cc.o.d"
  "/root/repo/src/cost/query_cost.cc" "src/CMakeFiles/auxview.dir/cost/query_cost.cc.o" "gcc" "src/CMakeFiles/auxview.dir/cost/query_cost.cc.o.d"
  "/root/repo/src/cost/statistics_propagation.cc" "src/CMakeFiles/auxview.dir/cost/statistics_propagation.cc.o" "gcc" "src/CMakeFiles/auxview.dir/cost/statistics_propagation.cc.o.d"
  "/root/repo/src/delta/analysis.cc" "src/CMakeFiles/auxview.dir/delta/analysis.cc.o" "gcc" "src/CMakeFiles/auxview.dir/delta/analysis.cc.o.d"
  "/root/repo/src/delta/delta.cc" "src/CMakeFiles/auxview.dir/delta/delta.cc.o" "gcc" "src/CMakeFiles/auxview.dir/delta/delta.cc.o.d"
  "/root/repo/src/delta/transaction.cc" "src/CMakeFiles/auxview.dir/delta/transaction.cc.o" "gcc" "src/CMakeFiles/auxview.dir/delta/transaction.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/auxview.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/auxview.dir/exec/executor.cc.o.d"
  "/root/repo/src/maintain/assertion.cc" "src/CMakeFiles/auxview.dir/maintain/assertion.cc.o" "gcc" "src/CMakeFiles/auxview.dir/maintain/assertion.cc.o.d"
  "/root/repo/src/maintain/delta_engine.cc" "src/CMakeFiles/auxview.dir/maintain/delta_engine.cc.o" "gcc" "src/CMakeFiles/auxview.dir/maintain/delta_engine.cc.o.d"
  "/root/repo/src/maintain/view_manager.cc" "src/CMakeFiles/auxview.dir/maintain/view_manager.cc.o" "gcc" "src/CMakeFiles/auxview.dir/maintain/view_manager.cc.o.d"
  "/root/repo/src/memo/articulation.cc" "src/CMakeFiles/auxview.dir/memo/articulation.cc.o" "gcc" "src/CMakeFiles/auxview.dir/memo/articulation.cc.o.d"
  "/root/repo/src/memo/dot.cc" "src/CMakeFiles/auxview.dir/memo/dot.cc.o" "gcc" "src/CMakeFiles/auxview.dir/memo/dot.cc.o.d"
  "/root/repo/src/memo/expand.cc" "src/CMakeFiles/auxview.dir/memo/expand.cc.o" "gcc" "src/CMakeFiles/auxview.dir/memo/expand.cc.o.d"
  "/root/repo/src/memo/fd_analysis.cc" "src/CMakeFiles/auxview.dir/memo/fd_analysis.cc.o" "gcc" "src/CMakeFiles/auxview.dir/memo/fd_analysis.cc.o.d"
  "/root/repo/src/memo/memo.cc" "src/CMakeFiles/auxview.dir/memo/memo.cc.o" "gcc" "src/CMakeFiles/auxview.dir/memo/memo.cc.o.d"
  "/root/repo/src/memo/rules.cc" "src/CMakeFiles/auxview.dir/memo/rules.cc.o" "gcc" "src/CMakeFiles/auxview.dir/memo/rules.cc.o.d"
  "/root/repo/src/optimizer/exhaustive.cc" "src/CMakeFiles/auxview.dir/optimizer/exhaustive.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/exhaustive.cc.o.d"
  "/root/repo/src/optimizer/explain.cc" "src/CMakeFiles/auxview.dir/optimizer/explain.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/explain.cc.o.d"
  "/root/repo/src/optimizer/heuristics.cc" "src/CMakeFiles/auxview.dir/optimizer/heuristics.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/heuristics.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/auxview.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/shielding.cc" "src/CMakeFiles/auxview.dir/optimizer/shielding.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/shielding.cc.o.d"
  "/root/repo/src/optimizer/track.cc" "src/CMakeFiles/auxview.dir/optimizer/track.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/track.cc.o.d"
  "/root/repo/src/optimizer/track_cost.cc" "src/CMakeFiles/auxview.dir/optimizer/track_cost.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/track_cost.cc.o.d"
  "/root/repo/src/optimizer/view_set.cc" "src/CMakeFiles/auxview.dir/optimizer/view_set.cc.o" "gcc" "src/CMakeFiles/auxview.dir/optimizer/view_set.cc.o.d"
  "/root/repo/src/parser/ast.cc" "src/CMakeFiles/auxview.dir/parser/ast.cc.o" "gcc" "src/CMakeFiles/auxview.dir/parser/ast.cc.o.d"
  "/root/repo/src/parser/binder.cc" "src/CMakeFiles/auxview.dir/parser/binder.cc.o" "gcc" "src/CMakeFiles/auxview.dir/parser/binder.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/auxview.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/auxview.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/auxview.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/auxview.dir/parser/parser.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/auxview.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/auxview.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/page_counter.cc" "src/CMakeFiles/auxview.dir/storage/page_counter.cc.o" "gcc" "src/CMakeFiles/auxview.dir/storage/page_counter.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/auxview.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/auxview.dir/storage/table.cc.o.d"
  "/root/repo/src/workload/chain.cc" "src/CMakeFiles/auxview.dir/workload/chain.cc.o" "gcc" "src/CMakeFiles/auxview.dir/workload/chain.cc.o.d"
  "/root/repo/src/workload/emp_dept.cc" "src/CMakeFiles/auxview.dir/workload/emp_dept.cc.o" "gcc" "src/CMakeFiles/auxview.dir/workload/emp_dept.cc.o.d"
  "/root/repo/src/workload/fig5.cc" "src/CMakeFiles/auxview.dir/workload/fig5.cc.o" "gcc" "src/CMakeFiles/auxview.dir/workload/fig5.cc.o.d"
  "/root/repo/src/workload/star.cc" "src/CMakeFiles/auxview.dir/workload/star.cc.o" "gcc" "src/CMakeFiles/auxview.dir/workload/star.cc.o.d"
  "/root/repo/src/workload/txn_stream.cc" "src/CMakeFiles/auxview.dir/workload/txn_stream.cc.o" "gcc" "src/CMakeFiles/auxview.dir/workload/txn_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
