# Empty dependencies file for auxview.
# This may be replaced when dependencies are built.
