file(REMOVE_RECURSE
  "libauxview.a"
)
