file(REMOVE_RECURSE
  "CMakeFiles/auxview_shell.dir/auxview_shell.cc.o"
  "CMakeFiles/auxview_shell.dir/auxview_shell.cc.o.d"
  "auxview_shell"
  "auxview_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auxview_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
