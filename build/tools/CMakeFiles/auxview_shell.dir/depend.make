# Empty dependencies file for auxview_shell.
# This may be replaced when dependencies are built.
