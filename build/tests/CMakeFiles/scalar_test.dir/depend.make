# Empty dependencies file for scalar_test.
# This may be replaced when dependencies are built.
