# Empty dependencies file for assertion_test.
# This may be replaced when dependencies are built.
