file(REMOVE_RECURSE
  "CMakeFiles/assertion_test.dir/assertion_test.cc.o"
  "CMakeFiles/assertion_test.dir/assertion_test.cc.o.d"
  "assertion_test"
  "assertion_test.pdb"
  "assertion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assertion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
