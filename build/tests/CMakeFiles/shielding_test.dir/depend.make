# Empty dependencies file for shielding_test.
# This may be replaced when dependencies are built.
