file(REMOVE_RECURSE
  "CMakeFiles/shielding_test.dir/shielding_test.cc.o"
  "CMakeFiles/shielding_test.dir/shielding_test.cc.o.d"
  "shielding_test"
  "shielding_test.pdb"
  "shielding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shielding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
