# Empty compiler generated dependencies file for delta_engine_test.
# This may be replaced when dependencies are built.
