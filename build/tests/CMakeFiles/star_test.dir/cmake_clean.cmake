file(REMOVE_RECURSE
  "CMakeFiles/star_test.dir/star_test.cc.o"
  "CMakeFiles/star_test.dir/star_test.cc.o.d"
  "star_test"
  "star_test.pdb"
  "star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
