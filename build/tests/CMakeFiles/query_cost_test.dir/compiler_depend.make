# Empty compiler generated dependencies file for query_cost_test.
# This may be replaced when dependencies are built.
