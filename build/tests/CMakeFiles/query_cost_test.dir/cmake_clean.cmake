file(REMOVE_RECURSE
  "CMakeFiles/query_cost_test.dir/query_cost_test.cc.o"
  "CMakeFiles/query_cost_test.dir/query_cost_test.cc.o.d"
  "query_cost_test"
  "query_cost_test.pdb"
  "query_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
