# Empty dependencies file for delta_analysis_test.
# This may be replaced when dependencies are built.
