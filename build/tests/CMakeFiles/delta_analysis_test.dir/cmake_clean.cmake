file(REMOVE_RECURSE
  "CMakeFiles/delta_analysis_test.dir/delta_analysis_test.cc.o"
  "CMakeFiles/delta_analysis_test.dir/delta_analysis_test.cc.o.d"
  "delta_analysis_test"
  "delta_analysis_test.pdb"
  "delta_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
