# Empty compiler generated dependencies file for paper_costs_test.
# This may be replaced when dependencies are built.
