# Empty compiler generated dependencies file for bench_m1_multiview.
# This may be replaced when dependencies are built.
