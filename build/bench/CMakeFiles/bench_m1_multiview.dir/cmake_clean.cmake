file(REMOVE_RECURSE
  "CMakeFiles/bench_m1_multiview.dir/bench_m1_multiview.cc.o"
  "CMakeFiles/bench_m1_multiview.dir/bench_m1_multiview.cc.o.d"
  "bench_m1_multiview"
  "bench_m1_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m1_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
