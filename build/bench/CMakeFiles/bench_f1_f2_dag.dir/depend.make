# Empty dependencies file for bench_f1_f2_dag.
# This may be replaced when dependencies are built.
