file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_f2_dag.dir/bench_f1_f2_dag.cc.o"
  "CMakeFiles/bench_f1_f2_dag.dir/bench_f1_f2_dag.cc.o.d"
  "bench_f1_f2_dag"
  "bench_f1_f2_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_f2_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
