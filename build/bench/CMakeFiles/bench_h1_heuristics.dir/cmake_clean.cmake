file(REMOVE_RECURSE
  "CMakeFiles/bench_h1_heuristics.dir/bench_h1_heuristics.cc.o"
  "CMakeFiles/bench_h1_heuristics.dir/bench_h1_heuristics.cc.o.d"
  "bench_h1_heuristics"
  "bench_h1_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_h1_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
