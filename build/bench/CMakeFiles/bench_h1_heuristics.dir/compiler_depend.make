# Empty compiler generated dependencies file for bench_h1_heuristics.
# This may be replaced when dependencies are built.
