file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_total_costs.dir/bench_t4_total_costs.cc.o"
  "CMakeFiles/bench_t4_total_costs.dir/bench_t4_total_costs.cc.o.d"
  "bench_t4_total_costs"
  "bench_t4_total_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_total_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
