# Empty compiler generated dependencies file for bench_t4_total_costs.
# This may be replaced when dependencies are built.
