file(REMOVE_RECURSE
  "CMakeFiles/bench_s3_crossover.dir/bench_s3_crossover.cc.o"
  "CMakeFiles/bench_s3_crossover.dir/bench_s3_crossover.cc.o.d"
  "bench_s3_crossover"
  "bench_s3_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
