file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_update_costs.dir/bench_t2_update_costs.cc.o"
  "CMakeFiles/bench_t2_update_costs.dir/bench_t2_update_costs.cc.o.d"
  "bench_t2_update_costs"
  "bench_t2_update_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_update_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
