# Empty compiler generated dependencies file for bench_s5_update_kinds.
# This may be replaced when dependencies are built.
