file(REMOVE_RECURSE
  "CMakeFiles/bench_s5_update_kinds.dir/bench_s5_update_kinds.cc.o"
  "CMakeFiles/bench_s5_update_kinds.dir/bench_s5_update_kinds.cc.o.d"
  "bench_s5_update_kinds"
  "bench_s5_update_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s5_update_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
