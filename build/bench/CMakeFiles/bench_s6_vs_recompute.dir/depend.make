# Empty dependencies file for bench_s6_vs_recompute.
# This may be replaced when dependencies are built.
