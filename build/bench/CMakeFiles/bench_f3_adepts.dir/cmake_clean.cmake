file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_adepts.dir/bench_f3_adepts.cc.o"
  "CMakeFiles/bench_f3_adepts.dir/bench_f3_adepts.cc.o.d"
  "bench_f3_adepts"
  "bench_f3_adepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_adepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
