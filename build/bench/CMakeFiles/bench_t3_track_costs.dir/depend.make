# Empty dependencies file for bench_t3_track_costs.
# This may be replaced when dependencies are built.
