file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_track_costs.dir/bench_t3_track_costs.cc.o"
  "CMakeFiles/bench_t3_track_costs.dir/bench_t3_track_costs.cc.o.d"
  "bench_t3_track_costs"
  "bench_t3_track_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_track_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
