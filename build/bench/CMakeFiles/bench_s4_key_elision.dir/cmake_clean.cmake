file(REMOVE_RECURSE
  "CMakeFiles/bench_s4_key_elision.dir/bench_s4_key_elision.cc.o"
  "CMakeFiles/bench_s4_key_elision.dir/bench_s4_key_elision.cc.o.d"
  "bench_s4_key_elision"
  "bench_s4_key_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s4_key_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
