# Empty compiler generated dependencies file for bench_s4_key_elision.
# This may be replaced when dependencies are built.
