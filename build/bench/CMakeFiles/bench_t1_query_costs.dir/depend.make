# Empty dependencies file for bench_t1_query_costs.
# This may be replaced when dependencies are built.
