file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_shielding.dir/bench_f5_shielding.cc.o"
  "CMakeFiles/bench_f5_shielding.dir/bench_f5_shielding.cc.o.d"
  "bench_f5_shielding"
  "bench_f5_shielding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_shielding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
