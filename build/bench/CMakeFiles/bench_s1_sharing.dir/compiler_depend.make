# Empty compiler generated dependencies file for bench_s1_sharing.
# This may be replaced when dependencies are built.
