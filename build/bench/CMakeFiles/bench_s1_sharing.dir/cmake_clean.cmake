file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_sharing.dir/bench_s1_sharing.cc.o"
  "CMakeFiles/bench_s1_sharing.dir/bench_s1_sharing.cc.o.d"
  "bench_s1_sharing"
  "bench_s1_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
