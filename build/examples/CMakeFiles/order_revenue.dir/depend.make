# Empty dependencies file for order_revenue.
# This may be replaced when dependencies are built.
