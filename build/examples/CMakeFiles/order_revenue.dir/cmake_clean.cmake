file(REMOVE_RECURSE
  "CMakeFiles/order_revenue.dir/order_revenue.cc.o"
  "CMakeFiles/order_revenue.dir/order_revenue.cc.o.d"
  "order_revenue"
  "order_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
