# Empty dependencies file for warehouse_adepts.
# This may be replaced when dependencies are built.
