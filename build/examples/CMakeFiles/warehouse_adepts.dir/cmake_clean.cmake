file(REMOVE_RECURSE
  "CMakeFiles/warehouse_adepts.dir/warehouse_adepts.cc.o"
  "CMakeFiles/warehouse_adepts.dir/warehouse_adepts.cc.o.d"
  "warehouse_adepts"
  "warehouse_adepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_adepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
