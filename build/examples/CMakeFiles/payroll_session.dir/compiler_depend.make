# Empty compiler generated dependencies file for payroll_session.
# This may be replaced when dependencies are built.
