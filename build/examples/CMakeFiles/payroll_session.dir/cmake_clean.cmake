file(REMOVE_RECURSE
  "CMakeFiles/payroll_session.dir/payroll_session.cc.o"
  "CMakeFiles/payroll_session.dir/payroll_session.cc.o.d"
  "payroll_session"
  "payroll_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
