# Empty dependencies file for assertion_checking.
# This may be replaced when dependencies are built.
