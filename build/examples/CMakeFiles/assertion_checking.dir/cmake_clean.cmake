file(REMOVE_RECURSE
  "CMakeFiles/assertion_checking.dir/assertion_checking.cc.o"
  "CMakeFiles/assertion_checking.dir/assertion_checking.cc.o.d"
  "assertion_checking"
  "assertion_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assertion_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
