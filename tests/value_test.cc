#include "common/value.h"

#include <gtest/gtest.h>

namespace auxview {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(7).int64(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("abc").str(), "abc");
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_TRUE(Value::Int64(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("x").is_numeric());
}

TEST(ValueTest, NumericComparisonPromotes) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  EXPECT_GT(Value::String("z").Compare(Value::String("y")), 0);
}

TEST(ValueTest, EqualValuesHashEqual) {
  // 1 and 1.0 compare equal, so they must hash equal.
  EXPECT_EQ(Value::Int64(1), Value::Double(1.0));
  EXPECT_EQ(Value::Int64(1).Hash(), Value::Double(1.0).Hash());
  EXPECT_EQ(Value::String("q").Hash(), Value::String("q").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, RowHashAndEquality) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Int64(1), Value::String("x")};
  Row c = {Value::Int64(2), Value::String("x")};
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_FALSE(RowEq()(a, c));
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_EQ(RowToString(a), "(1, 'x')");
}

TEST(ValueTest, Int64ExactComparison) {
  // Large int64 values that would collide as doubles stay distinct.
  const int64_t big = (1ll << 60) + 1;
  EXPECT_NE(Value::Int64(big), Value::Int64(big - 1));
  EXPECT_GT(Value::Int64(big).Compare(Value::Int64(big - 1)), 0);
}

}  // namespace
}  // namespace auxview
