#include "cost/statistics_propagation.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "memo/expand.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

TEST(RelationStatsTest, DistinctDefaultsAndClamping) {
  RelationStats stats;
  stats.row_count = 50;
  stats.distinct = {{"a", 500}};
  EXPECT_DOUBLE_EQ(stats.DistinctOf("a"), 50);  // clamped to row count
  EXPECT_DOUBLE_EQ(stats.DistinctOf("unknown"), 50);  // default, clamped
  stats.row_count = 1000;
  EXPECT_DOUBLE_EQ(stats.DistinctOf("a"), 500);
  EXPECT_DOUBLE_EQ(stats.DistinctOf("unknown"),
                   RelationStats::kDefaultDistinct);
  EXPECT_DOUBLE_EQ(stats.RowsPerValue("a"), 2);
}

TEST(SelectivityTest, StandardFormulas) {
  RelationStats stats;
  stats.row_count = 1000;
  stats.distinct = {{"k", 100}};
  auto eq = Scalar::Eq(Col("k"), Lit(int64_t{5}));
  EXPECT_DOUBLE_EQ(StatsAnalysis::Selectivity(*eq, stats), 0.01);
  auto range = Scalar::Gt(Col("k"), Lit(int64_t{5}));
  EXPECT_DOUBLE_EQ(StatsAnalysis::Selectivity(*range, stats), 1.0 / 3);
  auto conj = Scalar::And(eq, range);
  EXPECT_DOUBLE_EQ(StatsAnalysis::Selectivity(*conj, stats), 0.01 / 3);
  auto neg = Scalar::Not(eq);
  EXPECT_DOUBLE_EQ(StatsAnalysis::Selectivity(*neg, stats), 0.99);
}

class GroupStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok());
    auto memo = BuildExpandedMemo(*tree, workload_->catalog());
    ASSERT_TRUE(memo.ok());
    memo_ = std::make_unique<Memo>(std::move(memo).value());
  }
  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
};

TEST_F(GroupStatsTest, PropagatesThroughDag) {
  StatsAnalysis stats(memo_.get(), &workload_->catalog());
  // Leaves carry catalog stats.
  double emp_rows = 0, join_rows = 0, agg_rows = 0;
  for (GroupId g : memo_->LiveGroups()) {
    const MemoGroup& grp = memo_->group(g);
    if (grp.is_leaf && grp.table == "Emp") {
      emp_rows = stats.StatsOf(g).row_count;
    }
    for (int eid : grp.exprs) {
      const MemoExpr& e = memo_->expr(eid);
      if (e.dead) continue;
      bool leaf_join = e.kind() == OpKind::kJoin;
      if (leaf_join) {
        for (GroupId in : e.inputs) {
          if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
        }
      }
      if (leaf_join) join_rows = stats.StatsOf(g).row_count;
      if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2) {
        agg_rows = stats.StatsOf(g).row_count;
      }
    }
  }
  EXPECT_DOUBLE_EQ(emp_rows, 10000);
  // Key join preserves the Emp cardinality: 10000 * 1000 / 1000.
  EXPECT_DOUBLE_EQ(join_rows, 10000);
  // One group per department.
  EXPECT_DOUBLE_EQ(agg_rows, 1000);
}

TEST(DistinctJointTest, UsesMaxPerAttribute) {
  RelationStats stats;
  stats.row_count = 10000;
  stats.distinct = {{"a", 100}, {"b", 500}};
  EXPECT_DOUBLE_EQ(StatsAnalysis::DistinctJoint(stats, {"a", "b"}), 500);
  EXPECT_DOUBLE_EQ(StatsAnalysis::RowsPerJointValue(stats, {"a", "b"}), 20);
}

}  // namespace
}  // namespace auxview
