// Runtime maintenance: materialize chosen view sets, push concrete
// transactions through the update tracks, and check every maintained view
// against from-scratch recomputation. Also cross-checks counted page I/Os
// against the optimizer's estimates on the paper's example.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EmpDeptConfig config;
    config.num_depts = 50;
    config.emps_per_dept = 10;
    config.violation_fraction = 0.1;
    workload_ = std::make_unique<EmpDeptWorkload>(config);
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    auto memo = BuildExpandedMemo(*tree, workload_->catalog());
    ASSERT_TRUE(memo.ok()) << memo.status().ToString();
    memo_ = std::make_unique<Memo>(std::move(memo).value());
    selector_ = std::make_unique<ViewSelector>(memo_.get(),
                                               &workload_->catalog());
    ASSERT_TRUE(workload_->Populate(&db_).ok());
    FindGroups();
  }

  void FindGroups() {
    for (GroupId g : memo_->NonLeafGroups()) {
      for (int eid : memo_->group(g).exprs) {
        const MemoExpr& e = memo_->expr(eid);
        if (e.dead) continue;
        if (e.kind() == OpKind::kAggregate &&
            e.op->group_by() == std::vector<std::string>{"DName"}) {
          n3_ = g;
        }
        if (e.kind() == OpKind::kJoin) {
          bool leaf_join = true;
          for (GroupId in : e.inputs) {
            if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
          }
          if (leaf_join) n4_ = g;
        }
      }
    }
    ASSERT_GE(n3_, 0);
    ASSERT_GE(n4_, 0);
  }

  /// Runs `steps` random transactions alternating the given types under the
  /// view set, verifying consistency after every step.
  void RunStream(const ViewSet& extra, std::vector<TransactionType> types,
                 int steps, uint64_t seed) {
    ViewSet views = extra;
    views.insert(memo_->root());
    ViewManager manager(memo_.get(), &workload_->catalog(), &db_);
    ASSERT_TRUE(manager.Materialize(views).ok());
    ASSERT_TRUE(manager.CheckConsistency().ok());
    TxnGenerator gen(seed);
    for (int i = 0; i < steps; ++i) {
      const TransactionType& type = types[i % types.size()];
      auto plan = selector_->BestTrack(views, type);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto txn = gen.Generate(type, db_);
      ASSERT_TRUE(txn.ok()) << txn.status().ToString();
      Status applied = manager.ApplyTransaction(*txn, type, plan->track);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
      Status consistent = manager.CheckConsistency();
      ASSERT_TRUE(consistent.ok())
          << "step " << i << " (" << type.name << "): "
          << consistent.ToString();
    }
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<ViewSelector> selector_;
  Database db_;
  GroupId n3_ = -1, n4_ = -1;
};

TEST_F(MaintenanceTest, ModifiesWithSumOfSals) {
  RunStream({n3_}, {workload_->TxnModEmp(), workload_->TxnModDept()}, 20, 1);
}

TEST_F(MaintenanceTest, ModifiesWithJoinView) {
  RunStream({n4_}, {workload_->TxnModEmp(), workload_->TxnModDept()}, 20, 2);
}

TEST_F(MaintenanceTest, ModifiesWithNoAdditionalViews) {
  RunStream({}, {workload_->TxnModEmp(), workload_->TxnModDept()}, 20, 3);
}

TEST_F(MaintenanceTest, ModifiesWithEverythingMaterialized) {
  RunStream({n3_, n4_}, {workload_->TxnModEmp(), workload_->TxnModDept()}, 20,
            4);
}

TEST_F(MaintenanceTest, InsertsAndDeletes) {
  TransactionType hire;
  hire.name = "hire";
  hire.updates.push_back(
      UpdateSpec{"Emp", UpdateKind::kInsert, 2, {}, {}});
  TransactionType quit;
  quit.name = "quit";
  quit.updates.push_back(
      UpdateSpec{"Emp", UpdateKind::kDelete, 1, {}, {}});
  RunStream({n3_}, {hire, quit}, 20, 5);
}

TEST_F(MaintenanceTest, DepartmentMove) {
  // Modifying DName moves an employee between groups — the hard case for
  // self-maintenance (must fall back to the query path).
  TransactionType move = SingleModifyTxn("move", "Emp", {"DName"});
  RunStream({n3_}, {move}, 15, 6);
  RunStream({n4_}, {move}, 15, 7);
}

TEST_F(MaintenanceTest, MixedKindsAllViewSets) {
  TransactionType mixed;
  mixed.name = "mixed";
  mixed.updates.push_back(
      UpdateSpec{"Emp", UpdateKind::kInsert, 1, {}, {}});
  mixed.updates.push_back(
      UpdateSpec{"Dept", UpdateKind::kModify, 1, {"Budget"}, {}});
  for (const ViewSet& extra :
       std::vector<ViewSet>{{}, {n3_}, {n4_}, {n3_, n4_}}) {
    RunStream(extra, {mixed}, 10, 8 + extra.size());
  }
}

TEST_F(MaintenanceTest, MeasuredIoMatchesEstimateForSumOfSals) {
  // The paper's strategy (b): {N3}. Estimated per->Emp cost = 5 (Q2Re = 2
  // plus update of N3 = 3); per->Dept = 2 (Q2Ld lookup only). Counted page
  // I/Os on the real engine must match, with the estimate's department
  // stats scaled to this database (50 depts x 10 emps).
  ViewSet views = {memo_->root(), n3_};
  ViewManager manager(memo_.get(), &workload_->catalog(), &db_);
  ASSERT_TRUE(manager.Materialize(views).ok());
  TxnGenerator gen(42);
  const int kSteps = 10;

  for (const TransactionType& type :
       {workload_->TxnModEmp(), workload_->TxnModDept()}) {
    auto plan = selector_->BestTrack(views, type);
    ASSERT_TRUE(plan.ok());
    db_.counter().Reset();
    for (int i = 0; i < kSteps; ++i) {
      auto txn = gen.Generate(type, db_);
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(manager.ApplyTransaction(*txn, type, plan->track).ok());
    }
    const double measured =
        static_cast<double>(db_.counter().total()) / kSteps;
    EXPECT_NEAR(measured, plan->cost.total(), 0.5)
        << type.name << ": measured " << measured << " vs estimated "
        << plan->cost.total();
  }
}

}  // namespace
}  // namespace auxview
