#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "optimizer/select_views.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

TEST(OptimizerTest, SelectViewsEndToEnd) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto result = SelectViews(*tree, workload.catalog(),
                            {workload.TxnModEmp(), workload.TxnModDept()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // SumOfSals (plus the root) wins; weighted cost 3.5.
  EXPECT_EQ(result->result.views.size(), 2u);
  EXPECT_DOUBLE_EQ(result->result.weighted_cost, 3.5);
  EXPECT_EQ(result->result.plans.size(), 2u);
  EXPECT_GT(result->result.viewsets_costed, 0);
  EXPECT_GT(result->result.tracks_costed, 0);
}

TEST(OptimizerTest, WeightedAverageRespectsWeights) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto result = SelectViews(
      *tree, workload.catalog(),
      {workload.TxnModEmp(3), workload.TxnModDept(1)});
  ASSERT_TRUE(result.ok());
  // With {N3}: (5*3 + 2*1) / 4 = 4.25.
  EXPECT_DOUBLE_EQ(result->result.weighted_cost, 4.25);
}

TEST(OptimizerTest, Example31ChoosesV1ForADeptsOnlyUpdates) {
  // The paper's Example 3.1 / Figure 3: when only ADepts is updated, the
  // optimal additional view is V1 = Join(Aggregate(Emp), Dept) — the memo
  // group containing that expression — because an ADepts update then only
  // needs one lookup and V1 itself never changes.
  EmpDeptConfig config;
  config.with_adepts = true;
  EmpDeptWorkload workload{config};
  auto tree = workload.ADeptsStatusTree();
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto result = SelectViews(*tree, workload.catalog(),
                            {workload.TxnInsertADept()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Memo& memo = result->memo;
  // Find the group computing Emp-join-Dept with the salary aggregation
  // (V1): it contains a Join op over the SumOfSals aggregate and Dept.
  GroupId v1 = -1;
  for (GroupId g : memo.NonLeafGroups()) {
    for (int eid : memo.group(g).exprs) {
      const MemoExpr& e = memo.expr(eid);
      if (e.dead || e.kind() != OpKind::kJoin) continue;
      // V1's inputs: one aggregate group, one Dept leaf.
      bool has_agg_input = false;
      bool has_dept_input = false;
      for (GroupId in : e.inputs) {
        const MemoGroup& ing = memo.group(memo.Find(in));
        if (ing.is_leaf && ing.table == "Dept") has_dept_input = true;
        if (!ing.is_leaf) {
          for (int ieid : ing.exprs) {
            if (!memo.expr(ieid).dead &&
                memo.expr(ieid).kind() == OpKind::kAggregate) {
              has_agg_input = true;
            }
          }
        }
      }
      if (has_agg_input && has_dept_input) v1 = g;
    }
  }
  ASSERT_GE(v1, 0) << memo.ToString();
  EXPECT_TRUE(result->result.views.count(v1))
      << "chosen: " << ViewSetToString(result->result.views) << "\n"
      << memo.ToString();
  // V1 is never updated by ADepts transactions: zero update cost, tiny
  // query cost.
  EXPECT_LE(result->result.weighted_cost, 5);
}

TEST(OptimizerTest, CandidateCapFails) {
  ChainConfig config;
  config.num_relations = 4;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  OptimizeOptions options;
  options.max_candidates = 2;
  auto result = SelectViews(*tree, workload.catalog(), workload.AllTxns(),
                            Strategy::kExhaustive, options);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OptimizerTest, KeepAllRecordsEveryViewSet) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  OptimizeOptions options;
  options.keep_all = true;
  auto result = SelectViews(*tree, workload.catalog(),
                            {workload.TxnModEmp(), workload.TxnModDept()},
                            Strategy::kExhaustive, options);
  ASSERT_TRUE(result.ok());
  // Every subset was costed and recorded.
  EXPECT_EQ(result->result.all_costs.size(),
            static_cast<size_t>(result->result.viewsets_costed));
  // The minimum of the recorded costs is the winner.
  double min_cost = 1e18;
  for (const auto& [views, cost] : result->result.all_costs) {
    min_cost = std::min(min_cost, cost);
  }
  EXPECT_DOUBLE_EQ(min_cost, result->result.weighted_cost);
}

TEST(OptimizerTest, MoreViewsNeverHelpWhenUpdatesAreFree) {
  // Sanity: the empty additional set is optimal when every transaction
  // updates a relation outside the view.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  TransactionType unrelated = SingleModifyTxn(">X", "X", {"y"});
  auto result = SelectViews(*tree, workload.catalog(), {unrelated});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.weighted_cost, 0);
  EXPECT_EQ(result->result.views.size(), 1u);  // root only
}

TEST(OptimizerTest, CostViewSetMatchesExhaustiveEntry) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto svr = SelectViews(*tree, workload.catalog(),
                         {workload.TxnModEmp(), workload.TxnModDept()});
  ASSERT_TRUE(svr.ok());
  ViewSelector selector(&svr->memo, &workload.catalog());
  auto cost = selector.CostViewSet(
      {workload.TxnModEmp(), workload.TxnModDept()}, svr->result.views);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->weighted_cost, svr->result.weighted_cost);
}

TEST(OptimizerTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kExhaustive), "exhaustive");
  EXPECT_STREQ(StrategyName(Strategy::kShielding), "shielding");
  EXPECT_STREQ(StrategyName(Strategy::kGreedy), "greedy");
}

}  // namespace
}  // namespace auxview
