#include "optimizer/explain.h"

#include <gtest/gtest.h>

#include "optimizer/select_views.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

TEST(ExplainTest, PlanMentionsViewsTracksAndQueries) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto result = SelectViews(*tree, workload.catalog(),
                            {workload.TxnModEmp(), workload.TxnModDept()});
  ASSERT_TRUE(result.ok());
  const std::string text = ExplainPlan(result->memo, result->result);
  EXPECT_NE(text.find("weighted cost 3.5"), std::string::npos) << text;
  EXPECT_NE(text.find("(root view)"), std::string::npos);
  EXPECT_NE(text.find("(auxiliary)"), std::string::npos);
  EXPECT_NE(text.find("Aggregate (SUM(Salary) AS SumSal BY DName)"),
            std::string::npos);
  EXPECT_NE(text.find("transaction >Emp"), std::string::npos);
  EXPECT_NE(text.find("transaction >Dept"), std::string::npos);
  EXPECT_NE(text.find("update track:"), std::string::npos);
  EXPECT_NE(text.find("queries posed:"), std::string::npos);
  EXPECT_NE(text.find("page I/Os"), std::string::npos);
}

TEST(ExplainTest, EmptyTrackExplained) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto svr = SelectViews(*tree, workload.catalog(),
                         {SingleModifyTxn(">Other", "Other", {"x"})});
  ASSERT_TRUE(svr.ok());
  const std::string text = ExplainPlan(svr->memo, svr->result);
  EXPECT_NE(text.find("nothing to do"), std::string::npos) << text;
}

TEST(ExplainTest, TrackShowsDeltaAnnotations) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto result = SelectViews(*tree, workload.catalog(),
                            {workload.TxnModDept()});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->result.plans.size(), 1u);
  const std::string text =
      ExplainTrack(result->memo, result->result.plans[0].track,
                   result->result.plans[0].cost);
  EXPECT_NE(text.find("delta{"), std::string::npos) << text;
}

}  // namespace
}  // namespace auxview
