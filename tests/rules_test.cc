#include "memo/rules.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "exec/executor.h"
#include "memo/expand.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"
#include "workload/fig5.h"

namespace auxview {
namespace {

/// Every operation node of every group must compute the same relation as
/// the group's original expression (after alignment) — rule soundness.
void CheckAllPlansEquivalent(const Memo& memo, const Catalog& catalog,
                             Database* db) {
  Executor executor(db);
  for (GroupId g : memo.NonLeafGroups()) {
    auto reference = memo.ExtractOriginalTree(g);
    ASSERT_TRUE(reference.ok());
    auto expected = executor.Execute(**reference);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (int eid : memo.group(g).exprs) {
      if (memo.expr(eid).dead) continue;
      auto plan = memo.ExtractTree(g, {{g, eid}});
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto actual = executor.Execute(**plan);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_TRUE(expected->BagEquals(*actual))
          << "group N" << g << " op " << memo.expr(eid).op->LocalToString()
          << "\nexpected:\n" << expected->ToString() << "actual:\n"
          << actual->ToString();
    }
  }
  (void)catalog;
}

TEST(RulesTest, JoinCommuteAddsMirroredOp) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  ExprBuilder b(&workload.catalog());
  auto join = b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"});
  Memo memo;
  ASSERT_TRUE(memo.AddTree(join).ok());
  FdAnalysis fds(&memo, &workload.catalog());
  RuleContext ctx{&memo, &workload.catalog(), &fds};
  JoinCommuteRule rule;
  auto added = rule.Apply(ctx, memo.LiveExprs()[0]);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 1);
  // Applying again deduplicates (the commute of the commute exists).
  auto again = rule.Apply(ctx, memo.LiveExprs()[0]);
  EXPECT_EQ(*again, 0);
}

TEST(RulesTest, EagerAggregationProducesFigure1LeftTree) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  auto rules = AggregationOnlyRuleSet();
  auto stats = ExpandMemo(&memo, workload.catalog(), rules);
  ASSERT_TRUE(stats.ok());
  // A new group (Aggregate(Emp BY DName)) and a new Join op appeared.
  bool found_sum_of_sals = false;
  bool found_join_over_agg = false;
  for (int eid : memo.LiveExprs()) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind() == OpKind::kAggregate &&
        e.op->group_by() == std::vector<std::string>{"DName"}) {
      found_sum_of_sals = true;
    }
    if (e.kind() == OpKind::kJoin) {
      for (GroupId in : e.inputs) {
        if (!memo.group(memo.Find(in)).is_leaf) found_join_over_agg = true;
      }
    }
  }
  EXPECT_TRUE(found_sum_of_sals) << memo.ToString();
  EXPECT_TRUE(found_join_over_agg) << memo.ToString();
}

TEST(RulesTest, EagerAggregationRequiresKeyOnOtherSide) {
  // Join on a non-key attribute must block the aggregation push-down.
  Catalog catalog;
  TableDef f;
  f.name = "Fact";
  f.schema = Schema::Create({{"Id", ValueType::kInt64},
                             {"K", ValueType::kInt64},
                             {"V", ValueType::kInt64}})
                 .value();
  f.primary_key = {"Id"};
  f.stats.row_count = 100;
  ASSERT_TRUE(catalog.AddTable(f).ok());
  TableDef d;
  d.name = "Dim";
  d.schema = Schema::Create({{"DimId", ValueType::kInt64},
                             {"K", ValueType::kInt64}})
                 .value();
  d.primary_key = {"DimId"};  // K is NOT a key of Dim
  d.stats.row_count = 50;
  ASSERT_TRUE(catalog.AddTable(d).ok());
  ExprBuilder b(&catalog);
  auto tree = b.Aggregate(b.Join(b.Scan("Fact"), b.Scan("Dim"), {"K"}),
                          {"K"}, {{AggFunc::kSum, Col("V"), "SV"}});
  ASSERT_TRUE(b.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(tree).ok());
  auto rules = AggregationOnlyRuleSet();
  auto stats = ExpandMemo(&memo, catalog, rules);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->exprs_added, 0) << memo.ToString();
}

TEST(RulesTest, Figure5AggregateNotPushable) {
  // SUM(Quantity * Price) spans both join inputs: no eager aggregation.
  Fig5Workload workload{Fig5Config{}};
  auto tree = workload.ViewTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  const size_t before = memo.LiveExprs().size();
  auto rules = AggregationOnlyRuleSet();
  auto stats = ExpandMemo(&memo, workload.catalog(), rules);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(memo.LiveExprs().size(), before) << memo.ToString();
}

TEST(RulesTest, AllExpandedPlansComputeTheSameRelation) {
  EmpDeptConfig config;
  config.num_depts = 6;
  config.emps_per_dept = 4;
  config.violation_fraction = 0.3;
  EmpDeptWorkload workload{config};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  CheckAllPlansEquivalent(*memo, workload.catalog(), &db);
}

TEST(RulesTest, ChainJoinPlansAllEquivalent) {
  ChainConfig config;
  config.num_relations = 4;
  config.rows_per_relation = 40;
  config.with_aggregate = true;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  EXPECT_GT(memo->LiveExprs().size(), 6u);  // join reordering happened
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  CheckAllPlansEquivalent(*memo, workload.catalog(), &db);
}

TEST(RulesTest, SelectPushdownThroughJoinAndAggregate) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  ExprBuilder b(&workload.catalog());
  // Select on a Dept attribute above the join: pushable to the Dept side.
  auto tree = b.Select(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}),
                       Scalar::Gt(Col("Budget"), Lit(int64_t{100})));
  ASSERT_TRUE(b.ok());
  auto memo = BuildExpandedMemo(tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  bool pushed = false;
  for (int eid : memo->LiveExprs()) {
    const MemoExpr& e = memo->expr(eid);
    if (e.kind() == OpKind::kSelect &&
        memo->group(memo->Find(e.inputs[0])).is_leaf) {
      pushed = true;
    }
  }
  EXPECT_TRUE(pushed) << memo->ToString();
}

TEST(RulesTest, ExpansionRespectsLimits) {
  ChainConfig config;
  config.num_relations = 6;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  auto rules = DefaultRuleSet();
  ExpandOptions options;
  options.max_exprs = 20;
  auto stats = ExpandMemo(&memo, workload.catalog(), rules, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->hit_limit);
  EXPECT_LE(memo.num_exprs(), 25);
}

}  // namespace
}  // namespace auxview
