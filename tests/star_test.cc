// The star-schema rollup workload: rule coverage (general eager aggregation
// with re-aggregation through dimension joins), optimizer behavior, and
// maintenance correctness under measure updates, dimension re-labeling and
// fact insertions. The general rule's search space is large, so these tests
// use the ExtendedRuleSet with expansion caps.

#include "workload/star.h"

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

Memo BuildStarMemo(const StarWorkload& workload, int max_exprs = 150) {
  auto tree = workload.RollupTree();
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  Memo memo;
  EXPECT_TRUE(memo.AddTree(*tree).ok());
  const auto rules = ExtendedRuleSet();
  ExpandOptions options;
  options.max_exprs = max_exprs;
  EXPECT_TRUE(ExpandMemo(&memo, workload.catalog(), rules, options).ok());
  EXPECT_TRUE(memo.VerifyAcyclic());
  return memo;
}

TEST(StarTest, PopulateAndEvaluate) {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 200;
  config.dim_rows = 10;
  StarWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  auto tree = workload.RollupTree();
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  Executor executor(&db);
  auto rollup = executor.Execute(**tree);
  ASSERT_TRUE(rollup.ok());
  // Group counts sum to the fact count.
  int64_t total = 0;
  for (const auto& [row, count] : rollup->rows()) {
    (void)count;
    total += row[2].int64();  // N column
  }
  EXPECT_EQ(total, 200);
}

TEST(StarTest, GeneralEagerAggregationFires) {
  StarConfig config;
  config.num_dims = 2;
  StarWorkload workload{config};
  Memo memo = BuildStarMemo(workload);
  // Some aggregate operation node must sit below a join (pre-aggregation
  // of the fact side), and some re-aggregation (SUM over Total) above.
  bool preaggregated = false;
  bool reaggregated = false;
  for (int eid : memo.LiveExprs()) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind() == OpKind::kJoin) {
      for (GroupId in : e.inputs) {
        const MemoGroup& grp = memo.group(memo.Find(in));
        for (int inner : grp.exprs) {
          if (!memo.expr(inner).dead &&
              memo.expr(inner).kind() == OpKind::kAggregate) {
            preaggregated = true;
          }
        }
      }
    }
    if (e.kind() == OpKind::kAggregate) {
      for (const AggSpec& agg : e.op->aggs()) {
        if (agg.arg != nullptr && agg.arg->op() == ScalarOp::kColumn &&
            agg.arg->column_name() == "Total") {
          reaggregated = true;
        }
      }
    }
  }
  EXPECT_TRUE(preaggregated) << memo.ToString();
  EXPECT_TRUE(reaggregated) << memo.ToString();
}

TEST(StarTest, AllStarPlansComputeTheSameRelation) {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 80;
  config.dim_rows = 6;
  StarWorkload workload{config};
  Memo memo = BuildStarMemo(workload, 60);
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  Executor executor(&db);
  const GroupId root = memo.root();
  auto expected = executor.Execute(**memo.ExtractOriginalTree(root));
  ASSERT_TRUE(expected.ok());
  for (int eid : memo.group(root).exprs) {
    if (memo.expr(eid).dead) continue;
    auto plan = memo.ExtractTree(root, {{root, eid}});
    ASSERT_TRUE(plan.ok());
    auto actual = executor.Execute(**plan);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_TRUE(expected->BagEquals(*actual))
        << memo.expr(eid).op->LocalToString() << "\nexpected:\n"
        << expected->ToString() << "actual:\n" << actual->ToString();
  }
}

TEST(StarTest, MeasureChurnSelfMaintainsWithoutAuxiliaries) {
  // The SUM rollup self-maintains under measure modifies (the paper's
  // SumOfSals argument at warehouse scale): the optimizer must recognize
  // that no auxiliary view pays here, and the greedy optimum equals the
  // bare root.
  StarConfig config;
  config.num_dims = 2;
  StarWorkload workload{config};
  Memo memo = BuildStarMemo(workload, 60);
  ViewSelector selector(&memo, &workload.catalog());
  const std::vector<TransactionType> txns = {workload.TxnModMeasure(20),
                                             workload.TxnModDimAttr(1, 1)};
  OptimizeOptions options;
  options.cost.include_root_update_cost = true;
  auto greedy = selector.Greedy(txns, options);
  auto nothing = selector.CostViewSet(txns, {memo.root()}, options);
  ASSERT_TRUE(greedy.ok() && nothing.ok());
  EXPECT_LE(greedy->weighted_cost, nothing->weighted_cost + 1e-9);
  // The greedy search never returns something worse than its own start
  // point, and extra views must strictly reduce the cost to be kept.
  if (greedy->views.size() > 1) {
    EXPECT_LT(greedy->weighted_cost, nothing->weighted_cost);
  }
}

class StarMaintenanceTest : public ::testing::TestWithParam<bool> {};

TEST_P(StarMaintenanceTest, StreamsStayConsistent) {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 120;
  config.dim_rows = 8;
  config.group_by_two = GetParam();
  StarWorkload workload{config};
  Memo memo = BuildStarMemo(workload, 50);
  ViewSelector selector(&memo, &workload.catalog());
  const std::vector<TransactionType> txns = {
      workload.TxnModMeasure(), workload.TxnModDimAttr(1),
      workload.TxnModDimAttr(2), workload.TxnInsertFact()};
  // A fixed interesting view set: root plus the first pre-aggregated group.
  ViewSet views = {memo.root()};
  for (int eid : memo.LiveExprs()) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind() == OpKind::kAggregate &&
        memo.Find(e.group) != memo.root() && views.size() < 3) {
      views.insert(memo.Find(e.group));
    }
  }

  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  ViewManager manager(&memo, &workload.catalog(), &db);
  ASSERT_TRUE(manager.Materialize(views).ok());
  TxnGenerator gen(55);
  for (int step = 0; step < 16; ++step) {
    const TransactionType& type = txns[static_cast<size_t>(step) %
                                       txns.size()];
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok());
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok());
    Status applied = manager.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    Status consistent = manager.CheckConsistency();
    ASSERT_TRUE(consistent.ok())
        << "step " << step << " (" << type.name
        << "): " << consistent.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(GroupBy, StarMaintenanceTest, ::testing::Bool());

TEST(StarTest, DefaultRulesLeaveStarUnexpanded) {
  // Without the ExtendedRuleSet, the measure aggregate cannot move (its
  // group-by lacks the join attributes): only join reordering happens.
  StarConfig config;
  config.num_dims = 2;
  StarWorkload workload{config};
  auto tree = workload.RollupTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  for (int eid : memo->LiveExprs()) {
    const MemoExpr& e = memo->expr(eid);
    if (e.kind() != OpKind::kAggregate) continue;
    EXPECT_EQ(memo->Find(e.group), memo->root());
  }
}

}  // namespace
}  // namespace auxview
