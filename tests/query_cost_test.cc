#include "cost/query_cost.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "memo/expand.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

TEST(IoCostModelTest, Primitives) {
  IoCostModel model;
  EXPECT_DOUBLE_EQ(model.IndexLookup(1, 10), 11);
  EXPECT_DOUBLE_EQ(model.IndexLookup(3, 1), 6);
  EXPECT_DOUBLE_EQ(model.Scan(100), 100);
}

TEST(IoCostModelTest, ApplyDeltaMatchesPaper) {
  IoCostModel model;
  // N3 / >Emp: modify 1 tuple, 1 index -> 3.
  EXPECT_DOUBLE_EQ(model.ApplyDelta(UpdateKind::kModify, 1, 1), 3);
  // N4 / >Dept: modify 10 tuples -> 21.
  EXPECT_DOUBLE_EQ(model.ApplyDelta(UpdateKind::kModify, 10, 1), 21);
  // Index write added when indexed attributes change.
  EXPECT_DOUBLE_EQ(
      model.ApplyDelta(UpdateKind::kModify, 1, 1, true), 4);
  EXPECT_DOUBLE_EQ(model.ApplyDelta(UpdateKind::kInsert, 2, 1), 4);
  EXPECT_DOUBLE_EQ(model.ApplyDelta(UpdateKind::kDelete, 2, 1), 6);
  EXPECT_DOUBLE_EQ(model.ApplyDelta(UpdateKind::kModify, 0, 1), 0);
}

TEST(IoCostModelTest, CustomWeights) {
  IoCostParams params;
  params.index_page_read = 0.5;
  params.tuple_page_read = 2;
  IoCostModel model(params);
  EXPECT_DOUBLE_EQ(model.IndexLookup(1, 3), 6.5);
}

class QueryCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok());
    auto memo = BuildExpandedMemo(*tree, workload_->catalog());
    ASSERT_TRUE(memo.ok());
    memo_ = std::make_unique<Memo>(std::move(memo).value());
    stats_ = std::make_unique<StatsAnalysis>(memo_.get(),
                                             &workload_->catalog());
    fds_ = std::make_unique<FdAnalysis>(memo_.get(), &workload_->catalog());
    coster_ = std::make_unique<QueryCoster>(memo_.get(),
                                            &workload_->catalog(),
                                            stats_.get(), fds_.get(),
                                            IoCostModel());
    for (GroupId g : memo_->LiveGroups()) {
      const MemoGroup& grp = memo_->group(g);
      if (grp.is_leaf && grp.table == "Emp") emp_ = g;
      if (grp.is_leaf && grp.table == "Dept") dept_ = g;
    }
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<StatsAnalysis> stats_;
  std::unique_ptr<FdAnalysis> fds_;
  std::unique_ptr<QueryCoster> coster_;
  GroupId emp_ = -1, dept_ = -1;
};

TEST_F(QueryCostTest, LeafIndexChoice) {
  // Emp lookups: by DName -> 1 + 10; by EName (PK) -> 1 + 1; by Salary (no
  // index) -> scan.
  EXPECT_DOUBLE_EQ(coster_->LookupCost(emp_, {"DName"}, 1, {}), 11);
  EXPECT_DOUBLE_EQ(coster_->LookupCost(emp_, {"EName"}, 1, {}), 2);
  EXPECT_DOUBLE_EQ(coster_->LookupCost(emp_, {"Salary"}, 1, {}), 10000);
}

TEST_F(QueryCostTest, SubsetIndexWithResidualFilter) {
  // {EName, Salary}: the EName index covers a subset; residual is free.
  EXPECT_DOUBLE_EQ(coster_->LookupCost(emp_, {"EName", "Salary"}, 1, {}), 2);
}

TEST_F(QueryCostTest, ProbesScaleLinearly) {
  EXPECT_DOUBLE_EQ(coster_->LookupCost(dept_, {"DName"}, 5, {}), 10);
}

TEST_F(QueryCostTest, FullCostOfJoinGroup) {
  // Computing the Emp-Dept join in full: scan both sides.
  GroupId n4 = -1;
  for (GroupId g : memo_->NonLeafGroups()) {
    for (int eid : memo_->group(g).exprs) {
      const MemoExpr& e = memo_->expr(eid);
      if (e.dead || e.kind() != OpKind::kJoin) continue;
      bool leaf_join = true;
      for (GroupId in : e.inputs) {
        if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
      }
      if (leaf_join) n4 = g;
    }
  }
  ASSERT_GE(n4, 0);
  EXPECT_DOUBLE_EQ(coster_->FullCost(n4, {}), 11000);
  // Materialized: scan the view instead.
  EXPECT_DOUBLE_EQ(coster_->FullCost(n4, {n4}), 10000);
}

TEST_F(QueryCostTest, MonotonicityUnderMaterialization) {
  // Adding materialized views never increases any lookup cost.
  std::vector<GroupId> groups = memo_->NonLeafGroups();
  for (GroupId g : groups) {
    const double bare = coster_->LookupCost(g, {"DName"}, 1, {});
    for (GroupId m : groups) {
      const double with_view =
          coster_->LookupCost(g, {"DName"}, 1, {m});
      EXPECT_LE(with_view, bare + 1e-9)
          << "lookup on N" << g << " got worse with N" << m
          << " materialized";
    }
  }
}

TEST_F(QueryCostTest, UnindexedMaterializedViewScans) {
  GroupId n3 = -1;
  for (GroupId g : memo_->NonLeafGroups()) {
    for (int eid : memo_->group(g).exprs) {
      const MemoExpr& e = memo_->expr(eid);
      if (!e.dead && e.kind() == OpKind::kAggregate &&
          e.op->group_by() == std::vector<std::string>{"DName"}) {
        n3 = g;
      }
    }
  }
  ASSERT_GE(n3, 0);
  QueryCostOptions options;
  options.materialized_views_indexed = false;
  QueryCoster no_index(memo_.get(), &workload_->catalog(), stats_.get(),
                       fds_.get(), IoCostModel(), options);
  EXPECT_DOUBLE_EQ(no_index.LookupCost(n3, {"DName"}, 1, {n3}), 1000);
}

TEST(QueryCostChainTest, LookupPushesThroughJoinChain) {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 1000;
  config.fanout = 4;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  StatsAnalysis stats(&*memo, &workload.catalog());
  FdAnalysis fds(&*memo, &workload.catalog());
  QueryCoster coster(&*memo, &workload.catalog(), &stats, &fds,
                     IoCostModel());
  // A key lookup on the root (3-way join) must cost far less than scanning.
  const double lookup = coster.LookupCost(memo->root(), {"A0"}, 1, {});
  EXPECT_LT(lookup, 100);
  EXPECT_GT(lookup, 2);
}

}  // namespace
}  // namespace auxview
