// End-to-end SQL-92 assertion checking (Section 6): parse the paper's DDL,
// bind the assertion, pick auxiliary views, maintain, and check.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

constexpr char kScript[] = R"(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW ProblemDept (DName) AS
  SELECT Dept.DName FROM Emp, Dept
  WHERE Dept.DName = Emp.DName
  GROUPBY Dept.DName, Budget
  HAVING SUM(Salary) > Budget;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
)";

class AssertionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    binder_ = std::make_unique<Binder>(&catalog_);
    ASSERT_TRUE(binder_->Run(kScript).ok());

    // Populate: 5 departments x 2 employees, budgets comfortably high.
    auto emp_def = catalog_.GetTable("Emp");
    auto dept_def = catalog_.GetTable("Dept");
    ASSERT_TRUE(emp_def.ok() && dept_def.ok());
    RelationStats emp_stats;
    emp_stats.row_count = 10;
    emp_stats.distinct = {{"EName", 10}, {"DName", 5}};
    ASSERT_TRUE(catalog_.SetStats("Emp", emp_stats).ok());
    RelationStats dept_stats;
    dept_stats.row_count = 5;
    dept_stats.distinct = {{"DName", 5}, {"Budget", 5}};
    ASSERT_TRUE(catalog_.SetStats("Dept", dept_stats).ok());

    ScopedCountingDisabled guard(&db_.counter());
    Table* emp = *db_.CreateTable(*emp_def);
    Table* dept = *db_.CreateTable(*dept_def);
    for (int d = 0; d < 5; ++d) {
      const std::string dname = "d" + std::to_string(d);
      int64_t sum = 0;
      for (int k = 0; k < 2; ++k) {
        const int64_t salary = 1000 + 100 * d + k;
        sum += salary;
        ASSERT_TRUE(emp->Insert({Value::String(dname + "_e" +
                                               std::to_string(k)),
                                 Value::String(dname),
                                 Value::Int64(salary)})
                        .ok());
      }
      ASSERT_TRUE(dept->Insert({Value::String(dname),
                                Value::String("m" + std::to_string(d)),
                                Value::Int64(sum + 500)})
                      .ok());
    }

    const BoundAssertion& assertion = binder_->assertions()[0];
    auto memo = BuildExpandedMemo(assertion.expr, catalog_);
    ASSERT_TRUE(memo.ok()) << memo.status().ToString();
    memo_ = std::make_unique<Memo>(std::move(memo).value());
    selector_ = std::make_unique<ViewSelector>(memo_.get(), &catalog_);
    auto chosen = selector_->Exhaustive(
        {SingleModifyTxn(">Emp", "Emp", {"Salary"}),
         SingleModifyTxn(">Dept", "Dept", {"Budget"})});
    ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();
    views_ = chosen->views;
    manager_ = std::make_unique<ViewManager>(memo_.get(), &catalog_, &db_);
    ASSERT_TRUE(manager_->Materialize(views_).ok());
  }

  /// Applies a budget change to department `d`.
  void SetBudget(int d, int64_t budget) {
    const std::string dname = "d" + std::to_string(d);
    Table* dept = db_.FindTable("Dept");
    auto rows = dept->SnapshotUncharged();
    Row old_row;
    for (const CountedRow& cr : rows) {
      if (cr.row[0].str() == dname) old_row = cr.row;
    }
    ASSERT_FALSE(old_row.empty());
    Row new_row = old_row;
    new_row[2] = Value::Int64(budget);
    ConcreteTxn txn;
    txn.type_name = ">Dept";
    TableUpdate update;
    update.relation = "Dept";
    update.modifies.emplace_back(old_row, new_row);
    txn.updates.push_back(update);
    const TransactionType type = SingleModifyTxn(">Dept", "Dept", {"Budget"});
    auto plan = selector_->BestTrack(views_, type);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(manager_->ApplyTransaction(txn, type, plan->track).ok());
  }

  AssertionCheck Check() {
    AssertionChecker checker(manager_.get());
    auto check = checker.Check("DeptConstraint", memo_->root());
    EXPECT_TRUE(check.ok());
    return *check;
  }

  Catalog catalog_;
  std::unique_ptr<Binder> binder_;
  Database db_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<ViewSelector> selector_;
  std::unique_ptr<ViewManager> manager_;
  ViewSet views_;
};

TEST_F(AssertionTest, HoldsInitially) {
  AssertionCheck check = Check();
  EXPECT_TRUE(check.holds) << check.ToString();
  EXPECT_NE(check.ToString().find("holds"), std::string::npos);
}

TEST_F(AssertionTest, ViolatedWhenBudgetDrops) {
  SetBudget(2, 1);  // way below the salary sum
  AssertionCheck check = Check();
  EXPECT_FALSE(check.holds);
  ASSERT_EQ(check.violations.size(), 1u);
  EXPECT_EQ(check.violations[0][0].str(), "d2");
  EXPECT_NE(check.ToString().find("VIOLATED"), std::string::npos);
}

TEST_F(AssertionTest, RestoredWhenBudgetRises) {
  SetBudget(2, 1);
  ASSERT_FALSE(Check().holds);
  SetBudget(2, 1000000);
  EXPECT_TRUE(Check().holds);
  ASSERT_TRUE(manager_->CheckConsistency().ok());
}

TEST_F(AssertionTest, MultipleViolations) {
  SetBudget(0, 1);
  SetBudget(4, 2);
  AssertionCheck check = Check();
  EXPECT_FALSE(check.holds);
  EXPECT_EQ(check.violations.size(), 2u);
}

}  // namespace
}  // namespace auxview
