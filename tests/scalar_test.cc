#include "algebra/scalar.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"

namespace auxview {
namespace {

class ScalarTest : public ::testing::Test {
 protected:
  Schema schema_ = Schema::Create({{"a", ValueType::kInt64},
                                   {"b", ValueType::kInt64},
                                   {"s", ValueType::kString},
                                   {"d", ValueType::kDouble}})
                       .value();
  Row row_ = {Value::Int64(3), Value::Int64(7), Value::String("x"),
              Value::Double(1.5)};

  Value Eval(const Scalar::Ptr& e) {
    auto v = e->Eval(row_, schema_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
};

TEST_F(ScalarTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Col("a")), Value::Int64(3));
  EXPECT_EQ(Eval(Lit(int64_t{9})), Value::Int64(9));
  EXPECT_EQ(Eval(Lit("hi")), Value::String("hi"));
}

TEST_F(ScalarTest, ArithmeticPreservesIntegers) {
  EXPECT_EQ(Eval(Scalar::Binary(ScalarOp::kAdd, Col("a"), Col("b"))),
            Value::Int64(10));
  EXPECT_EQ(Eval(Scalar::Mul(Col("a"), Col("b"))), Value::Int64(21));
  // Division always yields double.
  Value div = Eval(Scalar::Binary(ScalarOp::kDiv, Col("b"), Col("a")));
  EXPECT_EQ(div.type(), ValueType::kDouble);
  EXPECT_NEAR(div.dbl(), 7.0 / 3, 1e-12);
  // Mixed int/double promotes.
  Value mixed = Eval(Scalar::Binary(ScalarOp::kAdd, Col("a"), Col("d")));
  EXPECT_EQ(mixed.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(mixed.dbl(), 4.5);
}

TEST_F(ScalarTest, Comparisons) {
  EXPECT_EQ(Eval(Scalar::Lt(Col("a"), Col("b"))), Value::Bool(true));
  EXPECT_EQ(Eval(Scalar::Gt(Col("a"), Col("b"))), Value::Bool(false));
  EXPECT_EQ(Eval(Scalar::Eq(Col("s"), Lit("x"))), Value::Bool(true));
  EXPECT_EQ(
      Eval(Scalar::Binary(ScalarOp::kNe, Col("a"), Lit(int64_t{3}))),
      Value::Bool(false));
  EXPECT_EQ(
      Eval(Scalar::Binary(ScalarOp::kGe, Col("b"), Lit(int64_t{7}))),
      Value::Bool(true));
}

TEST_F(ScalarTest, LogicAndNullPropagation) {
  auto t = Scalar::Lt(Col("a"), Col("b"));
  auto f = Scalar::Gt(Col("a"), Col("b"));
  EXPECT_EQ(Eval(Scalar::And(t, f)), Value::Bool(false));
  EXPECT_EQ(Eval(Scalar::Binary(ScalarOp::kOr, t, f)), Value::Bool(true));
  EXPECT_EQ(Eval(Scalar::Not(f)), Value::Bool(true));
  // NULL propagates.
  auto null_cmp = Scalar::Eq(Scalar::Literal(Value::Null()), Col("a"));
  EXPECT_TRUE(Eval(null_cmp).is_null());
  EXPECT_TRUE(Eval(Scalar::And(t, null_cmp)).is_null());
}

TEST_F(ScalarTest, UnknownColumnErrors) {
  auto v = Col("zzz")->Eval(row_, schema_);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ScalarTest, CollectColumnsAndToString) {
  auto e = Scalar::Gt(Scalar::Mul(Col("a"), Col("b")), Lit(int64_t{10}));
  std::set<std::string> expected = {"a", "b"};
  EXPECT_EQ(e->Columns(), expected);
  EXPECT_EQ(e->ToString(), "((a * b) > 10)");
}

TEST_F(ScalarTest, InferType) {
  EXPECT_EQ(*Scalar::Mul(Col("a"), Col("b"))->InferType(schema_),
            ValueType::kInt64);
  EXPECT_EQ(*Scalar::Mul(Col("a"), Col("d"))->InferType(schema_),
            ValueType::kDouble);
  EXPECT_EQ(*Scalar::Gt(Col("a"), Col("b"))->InferType(schema_),
            ValueType::kBool);
  EXPECT_FALSE(Col("nope")->InferType(schema_).ok());
}

TEST_F(ScalarTest, ConjunctSplitAndCombine) {
  auto p = Scalar::Gt(Col("a"), Lit(int64_t{1}));
  auto q = Scalar::Lt(Col("b"), Lit(int64_t{9}));
  auto r = Scalar::Eq(Col("s"), Lit("x"));
  auto conj = Scalar::And(Scalar::And(p, q), r);
  std::vector<Scalar::Ptr> parts;
  Scalar::SplitConjuncts(conj, &parts);
  ASSERT_EQ(parts.size(), 3u);
  auto rebuilt = Scalar::CombineConjuncts(parts);
  EXPECT_TRUE(rebuilt->Equals(*conj));
  EXPECT_EQ(Scalar::CombineConjuncts({}), nullptr);
}

TEST_F(ScalarTest, DivisionByZeroIsNull) {
  auto e = Scalar::Binary(ScalarOp::kDiv, Col("a"), Lit(int64_t{0}));
  EXPECT_TRUE(Eval(e).is_null());
}

}  // namespace
}  // namespace auxview
