#include "optimizer/track.h"

#include <gtest/gtest.h>

#include "memo/expand.h"
#include "optimizer/optimizer.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class TrackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok());
    Memo memo;
    ASSERT_TRUE(memo.AddTree(*tree).ok());
    auto rules = AggregationOnlyRuleSet();
    ASSERT_TRUE(ExpandMemo(&memo, workload_->catalog(), rules).ok());
    memo_ = std::make_unique<Memo>(std::move(memo));
    stats_ = std::make_unique<StatsAnalysis>(memo_.get(),
                                             &workload_->catalog());
    delta_ = std::make_unique<DeltaAnalysis>(memo_.get(),
                                             &workload_->catalog(),
                                             stats_.get());
    enumerator_ = std::make_unique<TrackEnumerator>(memo_.get(),
                                                    delta_.get());
    for (GroupId g : memo_->NonLeafGroups()) {
      for (int eid : memo_->group(g).exprs) {
        const MemoExpr& e = memo_->expr(eid);
        if (e.dead) continue;
        if (e.kind() == OpKind::kAggregate &&
            e.op->group_by() == std::vector<std::string>{"DName"}) {
          n3_ = g;
        }
        if (e.kind() == OpKind::kJoin) {
          bool leaf_join = true;
          for (GroupId in : e.inputs) {
            if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
          }
          if (leaf_join) n4_ = g;
        }
      }
    }
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<StatsAnalysis> stats_;
  std::unique_ptr<DeltaAnalysis> delta_;
  std::unique_ptr<TrackEnumerator> enumerator_;
  GroupId n3_ = -1, n4_ = -1;
};

TEST_F(TrackTest, RootOnlyYieldsTwoTracksPerTxn) {
  // In Figure 2's DAG, the root can be reached via E2 (through N3) or E3
  // (through N4): exactly the paper's two update tracks per transaction.
  auto tracks = enumerator_->Enumerate({memo_->root()},
                                       workload_->TxnModEmp());
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->size(), 2u);
  auto tracks_dept = enumerator_->Enumerate({memo_->root()},
                                            workload_->TxnModDept());
  ASSERT_TRUE(tracks_dept.ok());
  EXPECT_EQ(tracks_dept->size(), 2u);
}

TEST_F(TrackTest, DeptTxnSkipsN3) {
  // >Dept never needs a choice at N3 (unaffected).
  auto tracks = enumerator_->Enumerate({memo_->root(), n3_},
                                       workload_->TxnModDept());
  ASSERT_TRUE(tracks.ok());
  for (const UpdateTrack& t : *tracks) {
    EXPECT_EQ(t.choice.count(n3_), 0u);
  }
}

TEST_F(TrackTest, MarkedN4ForcesItOntoEveryTrack) {
  auto tracks = enumerator_->Enumerate({memo_->root(), n4_},
                                       workload_->TxnModEmp());
  ASSERT_TRUE(tracks.ok());
  ASSERT_FALSE(tracks->empty());
  for (const UpdateTrack& t : *tracks) {
    EXPECT_EQ(t.choice.count(n4_), 1u) << t.ToString(*memo_);
  }
}

TEST_F(TrackTest, UnaffectedTxnGivesEmptyTrack) {
  TransactionType other = SingleModifyTxn(">Other", "Other", {"x"});
  auto tracks = enumerator_->Enumerate({memo_->root()}, other);
  ASSERT_TRUE(tracks.ok());
  ASSERT_EQ(tracks->size(), 1u);
  EXPECT_TRUE((*tracks)[0].choice.empty());
}

TEST_F(TrackTest, GreedyYieldsSingleTrack) {
  TrackEnumOptions options;
  options.greedy = true;
  auto tracks = enumerator_->Enumerate({memo_->root()},
                                       workload_->TxnModEmp(), options);
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->size(), 1u);
}

TEST_F(TrackTest, MaxTracksCapRespected) {
  TrackEnumOptions options;
  options.max_tracks = 1;
  auto tracks = enumerator_->Enumerate({memo_->root()},
                                       workload_->TxnModEmp(), options);
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->size(), 1u);
}

TEST_F(TrackTest, AllowedOpsRestriction) {
  // Restrict to the original (Figure 1 right) tree: only one track remains.
  std::set<int> allowed;
  for (int eid : memo_->LiveExprs()) {
    const MemoExpr& e = memo_->expr(eid);
    // The original ops: Select, 2-attr Aggregate, leaf Join.
    if (e.kind() == OpKind::kSelect) allowed.insert(eid);
    if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2) {
      allowed.insert(eid);
    }
    if (e.kind() == OpKind::kJoin) {
      bool leaf_join = true;
      for (GroupId in : e.inputs) {
        if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
      }
      if (leaf_join) allowed.insert(eid);
    }
  }
  TrackEnumOptions options;
  options.allowed_ops = allowed;
  auto tracks = enumerator_->Enumerate({memo_->root()},
                                       workload_->TxnModEmp(), options);
  ASSERT_TRUE(tracks.ok());
  EXPECT_EQ(tracks->size(), 1u);
}

TEST_F(TrackTest, TrackCostQueriesCarryLabels) {
  ViewSelector selector(memo_.get(), &workload_->catalog());
  auto plan = selector.BestTrack({memo_->root(), n3_},
                                 workload_->TxnModEmp());
  ASSERT_TRUE(plan.ok());
  // {N3}, >Emp: exactly one (non-shared) query — the Dept lookup (Q2Re).
  ASSERT_EQ(plan->cost.queries.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->cost.queries[0].cost, 2);
  EXPECT_FALSE(plan->cost.queries[0].label.empty());
  EXPECT_FALSE(plan->cost.queries[0].ToString().empty());
}

TEST_F(TrackTest, SharingDeduplicatesIdenticalQueries) {
  // {N3, N4} for >Emp: both the E2 join (probe Dept with delta-N3) and the
  // E5 join (probe Dept with delta-Emp) probe Dept on DName with one probe;
  // sharing charges the second at zero.
  ViewSelector selector(memo_.get(), &workload_->catalog());
  OptimizeOptions with_sharing;
  auto shared = selector.BestTrack({memo_->root(), n3_, n4_},
                                   workload_->TxnModEmp(), with_sharing);
  ASSERT_TRUE(shared.ok());
  OptimizeOptions no_sharing;
  no_sharing.cost.share_queries = false;
  auto unshared = selector.BestTrack({memo_->root(), n3_, n4_},
                                     workload_->TxnModEmp(), no_sharing);
  ASSERT_TRUE(unshared.ok());
  EXPECT_LT(shared->cost.query_cost, unshared->cost.query_cost);
}

}  // namespace
}  // namespace auxview
