// Long-stream soak: hundreds of mixed transactions against the paper's
// schema with everything materialized, verifying consistency periodically
// and exactly at the end.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

TEST(SoakTest, TwoHundredMixedTransactions) {
  EmpDeptConfig config;
  config.num_depts = 30;
  config.emps_per_dept = 5;
  config.violation_fraction = 0.2;
  EmpDeptWorkload workload{config};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());

  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  ViewManager manager(&*memo, &workload.catalog(), &db);
  ASSERT_TRUE(manager.Materialize(views).ok());
  ViewSelector selector(&*memo, &workload.catalog());

  TransactionType hire;
  hire.name = "hire";
  hire.updates.push_back(UpdateSpec{"Emp", UpdateKind::kInsert, 2, {}, {}});
  TransactionType quit;
  quit.name = "quit";
  quit.updates.push_back(UpdateSpec{"Emp", UpdateKind::kDelete, 1, {}, {}});
  const std::vector<TransactionType> txns = {
      workload.TxnModEmp(),
      workload.TxnModDept(),
      SingleModifyTxn("move", "Emp", {"DName"}),
      hire,
      quit,
  };

  TxnGenerator gen(4242);
  for (int step = 0; step < 200; ++step) {
    const TransactionType& type = txns[static_cast<size_t>(step) %
                                       txns.size()];
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok());
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok());
    Status applied = manager.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok()) << "step " << step << ": " << applied.ToString();
    if (step % 25 == 0) {
      Status consistent = manager.CheckConsistency();
      ASSERT_TRUE(consistent.ok())
          << "step " << step << ": " << consistent.ToString();
    }
  }
  ASSERT_TRUE(manager.CheckConsistency().ok());
  // The database evolved meaningfully under the churn.
  EXPECT_NE(db.FindTable("Emp")->row_count(), 150);
}

TEST(SoakTest, SessionSoak) {
  Session session;
  ASSERT_TRUE(session
                  .Execute("CREATE TABLE T (k INT PRIMARY KEY, g INT, "
                           "v INT, INDEX (g));"
                           "CREATE VIEW V (g, s, n) AS SELECT g, SUM(v), "
                           "COUNT(*) FROM T GROUPBY g;")
                  .ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(session
                    .Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i % 7) + ", " +
                             std::to_string(i * 3) + ");")
                    .ok());
  }
  ASSERT_TRUE(session.Prepare().ok());
  Rng rng(99);
  for (int step = 0; step < 120; ++step) {
    const int k = static_cast<int>(rng.Uniform(0, 39));
    std::string sql;
    switch (rng.Uniform(0, 2)) {
      case 0:
        sql = "UPDATE T SET v = v + 1 WHERE k = " + std::to_string(k) + ";";
        break;
      case 1:
        sql = "UPDATE T SET g = " + std::to_string(rng.Uniform(0, 9)) +
              " WHERE k = " + std::to_string(k) + ";";
        break;
      default:
        sql = "DELETE FROM T WHERE k = " + std::to_string(k) + ";";
        break;
    }
    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << "step " << step << " (" << sql
                             << "): " << result.status().ToString();
  }
  Status consistent = session.CheckConsistency();
  ASSERT_TRUE(consistent.ok()) << consistent.ToString();
}

}  // namespace
}  // namespace auxview
