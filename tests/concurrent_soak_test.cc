// Multi-writer / multi-reader soak over one concurrency-enabled Session.
// Small enough for the sanitizer jobs, and the thread-sanitizer CI target
// runs it under TSan: writer threads commit (and retry) through the
// optimistic funnel while reader threads execute joins and view scans
// against published snapshots, with zero synchronization other than the
// concurrency layer's own.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/txn_session.h"

namespace auxview {
namespace {

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

constexpr int kWriterThreads = 3;
constexpr int kReaderThreads = 2;
constexpr int kOpsPerWriter = 25;
constexpr int kReadsPerReader = 40;
constexpr int kDepts = 6;
constexpr int kEmpsPerDept = 4;

TEST(ConcurrentSoakTest, WritersAndReadersRaceCleanly) {
  Session session;
  ASSERT_TRUE(session.Execute(kDdl).ok());
  for (int d = 0; d < kDepts; ++d) {
    const std::string dname = "d" + std::to_string(d);
    for (int k = 0; k < kEmpsPerDept; ++k) {
      auto r = session.Execute(
          "INSERT INTO Emp VALUES ('" + dname + "e" + std::to_string(k) +
          "', '" + dname + "', 100);");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    auto r = session.Execute("INSERT INTO Dept VALUES ('" + dname + "', 'm" +
                             std::to_string(d) + "', 100000);");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  session.DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
                           SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
  ASSERT_TRUE(session.Prepare().ok());
  ASSERT_TRUE(session.EnableConcurrency().ok());

  std::atomic<int> committed{0};
  std::atomic<int> conflicted{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriterThreads; ++t) {
    threads.emplace_back([&session, &committed, &conflicted, &failed, t] {
      auto txn = session.OpenSession();
      if (!txn.ok()) {
        failed = true;
        return;
      }
      for (int i = 0; i < kOpsPerWriter && !failed; ++i) {
        // Writers overlap on purpose: thread t sweeps its own department
        // plus a shared one, so some commits conflict and retry.
        const std::string mine = "d" + std::to_string(t % kDepts);
        const std::string shared = "d" + std::to_string(kDepts - 1);
        const std::string target = (i % 3 == 0) ? shared : mine;
        const std::string ename = target + "e" + std::to_string(i % kEmpsPerDept);
        const std::string sql = "UPDATE Emp SET Salary = " +
                                std::to_string(101 + (t * 1000 + i) % 400) +
                                " WHERE EName = '" + ename + "';";
        bool done = false;
        for (int attempt = 0; attempt < 10 && !done; ++attempt) {
          auto executed = (*txn)->Execute(sql);
          if (!executed.ok()) {
            failed = true;
            break;
          }
          auto outcome = (*txn)->Commit();
          if (!outcome.ok() ||
              outcome->kind == CommitOutcome::Kind::kRejected) {
            failed = true;
            break;
          }
          if (outcome->committed()) {
            committed.fetch_add(1);
            done = true;
          } else {
            conflicted.fetch_add(1);
            (*txn)->Restart();
          }
        }
      }
    });
  }
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&session, &failed] {
      auto txn = session.OpenSession();
      if (!txn.ok()) {
        failed = true;
        return;
      }
      for (int i = 0; i < kReadsPerReader && !failed; ++i) {
        auto view = (*txn)->Execute("SELECT * FROM SumOfSals;");
        auto join = (*txn)->Execute(
            "SELECT EName, Budget FROM Emp, Dept "
            "WHERE Emp.DName = Dept.DName;");
        if (!view.ok() || !join.ok() ||
            view->rows->total_count() != kDepts ||
            join->rows->total_count() != kDepts * kEmpsPerDept) {
          failed = true;
          return;
        }
        // Fresh snapshot for the next iteration.
        (*txn)->Abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(committed.load(), kWriterThreads * kOpsPerWriter);
  // Conflict counts are timing-dependent (the shared department makes them
  // likely, not certain) — deterministic conflict coverage lives in
  // concurrency_test and serial_equivalence_test.
  EXPECT_GE(conflicted.load(), 0);
  EXPECT_TRUE(session.CheckConsistency().ok());
  // The owning session still serves serial DML afterwards.
  auto serial =
      session.Execute("UPDATE Emp SET Salary = 777 WHERE EName = 'd0e0';");
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial->affected, 1);
  EXPECT_TRUE(session.CheckConsistency().ok());
}

}  // namespace
}  // namespace auxview
