// Bit-identity of parallel delta propagation: for every workload, running
// the same transaction stream with 1, 2, 4 and 8 propagation workers
// (MaintainOptions::threads) must produce identical per-transaction charged
// page I/O, identical table and index fingerprints after every commit, and
// identical fetch-cache hit/miss totals — parallelism may only change wall
// clock, never results or modeled costs (docs/CONCURRENCY.md,
// "Intra-transaction parallelism"). Also covered: hash-partitioned kernel
// execution forced on via a tiny row threshold, the pool.task.fail
// failpoint (an injected worker-task fault aborts the transaction and
// leaves the database bit-identical), and a multi-thread soak that gives
// ThreadSanitizer real concurrent schedules to chew on.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"
#include "common/failpoint.h"
#include "exec/kernels/kernels.h"
#include "obs/metrics.h"

namespace auxview {
namespace {

std::map<std::string, std::string> FingerprintAll(Database& db) {
  std::map<std::string, std::string> out;
  for (const std::string& name : db.TableNames()) {
    out[name] = db.FindTable(name)->Fingerprint();
  }
  return out;
}

/// Forces (or restores) hash-partitioned kernel execution for a scope.
class ScopedPartitionConfig {
 public:
  ScopedPartitionConfig(int64_t min_rows, int count)
      : old_min_(kernels::PartitionMinRows()),
        old_count_(kernels::PartitionCount()) {
    kernels::SetPartitionMinRows(min_rows);
    kernels::SetPartitionCount(count);
  }
  ~ScopedPartitionConfig() {
    kernels::SetPartitionMinRows(old_min_);
    kernels::SetPartitionCount(old_count_);
  }

  ScopedPartitionConfig(const ScopedPartitionConfig&) = delete;
  ScopedPartitionConfig& operator=(const ScopedPartitionConfig&) = delete;

 private:
  int64_t old_min_;
  int old_count_;
};

/// One workload packaged behind a uniform interface (the serial- and
/// recovery-equivalence harnesses' CasePack).
struct CasePack {
  std::string name;
  std::shared_ptr<void> owner;
  const Catalog* catalog = nullptr;
  Expr::Ptr tree;
  std::function<Status(Database*)> populate;
  std::vector<TransactionType> txns;
};

CasePack MakeEmpDept() {
  EmpDeptConfig config;
  config.num_depts = 8;
  config.emps_per_dept = 3;
  config.violation_fraction = 0.2;
  auto w = std::make_shared<EmpDeptWorkload>(config);
  auto tree = w->ProblemDeptTree();
  EXPECT_TRUE(tree.ok());
  return {"emp_dept", w,          &w->catalog(),
          *tree,      [w](Database* db) { return w->Populate(db); },
          {w->TxnModEmp(), w->TxnModDept()}};
}

CasePack MakeFig5() {
  Fig5Config config;
  config.num_items = 20;
  config.orders_per_item = 3;
  config.r_rows_per_item = 2;
  auto w = std::make_shared<Fig5Workload>(config);
  auto tree = w->ViewTree();
  EXPECT_TRUE(tree.ok());
  return {"fig5", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModS(), w->TxnModT(), w->TxnModR()}};
}

CasePack MakeStar() {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 60;
  config.dim_rows = 8;
  config.attr_values = 4;
  auto w = std::make_shared<StarWorkload>(config);
  auto tree = w->RollupTree();
  EXPECT_TRUE(tree.ok());
  return {"star", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModMeasure(), w->TxnModDimAttr(1), w->TxnInsertFact()}};
}

CasePack MakeChain() {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 40;
  config.fanout = 2;
  config.with_aggregate = true;
  auto w = std::make_shared<ChainWorkload>(config);
  auto tree = w->ChainViewTree();
  EXPECT_TRUE(tree.ok());
  return {"chain", w,          &w->catalog(),
          *tree,   [w](Database* db) { return w->Populate(db); },
          w->AllTxns()};
}

/// Everything observable about one run of a transaction stream.
struct RunTrace {
  /// Charged page I/O of each committed transaction.
  std::vector<int64_t> txn_ios;
  /// Full physical state after each commit.
  std::vector<std::map<std::string, std::string>> states;
  /// Fetch-cache totals across the run (schedule-independent by design:
  /// the fetch-request set is a pure function of the frozen pre-update
  /// state, so hit/miss counts match the sequential path exactly).
  int64_t fetch_hits = 0;
  int64_t fetch_misses = 0;
};

constexpr int kSteps = 12;

/// Replays `kSteps` generated transactions (round-robin over the declared
/// types, fixed seed) with the given worker count and records the trace.
void RunStream(const CasePack& pack, const Memo& memo, const ViewSet& views,
               int threads, RunTrace* out) {
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("maintain.fetch_cache_hits");
  obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("maintain.fetch_cache_misses");
  RunTrace& trace = *out;
  Database db;
  EXPECT_TRUE(pack.populate(&db).ok());
  MaintainOptions options;
  options.threads = threads;
  ViewManager mgr(&memo, pack.catalog, &db, options);
  EXPECT_TRUE(mgr.Materialize(views).ok());
  ViewSelector selector(&memo, pack.catalog);
  const int64_t hits_before = hits->value();
  const int64_t misses_before = misses->value();
  TxnGenerator gen(20260808);
  for (int step = 0; step < kSteps; ++step) {
    const TransactionType& type =
        pack.txns[static_cast<size_t>(step) % pack.txns.size()];
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    const int64_t ios_before = db.counter().total();
    Status applied = mgr.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok())
        << pack.name << " step " << step << ": " << applied.ToString();
    trace.txn_ios.push_back(db.counter().total() - ios_before);
    trace.states.push_back(FingerprintAll(db));
  }
  trace.fetch_hits = hits->value() - hits_before;
  trace.fetch_misses = misses->value() - misses_before;
  Status consistent = mgr.CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << pack.name << ": " << consistent.ToString();
}

void ExpectTracesIdentical(const CasePack& pack, const RunTrace& base,
                           const RunTrace& other, int threads) {
  SCOPED_TRACE(pack.name + " with " + std::to_string(threads) + " threads");
  ASSERT_EQ(other.txn_ios.size(), base.txn_ios.size());
  for (size_t i = 0; i < base.txn_ios.size(); ++i) {
    EXPECT_EQ(other.txn_ios[i], base.txn_ios[i])
        << "charged I/O diverged at step " << i;
    EXPECT_EQ(other.states[i], base.states[i])
        << "physical state diverged at step " << i;
  }
  EXPECT_EQ(other.fetch_hits, base.fetch_hits);
  EXPECT_EQ(other.fetch_misses, base.fetch_misses);
}

class ParallelPropagationTest
    : public ::testing::TestWithParam<std::function<CasePack()>> {};

TEST_P(ParallelPropagationTest, ThreadCountsAreBitIdentical) {
  const CasePack pack = GetParam()();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  RunTrace base;
  RunStream(pack, *memo, views, 1, &base);
  for (int threads : {2, 4, 8}) {
    RunTrace trace;
    RunStream(pack, *memo, views, threads, &trace);
    ExpectTracesIdentical(pack, base, trace, threads);
  }
}

TEST_P(ParallelPropagationTest, PartitionedKernelsAreBitIdentical) {
  const CasePack pack = GetParam()();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  // Unpartitioned sequential reference first, then a threshold so low that
  // every kernel call with >= 2 rows splits into 4 hash partitions — for
  // both the sequential and the parallel runs, the merged outputs must be
  // byte-identical to the unpartitioned reference.
  RunTrace base;
  RunStream(pack, *memo, views, 1, &base);
  ScopedPartitionConfig force_partitions(/*min_rows=*/2, /*count=*/4);
  for (int threads : {1, 4}) {
    RunTrace trace;
    RunStream(pack, *memo, views, threads, &trace);
    ExpectTracesIdentical(pack, base, trace, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ParallelPropagationTest,
    ::testing::Values(MakeEmpDept, MakeFig5, MakeStar, MakeChain),
    [](const ::testing::TestParamInfo<std::function<CasePack()>>& info) {
      return info.param().name;
    });

// An injected fault inside any worker task — swept across every task the
// transaction spawns — must abort the transaction with the failpoint's
// status and leave every table and index bit-identical to the
// pre-transaction state; re-running with the failpoint disarmed must then
// produce exactly the sequential result.
TEST(ParallelPropagationFailpointTest, PoolTaskFailRollsBackBitIdentical) {
  const CasePack pack = MakeChain();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);
  ViewSelector selector(&*memo, pack.catalog);
  const TransactionType& type = pack.txns[0];
  auto plan = selector.BestTrack(views, type);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // The sequential oracle: one committed transaction, threads = 1.
  std::map<std::string, std::string> expected;
  {
    Database db;
    ASSERT_TRUE(pack.populate(&db).ok());
    ViewManager mgr(&*memo, pack.catalog, &db);
    ASSERT_TRUE(mgr.Materialize(views).ok());
    TxnGenerator gen(20260808);
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    ASSERT_TRUE(mgr.ApplyTransaction(*txn, type, plan->track).ok());
    expected = FingerprintAll(db);
  }

  // The victim: 4 workers, partitioning forced on (so the sweep also walks
  // partition subtasks), the failpoint armed at every successive task hit.
  ScopedPartitionConfig force_partitions(/*min_rows=*/2, /*count=*/4);
  Database db;
  ASSERT_TRUE(pack.populate(&db).ok());
  MaintainOptions options;
  options.threads = 4;
  ViewManager mgr(&*memo, pack.catalog, &db, options);
  ASSERT_TRUE(mgr.Materialize(views).ok());
  const auto pristine = FingerprintAll(db);
  TxnGenerator gen(20260808);
  auto txn = gen.Generate(type, db);
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();

  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  int aborted = 0;
  bool committed = false;
  for (int nth = 1; nth <= 500; ++nth) {
    reg.ArmAfter("pool.task.fail", nth);
    Status st = mgr.ApplyTransaction(*txn, type, plan->track);
    reg.DisarmAll();
    if (st.ok()) {
      committed = true;
      break;
    }
    SCOPED_TRACE("task hit " + std::to_string(nth));
    EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
    EXPECT_NE(st.ToString().find("pool.task.fail"), std::string::npos)
        << st.ToString();
    EXPECT_EQ(FingerprintAll(db), pristine)
        << "aborted transaction left visible state behind";
    ++aborted;
  }
  ASSERT_TRUE(committed) << "failpoint sweep never ran off the task count";
  EXPECT_GT(aborted, 0) << "the sweep never reached a worker task";
  EXPECT_EQ(FingerprintAll(db), expected)
      << "post-sweep commit diverged from the sequential oracle";
  Status consistent = mgr.CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

// A longer mixed-type stream at 8 workers with partitioning forced on:
// nothing to assert beyond consistency — the value is the schedule space it
// exposes to ThreadSanitizer (the CI thread-sanitize job runs this test).
TEST(ParallelPropagationSoakTest, MultiThreadSoak) {
  const CasePack pack = MakeChain();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  ScopedPartitionConfig force_partitions(/*min_rows=*/2, /*count=*/4);
  Database db;
  ASSERT_TRUE(pack.populate(&db).ok());
  MaintainOptions options;
  options.threads = 8;
  ViewManager mgr(&*memo, pack.catalog, &db, options);
  ASSERT_TRUE(mgr.Materialize(views).ok());
  ViewSelector selector(&*memo, pack.catalog);
  TxnGenerator gen(20260808);
  for (int step = 0; step < 30; ++step) {
    const TransactionType& type =
        pack.txns[static_cast<size_t>(step) % pack.txns.size()];
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    Status applied = mgr.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok())
        << "step " << step << ": " << applied.ToString();
  }
  Status consistent = mgr.CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

}  // namespace
}  // namespace auxview
