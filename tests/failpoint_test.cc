// The atomic-apply proof harness: every registered failpoint, armed at every
// reachable hit depth, must abort the transaction with a clean Status and
// leave every table and index bit-identical to the pre-transaction state
// (verified by Table::Fingerprint and the recompute oracle).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/failpoint.h"
#include "storage/undo_log.h"

namespace auxview {
namespace {

/// Root for the per-session WAL directories, removed after the test run.
const std::string& WalTestRoot() {
  static const std::string root = [] {
    char tmpl[] = "/tmp/auxview_failpoint_wal_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    return std::string(dir != nullptr ? dir : "/tmp");
  }();
  return root;
}

class WalDirCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(WalTestRoot(), ec);
  }
};

const auto* const kWalDirCleanup =
    ::testing::AddGlobalTestEnvironment(new WalDirCleanup);

std::string FreshWalDir() {
  static int n = 0;
  return WalTestRoot() + "/s" + std::to_string(n++);
}

// ---------------------------------------------------------------------------
// Registry unit tests.

TEST(FailpointRegistryTest, CatalogIsPreRegistered) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  const std::vector<std::string> names = reg.Names();
  ASSERT_GE(names.size(), 11u);
  for (const char* expected :
       {"storage.table.apply", "storage.table.index_update",
        "storage.table.modify_batch", "storage.table.modify_pair",
        "maintain.compute_deltas", "maintain.fetch",
        "maintain.apply_view_delta", "maintain.apply_base",
        "wal.append.partial", "wal.fsync.fail", "wal.checkpoint.mid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const std::string& name : names) EXPECT_FALSE(reg.armed(name));
}

TEST(FailpointRegistryTest, DisarmedCheckIsInvisible) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  const int64_t hits = reg.hits("storage.table.apply");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(reg.Check("storage.table.apply").ok());
  }
  // The idle fast path doesn't even count hits.
  EXPECT_EQ(reg.hits("storage.table.apply"), hits);
}

TEST(FailpointRegistryTest, NthHitFiresOnceThenDisarms) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  reg.ArmAfter("storage.table.apply", 3);
  EXPECT_TRUE(reg.armed("storage.table.apply"));
  EXPECT_TRUE(reg.Check("storage.table.apply").ok());
  EXPECT_TRUE(reg.Check("storage.table.apply").ok());
  Status fired = reg.Check("storage.table.apply");
  EXPECT_EQ(fired.code(), StatusCode::kAborted);
  EXPECT_NE(fired.ToString().find("storage.table.apply"), std::string::npos);
  // One-shot: the point disarmed itself.
  EXPECT_FALSE(reg.armed("storage.table.apply"));
  EXPECT_TRUE(reg.Check("storage.table.apply").ok());
  EXPECT_GE(reg.triggers("storage.table.apply"), 1);
}

TEST(FailpointRegistryTest, ArmedPointDoesNotFireOtherPoints) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  reg.ArmAfter("maintain.fetch", 1);
  EXPECT_TRUE(reg.Check("storage.table.apply").ok());
  EXPECT_EQ(reg.Check("maintain.fetch").code(), StatusCode::kAborted);
  reg.DisarmAll();
}

TEST(FailpointRegistryTest, ProbabilityOneFiresEveryHitUntilDisarmed) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  reg.ArmProbability("maintain.fetch", 1.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(reg.Check("maintain.fetch").code(), StatusCode::kAborted);
  }
  EXPECT_TRUE(reg.armed("maintain.fetch"));  // probability mode stays armed
  reg.Disarm("maintain.fetch");
  EXPECT_TRUE(reg.Check("maintain.fetch").ok());
}

TEST(FailpointRegistryTest, SuspensionDisablesFiring) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  reg.ArmAfter("storage.table.apply", 1);
  {
    FailpointSuspension no_faults;
    EXPECT_TRUE(reg.Check("storage.table.apply").ok());
    {
      FailpointSuspension nested;
      EXPECT_TRUE(reg.Check("storage.table.apply").ok());
    }
    EXPECT_TRUE(reg.Check("storage.table.apply").ok());
  }
  EXPECT_EQ(reg.Check("storage.table.apply").code(), StatusCode::kAborted);
  reg.DisarmAll();
}

TEST(FailpointRegistryTest, LoadSpecParsesNamesCountsAndProbabilities) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  Status ok =
      reg.LoadSpec("storage.table.apply=3;maintain.fetch=p0.25,, ");
  // Trailing separators and empty entries are tolerated; " " is not.
  EXPECT_FALSE(ok.ok());
  reg.DisarmAll();
  ASSERT_TRUE(
      reg.LoadSpec("storage.table.apply=3;maintain.fetch=p0.25").ok());
  EXPECT_TRUE(reg.armed("storage.table.apply"));
  EXPECT_TRUE(reg.armed("maintain.fetch"));
  reg.DisarmAll();
  EXPECT_FALSE(reg.LoadSpec("no-equals-sign").ok());
  EXPECT_FALSE(reg.LoadSpec("name=").ok());
  EXPECT_FALSE(reg.LoadSpec("name=0").ok());
  EXPECT_FALSE(reg.LoadSpec("name=-2").ok());
  EXPECT_FALSE(reg.LoadSpec("name=p0").ok());
  EXPECT_FALSE(reg.LoadSpec("name=p1.5").ok());
  EXPECT_FALSE(reg.LoadSpec("name=3x").ok());
  reg.DisarmAll();
}

// ---------------------------------------------------------------------------
// Session-level harness.

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

std::unique_ptr<Session> MakeLoadedSession() {
  // Sessions run with a live WAL (per-commit fsync) so the sweep exercises
  // the wal.* failpoints alongside the in-memory commit path.
  SessionOptions options;
  options.durability.wal_dir = FreshWalDir();
  options.durability.wal_fsync = WalFsync::kCommit;
  auto session = std::make_unique<Session>(options);
  EXPECT_TRUE(session->Execute(kDdl).ok());
  for (int d = 0; d < 4; ++d) {
    const std::string dname = "d" + std::to_string(d);
    for (int k = 0; k < 3; ++k) {
      auto r = session->Execute(
          "INSERT INTO Emp VALUES ('" + dname + "e" + std::to_string(k) +
          "', '" + dname + "', " + std::to_string(1000 + 10 * k) + ");");
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    auto r = session->Execute("INSERT INTO Dept VALUES ('" + dname + "', 'm" +
                              std::to_string(d) + "', 5000);");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  session->DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
                            SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
  Status prepared = session->Prepare();
  EXPECT_TRUE(prepared.ok()) << prepared.ToString();
  return session;
}

/// Byte-exact physical state of every table (base relations and materialized
/// views), rows plus index buckets.
std::map<std::string, std::string> FingerprintAll(Session& session) {
  std::map<std::string, std::string> out;
  for (const std::string& name : session.db().TableNames()) {
    out[name] = session.db().FindTable(name)->Fingerprint();
  }
  return out;
}

// The exhaustive sweep: for every registered failpoint, for every statement
// shape (insert / update / delete), arm the point at hit depth 1, 2, 3, ...
// until one whole transaction runs without reaching it. Each armed run must
// either commit cleanly (point unreached) or abort with kAborted and a
// bit-identical database. This exercises every interleaving of "crash after
// the first k mutations" that the commit path can produce.
TEST(FailpointSweepTest, EveryFailpointAbortsAtomicallyAtEveryDepth) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  struct StatementShape {
    const char* setup;  // run unarmed before the armed statement ("" = none)
    const char* armed;  // the transaction under fault injection
    const char* undo;   // run unarmed after a commit to restore state
  };
  const std::vector<StatementShape> shapes = {
      {"", "INSERT INTO Emp VALUES ('fprobe', 'd0', 1);",
       "DELETE FROM Emp WHERE EName = 'fprobe';"},
      {"", "UPDATE Emp SET Salary = Salary + 1 WHERE DName = 'd1';",
       "UPDATE Emp SET Salary = Salary - 1 WHERE DName = 'd1';"},
      {"INSERT INTO Emp VALUES ('fprobe', 'd0', 1);",
       "DELETE FROM Emp WHERE EName = 'fprobe';", ""},
  };
  int aborted_runs = 0;
  for (const std::string& point : reg.Names()) {
    // Checkpointing does not run inside a DML statement; its crash window
    // has a dedicated test (WalFailpointTest.CheckpointMidFailure...).
    if (point.rfind("wal.checkpoint.", 0) == 0) continue;
    SCOPED_TRACE("failpoint: " + point);
    auto session = MakeLoadedSession();
    for (const StatementShape& shape : shapes) {
      SCOPED_TRACE(std::string("statement: ") + shape.armed);
      for (int64_t nth = 1;; ++nth) {
        ASSERT_LT(nth, 300) << "failpoint fired at every depth; runaway?";
        if (shape.setup[0] != '\0') {
          auto setup = session->Execute(shape.setup);
          ASSERT_TRUE(setup.ok()) << setup.status().ToString();
        }
        const auto before = FingerprintAll(*session);
        const int64_t triggers_before = reg.triggers(point);
        reg.ArmAfter(point, nth);
        auto result = session->Execute(shape.armed);
        const bool fired = reg.triggers(point) > triggers_before;
        reg.DisarmAll();
        if (fired) {
          ++aborted_runs;
          // A fired failpoint must surface as a clean abort naming it...
          ASSERT_FALSE(result.ok())
              << "failpoint fired but the transaction reported success";
          EXPECT_EQ(result.status().code(), StatusCode::kAborted)
              << result.status().ToString();
          EXPECT_NE(result.status().ToString().find(point),
                    std::string::npos);
          // ...with the database bit-identical: rows, counts, and indexes.
          EXPECT_EQ(FingerprintAll(*session), before);
          Status consistent = session->CheckConsistency();
          ASSERT_TRUE(consistent.ok()) << consistent.ToString();
          if (shape.setup[0] != '\0') {
            // The aborted statement left the setup row in place; remove it
            // so the next depth starts from the same state.
            auto cleanup =
                session->Execute("DELETE FROM Emp WHERE EName = 'fprobe';");
            ASSERT_TRUE(cleanup.ok()) << cleanup.status().ToString();
          }
          continue;  // next depth
        }
        // Point unreached at this depth: the statement must have committed
        // normally — fired-but-committed would be an atomicity hole.
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_FALSE(result->rejected());
        Status consistent = session->CheckConsistency();
        ASSERT_TRUE(consistent.ok()) << consistent.ToString();
        if (shape.undo[0] != '\0') {
          auto undo = session->Execute(shape.undo);
          ASSERT_TRUE(undo.ok()) << undo.status().ToString();
        }
        break;  // this point is exhausted for this statement shape
      }
    }
    // Every catalogued point must be reachable by at least one shape —
    // otherwise the sweep silently proves nothing about it.
    EXPECT_GT(reg.triggers(point), 0)
        << "failpoint never fired; is the site still threaded?";
  }
  EXPECT_GT(aborted_runs, 0);
}

// Paper Section 4 regression: an update that would violate the standing
// assertion is rejected with zero effect — detected against pre-update
// state, before a single row moves.
TEST(AssertionRollbackTest, Section4ViolationRejectedBitIdentical) {
  auto session = MakeLoadedSession();
  const auto before = FingerprintAll(*session);

  // Salary raise blows the d0 budget: SUM(Salary) 99999+1010+1020 > 5000.
  auto update =
      session->Execute("UPDATE Emp SET Salary = 99999 WHERE EName = 'd0e0';");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(update->rejected());
  EXPECT_EQ(update->violated_assertion, "DeptConstraint");
  EXPECT_EQ(update->affected, 0);
  EXPECT_EQ(FingerprintAll(*session), before);

  // Same for a violating INSERT and a budget cut.
  auto insert =
      session->Execute("INSERT INTO Emp VALUES ('rich', 'd1', 99999);");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_TRUE(insert->rejected());
  EXPECT_EQ(FingerprintAll(*session), before);
  auto cut = session->Execute("UPDATE Dept SET Budget = 10 WHERE DName = 'd2';");
  ASSERT_TRUE(cut.ok()) << cut.status().ToString();
  EXPECT_TRUE(cut->rejected());
  EXPECT_EQ(FingerprintAll(*session), before);

  Status consistent = session->CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
  auto checks = session->CheckAssertions();
  ASSERT_TRUE(checks.ok());
  for (const auto& check : *checks) EXPECT_TRUE(check.holds);

  // A legal version of the same update still goes through.
  auto legal =
      session->Execute("UPDATE Emp SET Salary = 1500 WHERE EName = 'd0e0';");
  ASSERT_TRUE(legal.ok()) << legal.status().ToString();
  EXPECT_FALSE(legal->rejected());
  EXPECT_EQ(legal->affected, 1);
  EXPECT_TRUE(session->CheckConsistency().ok());
}

// The crash-interleaving soak: a long alternating stream of committed,
// assertion-aborted, and fault-aborted transactions, with the recompute
// oracle run throughout. Any residue from an abort — a half-applied view
// delta, a stale index bucket — shows up as a later divergence.
TEST(FailpointSoakTest, AlternatingCommitAssertionAndFaultAborts) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  auto session = MakeLoadedSession();
  const std::vector<std::string> names = reg.Names();
  int committed = 0;
  int assertion_aborts = 0;
  int fault_aborts = 0;
  for (int i = 0; i < 60; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    switch (i % 3) {
      case 0: {  // a legal update commits
        auto r = session->Execute(
            "UPDATE Emp SET Salary = Salary + 1 WHERE DName = 'd" +
            std::to_string(i % 4) + "';");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ASSERT_FALSE(r->rejected());
        ++committed;
        break;
      }
      case 1: {  // an assertion-violating update is rejected with no effect
        const auto before = FingerprintAll(*session);
        auto r = session->Execute(
            "UPDATE Emp SET Salary = 99999 WHERE EName = 'd1e0';");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_TRUE(r->rejected());
        EXPECT_EQ(r->violated_assertion, "DeptConstraint");
        ASSERT_EQ(FingerprintAll(*session), before);
        ++assertion_aborts;
        break;
      }
      case 2: {  // a fault mid-commit rolls back with no effect
        const std::string& point = names[(i / 3) % names.size()];
        const auto before = FingerprintAll(*session);
        const int64_t triggers_before = reg.triggers(point);
        reg.ArmAfter(point, 1 + (i % 4));
        auto r = session->Execute(
            "UPDATE Emp SET Salary = Salary + 2 WHERE EName = 'd2e1';");
        const bool fired = reg.triggers(point) > triggers_before;
        reg.DisarmAll();
        if (fired) {
          ASSERT_FALSE(r.ok());
          EXPECT_EQ(r.status().code(), StatusCode::kAborted);
          ASSERT_EQ(FingerprintAll(*session), before);
          ++fault_aborts;
        } else {
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ++committed;
        }
        break;
      }
    }
    if (i % 10 == 9) {
      Status consistent = session->CheckConsistency();
      ASSERT_TRUE(consistent.ok()) << consistent.ToString();
      auto checks = session->CheckAssertions();
      ASSERT_TRUE(checks.ok());
      for (const auto& check : *checks) EXPECT_TRUE(check.holds);
    }
  }
  EXPECT_GT(committed, 0);
  EXPECT_GT(assertion_aborts, 0);
  EXPECT_GT(fault_aborts, 0);
  Status consistent = session->CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

// The checkpoint protocol's crash window: a failure between writing
// checkpoint.tmp and the publishing rename must leave the previous
// checkpoint authoritative and the session fully usable.
TEST(WalFailpointTest, CheckpointMidFailureIsInvisibleAndRetryable) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  auto session = MakeLoadedSession();
  auto r = session->Execute(
      "UPDATE Emp SET Salary = Salary + 5 WHERE EName = 'd0e0';");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto before = FingerprintAll(*session);
  const int64_t triggers_before = reg.triggers("wal.checkpoint.mid");
  reg.ArmAfter("wal.checkpoint.mid", 1);
  Status ckpt = session->Checkpoint();
  reg.DisarmAll();
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.code(), StatusCode::kAborted);
  EXPECT_GT(reg.triggers("wal.checkpoint.mid"), triggers_before);
  // The failed checkpoint is invisible: no state change, and a retry lands.
  EXPECT_EQ(FingerprintAll(*session), before);
  EXPECT_TRUE(session->CheckConsistency().ok());
  Status retry = session->Checkpoint();
  EXPECT_TRUE(retry.ok()) << retry.ToString();
}

// Satellite of the durable-log work: group-level rollback of optimizer
// state. Statistics refreshed *before* an armed transaction are part of the
// rollback baseline and survive its abort...
TEST(OptimizerStateRollbackTest, PreTransactionRefreshSurvivesAbort) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  auto session = MakeLoadedSession();
  // Refresh stats between Prepare and the armed commit failpoint.
  RelationStats fresh;
  fresh.row_count = 123;
  ASSERT_TRUE(session->catalog().SetStats("Emp", fresh).ok());
  const uint64_t epoch = session->catalog().stats_epoch();
  reg.ArmAfter("maintain.apply_base", 1);
  auto r = session->Execute(
      "UPDATE Emp SET Salary = Salary + 1 WHERE EName = 'd0e0';");
  reg.DisarmAll();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_EQ(session->catalog().FindTable("Emp")->stats.row_count, 123);
  EXPECT_EQ(session->catalog().stats_epoch(), epoch);
}

// ...while statistics refreshed *inside* the transaction roll back with it,
// epoch included, so cached track costs cannot survive on poisoned inputs.
TEST(OptimizerStateRollbackTest, MidTransactionRefreshRollsBack) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  auto session = MakeLoadedSession();
  Catalog& catalog = session->catalog();
  const uint64_t epoch_before = catalog.stats_epoch();
  const double rows_before = catalog.FindTable("Emp")->stats.row_count;
  UndoLog undo;
  Status faulted;
  {
    ScopedUndo scope(&session->db(), &undo, &catalog);
    RelationStats refreshed;
    refreshed.row_count = 9999;
    ASSERT_TRUE(catalog.SetStats("Emp", refreshed).ok());
    EXPECT_NE(catalog.stats_epoch(), epoch_before);
    reg.ArmAfter("storage.table.apply", 1);
    faulted = session->db().FindTable("Emp")->Insert(
        {Value::String("probe"), Value::String("d0"), Value::Int64(1)});
    reg.DisarmAll();
  }
  ASSERT_FALSE(faulted.ok());
  ASSERT_TRUE(undo.RollBack().ok());
  EXPECT_EQ(catalog.stats_epoch(), epoch_before);
  EXPECT_EQ(catalog.FindTable("Emp")->stats.row_count, rows_before);
}

// Pre-Prepare bulk loads are atomic too: a multi-row INSERT faulted after
// its first row leaves nothing applied.
TEST(ApplyDirectTest, FaultedLoadStatementRollsBack) {
  Session session;
  ASSERT_TRUE(session.Execute("CREATE TABLE T (x INT PRIMARY KEY);").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO T VALUES (1), (2);").ok());
  const std::string before = session.db().FindTable("T")->Fingerprint();
  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  // The second Apply faults: row 10 is already in, row 11 is not — the
  // rollback must take row 10 back out.
  reg.ArmAfter("storage.table.apply", 2);
  auto faulted = session.Execute("INSERT INTO T VALUES (10), (11), (12);");
  reg.DisarmAll();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kAborted);
  EXPECT_EQ(session.db().FindTable("T")->Fingerprint(), before);
  // Unarmed, the same statement lands whole.
  ASSERT_TRUE(session.Execute("INSERT INTO T VALUES (10), (11), (12);").ok());
  EXPECT_EQ(session.db().FindTable("T")->CountOf({Value::Int64(11)}), 1);
}

}  // namespace
}  // namespace auxview
