#include "parser/binder.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

constexpr char kDdl[] = R"(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
)";

constexpr char kProblemDept[] = R"(
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUPBY Dept.DName, Budget
HAVING SUM(Salary) > Budget;
)";

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    binder_ = std::make_unique<Binder>(&catalog_);
    ASSERT_TRUE(binder_->Run(kDdl).ok());
  }
  Catalog catalog_;
  std::unique_ptr<Binder> binder_;
};

TEST_F(BinderTest, CreateTableRegistersInCatalog) {
  const TableDef* emp = catalog_.FindTable("Emp");
  ASSERT_NE(emp, nullptr);
  EXPECT_EQ(emp->primary_key, std::vector<std::string>{"EName"});
  ASSERT_EQ(emp->indexes.size(), 1u);
  EXPECT_EQ(emp->indexes[0].attrs, std::vector<std::string>{"DName"});
  EXPECT_EQ(emp->schema.ToString(),
            "EName:STRING, DName:STRING, Salary:INT64");
}

TEST_F(BinderTest, ProblemDeptBindsToPaperTree) {
  Status st = binder_->Run(kProblemDept);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(binder_->views().size(), 1u);
  const Expr::Ptr& view = binder_->views()[0].expr;
  // Project(DName) over Select(HAVING) over Aggregate over Join.
  ASSERT_EQ(view->kind(), OpKind::kProject);
  EXPECT_EQ(view->output_schema().ToString(), "DName:STRING");
  const Expr::Ptr& select = view->child(0);
  ASSERT_EQ(select->kind(), OpKind::kSelect);
  const Expr::Ptr& agg = select->child(0);
  ASSERT_EQ(agg->kind(), OpKind::kAggregate);
  EXPECT_EQ(agg->group_by(), (std::vector<std::string>{"DName", "Budget"}));
  const Expr::Ptr& join = agg->child(0);
  ASSERT_EQ(join->kind(), OpKind::kJoin);
  EXPECT_EQ(join->join_attrs(), std::vector<std::string>{"DName"});
}

TEST_F(BinderTest, AssertionBindsInnerQuery) {
  ASSERT_TRUE(binder_->Run(kProblemDept).ok());
  Status st = binder_->Run(
      "CREATE ASSERTION DeptConstraint CHECK "
      "(NOT EXISTS (SELECT * FROM ProblemDept));");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(binder_->assertions().size(), 1u);
  EXPECT_EQ(binder_->assertions()[0].name, "DeptConstraint");
  // The view definition is inlined.
  EXPECT_EQ(binder_->assertions()[0].expr->output_schema().ToString(),
            "DName:STRING");
}

TEST_F(BinderTest, ViewRenameListNamesAggregates) {
  Status st = binder_->Run(
      "CREATE VIEW SumOfSals (DName, SalSum) AS "
      "SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;");
  ASSERT_TRUE(st.ok()) << st.ToString();
  const Expr::Ptr& view = *binder_->FindView("SumOfSals");
  // No projection needed: the aggregate output already matches.
  ASSERT_EQ(view->kind(), OpKind::kAggregate);
  EXPECT_EQ(view->output_schema().ToString(), "DName:STRING, SalSum:INT64");
}

TEST_F(BinderTest, ResidualPredicatesBecomeSelect) {
  auto q = ParseSelect(
      "SELECT EName FROM Emp, Dept "
      "WHERE Emp.DName = Dept.DName AND Salary > 50000");
  ASSERT_TRUE(q.ok());
  auto bound = binder_->BindSelect(*q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // Project over Select over Join.
  ASSERT_EQ((*bound)->kind(), OpKind::kProject);
  EXPECT_EQ((*bound)->child(0)->kind(), OpKind::kSelect);
  EXPECT_EQ((*bound)->child(0)->child(0)->kind(), OpKind::kJoin);
}

TEST_F(BinderTest, SelectStarSkipsProjection) {
  auto q = ParseSelect("SELECT * FROM Dept");
  ASSERT_TRUE(q.ok());
  auto bound = binder_->BindSelect(*q);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->kind(), OpKind::kScan);
}

TEST_F(BinderTest, DistinctAddsDupElim) {
  auto q = ParseSelect("SELECT DISTINCT DName FROM Emp");
  ASSERT_TRUE(q.ok());
  auto bound = binder_->BindSelect(*q);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->kind(), OpKind::kDupElim);
  EXPECT_EQ((*bound)->child(0)->kind(), OpKind::kProject);
}

TEST_F(BinderTest, RejectsCrossProducts) {
  auto q = ParseSelect("SELECT EName FROM Emp, Dept");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(binder_->BindSelect(*q).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(BinderTest, RejectsUnknownColumnsAndTables) {
  auto q1 = ParseSelect("SELECT Nope FROM Emp");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(binder_->BindSelect(*q1).ok());
  auto q2 = ParseSelect("SELECT x FROM NoSuchTable");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(binder_->BindSelect(*q2).status().code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, QualifiedColumnValidation) {
  auto q = ParseSelect("SELECT Dept.Salary FROM Emp, Dept "
                       "WHERE Emp.DName = Dept.DName");
  ASSERT_TRUE(q.ok());
  // Salary belongs to Emp, not Dept.
  EXPECT_FALSE(binder_->BindSelect(*q).ok());
}

TEST_F(BinderTest, ViewUsableInJoins) {
  // A bound view can appear in FROM joined against a base relation; its
  // definition is inlined.
  ASSERT_TRUE(binder_->Run(
      "CREATE VIEW SumOfSals (DName, SalSum) AS "
      "SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;").ok());
  auto q = ParseSelect(
      "SELECT Dept.DName, SalSum, Budget FROM SumOfSals, Dept "
      "WHERE SumOfSals.DName = Dept.DName");
  ASSERT_TRUE(q.ok());
  auto bound = binder_->BindSelect(*q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->BaseRelations(),
            (std::set<std::string>{"Emp", "Dept"}));
  EXPECT_EQ((*bound)->output_schema().ToString(),
            "DName:STRING, SalSum:INT64, Budget:INT64");
}

TEST_F(BinderTest, ViewOverView) {
  ASSERT_TRUE(binder_->Run(
      "CREATE VIEW SumOfSals (DName, SalSum) AS "
      "SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;").ok());
  Status st = binder_->Run(
      "CREATE VIEW BigDepts (DName) AS "
      "SELECT DName FROM SumOfSals WHERE SalSum > 100000;");
  ASSERT_TRUE(st.ok()) << st.ToString();
  const Expr::Ptr& view = *binder_->FindView("BigDepts");
  EXPECT_EQ(view->output_schema().ToString(), "DName:STRING");
  EXPECT_EQ(view->BaseRelations(), std::set<std::string>{"Emp"});
}

TEST_F(BinderTest, ThreeWayJoinOrder) {
  ASSERT_TRUE(binder_->Run("CREATE TABLE ADepts (DName STRING PRIMARY KEY);")
                  .ok());
  auto q = ParseSelect(
      "SELECT Dept.DName, Budget, SUM(Salary) FROM Emp, Dept, ADepts "
      "WHERE Dept.DName = Emp.DName AND Emp.DName = ADepts.DName "
      "GROUPBY Dept.DName, Budget");
  ASSERT_TRUE(q.ok());
  auto bound = binder_->BindSelect(*q);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->BaseRelations(),
            (std::set<std::string>{"Emp", "Dept", "ADepts"}));
}

}  // namespace
}  // namespace auxview
