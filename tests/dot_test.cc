#include "memo/dot.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "memo/expand.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

TEST(DotTest, RendersGroupsOpsAndMarking) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  GroupId marked = -1;
  for (GroupId g : memo->NonLeafGroups()) {
    if (g != memo->root()) marked = g;
  }
  const std::string dot = MemoToDot(*memo, {marked});
  EXPECT_EQ(dot.rfind("digraph memo {", 0), 0u);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);  // root highlighted
  EXPECT_NE(dot.find("Emp"), std::string::npos);
  EXPECT_NE(dot.find("Join (DName)"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(DotTest, EscapesQuotes) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  ExprBuilder b(&workload.catalog());
  auto tree = b.Select(b.Scan("Emp"), Scalar::Eq(Col("DName"), Lit("d'x")));
  ASSERT_TRUE(b.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(tree).ok());
  const std::string dot = MemoToDot(memo);
  // The single quote inside the literal is fine; no raw double quotes leak
  // into labels unescaped.
  EXPECT_EQ(dot.find("label=\"Select ((DName = 'd'x'))\""),
            dot.find("label=\"Select"));
}

}  // namespace
}  // namespace auxview
