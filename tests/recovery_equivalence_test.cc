// Recovery equivalence across every workload and every wal.* crash point:
// a run that crashes mid-commit (or mid-checkpoint), recovers from the
// durable log, and finishes the transaction stream must land bit-identical —
// every base table, every materialized view, every index bucket — to an
// uninterrupted oracle run of the same stream.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"

namespace auxview {
namespace {

const std::string& TestRoot() {
  static const std::string root = [] {
    char tmpl[] = "/tmp/auxview_recovery_eq_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    return std::string(dir != nullptr ? dir : "/tmp");
  }();
  return root;
}

class TestRootCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(TestRoot(), ec);
  }
};

const auto* const kCleanup =
    ::testing::AddGlobalTestEnvironment(new TestRootCleanup);

std::string FreshDir() {
  static int n = 0;
  return TestRoot() + "/d" + std::to_string(n++);
}

std::map<std::string, std::string> FingerprintAll(Database& db) {
  std::map<std::string, std::string> out;
  for (const std::string& name : db.TableNames()) {
    out[name] = db.FindTable(name)->Fingerprint();
  }
  return out;
}

/// One workload packaged behind a uniform interface: its catalog, view
/// tree, populate function and transaction mix. `owner` keeps the workload
/// object (which the catalog pointer aliases) alive.
struct CasePack {
  std::string name;
  std::shared_ptr<void> owner;
  const Catalog* catalog = nullptr;
  Expr::Ptr tree;
  std::function<Status(Database*)> populate;
  std::vector<TransactionType> txns;
};

CasePack MakeEmpDept() {
  EmpDeptConfig config;
  config.num_depts = 8;
  config.emps_per_dept = 3;
  config.violation_fraction = 0.2;
  auto w = std::make_shared<EmpDeptWorkload>(config);
  auto tree = w->ProblemDeptTree();
  EXPECT_TRUE(tree.ok());
  return {"emp_dept", w,          &w->catalog(),
          *tree,      [w](Database* db) { return w->Populate(db); },
          {w->TxnModEmp(), w->TxnModDept()}};
}

CasePack MakeFig5() {
  Fig5Config config;
  config.num_items = 20;
  config.orders_per_item = 3;
  config.r_rows_per_item = 2;
  auto w = std::make_shared<Fig5Workload>(config);
  auto tree = w->ViewTree();
  EXPECT_TRUE(tree.ok());
  return {"fig5", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModS(), w->TxnModT(), w->TxnModR()}};
}

CasePack MakeStar() {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 60;
  config.dim_rows = 8;
  config.attr_values = 4;
  auto w = std::make_shared<StarWorkload>(config);
  auto tree = w->RollupTree();
  EXPECT_TRUE(tree.ok());
  return {"star", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModMeasure(), w->TxnModDimAttr(1), w->TxnInsertFact()}};
}

CasePack MakeChain() {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 40;
  config.fanout = 2;
  config.with_aggregate = true;
  auto w = std::make_shared<ChainWorkload>(config);
  auto tree = w->ChainViewTree();
  EXPECT_TRUE(tree.ok());
  return {"chain", w,          &w->catalog(),
          *tree,   [w](Database* db) { return w->Populate(db); },
          w->AllTxns()};
}

constexpr const char* kCrashPoints[] = {
    "wal.append.partial",
    "wal.fsync.fail",
    "wal.checkpoint.mid",
};

constexpr int kSteps = 8;
constexpr size_t kCrashAt = 4;  // the step whose commit/checkpoint crashes

class RecoveryEquivalenceTest : public ::testing::TestWithParam<
                                    std::function<CasePack()>> {};

TEST_P(RecoveryEquivalenceTest, CrashAtEveryWalPointLandsOnOracleState) {
  FailpointRegistry::Global().DisarmAll();
  const CasePack pack = GetParam()();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);
  ViewSelector selector(&*memo, pack.catalog);

  // --- The uninterrupted oracle: record the concrete transaction stream
  // (each instance generated against the evolving database, so the stream
  // replays verbatim on any equal-state mirror) and the final fingerprints.
  Database oracle;
  ASSERT_TRUE(pack.populate(&oracle).ok());
  ViewManager oracle_mgr(&*memo, pack.catalog, &oracle);
  ASSERT_TRUE(oracle_mgr.Materialize(views).ok());

  TxnGenerator gen(20260808);
  std::vector<ConcreteTxn> stream;
  std::vector<TransactionType> types;
  std::vector<UpdateTrack> tracks;
  for (int step = 0; step < kSteps; ++step) {
    const TransactionType& type =
        pack.txns[static_cast<size_t>(step) % pack.txns.size()];
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto txn = gen.Generate(type, oracle);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    Status applied = oracle_mgr.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok()) << "step " << step << ": " << applied.ToString();
    stream.push_back(*txn);
    types.push_back(type);
    tracks.push_back(plan->track);
  }
  const auto expected = FingerprintAll(oracle);

  for (const char* point : kCrashPoints) {
    SCOPED_TRACE(std::string("crash point: ") + point);
    const bool checkpoint_crash =
        std::string(point).rfind("wal.checkpoint.", 0) == 0;
    const std::string dir = FreshDir();

    // --- The victim: same stream, WAL attached, crash at kCrashAt.
    {
      Database db;
      ASSERT_TRUE(
          db.OpenWal(DatabaseOptions{dir, WalFsync::kCommit, 0}).ok());
      ASSERT_TRUE(pack.populate(&db).ok());
      ViewManager mgr(&*memo, pack.catalog, &db);
      ASSERT_TRUE(mgr.Materialize(views).ok());
      // The initial checkpoint covers the bulk load (which bypasses the
      // commit path and is not logged).
      ASSERT_TRUE(
          db.wal()->WriteCheckpoint(BuildCheckpointImage(db, nullptr)).ok());

      const size_t before_crash = checkpoint_crash ? kCrashAt + 1 : kCrashAt;
      for (size_t i = 0; i < before_crash; ++i) {
        ASSERT_TRUE(mgr.ApplyTransaction(stream[i], types[i], tracks[i]).ok());
      }
      FailpointRegistry::Global().ArmAfter(point, 1);
      Status crashed =
          checkpoint_crash
              ? db.wal()->WriteCheckpoint(BuildCheckpointImage(db, nullptr))
              : mgr.ApplyTransaction(stream[kCrashAt], types[kCrashAt],
                                     tracks[kCrashAt]);
      FailpointRegistry::Global().DisarmAll();
      ASSERT_FALSE(crashed.ok());
      EXPECT_EQ(crashed.code(), StatusCode::kAborted);
      EXPECT_NE(crashed.ToString().find(point), std::string::npos)
          << crashed.ToString();
    }  // the process dies here; only the wal directory survives

    // --- Recovery: load the checkpoint, re-derive the views through the
    // DeltaEngine, replay the staged suffix, then finish the stream.
    Database db;
    ASSERT_TRUE(db.OpenWal(DatabaseOptions{dir, WalFsync::kCommit, 0}).ok());
    WalRecovery rec;
    ASSERT_TRUE(db.Recover(&rec).ok());
    ASSERT_TRUE(rec.has_checkpoint);
    if (std::string(point) == "wal.append.partial") {
      // The torn half-frame was found and discarded by the opening scan.
      EXPECT_GT(rec.truncated_tail_bytes, 0);
    }
    const size_t committed = checkpoint_crash ? kCrashAt + 1 : kCrashAt;
    ASSERT_EQ(rec.txns.size(), committed);
    ViewManager mgr(&*memo, pack.catalog, &db);
    {
      WalReplayGuard guard(db.wal());
      ASSERT_TRUE(mgr.Materialize(views).ok());
      for (size_t i = 0; i < rec.txns.size(); ++i) {
        ASSERT_EQ(rec.txns[i].txn.type_name, types[i].name);
        ASSERT_TRUE(
            mgr.ApplyTransaction(rec.txns[i].txn, types[i], tracks[i]).ok());
      }
    }
    // The crashed transaction never committed (append/fsync crashes), so the
    // resumed stream re-runs it; a crashed checkpoint loses nothing.
    for (size_t i = committed; i < stream.size(); ++i) {
      ASSERT_TRUE(mgr.ApplyTransaction(stream[i], types[i], tracks[i]).ok());
    }

    EXPECT_EQ(FingerprintAll(db), expected);
    Status consistent = mgr.CheckConsistency();
    EXPECT_TRUE(consistent.ok()) << consistent.ToString();
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::function<CasePack()>>& info) {
  static const char* const kNames[] = {"emp_dept", "fig5", "star", "chain"};
  return kNames[info.index];
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RecoveryEquivalenceTest,
    ::testing::Values(&MakeEmpDept, &MakeFig5, &MakeStar, &MakeChain),
    CaseName);

}  // namespace
}  // namespace auxview
