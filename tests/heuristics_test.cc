#include <gtest/gtest.h>

#include "optimizer/select_views.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class HeuristicsTest : public ::testing::Test {
 protected:
  EmpDeptWorkload workload_{EmpDeptConfig{}};
  std::vector<TransactionType> Txns() {
    return {workload_.TxnModEmp(), workload_.TxnModDept()};
  }
};

TEST_F(HeuristicsTest, SingleTreeNeverBeatsExhaustive) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto exhaustive = SelectViews(*tree, workload_.catalog(), Txns(),
                                Strategy::kExhaustive);
  auto single = SelectViews(*tree, workload_.catalog(), Txns(),
                            Strategy::kSingleTree);
  ASSERT_TRUE(exhaustive.ok() && single.ok())
      << single.status().ToString();
  EXPECT_GE(single->result.weighted_cost + 1e-9,
            exhaustive->result.weighted_cost);
  // The single tree considers fewer view sets.
  EXPECT_LE(single->result.viewsets_costed,
            exhaustive->result.viewsets_costed);
}

TEST_F(HeuristicsTest, HeuristicMarkingConsidersTwoViewSets) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto marking = SelectViews(*tree, workload_.catalog(), Txns(),
                             Strategy::kHeuristicMarking);
  ASSERT_TRUE(marking.ok()) << marking.status().ToString();
  // Marking considers exactly two view sets (the marking and the empty
  // set, both on one expression tree) and returns the cheaper; the paper
  // itself warns that a poor tree choice can make the result poor, so the
  // only guarantees are the count and the exhaustive lower bound.
  EXPECT_EQ(marking->result.viewsets_costed, 2);
  auto exhaustive = SelectViews(*tree, workload_.catalog(), Txns(),
                                Strategy::kExhaustive);
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_GE(marking->result.weighted_cost + 1e-9,
            exhaustive->result.weighted_cost);
}

TEST_F(HeuristicsTest, HeuristicMarkingWinsOnFavorableTree) {
  // Built from the Figure 1 left tree, the marking includes the SumOfSals
  // aggregate group, and the heuristic lands on the paper's optimum cost.
  auto tree = workload_.ProblemDeptLeftTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());  // single tree: no expansion
  ViewSelector selector(&memo, &workload_.catalog());
  auto marking = selector.HeuristicMarking(Txns());
  ASSERT_TRUE(marking.ok()) << marking.status().ToString();
  EXPECT_GT(marking->views.size(), 1u);
  EXPECT_LE(marking->weighted_cost, 7);
}

TEST_F(HeuristicsTest, GreedyFindsPaperOptimumOnProblemDept) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto greedy = SelectViews(*tree, workload_.catalog(), Txns(),
                            Strategy::kGreedy);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  // Greedy with local tracks still finds {N3} here.
  EXPECT_DOUBLE_EQ(greedy->result.weighted_cost, 3.5);
}

TEST_F(HeuristicsTest, AllStrategiesOrderedByCost) {
  // On chain joins: exhaustive <= greedy/single-tree/marking (heuristics
  // never beat the exhaustive optimum under the same cost model).
  ChainConfig config;
  config.num_relations = 4;
  config.with_aggregate = true;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  const auto txns = workload.AllTxns({5, 1, 1, 1});
  auto exhaustive = SelectViews(*tree, workload.catalog(), txns,
                                Strategy::kExhaustive);
  ASSERT_TRUE(exhaustive.ok()) << exhaustive.status().ToString();
  for (Strategy s : {Strategy::kSingleTree, Strategy::kHeuristicMarking,
                     Strategy::kGreedy}) {
    auto h = SelectViews(*tree, workload.catalog(), txns, s);
    ASSERT_TRUE(h.ok()) << StrategyName(s) << ": " << h.status().ToString();
    EXPECT_GE(h->result.weighted_cost + 1e-9,
              exhaustive->result.weighted_cost)
        << StrategyName(s);
  }
}

TEST_F(HeuristicsTest, GreedyScalesWhereExhaustiveCannot) {
  ChainConfig config;
  config.num_relations = 6;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  OptimizeOptions options;
  options.max_candidates = 10;  // exhaustive would refuse
  auto exhaustive = SelectViews(*tree, workload.catalog(),
                                workload.AllTxns(), Strategy::kExhaustive,
                                options);
  EXPECT_FALSE(exhaustive.ok());
  auto greedy = SelectViews(*tree, workload.catalog(), workload.AllTxns(),
                            Strategy::kGreedy, options);
  EXPECT_TRUE(greedy.ok()) << greedy.status().ToString();
}

}  // namespace
}  // namespace auxview
