#include "algebra/expr.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  EmpDeptWorkload workload_{EmpDeptConfig{}};
  ExprBuilder b_{&workload_.catalog()};
};

TEST_F(ExprTest, ScanSchema) {
  Expr::Ptr scan = b_.Scan("Emp");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->kind(), OpKind::kScan);
  EXPECT_EQ(scan->output_schema().ToString(),
            "EName:STRING, DName:STRING, Salary:INT64");
  EXPECT_EQ(b_.Scan("Nope"), nullptr);
  EXPECT_FALSE(b_.ok());
}

TEST_F(ExprTest, JoinMergesSharedColumns) {
  Expr::Ptr join = b_.Join(b_.Scan("Emp"), b_.Scan("Dept"), {"DName"});
  ASSERT_NE(join, nullptr);
  // Natural-join style: DName appears once.
  EXPECT_EQ(join->output_schema().ToString(),
            "EName:STRING, DName:STRING, Salary:INT64, MName:STRING, "
            "Budget:INT64");
}

TEST_F(ExprTest, JoinRejectsUnmergedSharedColumns) {
  // Joining Emp with Emp on Salary would leave EName/DName duplicated.
  auto bad = Expr::Join(b_.Scan("Emp"), b_.Scan("Emp"), {"Salary"});
  EXPECT_FALSE(bad.ok());
}

TEST_F(ExprTest, JoinRequiresAttrInBothInputs) {
  auto bad = Expr::Join(b_.Scan("Emp"), b_.Scan("Dept"), {"Salary"});
  EXPECT_FALSE(bad.ok());
}

TEST_F(ExprTest, AggregateSchema) {
  Expr::Ptr agg = b_.Aggregate(b_.Scan("Emp"), {"DName"},
                               {{AggFunc::kSum, Col("Salary"), "SalSum"},
                                {AggFunc::kCount, nullptr, "N"},
                                {AggFunc::kAvg, Col("Salary"), "AvgSal"}});
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->output_schema().ToString(),
            "DName:STRING, SalSum:INT64, N:INT64, AvgSal:DOUBLE");
}

TEST_F(ExprTest, SelectValidatesColumns) {
  auto bad = Expr::Select(b_.Scan("Emp"), Col("Budget"));
  EXPECT_FALSE(bad.ok());
  auto good = Expr::Select(b_.Scan("Emp"),
                           Scalar::Gt(Col("Salary"), Lit(int64_t{0})));
  EXPECT_TRUE(good.ok());
}

TEST_F(ExprTest, ProjectComputesTypes) {
  auto proj = Expr::Project(
      b_.Scan("Emp"),
      {{Scalar::Mul(Col("Salary"), Lit(int64_t{2})), "Double"},
       {Col("DName"), "DName"}});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ((*proj)->output_schema().ToString(),
            "Double:INT64, DName:STRING");
}

TEST_F(ExprTest, WithChildrenRebuilds) {
  Expr::Ptr join = b_.Join(b_.Scan("Emp"), b_.Scan("Dept"), {"DName"});
  auto swapped = join->WithChildren({join->child(1), join->child(0)});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ((*swapped)->kind(), OpKind::kJoin);
  // Column order changes but the column set is preserved.
  EXPECT_EQ((*swapped)->output_schema().num_columns(), 5);
  EXPECT_FALSE(join->WithChildren({join->child(0)}).ok());
}

TEST_F(ExprTest, SignaturesAndPrinting) {
  EmpDeptWorkload w2{EmpDeptConfig{}};
  auto t1 = workload_.ProblemDeptTree();
  auto t2 = w2.ProblemDeptTree();
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ((*t1)->TreeSignature(), (*t2)->TreeSignature());
  auto left = workload_.ProblemDeptLeftTree();
  ASSERT_TRUE(left.ok());
  EXPECT_NE((*t1)->TreeSignature(), (*left)->TreeSignature());
  // Figure 1 style rendering.
  EXPECT_EQ((*t1)->TreeToString(),
            "Select ((SumSal > Budget))\n"
            "  Aggregate (SUM(Salary) AS SumSal BY DName, Budget)\n"
            "    Join (DName)\n"
            "      Emp\n"
            "      Dept\n");
}

TEST_F(ExprTest, BaseRelations) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  std::set<std::string> expected = {"Emp", "Dept"};
  EXPECT_EQ((*tree)->BaseRelations(), expected);
}

TEST_F(ExprTest, DupElimKeepsSchema) {
  auto de = Expr::DupElim(b_.Scan("Dept"));
  ASSERT_TRUE(de.ok());
  EXPECT_EQ((*de)->output_schema(), b_.Scan("Dept")->output_schema());
}

TEST_F(ExprTest, JoinAttrsCanonicallySorted) {
  TableDef a;
  a.name = "A";
  a.schema = Schema::Create({{"x", ValueType::kInt64},
                             {"y", ValueType::kInt64},
                             {"u", ValueType::kInt64}})
                 .value();
  TableDef b;
  b.name = "B";
  b.schema = Schema::Create({{"x", ValueType::kInt64},
                             {"y", ValueType::kInt64},
                             {"w", ValueType::kInt64}})
                 .value();
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(a).ok());
  ASSERT_TRUE(catalog.AddTable(b).ok());
  ExprBuilder eb(&catalog);
  Expr::Ptr j1 = eb.Join(eb.Scan("A"), eb.Scan("B"), {"y", "x"});
  Expr::Ptr j2 = eb.Join(eb.Scan("A"), eb.Scan("B"), {"x", "y"});
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(j1->LocalSignature(), j2->LocalSignature());
}

}  // namespace
}  // namespace auxview
