#include <gtest/gtest.h>

#include "optimizer/select_views.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"
#include "workload/fig5.h"

namespace auxview {
namespace {

void ExpectSameOptimum(const Expr::Ptr& tree, const Catalog& catalog,
                       const std::vector<TransactionType>& txns) {
  auto exhaustive =
      SelectViews(tree, catalog, txns, Strategy::kExhaustive);
  ASSERT_TRUE(exhaustive.ok()) << exhaustive.status().ToString();
  auto shielding = SelectViews(tree, catalog, txns, Strategy::kShielding);
  ASSERT_TRUE(shielding.ok()) << shielding.status().ToString();
  EXPECT_DOUBLE_EQ(shielding->result.weighted_cost,
                   exhaustive->result.weighted_cost)
      << "exhaustive " << ViewSetToString(exhaustive->result.views)
      << " vs shielding " << ViewSetToString(shielding->result.views);
}

TEST(ShieldingTest, Figure5SameOptimumFewerViewSets) {
  Fig5Workload workload{Fig5Config{}};
  auto tree = workload.ViewTree();
  ASSERT_TRUE(tree.ok());
  const std::vector<TransactionType> txns = {
      workload.TxnModS(), workload.TxnModT(), workload.TxnModR()};
  auto exhaustive = SelectViews(*tree, workload.catalog(), txns,
                                Strategy::kExhaustive);
  ASSERT_TRUE(exhaustive.ok());
  auto shielding = SelectViews(*tree, workload.catalog(), txns,
                               Strategy::kShielding);
  ASSERT_TRUE(shielding.ok());
  EXPECT_DOUBLE_EQ(shielding->result.weighted_cost,
                   exhaustive->result.weighted_cost);
  // The shielded run pruned part of the space.
  EXPECT_GT(shielding->result.viewsets_pruned, 0);
  EXPECT_LT(shielding->result.viewsets_costed,
            exhaustive->result.viewsets_costed);
}

TEST(ShieldingTest, ProblemDeptSameOptimum) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  ExpectSameOptimum(*tree, workload.catalog(),
                    {workload.TxnModEmp(), workload.TxnModDept()});
}

TEST(ShieldingTest, ChainWithAggregateSameOptimum) {
  ChainConfig config;
  config.num_relations = 3;
  config.with_aggregate = true;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  ExpectSameOptimum(*tree, workload.catalog(), workload.AllTxns());
}

TEST(ShieldingTest, WeightSweepsAgree) {
  Fig5Workload workload{Fig5Config{}};
  auto tree = workload.ViewTree();
  ASSERT_TRUE(tree.ok());
  for (double w : {0.2, 1.0, 5.0, 25.0}) {
    ExpectSameOptimum(
        *tree, workload.catalog(),
        {workload.TxnModS(w), workload.TxnModT(1), workload.TxnModR(2)});
  }
}

}  // namespace
}  // namespace auxview
