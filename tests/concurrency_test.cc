// Conflict-edge coverage for the snapshot delta-set concurrency layer
// (docs/CONCURRENCY.md): overlay visibility, first-committer-wins on every
// interesting edge — write-write on one key, write after delete, blind
// disjoint writes, serial DML vs optimistic writers, view-read
// invalidation — plus abort/retry hygiene of metrics and undo state.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/session.h"
#include "api/txn_session.h"
#include "obs/metrics.h"

namespace auxview {
namespace {

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

int64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

int64_t GaugeValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetGauge(name)->value();
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.Execute(kDdl).ok());
    for (int d = 0; d < 4; ++d) {
      const std::string dname = "d" + std::to_string(d);
      for (int k = 0; k < 3; ++k) {
        auto r = session_.Execute(
            "INSERT INTO Emp VALUES ('" + dname + "e" + std::to_string(k) +
            "', '" + dname + "', " + std::to_string(1000 + 10 * k) + ");");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
      // Budgets high enough that only the dedicated rejection test's
      // 99999-salary update violates DeptConstraint.
      auto r = session_.Execute("INSERT INTO Dept VALUES ('" + dname +
                                "', 'm" + std::to_string(d) + "', 50000);");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    session_.DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
                              SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
    Status prepared = session_.Prepare();
    ASSERT_TRUE(prepared.ok()) << prepared.ToString();
    Status enabled = session_.EnableConcurrency();
    ASSERT_TRUE(enabled.ok()) << enabled.ToString();
  }

  std::unique_ptr<TxnSession> Open() {
    auto txn = session_.OpenSession();
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    return std::move(*txn);
  }

  int64_t Salary(const std::string& ename) {
    auto r = session_.Execute("SELECT Salary FROM Emp WHERE EName = '" +
                              ename + "';");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows->total_count(), 1);
    return r->rows->rows().begin()->first[0].int64();
  }

  Session session_;
};

TEST_F(ConcurrencyTest, OverlayIsPrivateUntilCommit) {
  auto txn = Open();
  auto staged = txn->Execute(
      "INSERT INTO Emp VALUES ('zz', 'd0', 1);"
      "UPDATE Emp SET Salary = 1111 WHERE EName = 'd0e0';");
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_TRUE(txn->dirty());

  // The writer sees its own staged changes...
  auto mine = txn->Execute("SELECT * FROM Emp WHERE EName = 'zz';");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine->rows->total_count(), 1);
  // ...other sessions do not.
  auto other = Open();
  auto theirs = other->Execute("SELECT * FROM Emp WHERE EName = 'zz';");
  ASSERT_TRUE(theirs.ok());
  EXPECT_EQ(theirs->rows->total_count(), 0);
  EXPECT_EQ(Salary("d0e0"), 1000);

  auto outcome = txn->Commit();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->committed());
  EXPECT_EQ(Salary("d0e0"), 1111);
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, WriteWriteOnSameKeyFirstCommitterWins) {
  auto a = Open();
  auto b = Open();  // same snapshot epoch as a
  ASSERT_TRUE(
      a->Execute("UPDATE Emp SET Salary = 2000 WHERE EName = 'd1e0';").ok());
  ASSERT_TRUE(
      b->Execute("UPDATE Emp SET Salary = 3000 WHERE EName = 'd1e0';").ok());

  auto first = a->Commit();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->committed());

  const int64_t conflicts_before = CounterValue("concurrency.conflicts");
  auto second = b->Commit();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->kind, CommitOutcome::Kind::kConflict);
  EXPECT_NE(second->detail.find("d1e0"), std::string::npos) << second->detail;
  EXPECT_EQ(CounterValue("concurrency.conflicts"), conflicts_before + 1);
  EXPECT_EQ(Salary("d1e0"), 2000);  // the loser changed nothing

  // Retry on a fresh snapshot sees the winner's value and succeeds.
  const int64_t retries_before = CounterValue("concurrency.retries");
  b->Restart();
  EXPECT_EQ(CounterValue("concurrency.retries"), retries_before + 1);
  ASSERT_TRUE(
      b->Execute("UPDATE Emp SET Salary = 3000 WHERE EName = 'd1e0';").ok());
  auto retried = b->Commit();
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->committed());
  EXPECT_EQ(Salary("d1e0"), 3000);
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, WriteAfterDeleteConflicts) {
  auto deleter = Open();
  auto updater = Open();
  ASSERT_TRUE(deleter->Execute("DELETE FROM Emp WHERE EName = 'd2e1';").ok());
  ASSERT_TRUE(
      updater->Execute("UPDATE Emp SET Salary = 9 WHERE EName = 'd2e1';")
          .ok());

  auto first = deleter->Commit();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->committed());

  auto second = updater->Commit();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->kind, CommitOutcome::Kind::kConflict);

  // On retry the row is gone: the update matches nothing and the (read-only)
  // commit validates cleanly.
  updater->Restart();
  auto rerun =
      updater->Execute("UPDATE Emp SET Salary = 9 WHERE EName = 'd2e1';");
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->affected, 0);
  auto retried = updater->Commit();
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->committed());
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, BlindDisjointWritesCommitCleanly) {
  auto a = Open();
  auto b = Open();
  ASSERT_TRUE(a->Execute("INSERT INTO Emp VALUES ('ax', 'd0', 7);").ok());
  ASSERT_TRUE(b->Execute("INSERT INTO Emp VALUES ('bx', 'd1', 8);").ok());

  auto first = a->Commit();
  auto second = b->Commit();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->committed());
  // b's insert is blind (no read footprint) and touches a different row, so
  // it commits despite a's intervening commit to the same relation.
  EXPECT_TRUE(second->committed());
  EXPECT_GT(second->epoch, first->epoch);

  auto rows = session_.Execute("SELECT * FROM Emp;");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows->total_count(), 14);
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, AbortThenRetryLeavesMetricsAndStateClean) {
  const int64_t commits_before = CounterValue("concurrency.commits");
  const int64_t conflicts_before = CounterValue("concurrency.conflicts");
  const auto sums_before = session_.ViewContents("SumOfSals");
  ASSERT_TRUE(sums_before.ok());

  {
    auto txn = Open();
    ASSERT_TRUE(
        txn->Execute("UPDATE Emp SET Salary = 4444 WHERE EName = 'd3e0';")
            .ok());
    EXPECT_TRUE(txn->dirty());
    txn->Abort();
    EXPECT_FALSE(txn->dirty());
    // Nothing committed, nothing conflicted, nothing leaked into tables.
    EXPECT_EQ(CounterValue("concurrency.commits"), commits_before);
    EXPECT_EQ(CounterValue("concurrency.conflicts"), conflicts_before);
    EXPECT_EQ(Salary("d3e0"), 1000);

    ASSERT_TRUE(
        txn->Execute("UPDATE Emp SET Salary = 4444 WHERE EName = 'd3e0';")
            .ok());
    auto outcome = txn->Commit();
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->committed());
  }
  EXPECT_EQ(CounterValue("concurrency.commits"), commits_before + 1);
  EXPECT_EQ(Salary("d3e0"), 4444);
  auto sums_after = session_.ViewContents("SumOfSals");
  ASSERT_TRUE(sums_after.ok());
  EXPECT_FALSE(sums_after->BagEquals(*sums_before));
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, SnapshotPinsReturnToBaseline) {
  const int64_t pins_before = GaugeValue("concurrency.snapshot_pins");
  {
    auto a = Open();
    auto b = Open();
    EXPECT_EQ(GaugeValue("concurrency.snapshot_pins"), pins_before + 2);
    ASSERT_TRUE(a->Execute("INSERT INTO Emp VALUES ('px', 'd0', 1);").ok());
    auto outcome = a->Commit();
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->committed());
    EXPECT_EQ(GaugeValue("concurrency.snapshot_pins"), pins_before + 2);
  }
  EXPECT_EQ(GaugeValue("concurrency.snapshot_pins"), pins_before);
}

TEST_F(ConcurrencyTest, AssertionRejectionRollsBackAndIsNotAConflict) {
  auto txn = Open();
  // Pushing one salary past the department budget violates DeptConstraint.
  ASSERT_TRUE(
      txn->Execute("UPDATE Emp SET Salary = 99999 WHERE EName = 'd0e0';")
          .ok());
  auto outcome = txn->Commit();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->kind, CommitOutcome::Kind::kRejected);
  EXPECT_EQ(outcome->detail, "DeptConstraint");
  EXPECT_FALSE(txn->dirty());  // rejected => rolled back and cleared
  EXPECT_EQ(Salary("d0e0"), 1000);

  // The session is reusable; a valid change commits.
  ASSERT_TRUE(
      txn->Execute("UPDATE Emp SET Salary = 1500 WHERE EName = 'd0e0';").ok());
  auto retried = txn->Commit();
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->committed());
  EXPECT_EQ(Salary("d0e0"), 1500);
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, SerialSessionDmlConflictsOptimisticWriters) {
  auto txn = Open();
  ASSERT_TRUE(
      txn->Execute("UPDATE Emp SET Salary = 2500 WHERE EName = 'd1e1';").ok());
  // The owning Session's ad-hoc DML goes through the same funnel and records
  // its footprint, so the staged optimistic write now conflicts.
  auto serial =
      session_.Execute("UPDATE Emp SET Salary = 2600 WHERE EName = 'd1e1';");
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto outcome = txn->Commit();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, CommitOutcome::Kind::kConflict);
  EXPECT_EQ(Salary("d1e1"), 2600);
}

TEST_F(ConcurrencyTest, ViewReadConflictsWithViewChange) {
  auto reader = Open();
  auto sums = reader->Execute("SELECT * FROM SumOfSals;");
  ASSERT_TRUE(sums.ok()) << sums.status().ToString();
  EXPECT_EQ(sums->rows->total_count(), 4);
  // Stage a blind write so the commit is not read-only.
  ASSERT_TRUE(reader->Execute("INSERT INTO Emp VALUES ('vx', 'd0', 1);").ok());

  // Another commit changes the view contents out from under the reader.
  auto writer = Open();
  ASSERT_TRUE(
      writer->Execute("UPDATE Emp SET Salary = 1200 WHERE EName = 'd2e0';")
          .ok());
  auto committed = writer->Commit();
  ASSERT_TRUE(committed.ok());
  EXPECT_TRUE(committed->committed());

  auto outcome = reader->Commit();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, CommitOutcome::Kind::kConflict);
  EXPECT_NE(outcome->detail.find("rewritten"), std::string::npos)
      << outcome->detail;
}

TEST_F(ConcurrencyTest, SessionSelectsServeFromPublishedSnapshot) {
  // A staged-but-uncommitted change is invisible to the owning Session's
  // snapshot reads, view shortcut included.
  auto txn = Open();
  ASSERT_TRUE(
      txn->Execute("UPDATE Emp SET Salary = 8000 WHERE EName = 'd3e2';").ok());
  auto sums = session_.Execute("SELECT * FROM SumOfSals;");
  ASSERT_TRUE(sums.ok());
  for (const auto& [row, count] : sums->rows->rows()) {
    (void)count;
    if (row[0].str() == "d3") EXPECT_EQ(row[1].int64(), 1000 + 1010 + 1020);
  }
  auto outcome = txn->Commit();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->committed());
  auto after = session_.Execute("SELECT * FROM SumOfSals;");
  ASSERT_TRUE(after.ok());
  for (const auto& [row, count] : after->rows->rows()) {
    (void)count;
    if (row[0].str() == "d3") EXPECT_EQ(row[1].int64(), 1000 + 1010 + 8000);
  }
}

}  // namespace
}  // namespace auxview
