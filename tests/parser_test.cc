#include "parser/parser.h"

#include <gtest/gtest.h>

#include "parser/lexer.h"

namespace auxview {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x1, 'str' FROM t WHERE a >= 1.5 -- c\n;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "x1");
  EXPECT_TRUE((*tokens)[2].IsSymbol(","));
  EXPECT_EQ((*tokens)[3].type, TokenType::kString);
  EXPECT_EQ((*tokens)[3].text, "str");
  // ">=" is one token.
  bool saw_ge = false;
  for (const Token& t : *tokens) {
    if (t.IsSymbol(">=")) saw_ge = true;
  }
  EXPECT_TRUE(saw_ge);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(ParserTest, CreateTable) {
  auto stmts = ParseSql(
      "CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, "
      "Salary INT, INDEX (DName));");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts->size(), 1u);
  const CreateTableStmt& ct = *(*stmts)[0].create_table;
  EXPECT_EQ(ct.name, "Emp");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[0].name, "EName");
  EXPECT_EQ(ct.columns[2].type, ValueType::kInt64);
  EXPECT_EQ(ct.primary_key, std::vector<std::string>{"EName"});
  ASSERT_EQ(ct.indexes.size(), 1u);
  EXPECT_EQ(ct.indexes[0], std::vector<std::string>{"DName"});
}

TEST(ParserTest, PaperViewDefinition) {
  // Verbatim from the paper (GROUPBY as one word).
  auto stmts = ParseSql(
      "CREATE VIEW ProblemDept (DName) AS "
      "SELECT Dept.DName FROM Emp, Dept "
      "WHERE Dept.DName = Emp.DName "
      "GROUPBY Dept.DName, Budget "
      "HAVING SUM(Salary) > Budget");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const CreateViewStmt& cv = *(*stmts)[0].create_view;
  EXPECT_EQ(cv.name, "ProblemDept");
  EXPECT_EQ(cv.column_names, std::vector<std::string>{"DName"});
  EXPECT_EQ(cv.select.from, (std::vector<std::string>{"Emp", "Dept"}));
  ASSERT_EQ(cv.select.group_by.size(), 2u);
  EXPECT_EQ(cv.select.group_by[0]->qualifier, "Dept");
  EXPECT_EQ(cv.select.group_by[1]->name, "Budget");
  ASSERT_NE(cv.select.having, nullptr);
  EXPECT_EQ(cv.select.having->ToString(), "(SUM(Salary) > Budget)");
}

TEST(ParserTest, PaperAssertion) {
  auto stmts = ParseSql(
      "CREATE ASSERTION DeptConstraint CHECK "
      "(NOT EXISTS (SELECT * FROM ProblemDept))");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const CreateAssertionStmt& ca = *(*stmts)[0].create_assertion;
  EXPECT_EQ(ca.name, "DeptConstraint");
  ASSERT_EQ(ca.select.items.size(), 1u);
  EXPECT_TRUE(ca.select.items[0].star);
  EXPECT_EQ(ca.select.from, std::vector<std::string>{"ProblemDept"});
}

TEST(ParserTest, ExpressionPrecedence) {
  auto q = ParseSelect("SELECT a FROM t WHERE a + b * 2 > 5 AND NOT c = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->ToString(),
            "(((a + (b * 2)) > 5) AND NOT ((c = 1)))");
}

TEST(ParserTest, GroupByTwoWordsAndAliases) {
  auto q = ParseSelect(
      "SELECT DName, SUM(Salary) AS Total FROM Emp GROUP BY DName");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[1].alias, "Total");
  EXPECT_EQ(q->items[1].expr->name, "SUM");
}

TEST(ParserTest, Distinct) {
  auto q = ParseSelect("SELECT DISTINCT DName FROM Emp");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, MultipleStatements) {
  auto stmts = ParseSql(
      "CREATE TABLE A (x INT); CREATE TABLE B (y INT);; "
      "SELECT x FROM A;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, ErrorsCarryContext) {
  auto bad = ParseSql("CREATE VIEW v AS SELECT FROM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("expected expression"),
            std::string::npos);
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("CREATE NONSENSE x").ok());
}

TEST(ParserTest, InsertStatement) {
  auto stmts = ParseSql(
      "INSERT INTO Emp VALUES ('a', 'd1', 100), ('b', 'd2', 2 * 50);");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const InsertStmt& ins = *(*stmts)[0].insert;
  EXPECT_EQ(ins.table, "Emp");
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[0].size(), 3u);
  EXPECT_EQ(ins.rows[1][2]->ToString(), "(2 * 50)");
}

TEST(ParserTest, DeleteStatement) {
  auto stmts = ParseSql("DELETE FROM Emp WHERE Salary > 100;");
  ASSERT_TRUE(stmts.ok());
  const DeleteStmt& del = *(*stmts)[0].del;
  EXPECT_EQ(del.table, "Emp");
  EXPECT_EQ(del.where->ToString(), "(Salary > 100)");
  auto all = ParseSql("DELETE FROM Emp;");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ((*all)[0].del->where, nullptr);
}

TEST(ParserTest, UpdateStatement) {
  auto stmts = ParseSql(
      "UPDATE Emp SET Salary = Salary + 10, DName = 'd9' "
      "WHERE EName = 'a';");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const UpdateStmt& upd = *(*stmts)[0].update;
  EXPECT_EQ(upd.table, "Emp");
  ASSERT_EQ(upd.sets.size(), 2u);
  EXPECT_EQ(upd.sets[0].first, "Salary");
  EXPECT_EQ(upd.sets[0].second->ToString(), "(Salary + 10)");
  EXPECT_EQ(upd.sets[1].first, "DName");
  EXPECT_EQ(upd.where->ToString(), "(EName = 'a')");
}

TEST(ParserTest, DmlErrors) {
  EXPECT_FALSE(ParseSql("INSERT Emp VALUES (1)").ok());
  EXPECT_FALSE(ParseSql("DELETE Emp").ok());
  EXPECT_FALSE(ParseSql("UPDATE Emp Salary = 1").ok());
}

TEST(ParserTest, CountStar) {
  auto q = ParseSelect("SELECT COUNT(*) AS n FROM t GROUP BY g");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->items[0].expr->star);
  EXPECT_EQ(q->items[0].expr->name, "COUNT");
}

}  // namespace
}  // namespace auxview
