#include "exec/executor.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EmpDeptConfig config;
    config.num_depts = 4;
    config.emps_per_dept = 3;
    config.violation_fraction = 0.5;
    config.seed = 9;
    workload_ = std::make_unique<EmpDeptWorkload>(config);
    ASSERT_TRUE(workload_->Populate(&db_).ok());
  }

  Relation Run(const Expr::Ptr& tree) {
    Executor executor(&db_);
    auto rel = executor.Execute(*tree);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    return std::move(rel).value();
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  Database db_;
};

TEST_F(ExecutorTest, ScanReturnsAllRows) {
  ExprBuilder b(&workload_->catalog());
  Relation emp = Run(b.Scan("Emp"));
  EXPECT_EQ(emp.total_count(), 12);
  Relation dept = Run(b.Scan("Dept"));
  EXPECT_EQ(dept.total_count(), 4);
}

TEST_F(ExecutorTest, SelectFilters) {
  ExprBuilder b(&workload_->catalog());
  Expr::Ptr all = b.Select(b.Scan("Emp"),
                           Scalar::Gt(Col("Salary"), Lit(int64_t{0})));
  EXPECT_EQ(Run(all).total_count(), 12);
  Expr::Ptr none = b.Select(b.Scan("Emp"),
                            Scalar::Lt(Col("Salary"), Lit(int64_t{0})));
  EXPECT_TRUE(Run(none).empty());
}

TEST_F(ExecutorTest, JoinEquiNatural) {
  ExprBuilder b(&workload_->catalog());
  Relation joined = Run(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}));
  // Every employee matches exactly one department.
  EXPECT_EQ(joined.total_count(), 12);
  EXPECT_EQ(joined.schema().num_columns(), 5);
}

TEST_F(ExecutorTest, AggregateSumCountMinMaxAvg) {
  ExprBuilder b(&workload_->catalog());
  Relation agg = Run(b.Aggregate(
      b.Scan("Emp"), {"DName"},
      {{AggFunc::kSum, Col("Salary"), "S"},
       {AggFunc::kCount, nullptr, "N"},
       {AggFunc::kMin, Col("Salary"), "Lo"},
       {AggFunc::kMax, Col("Salary"), "Hi"},
       {AggFunc::kAvg, Col("Salary"), "Mean"}}));
  EXPECT_EQ(agg.total_count(), 4);  // one row per department
  for (const auto& [row, count] : agg.rows()) {
    (void)count;
    const int64_t sum = row[1].int64();
    const int64_t n = row[2].int64();
    EXPECT_EQ(n, 3);
    EXPECT_LE(row[3].int64(), row[4].int64());
    EXPECT_NEAR(row[5].dbl(), static_cast<double>(sum) / n, 1e-9);
  }
}

TEST_F(ExecutorTest, AggregateOverEmptyInputIsEmpty) {
  ExprBuilder b(&workload_->catalog());
  Expr::Ptr none = b.Select(b.Scan("Emp"),
                            Scalar::Lt(Col("Salary"), Lit(int64_t{0})));
  Relation agg = Run(b.Aggregate(none, {"DName"},
                                 {{AggFunc::kSum, Col("Salary"), "S"}}));
  EXPECT_TRUE(agg.empty());
}

TEST_F(ExecutorTest, ProblemDeptFindsViolations) {
  auto tree = workload_->ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Relation result = Run(*tree);
  // With violation_fraction = 0.5 and 4 departments, expect 1-3 violations.
  EXPECT_GT(result.total_count(), 0);
  EXPECT_LT(result.total_count(), 4);
}

TEST_F(ExecutorTest, LeftAndRightProblemDeptTreesAgree) {
  auto right = workload_->ProblemDeptTree();
  auto left = workload_->ProblemDeptLeftTree();
  ASSERT_TRUE(right.ok() && left.ok());
  Relation r = Run(*right);
  Relation l = Run(*left);
  // The left tree carries extra Dept columns; project to the shared ones.
  auto projected =
      Expr::Project(*left, {{Col("DName"), "DName"},
                            {Col("Budget"), "Budget"},
                            {Col("SumSal"), "SumSal"}});
  ASSERT_TRUE(projected.ok());
  EXPECT_TRUE(Run(*projected).BagEquals(r));
}

TEST_F(ExecutorTest, ProjectAndDupElim) {
  ExprBuilder b(&workload_->catalog());
  Expr::Ptr names = b.Project(b.Scan("Emp"), {{Col("DName"), "DName"}});
  Relation projected = Run(names);
  EXPECT_EQ(projected.total_count(), 12);
  EXPECT_EQ(projected.distinct_rows(), 4);
  Relation dedup = Run(b.DupElim(names));
  EXPECT_EQ(dedup.total_count(), 4);
}

TEST_F(ExecutorTest, BagSemanticsMultiplyThroughJoin) {
  // Duplicate a Dept row and check join multiplicities double.
  Table* dept = db_.FindTable("Dept");
  ASSERT_NE(dept, nullptr);
  const Row row = dept->SnapshotUncharged()[0].row;
  ASSERT_TRUE(dept->Insert(row).ok());
  ExprBuilder b(&workload_->catalog());
  Relation joined = Run(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}));
  EXPECT_EQ(joined.total_count(), 15);  // 3 employees counted twice
}

TEST_F(ExecutorTest, MissingTableErrors) {
  auto scan = Expr::Scan("Ghost",
                         Schema::Create({{"x", ValueType::kInt64}}).value());
  Executor executor(&db_);
  EXPECT_EQ(executor.Execute(*scan).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace auxview
