// Section 6: maintaining a SET of materialized views over one multi-root
// expression DAG, with shared subexpressions between the views.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

class MultiViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    ExprBuilder b(&workload_->catalog());
    // View 1: the ProblemDept select.
    view1_ = b.Select(
        b.Aggregate(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}),
                    {"DName", "Budget"},
                    {{AggFunc::kSum, Col("Salary"), "SumSal"}}),
        Scalar::Gt(Col("SumSal"), Col("Budget")));
    // View 2: the SumOfSals rollup as a user-facing view of its own.
    view2_ = b.Aggregate(b.Scan("Emp"), {"DName"},
                         {{AggFunc::kSum, Col("Salary"), "SumSal"}});
    ASSERT_TRUE(b.ok()) << b.status().ToString();

    memo_ = std::make_unique<Memo>();
    root1_ = *memo_->AddTree(view1_);
    root2_ = *memo_->AddTree(view2_);
    const auto rules = DefaultRuleSet();
    ASSERT_TRUE(ExpandMemo(memo_.get(), workload_->catalog(), rules).ok());
    root1_ = memo_->Find(root1_);
    root2_ = memo_->Find(root2_);
    selector_ = std::make_unique<ViewSelector>(memo_.get(),
                                               &workload_->catalog());
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  Expr::Ptr view1_, view2_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<ViewSelector> selector_;
  GroupId root1_ = -1, root2_ = -1;
};

TEST_F(MultiViewTest, SharedSubexpressionsShareGroups) {
  // View 2's aggregate is exactly the group the eager-aggregation rule
  // derives inside view 1's DAG: one shared equivalence node.
  EXPECT_NE(root1_, root2_);
  // The DAG has a single Emp leaf and a single SumOfSals group.
  int sum_groups = 0;
  for (GroupId g : memo_->NonLeafGroups()) {
    for (int eid : memo_->group(g).exprs) {
      const MemoExpr& e = memo_->expr(eid);
      if (!e.dead && e.kind() == OpKind::kAggregate &&
          e.op->group_by() == std::vector<std::string>{"DName"}) {
        ++sum_groups;
      }
    }
  }
  EXPECT_EQ(sum_groups, 1);
}

TEST_F(MultiViewTest, JointOptimizationCountsBothRoots) {
  const std::vector<TransactionType> txns = {workload_->TxnModEmp(),
                                             workload_->TxnModDept()};
  auto joint = selector_->ExhaustiveMultiView({root1_, root2_}, txns);
  ASSERT_TRUE(joint.ok()) << joint.status().ToString();
  EXPECT_TRUE(joint->views.count(root1_));
  EXPECT_TRUE(joint->views.count(root2_));
  // Maintaining view 2 (SumOfSals) already pays for the auxiliary view that
  // view 1 wants: the joint cost is below the sum of the single-view
  // optima (with root update costs counted the same way).
  OptimizeOptions opts;
  opts.cost.include_root_update_cost = true;
  auto only1 = selector_->ExhaustiveOver(txns, opts, {root1_},
                                         [&] {
                                           std::set<GroupId> c;
                                           for (GroupId g :
                                                memo_->NonLeafGroups()) {
                                             c.insert(g);
                                           }
                                           return c;
                                         }());
  auto only2 = selector_->ExhaustiveOver(txns, opts, {root2_},
                                         [&] {
                                           std::set<GroupId> c;
                                           for (GroupId g :
                                                memo_->NonLeafGroups()) {
                                             c.insert(g);
                                           }
                                           return c;
                                         }());
  ASSERT_TRUE(only1.ok() && only2.ok());
  EXPECT_LT(joint->weighted_cost,
            only1->weighted_cost + only2->weighted_cost);
}

TEST_F(MultiViewTest, RuntimeMaintainsBothRoots) {
  const std::vector<TransactionType> txns = {workload_->TxnModEmp(),
                                             workload_->TxnModDept()};
  auto joint = selector_->ExhaustiveMultiView({root1_, root2_}, txns);
  ASSERT_TRUE(joint.ok());

  EmpDeptConfig small;
  small.num_depts = 10;
  small.emps_per_dept = 3;
  small.violation_fraction = 0.3;
  EmpDeptWorkload data{small};
  Database db;
  ASSERT_TRUE(data.Populate(&db).ok());
  ViewManager manager(memo_.get(), &workload_->catalog(), &db);
  ASSERT_TRUE(manager.Materialize(joint->views).ok());
  TxnGenerator gen(77);
  for (int i = 0; i < 16; ++i) {
    const TransactionType& type = txns[i % txns.size()];
    auto plan = selector_->BestTrack(joint->views, type);
    ASSERT_TRUE(plan.ok());
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok());
    Status applied = manager.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    Status consistent = manager.CheckConsistency();
    ASSERT_TRUE(consistent.ok()) << consistent.ToString();
  }
}

TEST_F(MultiViewTest, SingleTrackMaintainsBothViewsAtOnce) {
  // One >Emp transaction produces one track covering both roots: the delta
  // of the shared SumOfSals group is computed once.
  const TransactionType txn = workload_->TxnModEmp();
  auto joint = selector_->ExhaustiveMultiView({root1_, root2_}, {txn});
  ASSERT_TRUE(joint.ok());
  auto plan = selector_->BestTrack(joint->views, txn);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->track.choice.count(root1_), 1u);
  EXPECT_EQ(plan->track.choice.count(root2_), 1u);
}

}  // namespace
}  // namespace auxview
