// Bit-identity of hash-sharded maintenance: the same transaction stream
// replayed against databases with 1, 2, 4 and 8 shards must produce
// identical per-transaction charged page I/O and identical table and index
// fingerprints after every commit — sharding may change which sub-table
// stores a row and where propagation work runs, never results or modeled
// costs (docs/SHARDING.md). The stream is recorded once against the
// 1-shard database and replayed verbatim (TxnGenerator samples rows in
// scan order, which a sharded layout permutes). Also covered: the
// LocalityClassifier's routing verdicts per workload (emp_dept and fig5
// decompose, star and chain fall back to the global path), the
// shard.route.fail failpoint (an injected routing fault aborts the
// transaction bit-identically), and MaintainOptions::adaptive_partitioning
// (identical traces with the adaptive threshold on).

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"
#include "common/failpoint.h"
#include "exec/kernels/kernels.h"
#include "obs/metrics.h"

namespace auxview {
namespace {

std::map<std::string, std::string> FingerprintAll(Database& db) {
  std::map<std::string, std::string> out;
  for (const std::string& name : db.TableNames()) {
    out[name] = db.FindTable(name)->Fingerprint();
  }
  return out;
}

/// One workload packaged behind a uniform interface (the parallel- and
/// serial-equivalence harnesses' CasePack).
struct CasePack {
  std::string name;
  std::shared_ptr<void> owner;
  const Catalog* catalog = nullptr;
  Expr::Ptr tree;
  std::function<Status(Database*)> populate;
  std::vector<TransactionType> txns;
};

CasePack MakeEmpDept() {
  EmpDeptConfig config;
  config.num_depts = 8;
  config.emps_per_dept = 3;
  config.violation_fraction = 0.2;
  auto w = std::make_shared<EmpDeptWorkload>(config);
  auto tree = w->ProblemDeptTree();
  EXPECT_TRUE(tree.ok());
  return {"emp_dept", w,          &w->catalog(),
          *tree,      [w](Database* db) { return w->Populate(db); },
          {w->TxnModEmp(), w->TxnModDept()}};
}

CasePack MakeFig5() {
  Fig5Config config;
  config.num_items = 20;
  config.orders_per_item = 3;
  config.r_rows_per_item = 2;
  auto w = std::make_shared<Fig5Workload>(config);
  auto tree = w->ViewTree();
  EXPECT_TRUE(tree.ok());
  return {"fig5", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModS(), w->TxnModT(), w->TxnModR()}};
}

CasePack MakeStar() {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 60;
  config.dim_rows = 8;
  config.attr_values = 4;
  auto w = std::make_shared<StarWorkload>(config);
  auto tree = w->RollupTree();
  EXPECT_TRUE(tree.ok());
  return {"star", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModMeasure(), w->TxnModDimAttr(1), w->TxnInsertFact()}};
}

CasePack MakeChain() {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 40;
  config.fanout = 2;
  config.with_aggregate = true;
  auto w = std::make_shared<ChainWorkload>(config);
  auto tree = w->ChainViewTree();
  EXPECT_TRUE(tree.ok());
  return {"chain", w,          &w->catalog(),
          *tree,   [w](Database* db) { return w->Populate(db); },
          w->AllTxns()};
}

/// Everything observable about one run of a transaction stream, plus the
/// shard-routing counters the run moved.
struct RunTrace {
  std::vector<int64_t> txn_ios;
  std::vector<std::map<std::string, std::string>> states;
  int64_t sharded_txns = 0;
  int64_t fallback_txns = 0;
};

constexpr int kSteps = 12;

/// Records `kSteps` transactions (round-robin over the declared types,
/// fixed seed) from a 1-shard database. The recorded transactions replay
/// verbatim at every other shard count, so all runs see byte-identical
/// update streams.
std::vector<std::pair<ConcreteTxn, const TransactionType*>> RecordStream(
    const CasePack& pack) {
  std::vector<std::pair<ConcreteTxn, const TransactionType*>> out;
  Database db;
  EXPECT_TRUE(pack.populate(&db).ok());
  TxnGenerator gen(20260808);
  for (int step = 0; step < kSteps; ++step) {
    const TransactionType& type =
        pack.txns[static_cast<size_t>(step) % pack.txns.size()];
    auto txn = gen.Generate(type, db);
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    // Keep the generator's view of the database in sync with the stream:
    // apply the raw base updates (fingerprints come from the maintained
    // replays, not from this recording database).
    for (const TableUpdate& update : txn->updates) {
      Table* t = db.FindTable(update.relation);
      if (t == nullptr) {
        ADD_FAILURE() << "missing table " << update.relation;
        continue;
      }
      for (const auto& [row, count] : update.inserts) {
        EXPECT_TRUE(t->Apply(row, count).ok());
      }
      for (const auto& [row, count] : update.deletes) {
        EXPECT_TRUE(t->Apply(row, -count).ok());
      }
      for (const auto& [old_row, new_row] : update.modifies) {
        const int64_t c = t->CountOf(old_row);
        EXPECT_TRUE(t->Apply(old_row, -c).ok());
        EXPECT_TRUE(t->Apply(new_row, c).ok());
      }
    }
    out.emplace_back(std::move(*txn), &type);
  }
  return out;
}

/// Replays a recorded stream against a fresh `shards`-way database.
void ReplayStream(
    const CasePack& pack, const Memo& memo, const ViewSet& views, int shards,
    const std::vector<std::pair<ConcreteTxn, const TransactionType*>>& stream,
    bool adaptive, RunTrace* out) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* sharded = reg.GetCounter("maintain.shard.sharded_txns");
  obs::Counter* fallback = reg.GetCounter("maintain.shard.fallback_txns");
  RunTrace& trace = *out;
  Database db;
  db.set_shard_count(shards);
  EXPECT_TRUE(pack.populate(&db).ok());
  MaintainOptions options;
  options.threads = shards > 1 ? 4 : 1;
  options.adaptive_partitioning = adaptive;
  ViewManager mgr(&memo, pack.catalog, &db, options);
  EXPECT_TRUE(mgr.Materialize(views).ok());
  ViewSelector selector(&memo, pack.catalog);
  const int64_t sharded_before = sharded->value();
  const int64_t fallback_before = fallback->value();
  for (size_t step = 0; step < stream.size(); ++step) {
    const TransactionType& type = *stream[step].second;
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const int64_t ios_before = db.counter().total();
    Status applied = mgr.ApplyTransaction(stream[step].first, type,
                                          plan->track);
    ASSERT_TRUE(applied.ok())
        << pack.name << " step " << step << ": " << applied.ToString();
    trace.txn_ios.push_back(db.counter().total() - ios_before);
    trace.states.push_back(FingerprintAll(db));
  }
  trace.sharded_txns = sharded->value() - sharded_before;
  trace.fallback_txns = fallback->value() - fallback_before;
  Status consistent = mgr.CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << pack.name << ": " << consistent.ToString();
}

void ExpectTracesIdentical(const CasePack& pack, const RunTrace& base,
                           const RunTrace& other, int shards) {
  SCOPED_TRACE(pack.name + " with " + std::to_string(shards) + " shards");
  ASSERT_EQ(other.txn_ios.size(), base.txn_ios.size());
  for (size_t i = 0; i < base.txn_ios.size(); ++i) {
    EXPECT_EQ(other.txn_ios[i], base.txn_ios[i])
        << "charged I/O diverged at step " << i;
    EXPECT_EQ(other.states[i], base.states[i])
        << "physical state diverged at step " << i;
  }
}

class ShardedEquivalenceTest
    : public ::testing::TestWithParam<std::function<CasePack()>> {};

TEST_P(ShardedEquivalenceTest, ShardCountsAreBitIdentical) {
  const CasePack pack = GetParam()();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  const auto stream = RecordStream(pack);
  ASSERT_EQ(stream.size(), static_cast<size_t>(kSteps));
  RunTrace base;
  ReplayStream(pack, *memo, views, 1, stream, /*adaptive=*/false, &base);
  EXPECT_EQ(base.sharded_txns, 0) << "1-shard run took the per-shard path";
  EXPECT_EQ(base.fallback_txns, 0) << "fallback counted on a 1-shard run";
  for (int shards : {2, 4, 8}) {
    RunTrace trace;
    ReplayStream(pack, *memo, views, shards, stream, /*adaptive=*/false,
                 &trace);
    ExpectTracesIdentical(pack, base, trace, shards);
    EXPECT_EQ(trace.sharded_txns + trace.fallback_txns, kSteps)
        << pack.name << ": every transaction routes exactly once";
  }
}

TEST_P(ShardedEquivalenceTest, AdaptivePartitioningIsBitIdentical) {
  const CasePack pack = GetParam()();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  const auto stream = RecordStream(pack);
  RunTrace base;
  ReplayStream(pack, *memo, views, 1, stream, /*adaptive=*/false, &base);
  // Adaptive mode mutates the global kernel threshold; restore it after.
  const int64_t old_min = kernels::PartitionMinRows();
  for (int shards : {1, 4}) {
    RunTrace trace;
    ReplayStream(pack, *memo, views, shards, stream, /*adaptive=*/true,
                 &trace);
    ExpectTracesIdentical(pack, base, trace, shards);
  }
  kernels::SetPartitionMinRows(old_min);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ShardedEquivalenceTest,
    ::testing::Values(MakeEmpDept, MakeFig5, MakeStar, MakeChain),
    [](const ::testing::TestParamInfo<std::function<CasePack()>>& info) {
      return info.param().name;
    });

// The classifier's routing verdicts, pinned per workload: emp_dept and
// fig5 shard on their join/group-by attribute, so every declared
// transaction type decomposes; star's rollup groups by dimension
// attributes its fact alignment cannot reach, so every type falls back;
// chain decomposes only for updates of its head relation.
TEST(ShardedRoutingTest, WorkloadVerdictsMatchTheLattice) {
  struct Expectation {
    std::function<CasePack()> make;
    int decomposed_per_round;   // of one round-robin over pack.txns
    int cross_shard_per_round;  // tracks whose worst fetch escapes a shard
  };
  const std::vector<Expectation> cases = {
      // emp_dept: everything shards on DName, the join/group-by attribute
      // — both txn types decompose and no probe escapes its shard.
      {MakeEmpDept, 2, 0},
      // fig5: all three relations shard on Item — same story.
      {MakeFig5, 3, 0},
      // star: dimension probes stay key-local, but the rollup's group-by
      // (dimension attributes) cannot cover the fact's {D1} alignment, so
      // nothing decomposes.
      {MakeStar, 0, 0},
      // chain: only the head relation's modify decomposes; modifying R2 or
      // R3 probes the upstream relation on the join attribute, which is
      // not that relation's shard key, so those two classify cross-shard.
      {MakeChain, 1, 2},
  };
  for (const Expectation& expect : cases) {
    const CasePack pack = expect.make();
    SCOPED_TRACE(pack.name);
    auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
    ASSERT_TRUE(memo.ok()) << memo.status().ToString();
    ViewSet views = {memo->root()};
    for (GroupId g : memo->NonLeafGroups()) views.insert(g);
    ViewSelector selector(&*memo, pack.catalog);
    StatsAnalysis stats(&*memo, pack.catalog);
    DeltaAnalysis delta(&*memo, pack.catalog, &stats);
    LocalityClassifier classifier(&*memo, pack.catalog, &delta);
    int decomposed = 0;
    int cross_shard = 0;
    for (const TransactionType& type : pack.txns) {
      auto plan = selector.BestTrack(views, type);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto report = classifier.Classify(plan->track, views, type);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      if (report->locality == TrackLocality::kCrossShard) {
        ++cross_shard;
        EXPECT_FALSE(report->decomposable)
            << type.name << ": a cross-shard track must not decompose";
      }
      if (report->decomposable) ++decomposed;
    }
    EXPECT_EQ(decomposed, expect.decomposed_per_round);
    EXPECT_EQ(cross_shard, expect.cross_shard_per_round);
  }
}

// An injected routing fault (shard.route.fail, hit before the delta is
// partitioned) must abort the transaction and leave every table and index
// bit-identical; re-running disarmed must commit the sequential result.
TEST(ShardedRoutingTest, RouteFailpointRollsBackBitIdentical) {
  const CasePack pack = MakeEmpDept();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);
  const auto stream = RecordStream(pack);

  // The 1-shard oracle: one committed transaction.
  std::map<std::string, std::string> expected;
  {
    Database db;
    ASSERT_TRUE(pack.populate(&db).ok());
    ViewManager mgr(&*memo, pack.catalog, &db);
    ASSERT_TRUE(mgr.Materialize(views).ok());
    ViewSelector selector(&*memo, pack.catalog);
    auto plan = selector.BestTrack(views, *stream[0].second);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(
        mgr.ApplyTransaction(stream[0].first, *stream[0].second, plan->track)
            .ok());
    expected = FingerprintAll(db);
  }

  Database db;
  db.set_shard_count(4);
  ASSERT_TRUE(pack.populate(&db).ok());
  ViewManager mgr(&*memo, pack.catalog, &db);
  ASSERT_TRUE(mgr.Materialize(views).ok());
  ViewSelector selector(&*memo, pack.catalog);
  auto plan = selector.BestTrack(views, *stream[0].second);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto pristine = FingerprintAll(db);

  FailpointRegistry& reg = FailpointRegistry::Global();
  reg.DisarmAll();
  reg.ArmAfter("shard.route.fail", 1);
  Status st =
      mgr.ApplyTransaction(stream[0].first, *stream[0].second, plan->track);
  reg.DisarmAll();
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
  EXPECT_NE(st.ToString().find("shard.route.fail"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(FingerprintAll(db), pristine)
      << "aborted routing left visible state behind";

  ASSERT_TRUE(
      mgr.ApplyTransaction(stream[0].first, *stream[0].second, plan->track)
          .ok());
  EXPECT_EQ(FingerprintAll(db), expected)
      << "post-abort commit diverged from the 1-shard oracle";
  Status consistent = mgr.CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

// A self-maintainable verdict arms a runtime CHECK against base fetches.
// This test proves the guard is wired: a track that classifies
// self-maintainable (every queried input materialized) commits fine with
// the guard armed — and the engine's class counters record the verdict.
TEST(ShardedRoutingTest, SelfMaintainableTracksCommitUnderTheGuard) {
  const CasePack pack = MakeEmpDept();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);
  const auto stream = RecordStream(pack);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* self_c =
      reg.GetCounter("maintain.shard.class_self_maintainable");
  obs::Counter* key_local_c = reg.GetCounter("maintain.shard.class_key_local");
  obs::Counter* cross_c = reg.GetCounter("maintain.shard.class_cross_shard");
  const int64_t before =
      self_c->value() + key_local_c->value() + cross_c->value();

  Database db;
  db.set_shard_count(2);
  ASSERT_TRUE(pack.populate(&db).ok());
  ViewManager mgr(&*memo, pack.catalog, &db);
  ASSERT_TRUE(mgr.Materialize(views).ok());
  ViewSelector selector(&*memo, pack.catalog);
  for (size_t step = 0; step < stream.size(); ++step) {
    auto plan = selector.BestTrack(views, *stream[step].second);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(
        mgr.ApplyTransaction(stream[step].first, *stream[step].second,
                             plan->track)
            .ok());
  }
  const int64_t classified =
      self_c->value() + key_local_c->value() + cross_c->value() - before;
  EXPECT_EQ(classified, kSteps) << "every transaction classifies exactly once";
  Status consistent = mgr.CheckConsistency();
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

}  // namespace
}  // namespace auxview
