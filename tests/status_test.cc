#include "common/status.h"

#include <gtest/gtest.h>

namespace auxview {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
}

TEST(StatusTest, AbortedIsAnError) {
  Status s = Status::Aborted("assertion 'A' would be violated");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.ToString(), "Aborted: assertion 'A' would be violated");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  StatusOr<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Doubled(int x) {
  AUXVIEW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

Status CheckIt(int x) {
  AUXVIEW_RETURN_IF_ERROR(Doubled(x).status());
  return Status::Ok();
}

TEST(StatusOrTest, Macros) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
  EXPECT_TRUE(CheckIt(1).ok());
  EXPECT_FALSE(CheckIt(-2).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(3);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 3);
}

}  // namespace
}  // namespace auxview
