#include <gtest/gtest.h>

#include "exec/executor.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"
#include "workload/fig5.h"
#include "workload/txn_stream.h"

namespace auxview {
namespace {

TEST(EmpDeptTest, PopulateMatchesConfig) {
  EmpDeptConfig config;
  config.num_depts = 20;
  config.emps_per_dept = 5;
  EmpDeptWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  EXPECT_EQ(db.FindTable("Emp")->row_count(), 100);
  EXPECT_EQ(db.FindTable("Dept")->row_count(), 20);
  EXPECT_EQ(db.counter().total(), 0);  // population is uncharged
}

TEST(EmpDeptTest, ViolationFraction) {
  EmpDeptConfig config;
  config.num_depts = 200;
  config.emps_per_dept = 3;
  config.violation_fraction = 0.25;
  config.seed = 5;
  EmpDeptWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Executor executor(&db);
  auto result = executor.Execute(**tree);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->total_count()), 50, 20);
}

TEST(EmpDeptTest, StatsMatchData) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  RelationStats actual = db.FindTable("Emp")->ComputeStats();
  const RelationStats& declared = workload.catalog().FindTable("Emp")->stats;
  EXPECT_DOUBLE_EQ(actual.row_count, declared.row_count);
  EXPECT_DOUBLE_EQ(actual.distinct["DName"], declared.DistinctOf("DName"));
}

TEST(ChainTest, PopulateAndJoinability) {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 60;
  config.fanout = 3;
  ChainWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  Executor executor(&db);
  auto result = executor.Execute(**tree);
  ASSERT_TRUE(result.ok());
  // Every row joins through the key chain.
  EXPECT_GT(result->total_count(), 0);
}

TEST(ChainTest, AggregateVariant) {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 40;
  config.with_aggregate = true;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->kind(), OpKind::kAggregate);
  EXPECT_EQ(workload.AllTxns().size(), 3u);
  EXPECT_EQ(workload.AllTxns({7})[0].weight, 7);
}

TEST(Fig5Test, PopulateAndEvaluate) {
  Fig5Config config;
  config.num_items = 30;
  Fig5Workload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  auto tree = workload.ViewTree();
  ASSERT_TRUE(tree.ok());
  Executor executor(&db);
  auto result = executor.Execute(**tree);
  ASSERT_TRUE(result.ok());
  // One output row per R row (every item has orders).
  EXPECT_EQ(result->total_count(), 30 * config.r_rows_per_item);
}

TEST(TxnGeneratorTest, ModifyPerturbsOnlyDeclaredAttrs) {
  EmpDeptConfig config;
  config.num_depts = 10;
  config.emps_per_dept = 2;
  EmpDeptWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  TxnGenerator gen(99);
  auto txn = gen.Generate(workload.TxnModEmp(), db);
  ASSERT_TRUE(txn.ok());
  ASSERT_EQ(txn->updates.size(), 1u);
  ASSERT_EQ(txn->updates[0].modifies.size(), 1u);
  const auto& [old_row, new_row] = txn->updates[0].modifies[0];
  EXPECT_EQ(old_row[0], new_row[0]);  // EName unchanged
  EXPECT_EQ(old_row[1], new_row[1]);  // DName unchanged
  EXPECT_NE(old_row[2], new_row[2]);  // Salary changed
  // The old row really exists.
  EXPECT_GT(db.FindTable("Emp")->CountOf(old_row), 0);
}

TEST(TxnGeneratorTest, InsertUsesFreshKeys) {
  EmpDeptConfig config;
  config.num_depts = 5;
  config.emps_per_dept = 2;
  EmpDeptWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  TxnGenerator gen(7);
  TransactionType hire;
  hire.name = "hire";
  hire.updates.push_back(UpdateSpec{"Emp", UpdateKind::kInsert, 3, {}, {}});
  auto txn = gen.Generate(hire, db);
  ASSERT_TRUE(txn.ok());
  ASSERT_EQ(txn->updates[0].inserts.size(), 3u);
  for (const auto& [row, count] : txn->updates[0].inserts) {
    EXPECT_EQ(count, 1);
    EXPECT_EQ(db.FindTable("Emp")->CountOf(row), 0);  // genuinely new
    EXPECT_EQ(row[0].str().rfind("fresh_", 0), 0u);
  }
}

TEST(TxnGeneratorTest, DeleteTargetsExistingRows) {
  EmpDeptConfig config;
  config.num_depts = 5;
  config.emps_per_dept = 2;
  EmpDeptWorkload workload{config};
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  TxnGenerator gen(8);
  TransactionType quit;
  quit.name = "quit";
  quit.updates.push_back(UpdateSpec{"Emp", UpdateKind::kDelete, 2, {}, {}});
  auto txn = gen.Generate(quit, db);
  ASSERT_TRUE(txn.ok());
  ASSERT_EQ(txn->updates[0].deletes.size(), 2u);
  for (const auto& [row, count] : txn->updates[0].deletes) {
    EXPECT_EQ(db.FindTable("Emp")->CountOf(row), count);
  }
}

TEST(TxnGeneratorTest, UnknownRelationFails) {
  Database db;
  TxnGenerator gen(1);
  EXPECT_EQ(gen.Generate(SingleModifyTxn("t", "Ghost", {"x"}), db)
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace auxview
