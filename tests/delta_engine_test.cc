// Unit tests for the runtime delta engine: fetch paths, alignment, the
// fetch cache, and delta application pairing.

#include "maintain/delta_engine.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "exec/executor.h"
#include "maintain/view_manager.h"
#include "memo/expand.h"
#include "obs/metrics.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class DeltaEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EmpDeptConfig config;
    config.num_depts = 5;
    config.emps_per_dept = 3;
    workload_ = std::make_unique<EmpDeptWorkload>(config);
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok());
    auto memo = BuildExpandedMemo(*tree, workload_->catalog());
    ASSERT_TRUE(memo.ok());
    memo_ = std::make_unique<Memo>(std::move(memo).value());
    ASSERT_TRUE(workload_->Populate(&db_).ok());
    engine_ = std::make_unique<DeltaEngine>(memo_.get(),
                                            &workload_->catalog(), &db_);
    for (GroupId g : memo_->LiveGroups()) {
      const MemoGroup& grp = memo_->group(g);
      if (grp.is_leaf && grp.table == "Emp") emp_ = g;
      for (int eid : grp.exprs) {
        const MemoExpr& e = memo_->expr(eid);
        if (e.dead) continue;
        if (e.kind() == OpKind::kAggregate &&
            e.op->group_by() == std::vector<std::string>{"DName"}) {
          n3_ = g;
        }
        if (e.kind() == OpKind::kJoin) {
          bool leaf_join = true;
          for (GroupId in : e.inputs) {
            if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
          }
          if (leaf_join) n4_ = g;
        }
      }
    }
    ASSERT_GE(n3_, 0);
    ASSERT_GE(n4_, 0);
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
  Database db_;
  std::unique_ptr<DeltaEngine> engine_;
  GroupId emp_ = -1, n3_ = -1, n4_ = -1;
};

TEST_F(DeltaEngineTest, FetchFromBaseRelation) {
  auto rows = engine_->FetchMatching(emp_, {"DName"},
                                     {Value::String("d0002")}, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->total_count(), 3);
}

TEST_F(DeltaEngineTest, FetchThroughUnmaterializedAggregate) {
  auto rows = engine_->FetchMatching(n3_, {"DName"},
                                     {Value::String("d0001")}, {});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->total_count(), 1);
  // The fetched aggregate row matches a recomputation.
  Executor executor(&db_);
  auto full = executor.Execute(**memo_->ExtractOriginalTree(n3_));
  ASSERT_TRUE(full.ok());
  for (const auto& [row, count] : rows->rows()) {
    EXPECT_EQ(full->CountOf(row), count);
  }
}

TEST_F(DeltaEngineTest, FetchThroughJoinPushesLookup) {
  db_.counter().Reset();
  auto rows = engine_->FetchMatching(n4_, {"DName"},
                                     {Value::String("d0003")}, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->total_count(), 3);  // 3 employees joined with 1 dept
  // A pushed-down lookup, not a pair of scans.
  EXPECT_LT(db_.counter().total(), 10);
}

TEST_F(DeltaEngineTest, EmptyAttrsFetchEverything) {
  auto all = engine_->FetchMatching(n4_, {}, {}, {});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->total_count(), 15);
}

TEST_F(DeltaEngineTest, FetchFromMaterializedViewUsesItsTable) {
  ViewManager manager(memo_.get(), &workload_->catalog(), &db_);
  ASSERT_TRUE(manager.Materialize({memo_->root(), n3_}).ok());
  db_.counter().Reset();
  auto rows = engine_->FetchMatching(n3_, {"DName"},
                                     {Value::String("d0000")},
                                     {memo_->root(), n3_});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->total_count(), 1);
  // Index probe: one index page + one tuple.
  EXPECT_EQ(db_.counter().total(), 2);
}

TEST_F(DeltaEngineTest, ComputeDeltasForModify) {
  const TransactionType type = workload_->TxnModEmp();
  StatsAnalysis stats(memo_.get(), &workload_->catalog());
  DeltaAnalysis analysis(memo_.get(), &workload_->catalog(), &stats);
  TrackEnumerator enumerator(memo_.get(), &analysis);
  auto tracks = enumerator.Enumerate({memo_->root()}, type);
  ASSERT_TRUE(tracks.ok());

  // A concrete salary change.
  Table* emp = db_.FindTable("Emp");
  const Row old_row = emp->SnapshotUncharged()[0].row;
  Row new_row = old_row;
  new_row[2] = Value::Int64(old_row[2].int64() + 1000);
  ConcreteTxn txn;
  txn.type_name = type.name;
  txn.updates.push_back(TableUpdate{"Emp", {}, {}, {{old_row, new_row}}});

  auto deltas =
      engine_->ComputeDeltas(txn, type, (*tracks)[0], {memo_->root()});
  ASSERT_TRUE(deltas.ok()) << deltas.status().ToString();
  // The Emp leaf delta has -old +new.
  const Relation& leaf = deltas->at(emp_);
  EXPECT_EQ(leaf.CountOf(old_row), -1);
  EXPECT_EQ(leaf.CountOf(new_row), 1);
  // The root delta nets to zero rows entering/leaving (budgets are high).
  ASSERT_TRUE(deltas->count(memo_->root()));
}

TEST(ApplyDeltaToTableTest, PairsModifiesAndBatchesIndexPages) {
  PageCounter counter;
  TableDef def;
  def.name = "V";
  def.schema = Schema::Create({{"g", ValueType::kString},
                               {"s", ValueType::kInt64}})
                   .value();
  def.indexes = {IndexDef{{"g"}}};
  Table table(def, &counter);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::String("g" + std::to_string(i)),
                             Value::Int64(100 + i)})
                    .ok());
  }
  // A delta modifying three rows (same-key -old/+new pairs).
  Relation delta(def.schema);
  for (int i = 0; i < 3; ++i) {
    delta.Add({Value::String("g" + std::to_string(i)), Value::Int64(100 + i)},
              -1);
    delta.Add({Value::String("g" + std::to_string(i)), Value::Int64(999)},
              1);
  }
  counter.Reset();
  ASSERT_TRUE(ApplyDeltaToTable(&table, delta, {"g"}).ok());
  // Three separate keys -> three batches of one modify: 3 x (1 idx + r + w).
  EXPECT_EQ(counter.total(), 9);
  EXPECT_EQ(table.CountOf({Value::String("g1"), Value::Int64(999)}), 1);
  EXPECT_EQ(table.CountOf({Value::String("g1"), Value::Int64(101)}), 0);

  // Unpairable leftovers fall back to insert/delete.
  Relation mixed(def.schema);
  mixed.Add({Value::String("g9"), Value::Int64(5)}, 1);   // plain insert
  mixed.Add({Value::String("g4"), Value::Int64(104)}, -1);  // plain delete
  ASSERT_TRUE(ApplyDeltaToTable(&table, mixed, {"g"}).ok());
  EXPECT_EQ(table.CountOf({Value::String("g9"), Value::Int64(5)}), 1);
  EXPECT_EQ(table.CountOf({Value::String("g4"), Value::Int64(104)}), 0);
}

TEST_F(DeltaEngineTest, FetchCacheAvoidsRecharging) {
  const TransactionType type = workload_->TxnModEmp();
  StatsAnalysis stats(memo_.get(), &workload_->catalog());
  DeltaAnalysis analysis(memo_.get(), &workload_->catalog(), &stats);
  TrackEnumerator enumerator(memo_.get(), &analysis);
  // Mark both N3 and N4: the two join alternatives probe Dept identically.
  const ViewSet views = {memo_->root(), n3_, n4_};
  auto tracks = enumerator.Enumerate(views, type);
  ASSERT_TRUE(tracks.ok());
  ViewManager manager(memo_.get(), &workload_->catalog(), &db_);
  ASSERT_TRUE(manager.Materialize(views).ok());

  Table* emp = db_.FindTable("Emp");
  const Row old_row = emp->SnapshotUncharged()[0].row;
  Row new_row = old_row;
  new_row[2] = Value::Int64(old_row[2].int64() + 7);
  ConcreteTxn txn;
  txn.type_name = type.name;
  txn.updates.push_back(TableUpdate{"Emp", {}, {}, {{old_row, new_row}}});

  db_.counter().Reset();
  auto deltas = engine_->ComputeDeltas(txn, type, (*tracks)[0], views);
  ASSERT_TRUE(deltas.ok());
  // Dept is probed by DName at most once despite two join operation nodes.
  EXPECT_LE(db_.counter().index_reads(), 3);
}

TEST_F(DeltaEngineTest, MaintenancePassChargesMetricsCounters) {
  const TransactionType type = workload_->TxnModEmp();
  StatsAnalysis stats(memo_.get(), &workload_->catalog());
  DeltaAnalysis analysis(memo_.get(), &workload_->catalog(), &stats);
  TrackEnumerator enumerator(memo_.get(), &analysis);
  const ViewSet views = {memo_->root(), n3_};
  auto tracks = enumerator.Enumerate(views, type);
  ASSERT_TRUE(tracks.ok());
  ViewManager manager(memo_.get(), &workload_->catalog(), &db_);
  ASSERT_TRUE(manager.Materialize(views).ok());

  Table* emp = db_.FindTable("Emp");
  const Row old_row = emp->SnapshotUncharged()[0].row;
  Row new_row = old_row;
  new_row[2] = Value::Int64(old_row[2].int64() + 50);
  ConcreteTxn txn;
  txn.type_name = type.name;
  txn.updates.push_back(TableUpdate{"Emp", {}, {}, {{old_row, new_row}}});

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* page_reads = reg.GetCounter("storage.page_reads");
  obs::Counter* computes = reg.GetCounter("maintain.compute_deltas");
  obs::Counter* deltas_out = reg.GetCounter("maintain.deltas_computed");
  const int64_t reads_before = page_reads->value();
  const int64_t computes_before = computes->value();
  const int64_t deltas_before = deltas_out->value();

  db_.counter().Reset();
  auto deltas = engine_->ComputeDeltas(txn, type, (*tracks)[0], views);
  ASSERT_TRUE(deltas.ok());

  EXPECT_EQ(computes->value(), computes_before + 1);
  EXPECT_EQ(deltas_out->value() - deltas_before,
            static_cast<int64_t>(deltas->size()));
  // The global mirror advances in lockstep with the scoped PageCounter:
  // fetching the pre-update state pays real page reads, and every one of
  // them lands in storage.page_reads.
  const int64_t local_reads =
      db_.counter().index_reads() + db_.counter().tuple_reads();
  EXPECT_GT(local_reads, 0);
  EXPECT_EQ(page_reads->value() - reads_before, local_reads);
}

}  // namespace
}  // namespace auxview
