// Randomized end-to-end fuzzing: random view shapes (chain joins, optional
// aggregate, optional HAVING-style select), random view sets, and random
// update mixes (value modifies, foreign-key modifies, inserts, deletes) —
// after every transaction, every maintained view must equal from-scratch
// recomputation.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomViewRandomViewSetRandomStream) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 7919 + 13);

  ChainConfig config;
  config.num_relations = static_cast<int>(rng.Uniform(2, 4));
  config.rows_per_relation = static_cast<int>(rng.Uniform(20, 60));
  config.fanout = static_cast<int>(rng.Uniform(1, 3));
  config.with_aggregate = rng.Bernoulli(0.7);
  config.seed = seed;
  ChainWorkload workload{config};

  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  Expr::Ptr view = *tree;
  if (config.with_aggregate && rng.Bernoulli(0.5)) {
    // HAVING-style filter over the aggregate output.
    auto filtered = Expr::Select(
        view, Scalar::Gt(Col("VSum"), Lit(rng.Uniform(100, 1500))));
    ASSERT_TRUE(filtered.ok());
    view = *filtered;
  }

  auto memo = BuildExpandedMemo(view, workload.catalog());
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();

  // Random view set: each non-leaf group materialized with probability 1/2.
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) {
    if (rng.Bernoulli(0.5)) views.insert(g);
  }

  // Random transaction types. Value modifies, FK modifies (re-pointing a
  // join edge), inserts and deletes; never primary keys (declared keys must
  // stay valid for the rule set's equivalences to hold).
  std::vector<TransactionType> txns;
  for (int i = 0; i < 3; ++i) {
    const int rel = static_cast<int>(
        rng.Uniform(0, config.num_relations - 1));
    const std::string relation = workload.RelationName(rel);
    TransactionType txn;
    txn.name = "t" + std::to_string(i) + ":" + relation;
    const int64_t kind = rng.Uniform(0, 3);
    UpdateSpec spec;
    spec.relation = relation;
    spec.count = rng.Uniform(1, 2);
    switch (kind) {
      case 0:
        spec.kind = UpdateKind::kModify;
        spec.modified_attrs = {"V" + std::to_string(rel + 1)};
        break;
      case 1:
        spec.kind = UpdateKind::kModify;
        spec.modified_attrs = {"A" + std::to_string(rel + 1)};  // FK
        break;
      case 2:
        spec.kind = UpdateKind::kInsert;
        break;
      default:
        spec.kind = UpdateKind::kDelete;
        break;
    }
    txn.updates.push_back(std::move(spec));
    txns.push_back(std::move(txn));
  }

  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  ViewManager manager(&*memo, &workload.catalog(), &db);
  ASSERT_TRUE(manager.Materialize(views).ok());
  ViewSelector selector(&*memo, &workload.catalog());
  TxnGenerator gen(seed);

  for (int step = 0; step < 10; ++step) {
    const TransactionType& type = txns[static_cast<size_t>(step) %
                                       txns.size()];
    auto plan = selector.BestTrack(views, type);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    Status applied = manager.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok())
        << "seed " << seed << " step " << step << " (" << type.name
        << "): " << applied.ToString();
    Status consistent = manager.CheckConsistency();
    ASSERT_TRUE(consistent.ok())
        << "seed " << seed << " step " << step << " (" << type.name
        << ") viewset " << ViewSetToString(views) << ":\n"
        << consistent.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace auxview
