#include "catalog/schema.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace auxview {
namespace {

TEST(SchemaTest, CreateAndLookup) {
  auto schema = Schema::Create({{"a", ValueType::kInt64},
                                {"b", ValueType::kString}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 2);
  EXPECT_EQ(schema->IndexOf("a"), 0);
  EXPECT_EQ(schema->IndexOf("b"), 1);
  EXPECT_EQ(schema->IndexOf("c"), -1);
  EXPECT_TRUE(schema->Contains("a"));
  EXPECT_EQ(schema->ToString(), "a:INT64, b:STRING");
}

TEST(SchemaTest, RejectsDuplicates) {
  auto schema = Schema::Create({{"a", ValueType::kInt64},
                                {"a", ValueType::kString}});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, Equality) {
  auto a = Schema::Create({{"x", ValueType::kInt64}}).value();
  auto b = Schema::Create({{"x", ValueType::kInt64}}).value();
  auto c = Schema::Create({{"x", ValueType::kDouble}}).value();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(CatalogTest, AddFindAndDuplicate) {
  Catalog catalog;
  TableDef def;
  def.name = "T";
  def.schema = Schema::Create({{"k", ValueType::kInt64}}).value();
  def.primary_key = {"k"};
  ASSERT_TRUE(catalog.AddTable(def).ok());
  EXPECT_TRUE(catalog.HasTable("T"));
  EXPECT_FALSE(catalog.HasTable("U"));
  EXPECT_EQ(catalog.AddTable(def).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"T"});
}

TEST(CatalogTest, HasIndexOnMatchesAnyOrder) {
  TableDef def;
  def.name = "T";
  def.schema = Schema::Create({{"a", ValueType::kInt64},
                               {"b", ValueType::kInt64}})
                   .value();
  def.primary_key = {"a", "b"};
  def.indexes = {IndexDef{{"b"}}};
  EXPECT_TRUE(def.HasIndexOn({"a", "b"}));
  EXPECT_TRUE(def.HasIndexOn({"b", "a"}));
  EXPECT_TRUE(def.HasIndexOn({"b"}));
  EXPECT_FALSE(def.HasIndexOn({"a"}));
}

TEST(CatalogTest, FdsFromPrimaryKey) {
  TableDef def;
  def.name = "Dept";
  def.schema = Schema::Create({{"DName", ValueType::kString},
                               {"Budget", ValueType::kInt64}})
                   .value();
  def.primary_key = {"DName"};
  FdSet fds = def.Fds();
  EXPECT_TRUE(fds.Determines({"DName"}, {"Budget"}));
  EXPECT_FALSE(fds.Determines({"Budget"}, {"DName"}));
}

TEST(CatalogTest, SetStats) {
  Catalog catalog;
  TableDef def;
  def.name = "T";
  def.schema = Schema::Create({{"k", ValueType::kInt64}}).value();
  ASSERT_TRUE(catalog.AddTable(def).ok());
  RelationStats stats;
  stats.row_count = 123;
  ASSERT_TRUE(catalog.SetStats("T", stats).ok());
  EXPECT_DOUBLE_EQ(catalog.FindTable("T")->stats.row_count, 123);
  EXPECT_EQ(catalog.SetStats("U", stats).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace auxview
