#include "delta/analysis.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "memo/expand.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class DeltaAnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok());
    auto memo = BuildExpandedMemo(*tree, workload_->catalog());
    ASSERT_TRUE(memo.ok());
    memo_ = std::make_unique<Memo>(std::move(memo).value());
    stats_ = std::make_unique<StatsAnalysis>(memo_.get(),
                                             &workload_->catalog());
    analysis_ = std::make_unique<DeltaAnalysis>(
        memo_.get(), &workload_->catalog(), stats_.get());
    for (GroupId g : memo_->LiveGroups()) {
      const MemoGroup& grp = memo_->group(g);
      if (grp.is_leaf && grp.table == "Emp") emp_ = g;
      if (grp.is_leaf && grp.table == "Dept") dept_ = g;
      for (int eid : grp.exprs) {
        const MemoExpr& e = memo_->expr(eid);
        if (e.dead) continue;
        if (e.kind() == OpKind::kJoin) {
          bool leaf_join = true;
          for (GroupId in : e.inputs) {
            if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
          }
          if (leaf_join && join_op_ < 0) {
            join_op_ = eid;
            n4_ = g;
          }
        }
        if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2 &&
            memo_->Find(e.inputs[0]) != g) {
          agg2_op_ = eid;
        }
        if (e.kind() == OpKind::kAggregate &&
            e.op->group_by() == std::vector<std::string>{"DName"}) {
          agg1_op_ = eid;
          n3_ = g;
        }
      }
    }
    ASSERT_GE(join_op_, 0);
    ASSERT_GE(agg1_op_, 0);
    ASSERT_GE(agg2_op_, 0);
  }

  DeltaInfo EmpDelta() {
    return analysis_->LeafDelta(*workload_->catalog().FindTable("Emp"),
                                workload_->TxnModEmp().updates[0]);
  }
  DeltaInfo DeptDelta() {
    return analysis_->LeafDelta(*workload_->catalog().FindTable("Dept"),
                                workload_->TxnModDept().updates[0]);
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<StatsAnalysis> stats_;
  std::unique_ptr<DeltaAnalysis> analysis_;
  GroupId emp_ = -1, dept_ = -1, n3_ = -1, n4_ = -1;
  int join_op_ = -1, agg1_op_ = -1, agg2_op_ = -1;
};

TEST_F(DeltaAnalysisTest, AffectedGroups) {
  const auto affected_emp = analysis_->AffectedGroups(workload_->TxnModEmp());
  EXPECT_TRUE(affected_emp.count(emp_));
  EXPECT_FALSE(affected_emp.count(dept_));
  EXPECT_TRUE(affected_emp.count(n3_));
  EXPECT_TRUE(affected_emp.count(n4_));
  EXPECT_TRUE(affected_emp.count(memo_->root()));

  const auto affected_dept =
      analysis_->AffectedGroups(workload_->TxnModDept());
  EXPECT_FALSE(affected_dept.count(n3_));  // SumOfSals ignores Dept
  EXPECT_TRUE(affected_dept.count(n4_));
}

TEST_F(DeltaAnalysisTest, LeafDeltaCompleteForPrimaryKey) {
  DeltaInfo d = DeptDelta();
  EXPECT_DOUBLE_EQ(d.size, 1);
  EXPECT_EQ(d.kind, UpdateKind::kModify);
  EXPECT_TRUE(d.CompleteWithin({"DName"}));
  EXPECT_EQ(d.modified_attrs, std::set<std::string>{"Budget"});
}

TEST_F(DeltaAnalysisTest, JoinFanoutAndCompleteness) {
  // Delta Dept joined with Emp: 10 rows, complete on DName.
  const MemoExpr& join = memo_->expr(join_op_);
  std::vector<DeltaInfo> children(2);
  const bool emp_is_left = memo_->Find(join.inputs[0]) == emp_;
  children[emp_is_left ? 1 : 0] = DeptDelta();
  DeltaInfo out = analysis_->Propagate(join, children);
  EXPECT_DOUBLE_EQ(out.size, 10);
  EXPECT_TRUE(out.CompleteWithin({"DName"}));
  EXPECT_TRUE(out.CompleteWithin({"DName", "Budget"}));

  // Delta Emp joined with Dept: 1 row, complete only on EName.
  std::vector<DeltaInfo> children2(2);
  children2[emp_is_left ? 0 : 1] = EmpDelta();
  DeltaInfo out2 = analysis_->Propagate(join, children2);
  EXPECT_DOUBLE_EQ(out2.size, 1);
  EXPECT_FALSE(out2.CompleteWithin({"DName"}));
  EXPECT_TRUE(out2.CompleteWithin({"EName"}));
}

TEST_F(DeltaAnalysisTest, AggregateDeltaCountsGroups) {
  const MemoExpr& join = memo_->expr(join_op_);
  const MemoExpr& agg = memo_->expr(agg2_op_);
  std::vector<DeltaInfo> children(2);
  const bool emp_is_left = memo_->Find(join.inputs[0]) == emp_;
  children[emp_is_left ? 1 : 0] = DeptDelta();
  DeltaInfo join_delta = analysis_->Propagate(join, children);
  DeltaInfo agg_delta = analysis_->Propagate(agg, {join_delta});
  EXPECT_DOUBLE_EQ(agg_delta.size, 1);  // one affected department group
  EXPECT_EQ(agg_delta.kind, UpdateKind::kModify);
}

TEST_F(DeltaAnalysisTest, Q3dElision) {
  // >Dept through the join: the delta is group-complete, no query needed
  // whether or not N2 is materialized.
  const MemoExpr& join = memo_->expr(join_op_);
  const MemoExpr& agg = memo_->expr(agg2_op_);
  std::vector<DeltaInfo> children(2);
  const bool emp_is_left = memo_->Find(join.inputs[0]) == emp_;
  children[emp_is_left ? 1 : 0] = DeptDelta();
  DeltaInfo join_delta = analysis_->Propagate(join, children);
  EXPECT_FALSE(analysis_->AggregateNeedsQuery(agg, join_delta, false));
  EXPECT_FALSE(analysis_->AggregateNeedsQuery(agg, join_delta, true));
}

TEST_F(DeltaAnalysisTest, Q4eElisionOnlyWhenMaterialized) {
  // >Emp at Aggregate(Emp BY DName): query unless the view is materialized
  // (SUM is self-maintainable under a Salary modify).
  const MemoExpr& agg = memo_->expr(agg1_op_);
  DeltaInfo emp_delta = EmpDelta();
  EXPECT_TRUE(analysis_->AggregateNeedsQuery(agg, emp_delta, false));
  EXPECT_FALSE(analysis_->AggregateNeedsQuery(agg, emp_delta, true));
}

TEST_F(DeltaAnalysisTest, GroupByAttributeModifyForcesQuery) {
  // Moving an employee between departments empties groups potentially:
  // self-maintenance must not apply (no COUNT column in the view).
  const MemoExpr& agg = memo_->expr(agg1_op_);
  DeltaInfo move = analysis_->LeafDelta(
      *workload_->catalog().FindTable("Emp"),
      SingleModifyTxn("move", "Emp", {"DName"}).updates[0]);
  EXPECT_TRUE(analysis_->AggregateNeedsQuery(agg, move, true));
}

TEST_F(DeltaAnalysisTest, DeleteWithoutCountForcesQuery) {
  const MemoExpr& agg = memo_->expr(agg1_op_);
  DeltaInfo del;
  del.size = 1;
  del.kind = UpdateKind::kDelete;
  del.AddComplete({"EName"});
  EXPECT_TRUE(analysis_->AggregateNeedsQuery(agg, del, true));
}

TEST_F(DeltaAnalysisTest, JoinAttrModifyBreaksCountPreservation) {
  // Regression (found by fuzzing): modifying a join attribute re-points the
  // join, so a group downstream can lose all its rows; SUM-only
  // self-maintenance must not be used.
  const MemoExpr& join = memo_->expr(join_op_);
  const bool emp_is_left = memo_->Find(join.inputs[0]) == emp_;
  DeltaInfo fk_move = analysis_->LeafDelta(
      *workload_->catalog().FindTable("Emp"),
      SingleModifyTxn("rehome", "Emp", {"DName"}).updates[0]);
  EXPECT_TRUE(fk_move.count_preserving);
  std::vector<DeltaInfo> children(2);
  children[emp_is_left ? 0 : 1] = fk_move;
  DeltaInfo out = analysis_->Propagate(join, children);
  EXPECT_FALSE(out.count_preserving);

  // A value-only modify stays count-preserving through the join.
  std::vector<DeltaInfo> children2(2);
  children2[emp_is_left ? 0 : 1] = EmpDelta();
  DeltaInfo out2 = analysis_->Propagate(join, children2);
  EXPECT_TRUE(out2.count_preserving);
}

TEST_F(DeltaAnalysisTest, NonCountPreservingModifyForcesAggregateQuery) {
  const MemoExpr& agg = memo_->expr(agg2_op_);
  DeltaInfo delta;
  delta.size = 1;
  delta.kind = UpdateKind::kModify;
  delta.count_preserving = false;
  EXPECT_TRUE(analysis_->AggregateNeedsQuery(agg, delta, true));
  delta.count_preserving = true;
  EXPECT_FALSE(analysis_->AggregateNeedsQuery(agg, delta, true));
}

TEST_F(DeltaAnalysisTest, SelectOnModifiedColumnBreaksPreservation) {
  EmpDeptWorkload w{EmpDeptConfig{}};
  ExprBuilder b(&w.catalog());
  auto sel = b.Select(b.Scan("Emp"),
                      Scalar::Gt(Col("Salary"), Lit(int64_t{50000})));
  Memo memo;
  ASSERT_TRUE(memo.AddTree(sel).ok());
  StatsAnalysis stats(&memo, &w.catalog());
  DeltaAnalysis analysis(&memo, &w.catalog(), &stats);
  const MemoExpr& e = memo.expr(memo.LiveExprs()[0]);
  DeltaInfo in;
  in.size = 1;
  in.kind = UpdateKind::kModify;
  in.modified_attrs = {"Salary"};  // the raise can flip the predicate
  DeltaInfo out = analysis.Propagate(e, {in});
  EXPECT_FALSE(out.count_preserving);
  in.modified_attrs = {"DName"};  // irrelevant to the predicate
  DeltaInfo out2 = analysis.Propagate(e, {in});
  EXPECT_TRUE(out2.count_preserving);
}

TEST_F(DeltaAnalysisTest, SelectKeepsDeltaAlive) {
  // Selection with a selective predicate must not zero out the delta (the
  // node is still affected).
  EmpDeptWorkload w{EmpDeptConfig{}};
  ExprBuilder b(&w.catalog());
  auto sel = b.Select(b.Scan("Emp"),
                      Scalar::Eq(Col("DName"), Lit("d0001")));
  Memo memo;
  ASSERT_TRUE(memo.AddTree(sel).ok());
  StatsAnalysis stats(&memo, &w.catalog());
  DeltaAnalysis analysis(&memo, &w.catalog(), &stats);
  DeltaInfo in;
  in.size = 1;
  in.kind = UpdateKind::kModify;
  const MemoExpr& e = memo.expr(memo.LiveExprs()[0]);
  DeltaInfo out = analysis.Propagate(e, {in});
  EXPECT_GT(out.size, 0);
}

}  // namespace
}  // namespace auxview
