#include "exec/kernels/kernels.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "algebra/builder.h"
#include "exec/kernels/row_batch.h"
#include "obs/metrics.h"

namespace auxview {
namespace kernels {
namespace {

// Each kernel is exercised directly — no tables, no executor — over the four
// shapes every kernel must handle: an empty batch, a single row, duplicate
// keys (including uncoalesced repeated entries, which Relation can never
// produce but delta batches can), and NULL-bearing values.

Schema GvSchema() {
  return Schema::Create({{"g", ValueType::kString}, {"v", ValueType::kInt64}})
      .value();
}

Row GV(const char* g, int64_t v) {
  return {Value::String(g), Value::Int64(v)};
}

Row GNull(const char* g) { return {Value::String(g), Value::Null()}; }

Expr::Ptr GvScan() { return Expr::Scan("T", GvSchema()); }

// --- RowBatch ---------------------------------------------------------------

TEST(RowBatchTest, EmptyBatchBasics) {
  RowBatch batch(GvSchema());
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_rows(), 0);
  EXPECT_EQ(batch.total_count(), 0);
  EXPECT_EQ(batch.width(), 2);
  EXPECT_TRUE(batch.ToRelation().empty());
}

TEST(RowBatchTest, AppendDropsZeroCountsKeepsSignedOnes) {
  RowBatch batch(GvSchema());
  batch.Append(GV("a", 1), 0);  // dropped, mirroring Relation::Add
  EXPECT_TRUE(batch.empty());
  batch.Append(GV("a", 1), 2);
  batch.Append(GV("a", 1), -2);  // same row, separate entry: batches are flat
  EXPECT_EQ(batch.num_rows(), 2);
  EXPECT_EQ(batch.total_count(), 0);
  EXPECT_EQ(batch.RowAt(0), GV("a", 1));
  EXPECT_EQ(batch.count(1), -2);
  // Coalescing is ToRelation's job: the +2/-2 pair cancels there.
  EXPECT_TRUE(batch.ToRelation().empty());
}

TEST(RowBatchTest, RelationRoundTrip) {
  Relation rel(GvSchema());
  rel.Add(GV("a", 1), 2);
  rel.Add(GV("b", 2), -1);
  RowBatch batch = RowBatch::FromRelation(rel);
  EXPECT_EQ(batch.num_rows(), 2);
  EXPECT_TRUE(batch.ToRelation().BagEquals(rel));
}

TEST(RowBatchTest, AppendConcatBuildsJoinShape) {
  RowBatch batch(Schema::Create({{"g", ValueType::kString},
                                 {"v", ValueType::kInt64},
                                 {"w", ValueType::kInt64}})
                     .value());
  RowBatch left(GvSchema());
  left.Append(GV("a", 1), 1);
  RowBatch right(GvSchema());
  right.Append(GV("a", 7), 1);
  batch.AppendConcat(left.row(0), right.row(0), {1}, 6);
  ASSERT_EQ(batch.num_rows(), 1);
  EXPECT_EQ(batch.RowAt(0),
            Row({Value::String("a"), Value::Int64(1), Value::Int64(7)}));
  EXPECT_EQ(batch.count(0), 6);
}

// --- HashIndex --------------------------------------------------------------

TEST(HashIndexTest, EmptyBatch) {
  RowBatch batch(GvSchema());
  HashIndex index(&batch, {0});
  EXPECT_EQ(index.distinct_keys(), 0);
  EXPECT_EQ(index.Probe({Value::String("a")}), nullptr);
}

TEST(HashIndexTest, DuplicateKeysKeepBatchOrder) {
  RowBatch batch(GvSchema());
  batch.Append(GV("a", 1), 1);
  batch.Append(GV("b", 2), 1);
  batch.Append(GV("a", 3), 1);
  HashIndex index(&batch, {0});
  EXPECT_EQ(index.distinct_keys(), 2);
  const std::vector<int64_t>* a = index.Probe({Value::String("a")});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(index.Probe({Value::String("missing")}), nullptr);
}

// --- Filter -----------------------------------------------------------------

Expr::Ptr FilterVPositive() {
  return Expr::Select(GvScan(), Scalar::Gt(Col("v"), Lit(int64_t{0}))).value();
}

TEST(FilterTest, EmptyInput) {
  RowBatch in(GvSchema());
  auto out = Filter(*FilterVPositive(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(FilterTest, SingleRowPassAndFail) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 5), 1);
  auto pass = Filter(*FilterVPositive(), in);
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass->num_rows(), 1);

  RowBatch neg(GvSchema());
  neg.Append(GV("a", -5), 1);
  auto fail = Filter(*FilterVPositive(), neg);
  ASSERT_TRUE(fail.ok());
  EXPECT_TRUE(fail->empty());
}

TEST(FilterTest, NullPredicateExcludesRow) {
  // v IS NULL makes v > 0 evaluate to NULL, which is not true.
  RowBatch in(GvSchema());
  in.Append(GNull("a"), 1);
  in.Append(GV("b", 1), 1);
  auto out = Filter(*FilterVPositive(), in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->RowAt(0), GV("b", 1));
}

TEST(FilterTest, PreservesSignedCountsAndDuplicateEntries) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 5), 2);
  in.Append(GV("a", 5), -3);  // a delta batch retracting the same row
  auto out = Filter(*FilterVPositive(), in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->count(0), 2);
  EXPECT_EQ(out->count(1), -3);
}

// --- Project ----------------------------------------------------------------

Expr::Ptr ProjectDoubleV() {
  return Expr::Project(GvScan(),
                       {{Scalar::Mul(Col("v"), Lit(int64_t{2})), "v2"},
                        {Col("g"), "g"}})
      .value();
}

TEST(ProjectTest, EmptyInput) {
  RowBatch in(GvSchema());
  auto out = Project(*ProjectDoubleV(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(out->schema().num_columns(), 2);
}

TEST(ProjectTest, SingleRowEvaluatesItems) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 21), 3);
  auto out = Project(*ProjectDoubleV(), in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->RowAt(0), Row({Value::Int64(42), Value::String("a")}));
  EXPECT_EQ(out->count(0), 3);
}

TEST(ProjectTest, NullPropagatesThroughArithmetic) {
  RowBatch in(GvSchema());
  in.Append(GNull("a"), 1);
  auto out = Project(*ProjectDoubleV(), in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_TRUE(out->RowAt(0)[0].is_null());
}

TEST(ProjectTest, DoesNotCoalesceDuplicateOutputs) {
  // Projecting away v collapses distinct inputs onto one output row; the
  // kernel must keep them as separate entries — coalescing is the consumer's
  // choice (ToRelation), not the kernel's.
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), 1);
  in.Append(GV("a", 2), 1);
  auto project = Expr::Project(GvScan(), {{Col("g"), "g"}}).value();
  auto out = Project(*project, in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->ToRelation().CountOf({Value::String("a")}), 2);
}

// --- HashJoin ---------------------------------------------------------------

struct JoinFixture {
  Schema left_schema = Schema::Create({{"k", ValueType::kString},
                                       {"a", ValueType::kInt64}})
                           .value();
  Schema right_schema = Schema::Create({{"k", ValueType::kString},
                                        {"b", ValueType::kInt64}})
                            .value();
  Expr::Ptr expr = Expr::Join(Expr::Scan("L", left_schema),
                              Expr::Scan("R", right_schema), {"k"})
                       .value();

  static Row KA(const char* k, int64_t a) {
    return {Value::String(k), Value::Int64(a)};
  }
};

TEST(HashJoinTest, EmptySideYieldsEmpty) {
  JoinFixture f;
  RowBatch left(f.left_schema);
  RowBatch right(f.right_schema);
  right.Append(JoinFixture::KA("x", 1), 1);
  auto out = HashJoin(*f.expr, left, right);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  auto out2 = HashJoin(*f.expr, right, RowBatch(f.right_schema));
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2->empty());
}

TEST(HashJoinTest, SingleMatchConcatenatesNonJoinColumns) {
  JoinFixture f;
  RowBatch left(f.left_schema);
  left.Append(JoinFixture::KA("x", 1), 1);
  RowBatch right(f.right_schema);
  right.Append(JoinFixture::KA("x", 9), 1);
  right.Append(JoinFixture::KA("y", 8), 1);
  auto out = HashJoin(*f.expr, left, right);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->RowAt(0),
            Row({Value::String("x"), Value::Int64(1), Value::Int64(9)}));
}

TEST(HashJoinTest, DuplicateKeysMultiplyMultiplicities) {
  JoinFixture f;
  RowBatch left(f.left_schema);
  left.Append(JoinFixture::KA("x", 1), 2);
  left.Append(JoinFixture::KA("x", 2), 3);
  RowBatch right(f.right_schema);
  right.Append(JoinFixture::KA("x", 9), 5);
  right.Append(JoinFixture::KA("x", 8), 7);
  auto out = HashJoin(*f.expr, left, right);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4);  // every left entry pairs every right entry
  EXPECT_EQ(out->total_count(), (2 + 3) * (5 + 7));
}

TEST(HashJoinTest, NegativeDeltaCountsMultiplyThrough) {
  JoinFixture f;
  RowBatch left(f.left_schema);
  left.Append(JoinFixture::KA("x", 1), -1);
  RowBatch right(f.right_schema);
  right.Append(JoinFixture::KA("x", 9), 2);
  auto out = HashJoin(*f.expr, left, right);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->count(0), -2);
}

TEST(HashJoinTest, NullKeysMatchEachOther) {
  // Join keys compare with Value::Compare, where NULL equals NULL — the
  // binder never produces nullable join keys, but delta batches flow through
  // the same kernel, so the storage-level semantics is pinned here.
  JoinFixture f;
  RowBatch left(f.left_schema);
  left.Append({Value::Null(), Value::Int64(1)}, 1);
  RowBatch right(f.right_schema);
  right.Append({Value::Null(), Value::Int64(9)}, 1);
  right.Append(JoinFixture::KA("x", 8), 1);
  auto out = HashJoin(*f.expr, left, right);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_TRUE(out->RowAt(0)[0].is_null());
  EXPECT_EQ(out->RowAt(0)[2].int64(), 9);
}

// --- GroupedAggregate -------------------------------------------------------

Expr::Ptr AggAll() {
  return Expr::Aggregate(GvScan(), {"g"},
                         {{AggFunc::kSum, Col("v"), "S"},
                          {AggFunc::kCount, nullptr, "N"},
                          {AggFunc::kCount, Col("v"), "Nv"},
                          {AggFunc::kMin, Col("v"), "Lo"},
                          {AggFunc::kMax, Col("v"), "Hi"},
                          {AggFunc::kAvg, Col("v"), "Mean"}})
      .value();
}

Row FindGroup(const RowBatch& batch, const char* g) {
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    if (batch.RowAt(i)[0] == Value::String(g)) return batch.RowAt(i);
  }
  ADD_FAILURE() << "group " << g << " missing";
  return {};
}

TEST(GroupedAggregateTest, EmptyInputHasNoGroups) {
  RowBatch in(GvSchema());
  auto out = GroupedAggregate(*AggAll(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(GroupedAggregateTest, SingleRowSingleGroup) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 10), 1);
  auto out = GroupedAggregate(*AggAll(), in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  const Row row = out->RowAt(0);
  EXPECT_EQ(row[1].int64(), 10);  // SUM
  EXPECT_EQ(row[2].int64(), 1);   // COUNT(*)
  EXPECT_EQ(row[3].int64(), 1);   // COUNT(v)
  EXPECT_EQ(row[4].int64(), 10);  // MIN
  EXPECT_EQ(row[5].int64(), 10);  // MAX
  EXPECT_DOUBLE_EQ(row[6].dbl(), 10.0);  // AVG
}

TEST(GroupedAggregateTest, DuplicateKeysAccumulateWeightedByCount) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 10), 2);  // multiplicity 2: contributes twice
  in.Append(GV("a", 4), 1);
  in.Append(GV("b", 7), 1);
  auto out = GroupedAggregate(*AggAll(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2);
  const Row a = FindGroup(*out, "a");
  EXPECT_EQ(a[1].int64(), 24);  // 10*2 + 4
  EXPECT_EQ(a[2].int64(), 3);
  EXPECT_EQ(a[4].int64(), 4);
  EXPECT_EQ(a[5].int64(), 10);
  EXPECT_DOUBLE_EQ(a[6].dbl(), 8.0);
}

TEST(GroupedAggregateTest, NullArgumentsAreSkipped) {
  RowBatch in(GvSchema());
  in.Append(GNull("a"), 1);
  in.Append(GV("a", 6), 1);
  in.Append(GNull("b"), 2);  // a group whose every argument is NULL
  auto out = GroupedAggregate(*AggAll(), in);
  ASSERT_TRUE(out.ok());
  const Row a = FindGroup(*out, "a");
  EXPECT_EQ(a[1].int64(), 6);  // SUM skips the NULL
  EXPECT_EQ(a[2].int64(), 2);  // COUNT(*) still counts the row
  EXPECT_EQ(a[3].int64(), 1);  // COUNT(v) does not
  EXPECT_EQ(a[4].int64(), 6);
  EXPECT_DOUBLE_EQ(a[6].dbl(), 6.0);
  const Row b = FindGroup(*out, "b");
  EXPECT_TRUE(b[1].is_null());  // SUM of nothing
  EXPECT_EQ(b[2].int64(), 2);
  EXPECT_EQ(b[3].int64(), 0);
  EXPECT_TRUE(b[4].is_null());
  EXPECT_TRUE(b[5].is_null());
  EXPECT_TRUE(b[6].is_null());
}

TEST(GroupedAggregateTest, RejectsNegativeMultiplicities) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), -1);
  auto out = GroupedAggregate(*AggAll(), in);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GroupedAggregateTest, IntegralSumStaysInt64) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 3), 1);
  in.Append(GV("a", 4), 1);
  auto out = GroupedAggregate(*AggAll(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(FindGroup(*out, "a")[1].type(), ValueType::kInt64);

  in.Append({Value::String("a"), Value::Double(0.5)}, 1);
  auto mixed = GroupedAggregate(*AggAll(), in);
  ASSERT_TRUE(mixed.ok());
  const Row a = FindGroup(*mixed, "a");
  EXPECT_EQ(a[1].type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(a[1].dbl(), 7.5);
}

// --- DupElim ----------------------------------------------------------------

Expr::Ptr DupElimExpr() { return Expr::DupElim(GvScan()).value(); }

TEST(DupElimTest, EmptyInput) {
  RowBatch in(GvSchema());
  auto out = DupElim(*DupElimExpr(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(DupElimTest, CoalescesDuplicateEntriesToOne) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), 2);
  in.Append(GV("a", 1), 3);  // same row, separate entry
  in.Append(GV("b", 2), 1);
  auto out = DupElim(*DupElimExpr(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->total_count(), 2);
}

TEST(DupElimTest, CancellingPairVanishes) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), 2);
  in.Append(GV("a", 1), -2);
  in.Append(GV("b", 2), 1);
  auto out = DupElim(*DupElimExpr(), in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->RowAt(0), GV("b", 2));
}

TEST(DupElimTest, RejectsNegativeTotals) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), 1);
  in.Append(GV("a", 1), -2);
  auto out = DupElim(*DupElimExpr(), in);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DupElimTest, NullValuesAreDistinctRows) {
  RowBatch in(GvSchema());
  in.Append(GNull("a"), 2);
  in.Append(GV("a", 1), 2);
  auto out = DupElim(*DupElimExpr(), in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2);
}

// --- ApplyUnary dispatch and metrics ----------------------------------------

TEST(ApplyUnaryTest, DispatchesAndRejectsNonUnary) {
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), 1);
  auto filtered = ApplyUnary(*FilterVPositive(), in);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 1);

  JoinFixture f;
  EXPECT_EQ(ApplyUnary(*f.expr, in).status().code(), StatusCode::kInternal);
}

TEST(KernelMetricsTest, FilterCountsBatchesAndRows) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* batches = reg.GetCounter("exec.kernel.filter.batches");
  obs::Counter* rows = reg.GetCounter("exec.kernel.filter.rows");
  const int64_t batches_before = batches->value();
  const int64_t rows_before = rows->value();
  RowBatch in(GvSchema());
  in.Append(GV("a", 1), 1);
  in.Append(GV("b", 2), 1);
  ASSERT_TRUE(Filter(*FilterVPositive(), in).ok());
  EXPECT_EQ(batches->value(), batches_before + 1);
  EXPECT_EQ(rows->value(), rows_before + 2);
}

}  // namespace
}  // namespace kernels
}  // namespace auxview
