#include "memo/articulation.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "memo/expand.h"
#include "workload/emp_dept.h"
#include "workload/fig5.h"

namespace auxview {
namespace {

TEST(ArticulationTest, Figure5AggregateIsArticulation) {
  Fig5Workload workload{Fig5Config{}};
  auto tree = workload.ViewTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  const std::set<GroupId> arts = FindArticulationGroups(*memo);
  // The aggregate's equivalence node separates {S, T, S-join-T} from
  // {R, root}: it must be an articulation node.
  GroupId agg_group = -1;
  for (GroupId g : memo->NonLeafGroups()) {
    for (int eid : memo->group(g).exprs) {
      if (!memo->expr(eid).dead &&
          memo->expr(eid).kind() == OpKind::kAggregate) {
        agg_group = g;
      }
    }
  }
  ASSERT_GE(agg_group, 0);
  EXPECT_TRUE(arts.count(agg_group)) << memo->ToString();
}

TEST(ArticulationTest, ProblemDeptInteriorNotArticulation) {
  // In Figure 2's DAG, N2 is an articulation node (everything flows through
  // it) but N3/N4 are not (two alternative paths exist between N2 and the
  // leaves).
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  auto rules = AggregationOnlyRuleSet();
  ASSERT_TRUE(ExpandMemo(&memo, workload.catalog(), rules).ok());

  GroupId n2 = -1, n3 = -1, n4 = -1;
  for (GroupId g : memo.NonLeafGroups()) {
    for (int eid : memo.group(g).exprs) {
      const MemoExpr& e = memo.expr(eid);
      if (e.dead) continue;
      if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2) {
        n2 = g;
      }
      if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 1) {
        n3 = g;
      }
      if (e.kind() == OpKind::kJoin) {
        bool leaf_join = true;
        for (GroupId in : e.inputs) {
          if (!memo.group(memo.Find(in)).is_leaf) leaf_join = false;
        }
        if (leaf_join) n4 = g;
      }
    }
  }
  ASSERT_GE(n2, 0);
  ASSERT_GE(n3, 0);
  ASSERT_GE(n4, 0);
  const std::set<GroupId> arts = FindArticulationGroups(memo);
  EXPECT_TRUE(arts.count(n2));
  EXPECT_FALSE(arts.count(n3));
  EXPECT_FALSE(arts.count(n4));
}

TEST(ArticulationTest, LinearTreeEveryInteriorNodeIsArticulation) {
  // Aggregate over Emp alone: Select -> Aggregate -> Emp is a path; the
  // aggregate group is an articulation node.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  ExprBuilder b(&workload.catalog());
  auto tree = b.Select(
      b.Aggregate(b.Scan("Emp"), {"DName"},
                  {{AggFunc::kSum, Col("Salary"), "SumSal"}}),
      Scalar::Gt(Col("SumSal"), Lit(int64_t{100})));
  ASSERT_TRUE(b.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(tree).ok());
  const std::set<GroupId> arts = FindArticulationGroups(memo);
  int non_leaf_arts = 0;
  for (GroupId g : memo.NonLeafGroups()) {
    if (arts.count(g) && g != memo.root()) ++non_leaf_arts;
  }
  EXPECT_EQ(non_leaf_arts, 1);  // the aggregate group
}

TEST(ArticulationTest, DescendantGroups) {
  Fig5Workload workload{Fig5Config{}};
  auto tree = workload.ViewTree();
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  GroupId agg_group = -1;
  for (GroupId g : memo->NonLeafGroups()) {
    for (int eid : memo->group(g).exprs) {
      if (!memo->expr(eid).dead &&
          memo->expr(eid).kind() == OpKind::kAggregate) {
        agg_group = g;
      }
    }
  }
  ASSERT_GE(agg_group, 0);
  const std::set<GroupId> desc = DescendantGroups(*memo, agg_group);
  // Contains itself, the S-T join group, and the S and T leaves; not the
  // root or R.
  EXPECT_TRUE(desc.count(agg_group));
  EXPECT_FALSE(desc.count(memo->root()));
  int leaves = 0;
  for (GroupId g : desc) {
    if (memo->group(g).is_leaf) ++leaves;
  }
  EXPECT_EQ(leaves, 2);
}

}  // namespace
}  // namespace auxview
