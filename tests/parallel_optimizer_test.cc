// Parallel view-set enumeration and the cross-view-set track-cost cache:
// every thread count and every cache setting must produce the same
// OptimizeResult as the sequential uncached walk, bit for bit (views,
// weighted cost, every plan's track, every query record, every delta).
// See docs/OPTIMIZER.md for the determinism and cache-soundness arguments
// these tests pin down.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

void ExpectSameTrackCost(const TrackCost& a, const TrackCost& b) {
  EXPECT_EQ(a.query_cost, b.query_cost);
  EXPECT_EQ(a.update_cost, b.update_cost);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].expr_id, b.queries[q].expr_id);
    EXPECT_EQ(a.queries[q].on_group, b.queries[q].on_group);
    EXPECT_EQ(a.queries[q].attrs, b.queries[q].attrs);
    EXPECT_EQ(a.queries[q].probes, b.queries[q].probes);
    EXPECT_EQ(a.queries[q].cost, b.queries[q].cost);
    EXPECT_EQ(a.queries[q].shared, b.queries[q].shared);
    EXPECT_EQ(a.queries[q].label, b.queries[q].label);
  }
  ASSERT_EQ(a.deltas.size(), b.deltas.size());
  auto bit = b.deltas.begin();
  for (const auto& [g, d] : a.deltas) {
    EXPECT_EQ(g, bit->first);
    EXPECT_EQ(d.size, bit->second.size);
    EXPECT_EQ(d.kind, bit->second.kind);
    EXPECT_EQ(d.modified_attrs, bit->second.modified_attrs);
    ++bit;
  }
}

void ExpectSameResult(const OptimizeResult& a, const OptimizeResult& b) {
  EXPECT_EQ(a.views, b.views);
  EXPECT_EQ(a.weighted_cost, b.weighted_cost);  // bit-identical, not approx
  EXPECT_EQ(a.viewsets_costed, b.viewsets_costed);
  EXPECT_EQ(a.viewsets_pruned, b.viewsets_pruned);
  EXPECT_EQ(a.tracks_costed, b.tracks_costed);
  ASSERT_EQ(a.plans.size(), b.plans.size());
  for (size_t i = 0; i < a.plans.size(); ++i) {
    EXPECT_EQ(a.plans[i].txn_name, b.plans[i].txn_name);
    EXPECT_EQ(a.plans[i].weight, b.plans[i].weight);
    EXPECT_EQ(a.plans[i].track.choice, b.plans[i].track.choice);
    ExpectSameTrackCost(a.plans[i].cost, b.plans[i].cost);
  }
  ASSERT_EQ(a.all_costs.size(), b.all_costs.size());
  for (size_t i = 0; i < a.all_costs.size(); ++i) {
    EXPECT_EQ(a.all_costs[i].first, b.all_costs[i].first);
    EXPECT_EQ(a.all_costs[i].second, b.all_costs[i].second);
  }
}

TEST(ParallelOptimizerTest, ThreadCountsAgreeOnProblemDept) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  const std::vector<TransactionType> txns = {workload.TxnModEmp(3),
                                             workload.TxnModDept(1)};
  // The reference: the pre-existing sequential walk, cache disabled.
  ViewSelector reference(&*memo, &workload.catalog());
  OptimizeOptions ref_options;
  ref_options.use_track_cache = false;
  ref_options.keep_all = true;
  auto expected = reference.Exhaustive(txns, ref_options);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {1, 2, 8}) {
    for (bool cache : {false, true}) {
      ViewSelector selector(&*memo, &workload.catalog());
      OptimizeOptions options;
      options.threads = threads;
      options.use_track_cache = cache;
      options.keep_all = true;
      auto result = selector.Exhaustive(txns, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " cache=" + std::to_string(cache));
      ExpectSameResult(*expected, *result);
    }
  }
}

TEST(ParallelOptimizerTest, ThreadCountsAgreeOnMultiViewWorkload) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  ExprBuilder b(&workload.catalog());
  Expr::Ptr view1 = b.Select(
      b.Aggregate(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}),
                  {"DName", "Budget"},
                  {{AggFunc::kSum, Col("Salary"), "SumSal"}}),
      Scalar::Gt(Col("SumSal"), Col("Budget")));
  Expr::Ptr view2 = b.Aggregate(b.Scan("Emp"), {"DName"},
                                {{AggFunc::kSum, Col("Salary"), "SumSal"}});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  Memo memo;
  GroupId root1 = *memo.AddTree(view1);
  GroupId root2 = *memo.AddTree(view2);
  ASSERT_TRUE(ExpandMemo(&memo, workload.catalog(), DefaultRuleSet()).ok());
  root1 = memo.Find(root1);
  root2 = memo.Find(root2);
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};

  ViewSelector reference(&memo, &workload.catalog());
  OptimizeOptions ref_options;
  ref_options.use_track_cache = false;
  auto expected = reference.ExhaustiveMultiView({root1, root2}, txns,
                                                ref_options);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int threads : {2, 8}) {
    ViewSelector selector(&memo, &workload.catalog());
    OptimizeOptions options;
    options.threads = threads;
    auto result = selector.ExhaustiveMultiView({root1, root2}, txns, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameResult(*expected, *result);
  }
}

TEST(ParallelOptimizerTest, ShieldingAndHeuristicsAgreeAcrossThreads) {
  // Shielding and the heuristics funnel through ExhaustiveOver (with
  // filters and restricted candidate sets); they must be thread-count
  // independent too.
  ChainConfig config;
  config.num_relations = 4;
  config.with_aggregate = true;
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  const auto txns = workload.AllTxns({4, 1, 1, 1, 1});

  ViewSelector reference(&*memo, &workload.catalog());
  OptimizeOptions ref_options;
  ref_options.use_track_cache = false;
  auto expected_shield = reference.Shielding(txns, ref_options);
  ASSERT_TRUE(expected_shield.ok());
  auto expected_greedy = reference.Greedy(txns, ref_options);
  ASSERT_TRUE(expected_greedy.ok());

  for (int threads : {2, 8}) {
    ViewSelector selector(&*memo, &workload.catalog());
    OptimizeOptions options;
    options.threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto shield = selector.Shielding(txns, options);
    ASSERT_TRUE(shield.ok());
    ExpectSameResult(*expected_shield, *shield);
    auto greedy = selector.Greedy(txns, options);
    ASSERT_TRUE(greedy.ok());
    ExpectSameResult(*expected_greedy, *greedy);
  }
}

TEST(ParallelOptimizerTest, CacheDiffersNowhereOnEveryViewSet) {
  // Cost every subset of candidates twice — cache off, cache on — and diff
  // every TrackCost. A stale or colliding cache entry would surface here.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  std::vector<GroupId> cand;
  for (GroupId g : memo->NonLeafGroups()) {
    if (g != memo->root()) cand.push_back(g);
  }
  ASSERT_LT(cand.size(), 16u);
  ViewSelector cached(&*memo, &workload.catalog());
  ViewSelector uncached(&*memo, &workload.catalog());
  OptimizeOptions with_cache;
  OptimizeOptions without_cache;
  without_cache.use_track_cache = false;
  for (uint64_t mask = 0; mask < (1ull << cand.size()); ++mask) {
    ViewSet views = {memo->root()};
    for (size_t i = 0; i < cand.size(); ++i) {
      if (mask & (1ull << i)) views.insert(cand[i]);
    }
    auto a = uncached.CostViewSet(txns, views, without_cache);
    auto b = cached.CostViewSet(txns, views, with_cache);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    SCOPED_TRACE("mask=" + std::to_string(mask));
    EXPECT_EQ(a->weighted_cost, b->weighted_cost);
    ASSERT_EQ(a->plans.size(), b->plans.size());
    for (size_t i = 0; i < a->plans.size(); ++i) {
      EXPECT_EQ(a->plans[i].track.choice, b->plans[i].track.choice);
      ExpectSameTrackCost(a->plans[i].cost, b->plans[i].cost);
    }
  }
}

TEST(ParallelOptimizerTest, CacheCountersAccountForEveryTrack) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  ViewSelector selector(&*memo, &workload.catalog());
  auto cold = selector.Exhaustive(txns);
  ASSERT_TRUE(cold.ok());
  // Every track went through the cache; none could hit yet on this DAG's
  // first walk... but hits + misses always equals tracks considered.
  EXPECT_EQ(cold->trackcache_hits + cold->trackcache_misses,
            cold->tracks_costed);
  // The warm repeat answers every track from the cache.
  auto warm = selector.Exhaustive(txns);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->trackcache_hits, warm->tracks_costed);
  EXPECT_EQ(warm->trackcache_misses, 0);
  EXPECT_GT(warm->trackcache_hits, 0);
  ExpectSameResult(*cold, *warm);
  // With the cache off the counters stay silent.
  OptimizeOptions off;
  off.use_track_cache = false;
  auto uncached = selector.Exhaustive(txns, off);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(uncached->trackcache_hits, 0);
  EXPECT_EQ(uncached->trackcache_misses, 0);
}

TEST(ParallelOptimizerTest, SetStatsInvalidatesCachedCosts) {
  // The cache keys on catalog contents via Catalog::stats_epoch(): after
  // SetStats, a warm selector must re-cost and agree with a fresh one.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  Catalog catalog = workload.catalog();  // private mutable copy
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, catalog);
  ASSERT_TRUE(memo.ok());
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  ViewSelector warm(&*memo, &catalog);
  auto before = warm.Exhaustive(txns);
  ASSERT_TRUE(before.ok());
  // The root-only view set pays per-department recomputation queries, so
  // its cost moves with the fan-in stats (the optimum's index probes may
  // not) — cost it now and again after the stats change.
  auto before_root = warm.CostViewSet(txns, {memo->root()});
  ASSERT_TRUE(before_root.ok());

  // Blow up the per-department fan-in (10 -> 100000 emps/dept): the delta
  // sizes and probe costs of every Emp-containing group change with it.
  RelationStats stats = catalog.FindTable("Emp")->stats;
  stats.row_count *= 100;
  stats.distinct["DName"] = 10;
  const uint64_t epoch = catalog.stats_epoch();
  ASSERT_TRUE(catalog.SetStats("Emp", stats).ok());
  EXPECT_GT(catalog.stats_epoch(), epoch);

  auto after = warm.Exhaustive(txns);
  ASSERT_TRUE(after.ok());
  // Stale entries would reproduce the old costs; the epoch bump forces
  // recomputation, matching a selector that never saw the old stats.
  ViewSelector fresh(&*memo, &catalog);
  auto expected = fresh.Exhaustive(txns);
  ASSERT_TRUE(expected.ok());
  ExpectSameResult(*expected, *after);
  auto after_root = warm.CostViewSet(txns, {memo->root()});
  auto fresh_root = fresh.CostViewSet(txns, {memo->root()});
  ASSERT_TRUE(after_root.ok());
  ASSERT_TRUE(fresh_root.ok());
  EXPECT_NE(before_root->weighted_cost, after_root->weighted_cost);
  EXPECT_EQ(fresh_root->weighted_cost, after_root->weighted_cost);
}

TEST(ParallelOptimizerTest, ZeroThreadsMeansHardwareConcurrency) {
  // threads = 0 resolves to a machine-dependent worker count; the result
  // must still be identical to the sequential walk.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  ViewSelector reference(&*memo, &workload.catalog());
  auto expected = reference.Exhaustive(txns);
  ASSERT_TRUE(expected.ok());
  ViewSelector selector(&*memo, &workload.catalog());
  OptimizeOptions options;
  options.threads = 0;
  auto result = selector.Exhaustive(txns, options);
  ASSERT_TRUE(result.ok());
  ExpectSameResult(*expected, *result);
}

TEST(ParallelOptimizerTest, MaxCandidatesClampStopsShiftOverflow) {
  // max_candidates beyond 63 is clamped (1ull << 64 is undefined); the
  // FailedPrecondition path and normal operation both survive huge values.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  ViewSelector selector(&*memo, &workload.catalog());
  OptimizeOptions options;
  options.max_candidates = 1 << 30;
  auto result = selector.Exhaustive({workload.TxnModEmp()}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->viewsets_costed, 0);
}

}  // namespace
}  // namespace auxview
