#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/executor.h"
#include "storage/database.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"
#include "workload/fig5.h"
#include "workload/star.h"

namespace auxview {
namespace {

// Differential replay: the pre-kernel row-at-a-time operator implementations
// (the removed exec_detail code, kept verbatim below as an oracle) evaluated
// against the batch-kernel Executor over every workload's view trees, before
// and after table perturbations. Any semantic drift the kernel port
// introduced — NULL handling, multiplicity arithmetic, join column order,
// aggregate typing — shows up as a bag mismatch here.
//
// Every workload aggregate below sums integer columns, so double
// accumulation is exact and BagEquals is an equality check, not a tolerance.
namespace oracle {

StatusOr<Relation> ApplySelect(const Expr& expr, const Relation& input) {
  Relation out(expr.output_schema());
  for (const auto& [row, count] : input.rows()) {
    AUXVIEW_ASSIGN_OR_RETURN(Value v,
                             expr.predicate()->Eval(row, input.schema()));
    if (!v.is_null() && v.boolean()) out.Add(row, count);
  }
  return out;
}

StatusOr<Relation> ApplyProject(const Expr& expr, const Relation& input) {
  Relation out(expr.output_schema());
  for (const auto& [row, count] : input.rows()) {
    Row projected;
    projected.reserve(expr.projections().size());
    for (const ProjectItem& item : expr.projections()) {
      AUXVIEW_ASSIGN_OR_RETURN(Value v, item.expr->Eval(row, input.schema()));
      projected.push_back(std::move(v));
    }
    out.Add(projected, count);
  }
  return out;
}

StatusOr<Relation> ApplyJoin(const Expr& expr, const Relation& left,
                             const Relation& right) {
  Relation out(expr.output_schema());
  const Schema& ls = left.schema();
  const Schema& rs = right.schema();
  std::vector<int> l_key_cols;
  std::vector<int> r_key_cols;
  for (const std::string& a : expr.join_attrs()) {
    l_key_cols.push_back(ls.IndexOf(a));
    r_key_cols.push_back(rs.IndexOf(a));
    AUXVIEW_CHECK(l_key_cols.back() >= 0 && r_key_cols.back() >= 0);
  }
  std::vector<int> r_out_cols;
  for (int c = 0; c < rs.num_columns(); ++c) {
    bool is_join = false;
    for (int k : r_key_cols) {
      if (k == c) {
        is_join = true;
        break;
      }
    }
    if (!is_join) r_out_cols.push_back(c);
  }
  std::unordered_map<Row, std::vector<std::pair<const Row*, int64_t>>, RowHash,
                     RowEq>
      hash;
  for (const auto& [row, count] : right.rows()) {
    Row key;
    key.reserve(r_key_cols.size());
    for (int c : r_key_cols) key.push_back(row[c]);
    hash[std::move(key)].emplace_back(&row, count);
  }
  for (const auto& [lrow, lcount] : left.rows()) {
    Row key;
    key.reserve(l_key_cols.size());
    for (int c : l_key_cols) key.push_back(lrow[c]);
    auto it = hash.find(key);
    if (it == hash.end()) continue;
    for (const auto& [rrow, rcount] : it->second) {
      Row joined = lrow;
      for (int c : r_out_cols) joined.push_back((*rrow)[c]);
      out.Add(joined, lcount * rcount);
    }
  }
  return out;
}

struct GroupState {
  int64_t count = 0;
  std::vector<double> sums;
  std::vector<bool> all_int;
  std::vector<Value> minmax;
  std::vector<int64_t> nonnull_count;
};

StatusOr<Relation> ApplyAggregate(const Expr& expr, const Relation& input) {
  const Schema& cs = input.schema();
  std::vector<int> group_cols;
  for (const std::string& g : expr.group_by()) {
    group_cols.push_back(cs.IndexOf(g));
    AUXVIEW_CHECK(group_cols.back() >= 0);
  }
  const size_t num_aggs = expr.aggs().size();
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  for (const auto& [row, count] : input.rows()) {
    if (count < 0) {
      return Status::FailedPrecondition(
          "Aggregate over a relation with negative multiplicities");
    }
    Row key;
    key.reserve(group_cols.size());
    for (int c : group_cols) key.push_back(row[c]);
    GroupState& gs = groups[std::move(key)];
    if (gs.sums.empty()) {
      gs.sums.assign(num_aggs, 0.0);
      gs.all_int.assign(num_aggs, true);
      gs.minmax.assign(num_aggs, Value::Null());
      gs.nonnull_count.assign(num_aggs, 0);
    }
    gs.count += count;
    for (size_t i = 0; i < num_aggs; ++i) {
      const AggSpec& agg = expr.aggs()[i];
      Value v = Value::Null();
      if (agg.arg != nullptr) {
        AUXVIEW_ASSIGN_OR_RETURN(v, agg.arg->Eval(row, cs));
      }
      switch (agg.func) {
        case AggFunc::kCount:
          if (agg.arg == nullptr || !v.is_null()) gs.nonnull_count[i] += count;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (!v.is_null()) {
            gs.sums[i] += v.AsDouble() * static_cast<double>(count);
            gs.nonnull_count[i] += count;
            if (v.type() != ValueType::kInt64) gs.all_int[i] = false;
          }
          break;
        case AggFunc::kMin:
          if (!v.is_null() &&
              (gs.minmax[i].is_null() || v.Compare(gs.minmax[i]) < 0)) {
            gs.minmax[i] = v;
          }
          break;
        case AggFunc::kMax:
          if (!v.is_null() &&
              (gs.minmax[i].is_null() || v.Compare(gs.minmax[i]) > 0)) {
            gs.minmax[i] = v;
          }
          break;
      }
    }
  }
  Relation out(expr.output_schema());
  for (const auto& [key, gs] : groups) {
    Row row = key;
    for (size_t i = 0; i < num_aggs; ++i) {
      const AggSpec& agg = expr.aggs()[i];
      switch (agg.func) {
        case AggFunc::kCount:
          row.push_back(Value::Int64(gs.nonnull_count[i]));
          break;
        case AggFunc::kSum:
          if (gs.nonnull_count[i] == 0) {
            row.push_back(Value::Null());
          } else if (gs.all_int[i]) {
            row.push_back(Value::Int64(static_cast<int64_t>(gs.sums[i])));
          } else {
            row.push_back(Value::Double(gs.sums[i]));
          }
          break;
        case AggFunc::kAvg:
          if (gs.nonnull_count[i] == 0) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value::Double(
                gs.sums[i] / static_cast<double>(gs.nonnull_count[i])));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          row.push_back(gs.minmax[i]);
          break;
      }
    }
    out.Add(row, 1);
  }
  return out;
}

StatusOr<Relation> ApplyDupElim(const Expr& expr, const Relation& input) {
  Relation out(expr.output_schema());
  for (const auto& [row, count] : input.rows()) {
    if (count < 0) {
      return Status::FailedPrecondition(
          "DupElim over a relation with negative multiplicities");
    }
    if (count > 0) out.Add(row, 1);
  }
  return out;
}

StatusOr<Relation> Execute(const Expr& expr, const Database& db) {
  switch (expr.kind()) {
    case OpKind::kScan: {
      const Table* table = db.FindTable(expr.table());
      if (table == nullptr) {
        return Status::NotFound("scan of missing table: " + expr.table());
      }
      Relation out(expr.output_schema());
      for (const CountedRow& cr : table->SnapshotUncharged()) {
        out.Add(cr.row, cr.count);
      }
      return out;
    }
    case OpKind::kSelect: {
      AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0), db));
      return ApplySelect(expr, in);
    }
    case OpKind::kProject: {
      AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0), db));
      return ApplyProject(expr, in);
    }
    case OpKind::kJoin: {
      AUXVIEW_ASSIGN_OR_RETURN(Relation left, Execute(*expr.child(0), db));
      AUXVIEW_ASSIGN_OR_RETURN(Relation right, Execute(*expr.child(1), db));
      return ApplyJoin(expr, left, right);
    }
    case OpKind::kAggregate: {
      AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0), db));
      return ApplyAggregate(expr, in);
    }
    case OpKind::kDupElim: {
      AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0), db));
      return ApplyDupElim(expr, in);
    }
  }
  return Status::Internal("unhandled op kind in oracle");
}

}  // namespace oracle

/// Compares both executors over every tree; `label` names the replay round
/// in failure messages.
void ExpectPathsAgree(const Database& db, const std::vector<Expr::Ptr>& trees,
                      const std::string& label) {
  Executor executor(&db);
  for (size_t i = 0; i < trees.size(); ++i) {
    auto kernel = executor.Execute(*trees[i]);
    ASSERT_TRUE(kernel.ok())
        << label << " tree " << i << ": " << kernel.status().ToString();
    auto expected = oracle::Execute(*trees[i], db);
    ASSERT_TRUE(expected.ok())
        << label << " tree " << i << ": " << expected.status().ToString();
    EXPECT_TRUE(kernel->BagEquals(*expected))
        << label << " tree " << i << ": kernel path diverged from the "
        << "row-at-a-time oracle (" << kernel->total_count() << " vs "
        << expected->total_count() << " total rows)";
    // The coalesced Relation must equal the raw batch coalesced the same way.
    auto batch = executor.ExecuteBatch(*trees[i]);
    ASSERT_TRUE(batch.ok());
    EXPECT_TRUE(batch->ToRelation().BagEquals(*kernel));
  }
}

/// Deterministic perturbations between replay rounds: duplicate the first
/// row of every table (bag multiplicity), then remove one copy again and
/// delete a distinct row outright. Positive multiplicities only — both
/// paths reject negative-count aggregates identically, which the kernel
/// unit tests pin separately.
void DuplicateFirstRows(Database* db) {
  for (const std::string& name : db->TableNames()) {
    Table* table = db->FindTable(name);
    auto snapshot = table->SnapshotUncharged();
    if (snapshot.empty()) continue;
    ASSERT_TRUE(table->Insert(snapshot.front().row).ok());
  }
}

void RemoveDuplicatesAndDeleteLast(Database* db) {
  for (const std::string& name : db->TableNames()) {
    Table* table = db->FindTable(name);
    auto snapshot = table->SnapshotUncharged();
    if (snapshot.empty()) continue;
    ASSERT_TRUE(table->Delete(snapshot.front().row).ok());
    ASSERT_TRUE(table->Delete(snapshot.back().row).ok());
  }
}

void ReplayRounds(Database* db, const std::vector<Expr::Ptr>& trees) {
  ExpectPathsAgree(*db, trees, "pristine");
  DuplicateFirstRows(db);
  ExpectPathsAgree(*db, trees, "after duplicate-insert");
  RemoveDuplicatesAndDeleteLast(db);
  ExpectPathsAgree(*db, trees, "after deletes");
}

TEST(ExecDifferentialTest, EmpDeptTrees) {
  EmpDeptConfig config;
  config.num_depts = 12;
  config.emps_per_dept = 4;
  config.violation_fraction = 0.25;
  config.with_adepts = true;
  config.num_adepts = 6;
  config.seed = 5;
  EmpDeptWorkload workload(config);
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  std::vector<Expr::Ptr> trees;
  trees.push_back(workload.ProblemDeptTree().value());
  trees.push_back(workload.ProblemDeptLeftTree().value());
  trees.push_back(workload.ADeptsStatusTree().value());
  ReplayRounds(&db, trees);
}

TEST(ExecDifferentialTest, Fig5Tree) {
  Fig5Config config;
  config.num_items = 40;
  config.orders_per_item = 4;
  config.r_rows_per_item = 2;
  Fig5Workload workload(config);
  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  ReplayRounds(&db, {workload.ViewTree().value()});
}

TEST(ExecDifferentialTest, StarRollups) {
  for (bool two : {false, true}) {
    StarConfig config;
    config.num_dims = 3;
    config.fact_rows = 300;
    config.dim_rows = 20;
    config.group_by_two = two;
    StarWorkload workload(config);
    Database db;
    ASSERT_TRUE(workload.Populate(&db).ok());
    ReplayRounds(&db, {workload.RollupTree().value()});
  }
}

TEST(ExecDifferentialTest, ChainJoins) {
  for (bool agg : {false, true}) {
    ChainConfig config;
    config.num_relations = 4;
    config.rows_per_relation = 150;
    config.fanout = 3;
    config.with_aggregate = agg;
    ChainWorkload workload(config);
    Database db;
    ASSERT_TRUE(workload.Populate(&db).ok());
    ReplayRounds(&db, {workload.ChainViewTree().value()});
  }
}

}  // namespace
}  // namespace auxview
