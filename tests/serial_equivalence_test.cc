// Serial equivalence of the optimistic concurrency layer: across every
// workload, a deterministic interleaving of multiple writers — each staging
// against its own pinned snapshot and committing through first-committer-
// wins validation — must leave every base table, materialized view and
// index bucket bit-identical to a single-session replay of exactly the
// committed prefix, in commit order.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auxview.h"
#include "concurrency/controller.h"
#include "concurrency/writer.h"

namespace auxview {
namespace {

std::map<std::string, std::string> FingerprintAll(Database& db) {
  std::map<std::string, std::string> out;
  for (const std::string& name : db.TableNames()) {
    out[name] = db.FindTable(name)->Fingerprint();
  }
  return out;
}

/// One workload packaged behind a uniform interface (the recovery-
/// equivalence harness's CasePack).
struct CasePack {
  std::string name;
  std::shared_ptr<void> owner;
  const Catalog* catalog = nullptr;
  Expr::Ptr tree;
  std::function<Status(Database*)> populate;
  std::vector<TransactionType> txns;
};

CasePack MakeEmpDept() {
  EmpDeptConfig config;
  config.num_depts = 8;
  config.emps_per_dept = 3;
  config.violation_fraction = 0.2;
  auto w = std::make_shared<EmpDeptWorkload>(config);
  auto tree = w->ProblemDeptTree();
  EXPECT_TRUE(tree.ok());
  return {"emp_dept", w,          &w->catalog(),
          *tree,      [w](Database* db) { return w->Populate(db); },
          {w->TxnModEmp(), w->TxnModDept()}};
}

CasePack MakeFig5() {
  Fig5Config config;
  config.num_items = 20;
  config.orders_per_item = 3;
  config.r_rows_per_item = 2;
  auto w = std::make_shared<Fig5Workload>(config);
  auto tree = w->ViewTree();
  EXPECT_TRUE(tree.ok());
  return {"fig5", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModS(), w->TxnModT(), w->TxnModR()}};
}

CasePack MakeStar() {
  StarConfig config;
  config.num_dims = 2;
  config.fact_rows = 60;
  config.dim_rows = 8;
  config.attr_values = 4;
  auto w = std::make_shared<StarWorkload>(config);
  auto tree = w->RollupTree();
  EXPECT_TRUE(tree.ok());
  return {"star", w,          &w->catalog(),
          *tree,  [w](Database* db) { return w->Populate(db); },
          {w->TxnModMeasure(), w->TxnModDimAttr(1), w->TxnInsertFact()}};
}

CasePack MakeChain() {
  ChainConfig config;
  config.num_relations = 3;
  config.rows_per_relation = 40;
  config.fanout = 2;
  config.with_aggregate = true;
  auto w = std::make_shared<ChainWorkload>(config);
  auto tree = w->ChainViewTree();
  EXPECT_TRUE(tree.ok());
  return {"chain", w,          &w->catalog(),
          *tree,   [w](Database* db) { return w->Populate(db); },
          w->AllTxns()};
}

/// Stages a generated concrete transaction into a writer's delta-set,
/// through the overlay (so multiplicities come from the writer's own view).
Status StageFromConcrete(WriterTxn* writer, const ConcreteTxn& txn) {
  for (const TableUpdate& u : txn.updates) {
    for (const auto& [row, count] : u.inserts) {
      AUXVIEW_RETURN_IF_ERROR(writer->Insert(u.relation, row, count));
    }
    for (const auto& [row, count] : u.deletes) {
      AUXVIEW_RETURN_IF_ERROR(writer->Delete(u.relation, row, count));
    }
    for (const auto& [old_row, new_row] : u.modifies) {
      const Table* overlay = writer->ResolveTable(u.relation);
      if (overlay == nullptr) {
        return Status::NotFound("no such table: " + u.relation);
      }
      AUXVIEW_RETURN_IF_ERROR(writer->Modify(u.relation, old_row, new_row,
                                             overlay->CountOf(old_row)));
    }
  }
  return Status::Ok();
}

constexpr int kRounds = 8;
constexpr int kWriters = 3;

class SerialEquivalenceTest
    : public ::testing::TestWithParam<std::function<CasePack()>> {};

TEST_P(SerialEquivalenceTest, CommittedInterleavingReplaysSerially) {
  const CasePack pack = GetParam()();
  auto memo = BuildExpandedMemo(pack.tree, *pack.catalog);
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);
  ViewSelector selector(&*memo, pack.catalog);
  const auto track_fn =
      [&](const TransactionType& type) -> StatusOr<UpdateTrack> {
    AUXVIEW_ASSIGN_OR_RETURN(TxnPlan plan, selector.BestTrack(views, type));
    return plan.track;
  };

  // --- The concurrent run: kWriters optimistic writers over one database.
  Database db;
  ASSERT_TRUE(pack.populate(&db).ok());
  ViewManager mgr(&*memo, pack.catalog, &db);
  ASSERT_TRUE(mgr.Materialize(views).ok());
  ConcurrencyController controller(pack.catalog, &db, &mgr, pack.txns,
                                   track_fn);

  // The committed prefix: the exact netted transaction each successful
  // commit funneled through the pipeline, in commit order.
  std::vector<ConcreteTxn> committed;
  int conflicts = 0;
  TxnGenerator gen(20260808);
  for (int round = 0; round < kRounds; ++round) {
    // All writers pin the same epoch, then stage privately: every writer's
    // snapshot equals the live committed state during the staging phase, so
    // TxnGenerator (which reads the live database) generates exactly what
    // each writer would have read through its own snapshot.
    std::vector<std::unique_ptr<WriterTxn>> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.push_back(std::make_unique<WriterTxn>(&controller));
      const TransactionType& type =
          pack.txns[static_cast<size_t>(round + w) % pack.txns.size()];
      auto txn = gen.Generate(type, db);
      ASSERT_TRUE(txn.ok()) << txn.status().ToString();
      Status staged = StageFromConcrete(writers.back().get(), *txn);
      ASSERT_TRUE(staged.ok()) << staged.ToString();
    }
    // Commit in writer order. Later writers staged against the same
    // snapshot, so overlapping victim rows must lose to the first
    // committer; disjoint footprints must sail through.
    for (auto& writer : writers) {
      const ConcreteTxn netted = writer->delta().ToConcreteTxn();
      auto outcome = writer->Commit();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      switch (outcome->kind) {
        case CommitOutcome::Kind::kCommitted:
          if (!netted.updates.empty()) committed.push_back(netted);
          break;
        case CommitOutcome::Kind::kConflict:
          ++conflicts;
          writer->Restart();
          break;
        case CommitOutcome::Kind::kRejected:
          FAIL() << "no assertions declared, yet rejected: "
                 << outcome->detail;
      }
    }
  }
  // The first writer of every round always wins. Whether later writers in
  // a round conflicted is workload-dependent (disjoint victim rows commit
  // cleanly), so force one deterministic conflict: a whole-relation reader
  // pinned before a committed write to that relation must lose.
  ASSERT_GE(static_cast<int>(committed.size()), kRounds);
  {
    const std::string& rel = pack.txns[0].updates[0].relation;
    WriterTxn reader(&controller);
    ASSERT_TRUE(reader.Scan(rel).ok());
    WriterTxn writer(&controller);
    auto txn = gen.Generate(pack.txns[0], db);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    ASSERT_FALSE(txn->updates.empty());
    ASSERT_TRUE(StageFromConcrete(&writer, *txn).ok());
    const ConcreteTxn netted = writer.delta().ToConcreteTxn();
    auto won = writer.Commit();
    ASSERT_TRUE(won.ok()) << won.status().ToString();
    ASSERT_TRUE(won->committed());
    if (!netted.updates.empty()) committed.push_back(netted);
    auto lost = reader.Commit();
    ASSERT_TRUE(lost.ok()) << lost.status().ToString();
    EXPECT_EQ(lost->kind, CommitOutcome::Kind::kConflict)
        << pack.name << ": stale whole-relation read did not conflict";
    ++conflicts;
  }
  EXPECT_GT(conflicts, 0);
  const auto concurrent_state = FingerprintAll(db);
  Status consistent = mgr.CheckConsistency();
  ASSERT_TRUE(consistent.ok()) << consistent.ToString();

  // --- The serial oracle: a fresh single-session mirror replays exactly
  // the committed prefix, in commit order, through the normal pipeline.
  Database mirror;
  ASSERT_TRUE(pack.populate(&mirror).ok());
  ViewManager mirror_mgr(&*memo, pack.catalog, &mirror);
  ASSERT_TRUE(mirror_mgr.Materialize(views).ok());
  for (const ConcreteTxn& txn : committed) {
    const TransactionType type =
        DeriveTransactionType(txn, pack.txns, *pack.catalog);
    auto track = track_fn(type);
    ASSERT_TRUE(track.ok()) << track.status().ToString();
    Status applied = mirror_mgr.ApplyTransaction(txn, type, *track);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
  }

  EXPECT_EQ(FingerprintAll(mirror), concurrent_state)
      << pack.name << ": concurrent commit order is not serial-equivalent";
  Status mirror_consistent = mirror_mgr.CheckConsistency();
  EXPECT_TRUE(mirror_consistent.ok()) << mirror_consistent.ToString();
}

std::string CaseName(
    const ::testing::TestParamInfo<std::function<CasePack()>>& info) {
  static const char* const kNames[] = {"emp_dept", "fig5", "star", "chain"};
  return kNames[info.index];
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SerialEquivalenceTest,
    ::testing::Values(&MakeEmpDept, &MakeFig5, &MakeStar, &MakeChain),
    CaseName);

}  // namespace
}  // namespace auxview
