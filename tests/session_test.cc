// The Session facade: SQL in, incrementally-maintained views and enforced
// assertions out.

#include <gtest/gtest.h>

#include "api/session.h"

namespace auxview {
namespace {

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.Execute(kDdl).ok());
    // Bulk load before Prepare.
    for (int d = 0; d < 4; ++d) {
      const std::string dname = "d" + std::to_string(d);
      for (int k = 0; k < 3; ++k) {
        auto r = session_.Execute(
            "INSERT INTO Emp VALUES ('" + dname + "e" + std::to_string(k) +
            "', '" + dname + "', " + std::to_string(1000 + 10 * k) + ");");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
      auto r = session_.Execute("INSERT INTO Dept VALUES ('" + dname +
                                "', 'm" + std::to_string(d) + "', 5000);");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    session_.DeclareWorkload(
        {SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
         SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
    Status prepared = session_.Prepare();
    ASSERT_TRUE(prepared.ok()) << prepared.ToString();
  }

  Session session_;
};

TEST_F(SessionTest, PrepareMaterializesViewsAndAssertions) {
  EXPECT_TRUE(session_.prepared());
  auto sums = session_.ViewContents("SumOfSals");
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ(sums->total_count(), 4);
  auto checks = session_.CheckAssertions();
  ASSERT_TRUE(checks.ok());
  ASSERT_EQ(checks->size(), 1u);
  EXPECT_TRUE((*checks)[0].holds);
}

TEST_F(SessionTest, SelectFromMaintainedViewServesMaterialized) {
  auto result = session_.Execute("SELECT * FROM SumOfSals;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->rows.has_value());
  EXPECT_EQ(result->rows->total_count(), 4);
}

TEST_F(SessionTest, UpdateMaintainsViews) {
  auto result =
      session_.Execute("UPDATE Emp SET Salary = 2000 WHERE EName = 'd1e0';");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->affected, 1);
  EXPECT_FALSE(result->rejected());
  auto sums = session_.ViewContents("SumOfSals");
  ASSERT_TRUE(sums.ok());
  bool found = false;
  for (const auto& [row, count] : sums->rows()) {
    (void)count;
    if (row[0].str() == "d1") {
      EXPECT_EQ(row[1].int64(), 2000 + 1010 + 1020);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(SessionTest, InsertAndDeleteMaintainViews) {
  ASSERT_TRUE(
      session_.Execute("INSERT INTO Emp VALUES ('new1', 'd0', 500);").ok());
  auto sums = session_.ViewContents("SumOfSals");
  ASSERT_TRUE(sums.ok());
  for (const auto& [row, count] : sums->rows()) {
    (void)count;
    if (row[0].str() == "d0") EXPECT_EQ(row[1].int64(), 3030 + 500);
  }
  ASSERT_TRUE(
      session_.Execute("DELETE FROM Emp WHERE EName = 'new1';").ok());
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(SessionTest, ViolatingUpdateIsRolledBack) {
  // Raising one salary past the budget violates DeptConstraint.
  auto result =
      session_.Execute("UPDATE Emp SET Salary = 99999 WHERE EName = 'd2e0';");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rejected());
  EXPECT_EQ(result->violated_assertion, "DeptConstraint");
  EXPECT_EQ(result->affected, 0);
  // The database is unchanged and consistent.
  auto rows = session_.Execute("SELECT * FROM Emp WHERE EName = 'd2e0';");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows->SortedRows()[0].first[2].int64(), 1000);
  EXPECT_TRUE(session_.CheckConsistency().ok());
  auto checks = session_.CheckAssertions();
  ASSERT_TRUE(checks.ok());
  EXPECT_TRUE((*checks)[0].holds);
}

TEST_F(SessionTest, ViolatingBudgetCutIsRolledBack) {
  auto result =
      session_.Execute("UPDATE Dept SET Budget = 10 WHERE DName = 'd3';");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rejected());
  auto rows = session_.Execute("SELECT * FROM Dept WHERE DName = 'd3';");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows->SortedRows()[0].first[2].int64(), 5000);
}

TEST_F(SessionTest, NonViolatingBudgetCutSucceeds) {
  auto result =
      session_.Execute("UPDATE Dept SET Budget = 4000 WHERE DName = 'd3';");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->rejected());
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(SessionTest, MultiRowUpdate) {
  auto result = session_.Execute("UPDATE Emp SET Salary = Salary + 1 "
                                 "WHERE DName = 'd0';");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->affected, 3);
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(SessionTest, DeleteWholeDepartment) {
  auto result = session_.Execute("DELETE FROM Emp WHERE DName = 'd2';");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->affected, 3);
  auto sums = session_.ViewContents("SumOfSals");
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ(sums->total_count(), 3);  // the d2 group vanished
  EXPECT_TRUE(session_.CheckConsistency().ok());
}

TEST_F(SessionTest, PlanPrefersSumOfSalsSharing) {
  // SumOfSals is itself a maintained root, so the assertion's maintenance
  // reuses it; the joint plan's cost must be at most the sum of the costs
  // of maintaining each root alone.
  EXPECT_GE(session_.plan().views.size(), 2u);
  EXPECT_GT(session_.plan().weighted_cost, 0);
}

TEST_F(SessionTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(session_.Execute("INSERT INTO Nope VALUES (1);").ok());
  EXPECT_FALSE(session_.Execute("UPDATE Emp SET Ghost = 1;").ok());
  EXPECT_FALSE(session_.Execute("CREATE TABLE Late (x INT);").ok());
  EXPECT_FALSE(session_.Execute("INSERT INTO Emp VALUES (1);").ok());
  EXPECT_FALSE(session_.ViewContents("Nope").ok());
}

TEST(SessionPrepareTest, RequiresViewsOrAssertions) {
  Session session;
  ASSERT_TRUE(session.Execute("CREATE TABLE T (x INT PRIMARY KEY);").ok());
  EXPECT_EQ(session.Prepare().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionPrepareTest, DefaultWorkloadDerived) {
  Session session;
  ASSERT_TRUE(session
                  .Execute("CREATE TABLE T (x INT PRIMARY KEY, g INT, "
                           "v INT, INDEX (g));"
                           "CREATE VIEW V (g, s) AS "
                           "SELECT g, SUM(v) FROM T GROUPBY g;")
                  .ok());
  ASSERT_TRUE(session.Execute("INSERT INTO T VALUES (1, 1, 10), (2, 1, 20), "
                              "(3, 2, 30);")
                  .ok());
  Status prepared = session.Prepare();
  ASSERT_TRUE(prepared.ok()) << prepared.ToString();
  auto v = session.ViewContents("V");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->total_count(), 2);
  ASSERT_TRUE(session.Execute("UPDATE T SET v = 11 WHERE x = 1;").ok());
  EXPECT_TRUE(session.CheckConsistency().ok());
}

}  // namespace
}  // namespace auxview
