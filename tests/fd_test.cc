#include "catalog/fd.h"

#include <gtest/gtest.h>

namespace auxview {
namespace {

TEST(FdSetTest, ClosureTransitive) {
  FdSet fds;
  fds.Add({"a"}, {"b"});
  fds.Add({"b"}, {"c"});
  auto closure = fds.Closure({"a"});
  EXPECT_TRUE(closure.count("a"));
  EXPECT_TRUE(closure.count("b"));
  EXPECT_TRUE(closure.count("c"));
  EXPECT_EQ(fds.Closure({"c"}).size(), 1u);
}

TEST(FdSetTest, MultiAttributeLhs) {
  FdSet fds;
  fds.Add({"a", "b"}, {"c"});
  EXPECT_FALSE(fds.Determines({"a"}, {"c"}));
  EXPECT_TRUE(fds.Determines({"a", "b"}, {"c"}));
}

TEST(FdSetTest, IsKey) {
  FdSet fds;
  fds.Add({"k"}, {"x", "y"});
  EXPECT_TRUE(fds.IsKey({"k"}, {"k", "x", "y"}));
  EXPECT_FALSE(fds.IsKey({"x"}, {"k", "x", "y"}));
  // A superset of a key is a key.
  EXPECT_TRUE(fds.IsKey({"k", "x"}, {"k", "x", "y"}));
}

TEST(FdSetTest, RestrictDropsForeignAttributes) {
  FdSet fds;
  fds.Add({"a"}, {"b", "c"});
  fds.Add({"c"}, {"d"});
  FdSet restricted = fds.Restrict({"a", "b"});
  EXPECT_TRUE(restricted.Determines({"a"}, {"b"}));
  EXPECT_FALSE(restricted.Determines({"a"}, {"c"}));
  // The c -> d dependency is gone entirely.
  EXPECT_EQ(restricted.fds().size(), 1u);
}

TEST(FdSetTest, AddAllMerges) {
  FdSet a;
  a.Add({"x"}, {"y"});
  FdSet b;
  b.Add({"y"}, {"z"});
  a.AddAll(b);
  EXPECT_TRUE(a.Determines({"x"}, {"z"}));
}

TEST(FdSetTest, EmptySetDeterminesOnlyItself) {
  FdSet fds;
  EXPECT_TRUE(fds.Determines({"a"}, {"a"}));
  EXPECT_FALSE(fds.Determines({"a"}, {"b"}));
}

}  // namespace
}  // namespace auxview
