// Property-style invariants, swept over seeds/configurations with
// parameterized gtest:
//   P1  Track independence: every update track yields identical maintained
//       view contents for the same concrete transaction.
//   P2  Incremental maintenance equals recomputation on randomized streams
//       over randomized schemas.
//   P3  The exhaustive optimizer's winner is a lower bound over every view
//       set it enumerates.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

class TrackIndependenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TrackIndependenceTest, AllTracksProduceSameViews) {
  const int seed = GetParam();
  EmpDeptConfig config;
  config.num_depts = 8;
  config.emps_per_dept = 4;
  config.violation_fraction = 0.3;
  config.seed = static_cast<uint64_t>(seed);
  EmpDeptWorkload workload{config};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());

  ViewSet views = {memo->root()};
  for (GroupId g : memo->NonLeafGroups()) views.insert(g);

  StatsAnalysis stats(&*memo, &workload.catalog());
  DeltaAnalysis delta(&*memo, &workload.catalog(), &stats);
  TrackEnumerator enumerator(&*memo, &delta);

  for (const TransactionType& type :
       {workload.TxnModEmp(), workload.TxnModDept(),
        SingleModifyTxn("move", "Emp", {"DName"})}) {
    auto tracks = enumerator.Enumerate(views, type);
    ASSERT_TRUE(tracks.ok());
    ASSERT_GE(tracks->size(), 1u);

    // The same concrete transaction, replayed along every track from the
    // same initial state, must leave identical view contents.
    std::vector<std::map<GroupId, Relation>> outcomes;
    for (const UpdateTrack& track : *tracks) {
      Database db;
      ASSERT_TRUE(workload.Populate(&db).ok());
      ViewManager manager(&*memo, &workload.catalog(), &db);
      ASSERT_TRUE(manager.Materialize(views).ok());
      TxnGenerator gen(static_cast<uint64_t>(seed) * 1000 + 7);
      auto txn = gen.Generate(type, db);
      ASSERT_TRUE(txn.ok());
      Status applied = manager.ApplyTransaction(*txn, type, track);
      ASSERT_TRUE(applied.ok())
          << type.name << " " << track.ToString(*memo) << ": "
          << applied.ToString();
      Status consistent = manager.CheckConsistency();
      ASSERT_TRUE(consistent.ok())
          << type.name << " " << track.ToString(*memo) << ": "
          << consistent.ToString();
      std::map<GroupId, Relation> contents;
      for (GroupId g : views) {
        contents.emplace(g, *manager.ViewContents(g));
      }
      outcomes.push_back(std::move(contents));
    }
    for (size_t i = 1; i < outcomes.size(); ++i) {
      for (const auto& [g, rel] : outcomes[0]) {
        EXPECT_TRUE(rel.BagEquals(outcomes[i].at(g)))
            << type.name << ": view N" << g << " differs between tracks 0 and "
            << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackIndependenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

struct StreamCase {
  int num_relations;
  int rows;
  int fanout;
  bool with_aggregate;
  int seed;
};

class MaintenanceStreamTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(MaintenanceStreamTest, MaintainedEqualsRecomputed) {
  const StreamCase& param = GetParam();
  ChainConfig config;
  config.num_relations = param.num_relations;
  config.rows_per_relation = param.rows;
  config.fanout = param.fanout;
  config.with_aggregate = param.with_aggregate;
  config.seed = static_cast<uint64_t>(param.seed);
  ChainWorkload workload{config};
  auto tree = workload.ChainViewTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  ViewSelector selector(&*memo, &workload.catalog());
  auto chosen = selector.Greedy(workload.AllTxns());
  ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();

  Database db;
  ASSERT_TRUE(workload.Populate(&db).ok());
  ViewManager manager(&*memo, &workload.catalog(), &db);
  ASSERT_TRUE(manager.Materialize(chosen->views).ok());
  TxnGenerator gen(static_cast<uint64_t>(param.seed));
  const auto txns = workload.AllTxns();
  for (int step = 0; step < 12; ++step) {
    const TransactionType& type = txns[step % txns.size()];
    auto plan = selector.BestTrack(chosen->views, type);
    ASSERT_TRUE(plan.ok());
    auto txn = gen.Generate(type, db);
    ASSERT_TRUE(txn.ok());
    Status applied = manager.ApplyTransaction(*txn, type, plan->track);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    Status consistent = manager.CheckConsistency();
    ASSERT_TRUE(consistent.ok())
        << "step " << step << ": " << consistent.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MaintenanceStreamTest,
    ::testing::Values(StreamCase{2, 30, 1, false, 11},
                      StreamCase{3, 40, 2, false, 12},
                      StreamCase{3, 40, 2, true, 13},
                      StreamCase{4, 30, 3, true, 14},
                      StreamCase{4, 50, 1, false, 15}));

class OptimumLowerBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(OptimumLowerBoundTest, WinnerIsMinimumOfAllViewSets) {
  const double weight = GetParam();
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  OptimizeOptions options;
  options.keep_all = true;
  auto result = SelectViews(
      *tree, workload.catalog(),
      {workload.TxnModEmp(weight), workload.TxnModDept(1)},
      Strategy::kExhaustive, options);
  ASSERT_TRUE(result.ok());
  for (const auto& [views, cost] : result->result.all_costs) {
    EXPECT_GE(cost + 1e-9, result->result.weighted_cost)
        << ViewSetToString(views);
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, OptimumLowerBoundTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace auxview
