// The durable delta log: frame format, checksums, torn-tail vs corruption
// semantics, checkpointing, and end-to-end crash recovery proven
// bit-identical via Table::Fingerprint.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "storage/wal/crc32c.h"
#include "storage/wal/serde.h"
#include "storage/wal/wal.h"

namespace auxview {
namespace {

namespace fs = std::filesystem;

std::string FreshDir() {
  static const std::string root = [] {
    char tmpl[] = "/tmp/auxview_wal_test_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    return std::string(dir != nullptr ? dir : "/tmp");
  }();
  static int n = 0;
  return root + "/d" + std::to_string(n++);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

ConcreteTxn MakeTxn(const std::string& tag, int i) {
  ConcreteTxn txn;
  txn.type_name = tag;
  TableUpdate update;
  update.relation = "T";
  update.inserts.emplace_back(
      Row{Value::String(tag + std::to_string(i)), Value::Int64(i),
          Value::Double(i * 1.5)},
      1);
  update.deletes.emplace_back(Row{Value::String("old"), Value::Int64(-i),
                                  Value::Null()},
                              2);
  update.modifies.emplace_back(
      Row{Value::String("a"), Value::Int64(1), Value::Bool(true)},
      Row{Value::String("a"), Value::Int64(2), Value::Bool(false)});
  txn.updates.push_back(std::move(update));
  return txn;
}

// ---------------------------------------------------------------------------
// CRC-32C.

TEST(Crc32cTest, MatchesKnownVectors) {
  // The canonical check value for CRC-32C.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Extend over split inputs equals one-shot.
  const uint32_t partial = ExtendCrc32c(Crc32c("12345", 5), "6789", 4);
  EXPECT_EQ(partial, 0xE3069283u);
  // Sensitivity: one flipped bit changes the sum.
  EXPECT_NE(Crc32c("123456789", 9), Crc32c("123456788", 9));
}

// ---------------------------------------------------------------------------
// Serde.

TEST(WalSerdeTest, TxnRoundTripsAllValueTypes) {
  const ConcreteTxn txn = MakeTxn("roundtrip", 7);
  wal::ByteWriter w;
  wal::EncodeTxn(&w, txn);
  wal::ByteReader r(w.buffer());
  auto decoded = wal::DecodeTxn(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded->type_name, txn.type_name);
  ASSERT_EQ(decoded->updates.size(), 1u);
  const TableUpdate& u = decoded->updates[0];
  EXPECT_EQ(u.relation, "T");
  ASSERT_EQ(u.inserts.size(), 1u);
  EXPECT_TRUE(RowEq()(u.inserts[0].first, txn.updates[0].inserts[0].first));
  EXPECT_EQ(u.inserts[0].second, 1);
  ASSERT_EQ(u.deletes.size(), 1u);
  EXPECT_TRUE(u.deletes[0].first[2].is_null());
  ASSERT_EQ(u.modifies.size(), 1u);
  EXPECT_TRUE(
      RowEq()(u.modifies[0].second, txn.updates[0].modifies[0].second));
}

TEST(WalSerdeTest, TruncatedPayloadFailsCleanly) {
  wal::ByteWriter w;
  wal::EncodeTxn(&w, MakeTxn("trunc", 1));
  for (size_t cut : {size_t{0}, size_t{3}, w.buffer().size() / 2,
                     w.buffer().size() - 1}) {
    wal::ByteReader r(w.buffer().data(), cut);
    EXPECT_FALSE(wal::DecodeTxn(&r).ok()) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// Log scan: append, reopen, replay.

TEST(WalTest, AppendedTxnsSurviveReopenInLsnOrder) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_FALSE((*wal)->recovery_pending());
    for (int i = 1; i <= 5; ++i) {
      auto lsn = (*wal)->AppendTxn(MakeTxn("t", i));
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i));
    }
  }
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE((*wal)->recovery_pending());
  // Appends are refused until the staged state is consumed.
  EXPECT_EQ((*wal)->AppendTxn(MakeTxn("refused", 0)).status().code(),
            StatusCode::kFailedPrecondition);
  WalRecovery rec = (*wal)->TakeRecovery();
  EXPECT_FALSE(rec.has_checkpoint);
  ASSERT_EQ(rec.txns.size(), 5u);
  for (size_t i = 0; i < rec.txns.size(); ++i) {
    EXPECT_EQ(rec.txns[i].lsn, i + 1);
    EXPECT_EQ(rec.txns[i].txn.type_name, "t");
  }
  EXPECT_EQ(rec.last_lsn, 5u);
  EXPECT_EQ(rec.truncated_tail_bytes, 0);
  // The log continues where it left off.
  auto lsn = (*wal)->AppendTxn(MakeTxn("more", 6));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 6u);
}

TEST(WalTest, AbortRecordCancelsItsTransaction) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("keep", 1)).ok());
    auto doomed = (*wal)->AppendTxn(MakeTxn("doomed", 2));
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE((*wal)->AppendAbort(*doomed).ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("keep", 3)).ok());
  }
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_TRUE(wal.ok());
  WalRecovery rec = (*wal)->TakeRecovery();
  ASSERT_EQ(rec.txns.size(), 2u);
  EXPECT_EQ(rec.txns[0].txn.type_name, "keep");
  EXPECT_EQ(rec.txns[1].txn.type_name, "keep");
  // The abort record consumed an LSN of its own.
  EXPECT_EQ(rec.last_lsn, 4u);
}

TEST(WalTest, TornFinalRecordIsTruncatedWithMetric) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("whole", 1)).ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("torn", 2)).ok());
  }
  auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::string bytes = ReadFile(segments[0]);
  // Tear the second record mid-frame, as a crash mid-write would.
  const std::string torn = bytes.substr(0, bytes.size() - 7);
  WriteFile(segments[0], torn);

  obs::Counter* truncations =
      obs::MetricsRegistry::Global().GetCounter("wal.truncated_tail");
  const int64_t before = truncations->value();
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(truncations->value(), before + 1);
  WalRecovery rec = (*wal)->TakeRecovery();
  ASSERT_EQ(rec.txns.size(), 1u);
  EXPECT_EQ(rec.txns[0].txn.type_name, "whole");
  EXPECT_GT(rec.truncated_tail_bytes, 0);
  EXPECT_EQ(rec.last_lsn, 1u);
  // The torn bytes are gone from disk; the next open is clean.
  EXPECT_EQ(ReadFile(segments[0]).size(), torn.size() -
                                              static_cast<size_t>(
                                                  rec.truncated_tail_bytes));
  // New appends reuse the reclaimed LSN.
  auto lsn = (*wal)->AppendTxn(MakeTxn("again", 2));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
}

TEST(WalTest, ShortHeaderTailIsTruncated) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("whole", 1)).ok());
  }
  auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  // A crash that got only 10 bytes of the next header out.
  std::string bytes = ReadFile(segments[0]);
  WriteFile(segments[0], bytes + std::string(10, '\x41'));
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  WalRecovery rec = (*wal)->TakeRecovery();
  ASSERT_EQ(rec.txns.size(), 1u);
  EXPECT_EQ(rec.truncated_tail_bytes, 10);
}

TEST(WalTest, MidLogCorruptionFailsWithLsnAnchoredError) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("first", 1)).ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("second", 2)).ok());
  }
  auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::string bytes = ReadFile(segments[0]);
  // Flip one payload byte of the FIRST record: more log follows, so this is
  // in-place damage, not a torn write — recovery must refuse.
  bytes[30] = static_cast<char>(bytes[30] ^ 0x01);
  WriteFile(segments[0], bytes);
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_FALSE(wal.ok());
  const std::string message = wal.status().ToString();
  EXPECT_NE(message.find("CRC mismatch"), std::string::npos) << message;
  EXPECT_NE(message.find("lsn 1"), std::string::npos) << message;
}

TEST(WalTest, CorruptFinalRecordAtEofIsTreatedAsTorn) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("first", 1)).ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("last", 2)).ok());
  }
  auto segments = SegmentFiles(dir);
  std::string bytes = ReadFile(segments[0]);
  // Damage the LAST record's final byte: indistinguishable from a frame
  // that lost its trailing sector, so it truncates rather than fails.
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x01);
  WriteFile(segments[0], bytes);
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  WalRecovery rec = (*wal)->TakeRecovery();
  ASSERT_EQ(rec.txns.size(), 1u);
  EXPECT_EQ(rec.txns[0].txn.type_name, "first");
  EXPECT_GT(rec.truncated_tail_bytes, 0);
}

TEST(WalTest, CorruptCheckpointFileRefusesToOpen) {
  const std::string dir = FreshDir();
  ASSERT_TRUE(fs::create_directories(dir));
  WriteFile(dir + "/checkpoint", "definitely not a checkpoint image");
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().ToString().find("corrupt"), std::string::npos);
}

TEST(WalTest, StaleCheckpointTmpIsDiscardedOnOpen) {
  const std::string dir = FreshDir();
  {
    auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendTxn(MakeTxn("t", 1)).ok());
  }
  // A checkpoint that crashed between tmp-write and rename.
  WriteFile(dir + "/checkpoint.tmp", "half-written image");
  auto wal = WriteAheadLog::Open(DatabaseOptions{dir, WalFsync::kCommit, 0});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_FALSE(fs::exists(dir + "/checkpoint.tmp"));
  EXPECT_EQ((*wal)->TakeRecovery().txns.size(), 1u);
}

// ---------------------------------------------------------------------------
// Session-level recovery.

constexpr char kDdl[] = R"sql(
CREATE TABLE Emp (EName STRING PRIMARY KEY, DName STRING, Salary INT,
                  INDEX (DName));
CREATE TABLE Dept (DName STRING PRIMARY KEY, MName STRING, Budget INT);
CREATE VIEW SumOfSals (DName, SalSum) AS
  SELECT DName, SUM(Salary) FROM Emp GROUPBY DName;
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT Dept.DName FROM Emp, Dept
               WHERE Dept.DName = Emp.DName
               GROUPBY Dept.DName, Budget
               HAVING SUM(Salary) > Budget));
)sql";

std::unique_ptr<Session> MakeWalSession(const std::string& dir) {
  SessionOptions options;
  options.durability.wal_dir = dir;
  options.durability.wal_fsync = WalFsync::kCommit;
  auto session = std::make_unique<Session>(options);
  EXPECT_TRUE(session->Execute(kDdl).ok());
  session->DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
                            SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
  return session;
}

void LoadRows(Session* session) {
  for (int d = 0; d < 3; ++d) {
    const std::string dname = "d" + std::to_string(d);
    for (int k = 0; k < 3; ++k) {
      auto r = session->Execute(
          "INSERT INTO Emp VALUES ('" + dname + "e" + std::to_string(k) +
          "', '" + dname + "', " + std::to_string(1000 + 10 * k) + ");");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    auto r = session->Execute("INSERT INTO Dept VALUES ('" + dname + "', 'm" +
                              std::to_string(d) + "', 5000);");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

std::map<std::string, std::string> FingerprintAll(Session& session) {
  std::map<std::string, std::string> out;
  for (const std::string& name : session.db().TableNames()) {
    out[name] = session.db().FindTable(name)->Fingerprint();
  }
  return out;
}

TEST(SessionRecoveryTest, PreparedSessionRecoversBitIdentical) {
  const std::string dir = FreshDir();
  std::map<std::string, std::string> expected;
  {
    auto session = MakeWalSession(dir);
    LoadRows(session.get());
    Status prepared = session->Prepare();
    ASSERT_TRUE(prepared.ok()) << prepared.ToString();
    for (int i = 0; i < 4; ++i) {
      auto r = session->Execute(
          "UPDATE Emp SET Salary = Salary + 7 WHERE DName = 'd" +
          std::to_string(i % 3) + "';");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    expected = FingerprintAll(*session);
  }  // "crash": the process state is gone, only the wal directory remains

  auto revived = MakeWalSession(dir);
  Status recovered = revived->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  const RecoveryInfo& info = revived->last_recovery();
  EXPECT_TRUE(info.recovered);
  EXPECT_TRUE(info.had_checkpoint);
  EXPECT_EQ(info.replayed, 4);
  EXPECT_TRUE(revived->prepared());
  // Base tables AND materialized views, rows and index buckets alike.
  EXPECT_EQ(FingerprintAll(*revived), expected);
  EXPECT_TRUE(revived->CheckConsistency().ok());
  // The revived session is fully live: DML and assertions still work.
  auto more = revived->Execute(
      "UPDATE Emp SET Salary = 99999 WHERE EName = 'd0e0';");
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(more->rejected());
}

TEST(SessionRecoveryTest, LoadOnlyLogRecoversWithoutCheckpoint) {
  const std::string dir = FreshDir();
  std::map<std::string, std::string> expected;
  {
    auto session = MakeWalSession(dir);
    LoadRows(session.get());
    expected = FingerprintAll(*session);
  }
  auto revived = MakeWalSession(dir);
  ASSERT_TRUE(revived->Recover().ok());
  EXPECT_FALSE(revived->last_recovery().had_checkpoint);
  EXPECT_EQ(revived->last_recovery().replayed, 12);  // 9 Emp + 3 Dept loads
  EXPECT_FALSE(revived->prepared());
  EXPECT_EQ(FingerprintAll(*revived), expected);
  // The revived session Prepares normally (and checkpoints the result).
  ASSERT_TRUE(revived->Prepare().ok());
  EXPECT_TRUE(revived->CheckConsistency().ok());
}

TEST(SessionRecoveryTest, CheckpointTruncatesTheLogPrefix) {
  const std::string dir = FreshDir();
  auto session = MakeWalSession(dir);
  LoadRows(session.get());
  ASSERT_GE(SegmentFiles(dir).size(), 1u);
  const std::string pre_prepare_segment = SegmentFiles(dir)[0];
  ASSERT_GT(fs::file_size(pre_prepare_segment), 0u);
  ASSERT_TRUE(session->Prepare().ok());  // takes the initial checkpoint
  // The load-era segment is gone; one fresh (empty) segment remains.
  const auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NE(segments[0], pre_prepare_segment);
  EXPECT_EQ(fs::file_size(segments[0]), 0u);
  EXPECT_TRUE(fs::exists(dir + "/checkpoint"));
}

TEST(SessionRecoveryTest, TornCommitRecordIsDroppedOnRecovery) {
  const std::string dir = FreshDir();
  std::map<std::string, std::string> expected;
  {
    auto session = MakeWalSession(dir);
    LoadRows(session.get());
    ASSERT_TRUE(session->Prepare().ok());
    auto r = session->Execute(
        "UPDATE Emp SET Salary = Salary + 3 WHERE DName = 'd0';");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected = FingerprintAll(*session);
    // A second update whose log record tears mid-write: the commit fails
    // cleanly and memory rolls back...
    FailpointRegistry::Global().ArmAfter("wal.append.partial", 1);
    auto torn = session->Execute(
        "UPDATE Emp SET Salary = Salary + 5 WHERE DName = 'd1';");
    FailpointRegistry::Global().DisarmAll();
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.status().code(), StatusCode::kAborted);
    EXPECT_EQ(FingerprintAll(*session), expected);
  }
  // ...and recovery truncates the torn bytes and lands exactly on the state
  // without it.
  auto revived = MakeWalSession(dir);
  Status recovered = revived->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_GT(revived->last_recovery().truncated_tail_bytes, 0);
  EXPECT_EQ(revived->last_recovery().replayed, 1);
  EXPECT_EQ(FingerprintAll(*revived), expected);
  EXPECT_TRUE(revived->CheckConsistency().ok());
}

TEST(SessionRecoveryTest, MidLogCorruptionSurfacesLsnAnchoredError) {
  const std::string dir = FreshDir();
  {
    auto session = MakeWalSession(dir);
    LoadRows(session.get());
    ASSERT_TRUE(session->Prepare().ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(session
                      ->Execute("UPDATE Emp SET Salary = Salary + 1 "
                                "WHERE EName = 'd0e0';")
                      .ok());
    }
  }
  const auto segments = SegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::string bytes = ReadFile(segments[0]);
  ASSERT_GT(bytes.size(), 40u);
  bytes[30] = static_cast<char>(bytes[30] ^ 0x01);  // first record's payload
  WriteFile(segments[0], bytes);

  // Session construction scans the log; the open failure is deferred and
  // surfaces on the first call (so it can't use MakeWalSession, whose DDL
  // Execute would already trip it).
  SessionOptions options;
  options.durability.wal_dir = dir;
  Session revived(options);
  Status recovered = revived.Recover();
  ASSERT_FALSE(recovered.ok());
  const std::string message = recovered.ToString();
  EXPECT_NE(message.find("CRC mismatch"), std::string::npos) << message;
  EXPECT_NE(message.find("lsn"), std::string::npos) << message;
}

TEST(SessionRecoveryTest, AutoCheckpointCompactsEveryN) {
  const std::string dir = FreshDir();
  SessionOptions options;
  options.durability.wal_dir = dir;
  options.durability.wal_fsync = WalFsync::kCommit;
  options.durability.wal_checkpoint_every = 2;
  auto session = std::make_unique<Session>(options);
  ASSERT_TRUE(session->Execute(kDdl).ok());
  session->DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"}, 2),
                            SingleModifyTxn(">Dept", "Dept", {"Budget"}, 1)});
  LoadRows(session.get());
  ASSERT_TRUE(session->Prepare().ok());
  obs::Counter* checkpoints =
      obs::MetricsRegistry::Global().GetCounter("wal.checkpoints");
  const int64_t before = checkpoints->value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session
                    ->Execute("UPDATE Emp SET Salary = Salary + 1 "
                              "WHERE EName = 'd1e1';")
                    .ok());
  }
  // 4 commits at wal_checkpoint_every=2 -> 2 automatic compactions.
  EXPECT_EQ(checkpoints->value(), before + 2);
  // And the log prefix stays trimmed: a single current segment.
  EXPECT_EQ(SegmentFiles(dir).size(), 1u);
}

}  // namespace
}  // namespace auxview
