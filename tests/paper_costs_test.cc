// Reproduces every number of the paper's Section 3.6 worked example
// (ProblemDept, 1000 departments x 10 employees, transactions >Emp and
// >Dept) — the query-cost table, the view-update-cost table, the
// update-track table and the combined table, including the headline
// "about 30%" result.

#include <gtest/gtest.h>

#include "auxview.h"

namespace auxview {
namespace {

class PaperCostsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload_ = std::make_unique<EmpDeptWorkload>(EmpDeptConfig{});
    auto tree = workload_->ProblemDeptTree();
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    auto memo = BuildExpandedMemo(*tree, workload_->catalog());
    ASSERT_TRUE(memo.ok()) << memo.status().ToString();
    memo_ = std::make_unique<Memo>(std::move(memo).value());
    selector_ = std::make_unique<ViewSelector>(memo_.get(),
                                               &workload_->catalog());

    // Identify the paper's named groups.
    root_ = memo_->root();  // N1: Select
    for (GroupId g : memo_->NonLeafGroups()) {
      for (int eid : memo_->group(g).exprs) {
        const MemoExpr& e = memo_->expr(eid);
        if (e.dead) continue;
        if (e.kind() == OpKind::kAggregate &&
            e.op->group_by() == std::vector<std::string>{"DName"}) {
          n3_ = g;  // Aggregate(Emp BY DName)
        }
        if (e.kind() == OpKind::kJoin) {
          // N4 = Join(Emp, Dept); N2's join has the aggregate as input.
          bool leaf_join = true;
          for (GroupId in : e.inputs) {
            if (!memo_->group(memo_->Find(in)).is_leaf) leaf_join = false;
          }
          if (leaf_join) n4_ = g;
        }
        if (e.kind() == OpKind::kSelect) n1_ = g;
        if (e.kind() == OpKind::kAggregate &&
            e.op->group_by().size() == 2) {
          n2_ = g;
        }
      }
    }
    ASSERT_GE(n1_, 0);
    ASSERT_GE(n2_, 0);
    ASSERT_GE(n3_, 0);
    ASSERT_GE(n4_, 0);
    ASSERT_EQ(n1_, root_);
  }

  double BestCost(const ViewSet& extra, const TransactionType& txn) {
    ViewSet views = extra;
    views.insert(root_);
    auto plan = selector_->BestTrack(views, txn);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan->cost.total();
  }

  std::unique_ptr<EmpDeptWorkload> workload_;
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<ViewSelector> selector_;
  GroupId root_ = -1, n1_ = -1, n2_ = -1, n3_ = -1, n4_ = -1;
};

TEST_F(PaperCostsTest, DagMatchesFigure2) {
  // Figure 2: six equivalence nodes (N1..N6), five operation nodes
  // (E1..E5) — when only the aggregation-swap rules run. The default rule
  // set adds commuted join variants but no further equivalence nodes for
  // this view.
  auto tree = workload_->ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  auto rules = AggregationOnlyRuleSet();
  auto stats = ExpandMemo(&memo, workload_->catalog(), rules);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(memo.LiveGroups().size(), 6u) << memo.ToString();
  EXPECT_EQ(memo.LiveExprs().size(), 5u) << memo.ToString();
}

TEST_F(PaperCostsTest, CombinedCostsTable) {
  const TransactionType mod_emp = workload_->TxnModEmp();
  const TransactionType mod_dept = workload_->TxnModDept();

  // Paper Section 3.6, final table (empty set / {N3} / {N4}):
  //   >Emp : 13 / 5 / 16      >Dept: 11 / 2 / 32
  EXPECT_DOUBLE_EQ(BestCost({}, mod_emp), 13);
  EXPECT_DOUBLE_EQ(BestCost({}, mod_dept), 11);
  EXPECT_DOUBLE_EQ(BestCost({n3_}, mod_emp), 5);
  EXPECT_DOUBLE_EQ(BestCost({n3_}, mod_dept), 2);
  EXPECT_DOUBLE_EQ(BestCost({n4_}, mod_emp), 16);
  EXPECT_DOUBLE_EQ(BestCost({n4_}, mod_dept), 32);
}

TEST_F(PaperCostsTest, HeadlineThirtyPercent) {
  // "by using strategy (b) we use an average of 3.5 page I/Os per
  // transaction for maintenance compared with 12 for strategy (a) ...
  // a reduction to about 30%".
  const double with_n3 = (BestCost({n3_}, workload_->TxnModEmp()) +
                          BestCost({n3_}, workload_->TxnModDept())) /
                         2;
  const double without = (BestCost({}, workload_->TxnModEmp()) +
                          BestCost({}, workload_->TxnModDept())) /
                         2;
  EXPECT_DOUBLE_EQ(with_n3, 3.5);
  EXPECT_DOUBLE_EQ(without, 12);
  EXPECT_NEAR(with_n3 / without, 0.29, 0.02);
}

TEST_F(PaperCostsTest, ExhaustiveChoosesSumOfSals) {
  // Algorithm OptimalViewSet must pick {N3} (the SumOfSals view) as the
  // additional materialization, independent of the transaction weighting
  // (the paper: "Independent of the weighting ... strategy (b) wins").
  for (double w : {0.1, 1.0, 10.0}) {
    auto result = selector_->Exhaustive(
        {workload_->TxnModEmp(w), workload_->TxnModDept(1)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ViewSet expected = {root_, n3_};
    EXPECT_EQ(result->views, expected)
        << "weight " << w << ": got " << ViewSetToString(result->views);
  }
}

TEST_F(PaperCostsTest, UpdateCostsTable) {
  // Section 3.6 update-cost table: N3/>Emp = 3, N4/>Emp = 3, N4/>Dept = 21,
  // N3/>Dept = 0 (unaffected).
  auto plan_n3_emp = selector_->BestTrack({root_, n3_},
                                          workload_->TxnModEmp());
  ASSERT_TRUE(plan_n3_emp.ok());
  EXPECT_DOUBLE_EQ(plan_n3_emp->cost.update_cost, 3);

  auto plan_n4_emp = selector_->BestTrack({root_, n4_},
                                          workload_->TxnModEmp());
  ASSERT_TRUE(plan_n4_emp.ok());
  EXPECT_DOUBLE_EQ(plan_n4_emp->cost.update_cost, 3);

  auto plan_n4_dept = selector_->BestTrack({root_, n4_},
                                           workload_->TxnModDept());
  ASSERT_TRUE(plan_n4_dept.ok());
  EXPECT_DOUBLE_EQ(plan_n4_dept->cost.update_cost, 21);

  auto plan_n3_dept = selector_->BestTrack({root_, n3_},
                                           workload_->TxnModDept());
  ASSERT_TRUE(plan_n3_dept.ok());
  EXPECT_DOUBLE_EQ(plan_n3_dept->cost.update_cost, 0);
}

TEST_F(PaperCostsTest, QueryCostsTable) {
  // Section 3.6 query-cost table, via direct lookups:
  //   Q2Ld (sum of salaries of one department, posed on N3):
  //     11 under {}, 2 under {N3}, 11 under {N4}
  //   Q2Re (matching Dept tuple): 2 everywhere
  //   Q3e (group contents, posed on N4): 13 / 13 / 11
  //   Q4e (employees of one department): 11
  //   Q5Ld (employees of one department): 11; Q5Re: 2.
  StatsAnalysis stats(memo_.get(), &workload_->catalog());
  FdAnalysis fds(memo_.get(), &workload_->catalog());
  QueryCoster coster(memo_.get(), &workload_->catalog(), &stats, &fds,
                     IoCostModel());
  const std::vector<std::string> dname = {"DName"};
  const std::vector<std::string> group = {"DName", "Budget"};

  EXPECT_DOUBLE_EQ(coster.LookupCost(n3_, dname, 1, {}), 11);          // Q2Ld
  EXPECT_DOUBLE_EQ(coster.LookupCost(n3_, dname, 1, {n3_}), 2);
  EXPECT_DOUBLE_EQ(coster.LookupCost(n3_, dname, 1, {n4_}), 11);

  GroupId dept = -1, emp = -1;
  for (GroupId g : memo_->LiveGroups()) {
    if (memo_->group(g).is_leaf && memo_->group(g).table == "Dept") dept = g;
    if (memo_->group(g).is_leaf && memo_->group(g).table == "Emp") emp = g;
  }
  ASSERT_GE(dept, 0);
  ASSERT_GE(emp, 0);
  EXPECT_DOUBLE_EQ(coster.LookupCost(dept, dname, 1, {}), 2);   // Q2Re, Q5Re
  EXPECT_DOUBLE_EQ(coster.LookupCost(emp, dname, 1, {}), 11);   // Q4e, Q5Ld

  EXPECT_DOUBLE_EQ(coster.LookupCost(n4_, group, 1, {}), 13);     // Q3e
  EXPECT_DOUBLE_EQ(coster.LookupCost(n4_, group, 1, {n3_}), 13);
  EXPECT_DOUBLE_EQ(coster.LookupCost(n4_, group, 1, {n4_}), 11);
}

}  // namespace
}  // namespace auxview
