#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "storage/database.h"
#include "storage/undo_log.h"

namespace auxview {
namespace {

TableDef MakeDef() {
  TableDef def;
  def.name = "T";
  def.schema = Schema::Create({{"k", ValueType::kInt64},
                               {"g", ValueType::kString},
                               {"v", ValueType::kInt64}})
                   .value();
  def.primary_key = {"k"};
  def.indexes = {IndexDef{{"g"}}};
  return def;
}

Row R(int64_t k, const std::string& g, int64_t v) {
  return {Value::Int64(k), Value::String(g), Value::Int64(v)};
}

TEST(TableTest, InsertDeleteCounts) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());  // bag: multiplicity 2
  EXPECT_EQ(t.row_count(), 3);
  EXPECT_EQ(t.distinct_rows(), 2);
  EXPECT_EQ(t.CountOf(R(2, "a", 20)), 2);
  ASSERT_TRUE(t.Delete(R(2, "a", 20)).ok());
  EXPECT_EQ(t.CountOf(R(2, "a", 20)), 1);
  // Deleting below zero fails.
  EXPECT_EQ(t.Delete(R(2, "a", 20), 5).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TableTest, IndexedLookup) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(3, "b", 30)).ok());
  auto rows = t.Lookup({"g"}, {Value::String("a")});
  EXPECT_EQ(rows.size(), 2u);
  rows = t.Lookup({"k"}, {Value::Int64(3)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].row[2].int64(), 30);
  EXPECT_TRUE(t.HasIndexOn({"g"}));
  EXPECT_TRUE(t.HasIndexOn({"k"}));
  EXPECT_FALSE(t.HasIndexOn({"v"}));
}

TEST(TableTest, UnindexedLookupScans) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "b", 10)).ok());
  counter.Reset();
  auto rows = t.Lookup({"v"}, {Value::Int64(10)});
  EXPECT_EQ(rows.size(), 2u);
  // Full scan: one tuple read per row, no index page.
  EXPECT_EQ(counter.tuple_reads(), 2);
  EXPECT_EQ(counter.index_reads(), 0);
}

TEST(TableTest, PaperIoAccounting) {
  // Mirrors the paper's model: an indexed lookup returning k tuples costs
  // 1 + k pages; modifying one tuple costs 1 index read + 1 read + 1 write.
  PageCounter counter;
  Table t(MakeDef(), &counter);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(R(i, "dept", 100 + i)).ok());
  }
  counter.Reset();
  auto rows = t.Lookup({"g"}, {Value::String("dept")});
  EXPECT_EQ(rows.size(), 10u);
  EXPECT_EQ(counter.index_reads(), 1);
  EXPECT_EQ(counter.tuple_reads(), 10);

  counter.Reset();
  ASSERT_TRUE(t.Modify(R(3, "dept", 103), R(3, "dept", 999)).ok());
  // 2 indexes on this table (k and g): paper counts one page per index.
  EXPECT_EQ(counter.index_reads(), 2);
  EXPECT_EQ(counter.tuple_reads(), 1);
  EXPECT_EQ(counter.tuple_writes(), 1);
  EXPECT_EQ(counter.index_writes(), 0);  // indexed attrs unchanged
  EXPECT_EQ(t.CountOf(R(3, "dept", 999)), 1);
  EXPECT_EQ(t.CountOf(R(3, "dept", 103)), 0);
}

TEST(TableTest, ModifyChangingIndexedAttrWritesIndex) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  counter.Reset();
  ASSERT_TRUE(t.Modify(R(1, "a", 10), R(1, "b", 10)).ok());
  EXPECT_EQ(counter.index_writes(), 1);  // only the g index changed
  EXPECT_EQ(t.Lookup({"g"}, {Value::String("b")}).size(), 1u);
  EXPECT_TRUE(t.Lookup({"g"}, {Value::String("a")}).empty());
}

TEST(TableTest, ModifyAbsentRowFails) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  EXPECT_EQ(t.Modify(R(1, "a", 1), R(1, "a", 2)).code(),
            StatusCode::kNotFound);
}

TEST(TableTest, CountingCanBeDisabled) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  {
    ScopedCountingDisabled guard(&counter);
    ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  }
  EXPECT_EQ(counter.total(), 0);
  ASSERT_TRUE(t.Insert(R(2, "a", 10)).ok());
  EXPECT_GT(counter.total(), 0);
}

TEST(TableTest, ComputeStats) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(3, "b", 20)).ok());
  RelationStats stats = t.ComputeStats();
  EXPECT_DOUBLE_EQ(stats.row_count, 3);
  EXPECT_DOUBLE_EQ(stats.distinct["k"], 3);
  EXPECT_DOUBLE_EQ(stats.distinct["g"], 2);
  EXPECT_DOUBLE_EQ(stats.distinct["v"], 2);
}

TEST(TableTest, ModifyBatchHandlesUpdateChains) {
  // Regression: a batch where one pair's new row IS another pair's old row
  // (X→Y, Y→Z with Y already present). The old in-place per-pair application
  // merged the moved copy of Y into the resident Y and then moved both to Z;
  // the two-phase batch must move each copy exactly once.
  PageCounter counter;
  Table t(MakeDef(), &counter);
  const Row x = R(1, "a", 10);
  const Row y = R(2, "a", 20);
  const Row z = R(3, "a", 30);
  ASSERT_TRUE(t.Insert(x, 2).ok());
  ASSERT_TRUE(t.Insert(y, 3).ok());
  ASSERT_TRUE(t.ModifyBatch({{x, y}, {y, z}}).ok());
  EXPECT_EQ(t.CountOf(x), 0);
  EXPECT_EQ(t.CountOf(y), 2);  // the moved copies of x, not x+y merged
  EXPECT_EQ(t.CountOf(z), 3);
  EXPECT_EQ(t.row_count(), 5);
  // Index buckets must agree with the rows.
  EXPECT_EQ(t.Lookup({"g"}, {Value::String("a")}).size(), 2u);
}

TEST(TableTest, ModifyBatchHandlesSwaps) {
  // X→Y and Y→X in one batch exchange the multiplicities.
  PageCounter counter;
  Table t(MakeDef(), &counter);
  const Row x = R(1, "a", 10);
  const Row y = R(2, "b", 20);
  ASSERT_TRUE(t.Insert(x, 1).ok());
  ASSERT_TRUE(t.Insert(y, 4).ok());
  ASSERT_TRUE(t.ModifyBatch({{x, y}, {y, x}}).ok());
  EXPECT_EQ(t.CountOf(x), 4);
  EXPECT_EQ(t.CountOf(y), 1);
  EXPECT_EQ(t.Lookup({"g"}, {Value::String("a")}).size(), 1u);
  EXPECT_EQ(t.Lookup({"g"}, {Value::String("b")}).size(), 1u);
}

TEST(TableTest, ModifyBatchMidBatchFaultRollsBackExactly) {
  // A fault between the detach and attach phases leaves rows_ and
  // total_count_ mid-flight; the undo log must restore the exact
  // pre-batch fingerprint, indexes included.
  PageCounter counter;
  Table t(MakeDef(), &counter);
  const Row x = R(1, "a", 10);
  const Row y = R(2, "a", 20);
  ASSERT_TRUE(t.Insert(x, 2).ok());
  ASSERT_TRUE(t.Insert(y, 3).ok());
  const std::string before = t.Fingerprint();

  FailpointRegistry& reg = FailpointRegistry::Global();
  for (int nth = 1; nth <= 2; ++nth) {
    UndoLog undo;
    t.set_undo_log(&undo);
    reg.ArmAfter("storage.table.modify_pair", nth);
    Status status = t.ModifyBatch({{x, y}, {y, x}});
    reg.Disarm("storage.table.modify_pair");
    EXPECT_EQ(status.code(), StatusCode::kAborted) << "nth=" << nth;
    ASSERT_TRUE(undo.RollBack().ok());
    t.set_undo_log(nullptr);
    EXPECT_EQ(t.Fingerprint(), before) << "nth=" << nth;
  }
}

TEST(TableTest, LookupBatchMatchesPerKeyLookup) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(3, "b", 30)).ok());
  // Indexed attr, repeated key, and a miss; then the unindexed fallback.
  for (const std::vector<std::string>& attrs :
       {std::vector<std::string>{"g"}, std::vector<std::string>{"v"}}) {
    const std::vector<Row> keys = {{Value::String("a")},
                                   {Value::String("zzz")},
                                   {Value::String("a")}};
    const std::vector<Row> int_keys = {{Value::Int64(20)},
                                       {Value::Int64(99)},
                                       {Value::Int64(20)}};
    const std::vector<Row>& probe = (attrs[0] == "g") ? keys : int_keys;
    counter.Reset();
    auto batched = t.LookupBatch(attrs, probe);
    const int64_t batched_cost = counter.total();
    ASSERT_EQ(batched.size(), probe.size());
    counter.Reset();
    for (size_t i = 0; i < probe.size(); ++i) {
      auto single = t.Lookup(attrs, probe[i]);
      ASSERT_EQ(batched[i].size(), single.size()) << "key " << i;
      for (size_t j = 0; j < single.size(); ++j) {
        EXPECT_EQ(batched[i][j].row, single[j].row);
        EXPECT_EQ(batched[i][j].count, single[j].count);
      }
    }
    // Batching saves CPU, never modeled I/O: identical charges.
    EXPECT_EQ(batched_cost, counter.total());
  }
}

TEST(DatabaseTest, CreateDropFind) {
  Database db;
  ASSERT_TRUE(db.CreateTable(MakeDef()).ok());
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_EQ(db.CreateTable(MakeDef()).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.DropTable("T").ok());
  EXPECT_FALSE(db.HasTable("T"));
  EXPECT_EQ(db.DropTable("T").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace auxview
