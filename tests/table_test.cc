#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace auxview {
namespace {

TableDef MakeDef() {
  TableDef def;
  def.name = "T";
  def.schema = Schema::Create({{"k", ValueType::kInt64},
                               {"g", ValueType::kString},
                               {"v", ValueType::kInt64}})
                   .value();
  def.primary_key = {"k"};
  def.indexes = {IndexDef{{"g"}}};
  return def;
}

Row R(int64_t k, const std::string& g, int64_t v) {
  return {Value::Int64(k), Value::String(g), Value::Int64(v)};
}

TEST(TableTest, InsertDeleteCounts) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());  // bag: multiplicity 2
  EXPECT_EQ(t.row_count(), 3);
  EXPECT_EQ(t.distinct_rows(), 2);
  EXPECT_EQ(t.CountOf(R(2, "a", 20)), 2);
  ASSERT_TRUE(t.Delete(R(2, "a", 20)).ok());
  EXPECT_EQ(t.CountOf(R(2, "a", 20)), 1);
  // Deleting below zero fails.
  EXPECT_EQ(t.Delete(R(2, "a", 20), 5).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TableTest, IndexedLookup) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(3, "b", 30)).ok());
  auto rows = t.Lookup({"g"}, {Value::String("a")});
  EXPECT_EQ(rows.size(), 2u);
  rows = t.Lookup({"k"}, {Value::Int64(3)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].row[2].int64(), 30);
  EXPECT_TRUE(t.HasIndexOn({"g"}));
  EXPECT_TRUE(t.HasIndexOn({"k"}));
  EXPECT_FALSE(t.HasIndexOn({"v"}));
}

TEST(TableTest, UnindexedLookupScans) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "b", 10)).ok());
  counter.Reset();
  auto rows = t.Lookup({"v"}, {Value::Int64(10)});
  EXPECT_EQ(rows.size(), 2u);
  // Full scan: one tuple read per row, no index page.
  EXPECT_EQ(counter.tuple_reads(), 2);
  EXPECT_EQ(counter.index_reads(), 0);
}

TEST(TableTest, PaperIoAccounting) {
  // Mirrors the paper's model: an indexed lookup returning k tuples costs
  // 1 + k pages; modifying one tuple costs 1 index read + 1 read + 1 write.
  PageCounter counter;
  Table t(MakeDef(), &counter);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(R(i, "dept", 100 + i)).ok());
  }
  counter.Reset();
  auto rows = t.Lookup({"g"}, {Value::String("dept")});
  EXPECT_EQ(rows.size(), 10u);
  EXPECT_EQ(counter.index_reads(), 1);
  EXPECT_EQ(counter.tuple_reads(), 10);

  counter.Reset();
  ASSERT_TRUE(t.Modify(R(3, "dept", 103), R(3, "dept", 999)).ok());
  // 2 indexes on this table (k and g): paper counts one page per index.
  EXPECT_EQ(counter.index_reads(), 2);
  EXPECT_EQ(counter.tuple_reads(), 1);
  EXPECT_EQ(counter.tuple_writes(), 1);
  EXPECT_EQ(counter.index_writes(), 0);  // indexed attrs unchanged
  EXPECT_EQ(t.CountOf(R(3, "dept", 999)), 1);
  EXPECT_EQ(t.CountOf(R(3, "dept", 103)), 0);
}

TEST(TableTest, ModifyChangingIndexedAttrWritesIndex) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  counter.Reset();
  ASSERT_TRUE(t.Modify(R(1, "a", 10), R(1, "b", 10)).ok());
  EXPECT_EQ(counter.index_writes(), 1);  // only the g index changed
  EXPECT_EQ(t.Lookup({"g"}, {Value::String("b")}).size(), 1u);
  EXPECT_TRUE(t.Lookup({"g"}, {Value::String("a")}).empty());
}

TEST(TableTest, ModifyAbsentRowFails) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  EXPECT_EQ(t.Modify(R(1, "a", 1), R(1, "a", 2)).code(),
            StatusCode::kNotFound);
}

TEST(TableTest, CountingCanBeDisabled) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  {
    ScopedCountingDisabled guard(&counter);
    ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  }
  EXPECT_EQ(counter.total(), 0);
  ASSERT_TRUE(t.Insert(R(2, "a", 10)).ok());
  EXPECT_GT(counter.total(), 0);
}

TEST(TableTest, ComputeStats) {
  PageCounter counter;
  Table t(MakeDef(), &counter);
  ASSERT_TRUE(t.Insert(R(1, "a", 10)).ok());
  ASSERT_TRUE(t.Insert(R(2, "a", 20)).ok());
  ASSERT_TRUE(t.Insert(R(3, "b", 20)).ok());
  RelationStats stats = t.ComputeStats();
  EXPECT_DOUBLE_EQ(stats.row_count, 3);
  EXPECT_DOUBLE_EQ(stats.distinct["k"], 3);
  EXPECT_DOUBLE_EQ(stats.distinct["g"], 2);
  EXPECT_DOUBLE_EQ(stats.distinct["v"], 2);
}

TEST(DatabaseTest, CreateDropFind) {
  Database db;
  ASSERT_TRUE(db.CreateTable(MakeDef()).ok());
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_EQ(db.CreateTable(MakeDef()).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.DropTable("T").ok());
  EXPECT_FALSE(db.HasTable("T"));
  EXPECT_EQ(db.DropTable("T").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace auxview
