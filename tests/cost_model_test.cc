// Cost-model pluggability: the optimizer runs under any monotonic model
// (Section 3.4, "our technique and results are applicable for any monotonic
// cost model"); changing unit weights changes the numbers but not the
// soundness, and extreme weights shift the chosen view set sensibly.

#include <gtest/gtest.h>

#include "optimizer/select_views.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

TEST(CostModelTest, CustomWeightsScaleTotals) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());

  // Doubling every unit cost exactly doubles every plan's cost.
  IoCostParams doubled;
  doubled.index_page_read = 2;
  doubled.index_page_write = 2;
  doubled.tuple_page_read = 2;
  doubled.tuple_page_write = 2;
  ViewSelector base(&*memo, &workload.catalog());
  ViewSelector scaled(&*memo, &workload.catalog(), IoCostModel(doubled));
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  auto b = base.Exhaustive(txns);
  auto s = scaled.Exhaustive(txns);
  ASSERT_TRUE(b.ok() && s.ok());
  EXPECT_DOUBLE_EQ(s->weighted_cost, 2 * b->weighted_cost);
  EXPECT_EQ(s->views, b->views);
}

TEST(CostModelTest, FreeWritesFavorMoreMaterialization) {
  // When applying updates is free (e.g. a write-back cache), materializing
  // additional views can only help: the optimum's cost under free writes is
  // at most the paper optimum's query cost.
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  IoCostParams free_writes;
  free_writes.tuple_page_write = 0;
  free_writes.index_page_write = 0;
  ViewSelector selector(&*memo, &workload.catalog(),
                        IoCostModel(free_writes));
  const std::vector<TransactionType> txns = {workload.TxnModEmp(),
                                             workload.TxnModDept()};
  auto result = selector.Exhaustive(txns);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->weighted_cost, 3.5);
  EXPECT_GE(result->views.size(), 2u);
}

TEST(CostModelTest, ExpensiveIndexPagesStillMonotonic) {
  EmpDeptWorkload workload{EmpDeptConfig{}};
  auto tree = workload.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload.catalog());
  ASSERT_TRUE(memo.ok());
  IoCostParams pricey;
  pricey.index_page_read = 10;
  ViewSelector selector(&*memo, &workload.catalog(), IoCostModel(pricey));
  OptimizeOptions options;
  options.keep_all = true;
  auto result = selector.Exhaustive(
      {workload.TxnModEmp(), workload.TxnModDept()}, options);
  ASSERT_TRUE(result.ok());
  for (const auto& [views, cost] : result->all_costs) {
    EXPECT_GE(cost + 1e-9, result->weighted_cost) << ViewSetToString(views);
    EXPECT_GE(cost, 0);
  }
}

}  // namespace
}  // namespace auxview
