#include "memo/memo.h"

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "exec/executor.h"
#include "memo/expand.h"
#include "workload/chain.h"
#include "workload/emp_dept.h"

namespace auxview {
namespace {

class MemoTest : public ::testing::Test {
 protected:
  EmpDeptWorkload workload_{EmpDeptConfig{}};
};

TEST_F(MemoTest, AddTreeCreatesGroupsBottomUp) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  auto root = memo.AddTree(*tree);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(memo.root(), *root);
  // Emp, Dept, Join, Aggregate, Select = 5 groups, 3 non-leaf ops.
  EXPECT_EQ(memo.LiveGroups().size(), 5u);
  EXPECT_EQ(memo.LiveExprs().size(), 3u);
  EXPECT_EQ(memo.NonLeafGroups().size(), 3u);
}

TEST_F(MemoTest, AddingSameTreeTwiceDeduplicates) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  auto r1 = memo.AddTree(*tree);
  auto r2 = memo.AddTree(*tree);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(memo.LiveExprs().size(), 3u);
}

TEST_F(MemoTest, SharedLeavesAreShared) {
  ExprBuilder b(&workload_.catalog());
  auto join = b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"});
  auto agg = b.Aggregate(b.Scan("Emp"), {"DName"},
                         {{AggFunc::kSum, Col("Salary"), "SumSal"}});
  Memo memo;
  ASSERT_TRUE(memo.AddTree(join).ok());
  ASSERT_TRUE(memo.AddTree(agg).ok());
  int emp_leaves = 0;
  for (GroupId g : memo.LiveGroups()) {
    if (memo.group(g).is_leaf && memo.group(g).table == "Emp") ++emp_leaves;
  }
  EXPECT_EQ(emp_leaves, 1);
}

TEST_F(MemoTest, ExtractOriginalTreeRoundTrips) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  auto extracted = memo.ExtractOriginalTree(memo.root());
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ((*extracted)->TreeSignature(), (*tree)->TreeSignature());
}

TEST_F(MemoTest, ExtractWithChoiceSelectsAlternative) {
  auto tree = workload_.ProblemDeptTree();
  ASSERT_TRUE(tree.ok());
  auto memo = BuildExpandedMemo(*tree, workload_.catalog());
  ASSERT_TRUE(memo.ok());
  // Find the Join alternative of the Select's input group (Figure 1 left).
  GroupId n2 = -1;
  int join_op = -1;
  for (GroupId g : memo->NonLeafGroups()) {
    for (int eid : memo->group(g).exprs) {
      const MemoExpr& e = memo->expr(eid);
      if (e.dead) continue;
      if (e.kind() == OpKind::kAggregate && e.op->group_by().size() == 2) {
        n2 = g;
      }
    }
  }
  ASSERT_GE(n2, 0);
  for (int eid : memo->group(n2).exprs) {
    if (!memo->expr(eid).dead && memo->expr(eid).kind() == OpKind::kJoin) {
      join_op = eid;
    }
  }
  ASSERT_GE(join_op, 0) << memo->ToString();
  auto alt = memo->ExtractTree(memo->root(), {{n2, join_op}});
  ASSERT_TRUE(alt.ok()) << alt.status().ToString();
  // The alternative plan must compute the same relation.
  Database db;
  ASSERT_TRUE(workload_.Populate(&db).ok());
  Executor executor(&db);
  auto original = executor.Execute(**memo->ExtractOriginalTree(memo->root()));
  auto alternative = executor.Execute(**alt);
  ASSERT_TRUE(original.ok() && alternative.ok());
  EXPECT_TRUE(original->BagEquals(*alternative));
}

TEST_F(MemoTest, AddExprValidatesSchemaCoverage) {
  ExprBuilder b(&workload_.catalog());
  auto agg = b.Aggregate(b.Scan("Emp"), {"DName"},
                         {{AggFunc::kSum, Col("Salary"), "SumSal"}});
  Memo memo;
  auto root = memo.AddTree(agg);
  ASSERT_TRUE(root.ok());
  // A Dept scan's schema does not cover the aggregate group's schema.
  GroupId dept = *memo.AddTree(b.Scan("Dept"));
  auto op = Expr::DupElim(Expr::Scan("@x", memo.group(dept).schema));
  ASSERT_TRUE(op.ok());
  auto bad = memo.AddExpr(*root, *op, {dept});
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MemoTest, SelfInputRejected) {
  auto tree = workload_.ProblemDeptTree();
  Memo memo;
  auto root = memo.AddTree(*tree);
  ASSERT_TRUE(root.ok());
  auto op = Expr::DupElim(Expr::Scan("@x", memo.group(*root).schema));
  ASSERT_TRUE(op.ok());
  EXPECT_FALSE(memo.AddExpr(*root, *op, {*root}).ok());
}

TEST_F(MemoTest, ParentExprsOf) {
  auto tree = workload_.ProblemDeptTree();
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  GroupId emp = -1;
  for (GroupId g : memo.LiveGroups()) {
    if (memo.group(g).is_leaf && memo.group(g).table == "Emp") emp = g;
  }
  ASSERT_GE(emp, 0);
  auto parents = memo.ParentExprsOf(emp);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(memo.expr(parents[0]).kind(), OpKind::kJoin);
}

TEST_F(MemoTest, RuleDiscoversTwoTreesAreEqualAndMergesGroups) {
  // Two syntactically different chain-join trees added as separate roots:
  // join associativity proves them equal, and the memo merges the groups.
  ChainConfig config;
  config.num_relations = 3;
  ChainWorkload chain{config};
  ExprBuilder b(&chain.catalog());
  // (R1 join R2) join R3  vs  R1 join (R2 join R3).
  Expr::Ptr left_deep = b.Join(b.Join(b.Scan("R1"), b.Scan("R2"), {"A1"}),
                               b.Scan("R3"), {"A2"});
  Expr::Ptr right_deep = b.Join(b.Scan("R1"),
                                b.Join(b.Scan("R2"), b.Scan("R3"), {"A2"}),
                                {"A1"});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_NE(left_deep->TreeSignature(), right_deep->TreeSignature());

  Memo memo;
  GroupId g1 = *memo.AddTree(left_deep);
  GroupId g2 = *memo.AddTree(right_deep);
  EXPECT_NE(memo.Find(g1), memo.Find(g2));  // not yet proven equal
  const auto rules = DefaultRuleSet();
  ASSERT_TRUE(ExpandMemo(&memo, chain.catalog(), rules).ok());
  EXPECT_EQ(memo.Find(g1), memo.Find(g2)) << memo.ToString();
  // Dead groups are excluded from the live listings.
  for (GroupId g : memo.LiveGroups()) {
    EXPECT_FALSE(memo.group(g).dead);
  }
}

TEST_F(MemoTest, ExtractAfterMergeStillWorks) {
  ChainConfig config;
  config.num_relations = 3;
  ChainWorkload chain{config};
  ExprBuilder b(&chain.catalog());
  Expr::Ptr left_deep = b.Join(b.Join(b.Scan("R1"), b.Scan("R2"), {"A1"}),
                               b.Scan("R3"), {"A2"});
  Expr::Ptr right_deep = b.Join(b.Scan("R1"),
                                b.Join(b.Scan("R2"), b.Scan("R3"), {"A2"}),
                                {"A1"});
  Memo memo;
  GroupId g1 = *memo.AddTree(left_deep);
  ASSERT_TRUE(memo.AddTree(right_deep).ok());
  const auto rules = DefaultRuleSet();
  ASSERT_TRUE(ExpandMemo(&memo, chain.catalog(), rules).ok());
  // Every surviving operation node of the merged group still extracts and
  // evaluates to the same relation.
  Database db;
  ASSERT_TRUE(chain.Populate(&db).ok());
  Executor executor(&db);
  const GroupId merged = memo.Find(g1);
  auto reference = executor.Execute(**memo.ExtractOriginalTree(merged));
  ASSERT_TRUE(reference.ok());
  int live_ops = 0;
  for (int eid : memo.group(merged).exprs) {
    if (memo.expr(eid).dead) continue;
    ++live_ops;
    auto plan = memo.ExtractTree(merged, {{merged, eid}});
    ASSERT_TRUE(plan.ok());
    auto value = executor.Execute(**plan);
    ASSERT_TRUE(value.ok());
    EXPECT_TRUE(reference->BagEquals(*value));
  }
  EXPECT_GE(live_ops, 2);
}

TEST_F(MemoTest, ToStringListsGroupsAndOps) {
  auto tree = workload_.ProblemDeptTree();
  Memo memo;
  ASSERT_TRUE(memo.AddTree(*tree).ok());
  const std::string dump = memo.ToString();
  EXPECT_NE(dump.find("relation Emp"), std::string::npos);
  EXPECT_NE(dump.find("Join (DName)"), std::string::npos);
  EXPECT_NE(dump.find("(root)"), std::string::npos);
}

}  // namespace
}  // namespace auxview
