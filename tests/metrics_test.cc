// Tests for the observability layer (src/obs/): counter/gauge/histogram
// semantics, registry handle stability, snapshot determinism, the JSON
// serialization contract, and the storage-layer wiring.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <thread>
#include <vector>

#include "storage/database.h"

namespace auxview {
namespace {

// --- Primitive semantics ---------------------------------------------------

TEST(CounterTest, AddsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentAddsDoNotLoseUpdates) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  obs::Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketsObservationsAtUpperBounds) {
  obs::Histogram h({1, 10, 100});
  h.Observe(0.5);   // <= 1
  h.Observe(1);     // <= 1 (bounds are inclusive upper limits)
  h.Observe(5);     // <= 10
  h.Observe(100);   // <= 100
  h.Observe(1000);  // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 1106.5);
  const std::vector<int64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
}

TEST(HistogramTest, SortsUnorderedBounds) {
  obs::Histogram h({100, 1, 10});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1, 10, 100}));
}

TEST(HistogramTest, ResetClearsEverything) {
  obs::Histogram h({1, 2});
  h.Observe(1.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
  for (int64_t b : h.bucket_counts()) EXPECT_EQ(b, 0);
}

// --- Registry --------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* a = reg.GetCounter("test.registry.same_handle");
  obs::Counter* b = reg.GetCounter("test.registry.same_handle");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedByFirstRegistration) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Histogram* a = reg.GetHistogram("test.registry.hist", {1, 2, 3});
  obs::Histogram* b = reg.GetHistogram("test.registry.hist", {9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->bounds(), (std::vector<double>{1, 2, 3}));
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicAndSorted) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.snapshot.b")->Add(2);
  reg.GetCounter("test.snapshot.a")->Add(1);
  const obs::MetricsSnapshot s1 = reg.Snapshot();
  const obs::MetricsSnapshot s2 = reg.Snapshot();
  ASSERT_EQ(s1.counters.size(), s2.counters.size());
  for (size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
    EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
    if (i > 0) EXPECT_LT(s1.counters[i - 1].name, s1.counters[i].name);
  }
  EXPECT_EQ(s1.ToJson(), s2.ToJson());
  EXPECT_EQ(s1.CounterOr("test.snapshot.a"), 1);
  EXPECT_EQ(s1.CounterOr("test.snapshot.b"), 2);
  EXPECT_EQ(s1.CounterOr("test.snapshot.absent", -7), -7);
}

// --- JSON serialization ----------------------------------------------------

// A minimal recursive-descent JSON validator: enough to prove the
// serializer emits syntactically well-formed JSON without an external
// parsing dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(MetricsSnapshotTest, JsonIsWellFormedAndRoundTripsValues) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Add(123);
  reg.GetGauge("test.json.gauge")->Set(-5);
  reg.GetHistogram("test.json.hist", {1, 10})->Observe(4);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const std::string json = snap.ToJson();

  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.json.counter\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": -5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);

  // The snapshot taken now and serialized again is byte-identical: the
  // registry stores metrics name-sorted and serialization is pure.
  EXPECT_EQ(reg.Snapshot().ToJson(), json);
}

TEST(MetricsSnapshotTest, JsonEscapesSpecialCharacters) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.json.\"quoted\\name\"")->Add(1);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\\\"quoted\\\\name\\\""), std::string::npos);
}

TEST(JsonHelpersTest, NumbersAndStrings) {
  EXPECT_EQ(obs::JsonNumber(1.5), "1.5");
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "null");
  EXPECT_EQ(obs::JsonString("a\nb"), "\"a\\nb\"");
}

// --- Timers ----------------------------------------------------------------

TEST(ScopedTimerTest, ObservesElapsedMicros) {
  obs::Histogram h(obs::Histogram::DefaultTimeBoundsUs());
  {
    obs::ScopedTimer timer(&h);
    EXPECT_GE(timer.ElapsedUs(), 0);
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.sum(), 0);
}

TEST(TraceSpanTest, RecordsCallsAndTiming) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t before =
      reg.GetCounter("span.test_span.calls")->value();
  { obs::TraceSpan span("test_span"); }
  { obs::TraceSpan span("test_span"); }
  EXPECT_EQ(reg.GetCounter("span.test_span.calls")->value(), before + 2);
  EXPECT_GE(reg.GetHistogram("span.test_span.us")->count(), 2);
}

// --- Storage wiring --------------------------------------------------------

TEST(StorageMetricsTest, TableChargesGlobalAndPerRelationCounters) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* page_writes = reg.GetCounter("storage.page_writes");
  obs::Counter* rel_writes =
      reg.GetCounter("storage.rel.MetricsT.page_writes");
  const int64_t global_before = page_writes->value();
  const int64_t rel_before = rel_writes->value();

  PageCounter counter;
  TableDef def;
  def.name = "MetricsT";
  def.schema =
      Schema::Create({{"k", ValueType::kString}, {"v", ValueType::kInt64}})
          .value();
  def.primary_key = {"k"};
  Table table(def, &counter);
  ASSERT_TRUE(table.Insert({Value::String("a"), Value::Int64(1)}).ok());

  // Insert: 1 tuple write + 1 index write, mirrored globally and
  // per-relation.
  EXPECT_EQ(page_writes->value() - global_before, 2);
  EXPECT_EQ(rel_writes->value() - rel_before, 2);

  // A disabled counter suspends the mirrors too.
  const int64_t mid = page_writes->value();
  {
    ScopedCountingDisabled guard(&counter);
    ASSERT_TRUE(table.Insert({Value::String("b"), Value::Int64(2)}).ok());
  }
  EXPECT_EQ(page_writes->value(), mid);
  EXPECT_EQ(rel_writes->value() - rel_before, 2);
}

TEST(StorageMetricsTest, LabeledDatabaseScopesPerRelationCounters) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* labeled =
      reg.GetCounter("storage.rel.mirror.ScopedT.page_writes");
  obs::Counter* unlabeled = reg.GetCounter("storage.rel.ScopedT.page_writes");
  const int64_t labeled_before = labeled->value();
  const int64_t unlabeled_before = unlabeled->value();

  TableDef def;
  def.name = "ScopedT";
  def.schema =
      Schema::Create({{"k", ValueType::kString}, {"v", ValueType::kInt64}})
          .value();
  def.primary_key = {"k"};

  // Two databases, same schema: the labeled one charges
  // storage.rel.<label>.<table>.*, never aliasing the unlabeled names
  // (docs/OBSERVABILITY.md per-database scoping).
  Database mirror;
  mirror.set_label("mirror");
  auto mt = mirror.CreateTable(def);
  ASSERT_TRUE(mt.ok());
  ASSERT_TRUE((*mt)->Insert({Value::String("a"), Value::Int64(1)}).ok());
  EXPECT_EQ(labeled->value() - labeled_before, 2);
  EXPECT_EQ(unlabeled->value(), unlabeled_before);

  Database plain;
  auto pt = plain.CreateTable(def);
  ASSERT_TRUE(pt.ok());
  ASSERT_TRUE((*pt)->Insert({Value::String("a"), Value::Int64(1)}).ok());
  EXPECT_EQ(unlabeled->value() - unlabeled_before, 2);
  EXPECT_EQ(labeled->value() - labeled_before, 2);
}

TEST(StorageMetricsTest, LabeledShardedDatabaseComposesScopes) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  // The label and the shard scope compose on both counter families:
  // per-shard database I/O lands in storage.<label>.shard.<i>.* and
  // per-relation I/O in storage.rel.<label>.<table>.shard.<i>.* — each
  // charge counted exactly once in the global storage.* totals.
  obs::Counter* global_writes = reg.GetCounter("storage.page_writes");
  std::vector<obs::Counter*> shard_writes;
  std::vector<obs::Counter*> rel_shard_writes;
  for (int i = 0; i < 2; ++i) {
    shard_writes.push_back(reg.GetCounter(
        "storage.twoway.shard." + std::to_string(i) + ".page_writes"));
    rel_shard_writes.push_back(
        reg.GetCounter("storage.rel.twoway.ShardScopeT.shard." +
                       std::to_string(i) + ".page_writes"));
  }
  const int64_t global_before = global_writes->value();
  std::vector<int64_t> shard_before, rel_before;
  for (int i = 0; i < 2; ++i) {
    shard_before.push_back(shard_writes[i]->value());
    rel_before.push_back(rel_shard_writes[i]->value());
  }

  TableDef def;
  def.name = "ShardScopeT";
  def.schema =
      Schema::Create({{"k", ValueType::kString}, {"v", ValueType::kInt64}})
          .value();
  def.primary_key = {"k"};
  def.shard_key = {"k"};

  Database db;
  db.set_label("twoway");
  db.set_shard_count(2);
  auto table = db.CreateTable(def);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*table)
            ->Insert({Value::String("k" + std::to_string(i)), Value::Int64(i)})
            .ok());
  }

  // 8 inserts x (1 index write + 1 tuple write) = 16 page writes, split
  // across the two shards by hash but never double-counted.
  int64_t shard_sum = 0, rel_sum = 0;
  for (int i = 0; i < 2; ++i) {
    const int64_t s = shard_writes[i]->value() - shard_before[i];
    const int64_t r = rel_shard_writes[i]->value() - rel_before[i];
    EXPECT_EQ(s, r) << "shard " << i
                    << ": database and relation scopes disagree";
    EXPECT_GT(s, 0) << "shard " << i << " never charged (all rows hashed "
                    << "to one shard — pick different test keys)";
    shard_sum += s;
    rel_sum += r;
  }
  EXPECT_EQ(shard_sum, 16);
  EXPECT_EQ(rel_sum, 16);
  EXPECT_EQ(global_writes->value() - global_before, 16)
      << "per-shard mirrors double-counted into the global totals";
}

}  // namespace
}  // namespace auxview
