#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace auxview {
namespace obs {

/// Escapes `s` as a JSON string literal (with quotes). Metric names are
/// ASCII by convention, but escaping keeps arbitrary relation names safe.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Accumulate the double sum through its bit pattern (CAS loop).
  int64_t expected = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &expected, sizeof(current));
    const double next = current + value;
    int64_t next_bits;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(expected, next_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  const int64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::DefaultTimeBoundsUs() {
  std::vector<double> bounds;
  for (double decade = 1; decade <= 1e8; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(1e9);
  return bounds;
}

double MetricsSnapshot::HistogramValue::Quantile(double q) const {
  if (count <= 0) return std::nan("");
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, ceil) among `count` sorted
  // observations, then walk the cumulative bucket counts.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count))));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;  // overflow bucket: lower bound
    const double hi = bounds[i];
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets[i]);
    return lo + (hi - lo) * frac;
  }
  return std::nan("");  // unreachable when count matches bucket totals
}

int64_t MetricsSnapshot::CounterOr(const std::string& name,
                                   int64_t fallback) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const CounterValue& c : counters) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(c.name) + ": " + std::to_string(c.value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const GaugeValue& g : gauges) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(g.name) + ": " + std::to_string(g.value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const HistogramValue& h : histograms) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(h.name) + ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + JsonNumber(h.sum) + ", \"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonNumber(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  char buf[256];
  for (const CounterValue& c : counters) {
    std::snprintf(buf, sizeof(buf), "  %-52s %14lld\n", c.name.c_str(),
                  static_cast<long long>(c.value));
    out += buf;
  }
  for (const GaugeValue& g : gauges) {
    std::snprintf(buf, sizeof(buf), "  %-52s %14lld\n", g.name.c_str(),
                  static_cast<long long>(g.value));
    out += buf;
  }
  for (const HistogramValue& h : histograms) {
    const double avg =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  %-52s n=%-10lld sum=%-12.6g avg=%.6g\n", h.name.c_str(),
                  static_cast<long long>(h.count), h.sum, avg);
    out += buf;
  }
  if (out.empty()) out = "  (no metrics recorded yet)\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultTimeBoundsUs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = hist->count();
    h.sum = hist->sum();
    h.bounds = hist->bounds();
    h.buckets = hist->bucket_counts();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->Observe(ElapsedUs());
}

double ScopedTimer::ElapsedUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

TraceSpan::TraceSpan(const std::string& name)
    : timer_(MetricsRegistry::Global().GetHistogram("span." + name + ".us")) {
  MetricsRegistry::Global().GetCounter("span." + name + ".calls")->Add(1);
}

}  // namespace obs
}  // namespace auxview
