#ifndef AUXVIEW_OBS_METRICS_H_
#define AUXVIEW_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace auxview {
namespace obs {

/// Lock-cheap metrics for the hot paths (see docs/OBSERVABILITY.md for the
/// metric catalog and naming conventions).
///
/// Registration (name -> handle) takes a mutex once; the returned handles are
/// stable pointers whose updates are single relaxed atomics, so instrumented
/// code caches a handle at construction time and pays one `fetch_add` per
/// event. Snapshots are deterministic: metrics are stored sorted by name.

/// Escapes `s` as a quoted JSON string literal.
std::string JsonString(const std::string& s);

/// Formats a double as a JSON number ("null" for NaN/Inf, which JSON lacks).
std::string JsonNumber(double v);

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can go up and down (e.g. live candidate count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram with fixed bucket upper bounds (cumulative-style buckets:
/// bucket i counts observations <= bounds[i]; one implicit overflow bucket
/// counts the rest). Also tracks count and sum, so averages are available
/// even when the bucket layout is coarse.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  std::vector<int64_t> bucket_counts() const;
  void Reset();

  /// Default bounds for microsecond-scale timings: 1us .. ~1e9us, decades
  /// subdivided 1/2/5.
  static std::vector<double> DefaultTimeBoundsUs();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_bits_{0};  // double sum, CAS-accumulated bits
};

/// A point-in-time, deterministic (name-sorted) copy of every metric.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    double sum = 0;
    std::vector<double> bounds;
    std::vector<int64_t> buckets;  // bounds.size() + 1, last is overflow

    /// Estimated quantile `q` in [0, 1], linearly interpolated inside the
    /// winning bucket (0 is the implicit lower edge of the first bucket;
    /// the overflow bucket reports its lower bound). NaN when empty.
    double Quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by exact name (0 when absent).
  int64_t CounterOr(const std::string& name, int64_t fallback = 0) const;

  /// Histogram by exact name (nullptr when absent).
  const HistogramValue* FindHistogram(const std::string& name) const;

  /// Serializes to a JSON object:
  /// {"counters": {...}, "gauges": {...},
  ///  "histograms": {name: {"count": c, "sum": s, "bounds": [...],
  ///                        "buckets": [...]}}}
  std::string ToJson() const;

  /// Fixed-width human-readable table (the shell's .metrics command).
  std::string ToTable() const;
};

/// The process-wide registry. `Get*` registers on first use and returns a
/// stable handle; repeated calls with the same name return the same handle
/// (a histogram's bucket bounds are fixed by the first registration).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (tests and benches; registration
  /// survives, handles stay valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer observing elapsed wall time in microseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed microseconds so far.
  double ElapsedUs() const;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// A named trace span: registers (on first use) and updates
/// `span.<name>.calls` (counter) and `span.<name>.us` (histogram) for the
/// enclosed scope. Cheap enough for per-transaction paths; cache the result
/// of the registry lookups with a function-local static when the span is on
/// a true hot loop.
class TraceSpan {
 public:
  explicit TraceSpan(const std::string& name);
  ~TraceSpan() = default;

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  ScopedTimer timer_;
};

}  // namespace obs
}  // namespace auxview

#endif  // AUXVIEW_OBS_METRICS_H_
