#ifndef AUXVIEW_EXEC_RELATION_H_
#define AUXVIEW_EXEC_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace auxview {

/// An in-memory relation value with bag semantics (row -> multiplicity).
/// Multiplicities may be negative inside delta computations (bag
/// subtraction); stored tables reject negative counts.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  void set_schema(Schema schema) { schema_ = std::move(schema); }

  /// Adds `count` copies of `row`; zero-count rows are dropped.
  void Add(const Row& row, int64_t count) {
    if (count == 0) return;
    auto it = rows_.find(row);
    if (it == rows_.end()) {
      rows_.emplace(row, count);
      return;
    }
    it->second += count;
    if (it->second == 0) rows_.erase(it);
  }

  void AddAll(const Relation& other) {
    for (const auto& [row, count] : other.rows_) Add(row, count);
  }

  int64_t CountOf(const Row& row) const {
    auto it = rows_.find(row);
    return it == rows_.end() ? 0 : it->second;
  }

  bool empty() const { return rows_.empty(); }
  /// Number of distinct rows.
  int64_t distinct_rows() const { return static_cast<int64_t>(rows_.size()); }
  /// Sum of multiplicities (may be negative for deltas).
  int64_t total_count() const {
    int64_t total = 0;
    for (const auto& [row, count] : rows_) total += count;
    return total;
  }

  const std::unordered_map<Row, int64_t, RowHash, RowEq>& rows() const {
    return rows_;
  }

  /// Rows in deterministic (sorted) order, for tests and printing.
  std::vector<std::pair<Row, int64_t>> SortedRows() const {
    std::vector<std::pair<Row, int64_t>> out(rows_.begin(), rows_.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                const Row& ra = a.first;
                const Row& rb = b.first;
                for (size_t i = 0; i < ra.size() && i < rb.size(); ++i) {
                  const int c = ra[i].Compare(rb[i]);
                  if (c != 0) return c < 0;
                }
                return ra.size() < rb.size();
              });
    return out;
  }

  bool BagEquals(const Relation& other) const {
    if (rows_.size() != other.rows_.size()) return false;
    for (const auto& [row, count] : rows_) {
      if (other.CountOf(row) != count) return false;
    }
    return true;
  }

  std::string ToString() const {
    std::string out = "[" + schema_.ToString() + "]\n";
    for (const auto& [row, count] : SortedRows()) {
      out += "  " + RowToString(row);
      if (count != 1) out += " x" + std::to_string(count);
      out += "\n";
    }
    return out;
  }

 private:
  Schema schema_;
  std::unordered_map<Row, int64_t, RowHash, RowEq> rows_;
};

}  // namespace auxview

#endif  // AUXVIEW_EXEC_RELATION_H_
