#ifndef AUXVIEW_EXEC_EXECUTOR_H_
#define AUXVIEW_EXEC_EXECUTOR_H_

#include "algebra/expr.h"
#include "common/status.h"
#include "exec/relation.h"
#include "storage/database.h"

namespace auxview {

/// Evaluates logical algebra trees against a database.
///
/// The executor is the engine's re-computation path: it materializes views
/// from scratch and serves as the oracle that incremental maintenance is
/// checked against. It reads tables without charging page I/O — charged,
/// index-driven access happens in the delta engine, which is what the paper's
/// cost model prices.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Evaluates `expr`; every Scan leaf must name a table present in the
  /// database.
  StatusOr<Relation> Execute(const Expr& expr) const;

 private:
  StatusOr<Relation> ExecuteScan(const Expr& expr) const;
  StatusOr<Relation> ExecuteSelect(const Expr& expr) const;
  StatusOr<Relation> ExecuteProject(const Expr& expr) const;
  StatusOr<Relation> ExecuteJoin(const Expr& expr) const;
  StatusOr<Relation> ExecuteAggregate(const Expr& expr) const;
  StatusOr<Relation> ExecuteDupElim(const Expr& expr) const;

  const Database* db_;
};

/// Applies `expr`'s operator to already-computed input relations. Exposed
/// separately so the delta engine can run single operators over deltas.
namespace exec_detail {

StatusOr<Relation> ApplySelect(const Expr& expr, const Relation& input);
StatusOr<Relation> ApplyProject(const Expr& expr, const Relation& input);
StatusOr<Relation> ApplyJoin(const Expr& expr, const Relation& left,
                             const Relation& right);
StatusOr<Relation> ApplyAggregate(const Expr& expr, const Relation& input);
StatusOr<Relation> ApplyDupElim(const Expr& expr, const Relation& input);

}  // namespace exec_detail

}  // namespace auxview

#endif  // AUXVIEW_EXEC_EXECUTOR_H_
