#ifndef AUXVIEW_EXEC_EXECUTOR_H_
#define AUXVIEW_EXEC_EXECUTOR_H_

#include "algebra/expr.h"
#include "common/status.h"
#include "exec/kernels/row_batch.h"
#include "exec/relation.h"
#include "storage/database.h"

namespace auxview {

/// Evaluates logical algebra trees against a database.
///
/// The executor is the engine's re-computation path: it materializes views
/// from scratch and serves as the oracle that incremental maintenance is
/// checked against. It reads tables without charging page I/O — charged,
/// index-driven access happens in the delta engine, which is what the paper's
/// cost model prices.
///
/// Evaluation composes the shared batch kernels (exec/kernels/kernels.h):
/// each operator consumes its children's whole output batches and produces
/// one batch, so the executor and the delta engine run the same operator
/// code — the executor merely streams batches bottom-up through the tree.
class Executor {
 public:
  /// `source` is any table resolver: the live database, an immutable
  /// snapshot, or a writer's snapshot-plus-delta overlay.
  explicit Executor(const TableSource* source) : db_(source) {}

  /// Evaluates `expr`; every Scan leaf must name a table present in the
  /// database. The result is the coalesced bag of the root's output batch.
  StatusOr<Relation> Execute(const Expr& expr) const;

  /// Batch-level entry point: evaluates `expr` and returns the root
  /// operator's output batch uncoalesced.
  StatusOr<RowBatch> ExecuteBatch(const Expr& expr) const;

 private:
  StatusOr<RowBatch> ScanBatch(const Expr& expr) const;

  const TableSource* db_;
};

}  // namespace auxview

#endif  // AUXVIEW_EXEC_EXECUTOR_H_
