#include "exec/kernels/kernels.h"

#include <atomic>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/worker_pool.h"
#include "obs/metrics.h"

namespace auxview {
namespace kernels {

namespace {

/// Per-kernel metrics, resolved once per kernel name:
/// exec.kernel.<name>.batches — invocations;
/// exec.kernel.<name>.rows    — output entries produced;
/// exec.kernel.<name>.us      — per-invocation wall time.
struct KernelMetrics {
  obs::Counter* batches;
  obs::Counter* rows;
  obs::Histogram* us;

  static KernelMetrics Resolve(const char* name) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const std::string prefix = std::string("exec.kernel.") + name;
    return KernelMetrics{reg.GetCounter(prefix + ".batches"),
                         reg.GetCounter(prefix + ".rows"),
                         reg.GetHistogram(prefix + ".us")};
  }
};

/// RAII recorder: counts the invocation and times the kernel body (the
/// timer stops when the scope closes). Output rows are recorded explicitly
/// at each kernel's success return — the return value is moved out of the
/// local batch before destructors run, so a destructor cannot read it —
/// which means an errored invocation records no rows.
class KernelScope {
 public:
  explicit KernelScope(const KernelMetrics& metrics) : timer_(metrics.us) {
    metrics.batches->Add(1);
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  obs::ScopedTimer timer_;
};

/// Running aggregate state for one group.
struct GroupState {
  int64_t count = 0;           // total multiplicity of contributing rows
  std::vector<double> sums;    // per-agg running sum (SUM/AVG)
  std::vector<bool> all_int;   // SUM stays integral?
  std::vector<Value> minmax;   // per-agg current MIN/MAX
  std::vector<int64_t> nonnull_count;  // per-agg count of non-null args
};

// ---- Partitioned-execution configuration (see kernels.h) -------------------

std::atomic<int64_t> g_partition_min_rows{0};
std::atomic<int> g_partition_count{4};

obs::Counter* PartitionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintain.pool.partitions");
  return c;
}

/// Should a kernel with `rows` input entries partition? A pure function of
/// the configuration and the input, never the pool size.
bool ShouldPartition(int64_t rows) {
  const int64_t min_rows = g_partition_min_rows.load(std::memory_order_relaxed);
  return min_rows > 0 && rows >= min_rows &&
         g_partition_count.load(std::memory_order_relaxed) > 1;
}

/// Splits into contiguous chunks of near-equal entry counts; concatenating
/// the outputs in partition order is entry-for-entry identical to running
/// the kernel unpartitioned (filter/project are entry-local).
std::vector<RowBatch> SplitChunks(const RowBatch& input, int p) {
  std::vector<RowBatch> parts;
  parts.reserve(static_cast<size_t>(p));
  const int64_t n = input.num_rows();
  for (int i = 0; i < p; ++i) {
    const int64_t begin = n * i / p;
    const int64_t end = n * (i + 1) / p;
    RowBatch part(input.schema());
    part.Reserve(end - begin);
    for (int64_t j = begin; j < end; ++j) {
      part.Append(input.row(j), input.count(j));
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

/// Splits by hash of the `key_cols` projection: rows with equal keys land in
/// the same partition and keep their relative order.
std::vector<RowBatch> SplitByHash(const RowBatch& input,
                                  const std::vector<int>& key_cols, int p) {
  std::vector<RowBatch> parts(static_cast<size_t>(p), RowBatch(input.schema()));
  const RowHash hasher;
  Row key;
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    const RowRef row = input.row(i);
    key.clear();
    key.reserve(key_cols.size());
    for (int c : key_cols) key.push_back(row[c]);
    parts[hasher(key) % static_cast<size_t>(p)].Append(row, input.count(i));
  }
  return parts;
}

/// Runs `fn` over every partition on the shared pool and concatenates the
/// outputs by partition index (the deterministic merge).
StatusOr<RowBatch> RunPartitions(
    const Expr& expr, const std::vector<RowBatch>& parts,
    const std::function<StatusOr<RowBatch>(const Expr&, const RowBatch&)>& fn) {
  std::vector<RowBatch> outs(parts.size(), RowBatch(expr.output_schema()));
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    tasks.push_back([&expr, &parts, &outs, &fn, i]() -> Status {
      AUXVIEW_ASSIGN_OR_RETURN(outs[i], fn(expr, parts[i]));
      return Status::Ok();
    });
  }
  PartitionsCounter()->Add(static_cast<int64_t>(parts.size()));
  AUXVIEW_RETURN_IF_ERROR(WorkerPool::Shared().RunAll(std::move(tasks)));
  int64_t total = 0;
  for (const RowBatch& o : outs) total += o.num_rows();
  RowBatch merged(expr.output_schema());
  merged.Reserve(total);
  for (const RowBatch& o : outs) merged.AppendBatch(o);
  return merged;
}

StatusOr<RowBatch> FilterSeq(const Expr& expr, const RowBatch& input) {
  RowBatch out(expr.output_schema());
  const Schema& schema = input.schema();
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    const Row row = input.RowAt(i);
    AUXVIEW_ASSIGN_OR_RETURN(Value v, expr.predicate()->Eval(row, schema));
    if (!v.is_null() && v.boolean()) out.Append(input.row(i), input.count(i));
  }
  return out;
}

StatusOr<RowBatch> ProjectSeq(const Expr& expr, const RowBatch& input) {
  RowBatch out(expr.output_schema());
  out.Reserve(input.num_rows());
  const Schema& schema = input.schema();
  Row projected;
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    const Row row = input.RowAt(i);
    projected.clear();
    projected.reserve(expr.projections().size());
    for (const ProjectItem& item : expr.projections()) {
      AUXVIEW_ASSIGN_OR_RETURN(Value v, item.expr->Eval(row, schema));
      projected.push_back(std::move(v));
    }
    out.Append(projected, input.count(i));
  }
  return out;
}

StatusOr<RowBatch> HashJoinSeq(const Expr& expr, const RowBatch& left,
                               const RowBatch& right) {
  RowBatch out(expr.output_schema());
  const std::vector<int> l_key_cols =
      ResolveColumns(left.schema(), expr.join_attrs());
  const std::vector<int> r_key_cols =
      ResolveColumns(right.schema(), expr.join_attrs());
  // Columns of the right side that survive (non-join attrs).
  std::vector<int> r_out_cols;
  for (int c = 0; c < right.schema().num_columns(); ++c) {
    bool is_join = false;
    for (int k : r_key_cols) {
      if (k == c) {
        is_join = true;
        break;
      }
    }
    if (!is_join) r_out_cols.push_back(c);
  }
  // One hash build over the right batch, one probe per left entry.
  const HashIndex index(&right, r_key_cols);
  Row key;
  for (int64_t i = 0; i < left.num_rows(); ++i) {
    const RowRef lrow = left.row(i);
    key.clear();
    key.reserve(l_key_cols.size());
    for (int c : l_key_cols) key.push_back(lrow[c]);
    const std::vector<int64_t>* matches = index.Probe(key);
    if (matches == nullptr) continue;
    for (int64_t j : *matches) {
      out.AppendConcat(lrow, right.row(j), r_out_cols,
                       left.count(i) * right.count(j));
    }
  }
  return out;
}

StatusOr<RowBatch> GroupedAggregateSeq(const Expr& expr,
                                       const RowBatch& input) {
  RowBatch out(expr.output_schema());
  const Schema& schema = input.schema();
  const std::vector<int> group_cols = ResolveColumns(schema, expr.group_by());
  const size_t num_aggs = expr.aggs().size();
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    const int64_t count = input.count(i);
    if (count < 0) {
      return Status::FailedPrecondition(
          "Aggregate over a relation with negative multiplicities");
    }
    const Row row = input.RowAt(i);
    Row key;
    key.reserve(group_cols.size());
    for (int c : group_cols) key.push_back(row[c]);
    GroupState& gs = groups[std::move(key)];
    if (gs.sums.empty()) {
      gs.sums.assign(num_aggs, 0.0);
      gs.all_int.assign(num_aggs, true);
      gs.minmax.assign(num_aggs, Value::Null());
      gs.nonnull_count.assign(num_aggs, 0);
    }
    gs.count += count;
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggSpec& agg = expr.aggs()[a];
      Value v = Value::Null();
      if (agg.arg != nullptr) {
        AUXVIEW_ASSIGN_OR_RETURN(v, agg.arg->Eval(row, schema));
      }
      switch (agg.func) {
        case AggFunc::kCount:
          if (agg.arg == nullptr || !v.is_null()) gs.nonnull_count[a] += count;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (!v.is_null()) {
            gs.sums[a] += v.AsDouble() * static_cast<double>(count);
            gs.nonnull_count[a] += count;
            if (v.type() != ValueType::kInt64) gs.all_int[a] = false;
          }
          break;
        case AggFunc::kMin:
          if (!v.is_null() &&
              (gs.minmax[a].is_null() || v.Compare(gs.minmax[a]) < 0)) {
            gs.minmax[a] = v;
          }
          break;
        case AggFunc::kMax:
          if (!v.is_null() &&
              (gs.minmax[a].is_null() || v.Compare(gs.minmax[a]) > 0)) {
            gs.minmax[a] = v;
          }
          break;
      }
    }
  }
  for (const auto& [key, gs] : groups) {
    Row row = key;
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggSpec& agg = expr.aggs()[a];
      switch (agg.func) {
        case AggFunc::kCount:
          row.push_back(Value::Int64(gs.nonnull_count[a]));
          break;
        case AggFunc::kSum:
          if (gs.nonnull_count[a] == 0) {
            row.push_back(Value::Null());
          } else if (gs.all_int[a]) {
            row.push_back(Value::Int64(static_cast<int64_t>(gs.sums[a])));
          } else {
            row.push_back(Value::Double(gs.sums[a]));
          }
          break;
        case AggFunc::kAvg:
          if (gs.nonnull_count[a] == 0) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value::Double(
                gs.sums[a] / static_cast<double>(gs.nonnull_count[a])));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          row.push_back(gs.minmax[a]);
          break;
      }
    }
    out.Append(row, 1);
  }
  return out;
}

StatusOr<RowBatch> DupElimSeq(const Expr& expr, const RowBatch& input) {
  RowBatch out(expr.output_schema());
  // Coalesce first: a batch may carry the same row in several entries
  // (including +n/-n pairs that cancel), and dup-elim is defined on the
  // coalesced bag.
  std::unordered_map<Row, int64_t, RowHash, RowEq> totals;
  std::vector<const Row*> order;  // first-appearance order, for determinism
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    auto [it, inserted] = totals.try_emplace(input.RowAt(i), 0);
    it->second += input.count(i);
    if (inserted) order.push_back(&it->first);
  }
  for (const Row* row : order) {
    const int64_t total = totals.at(*row);
    if (total < 0) {
      return Status::FailedPrecondition(
          "DupElim over a relation with negative multiplicities");
    }
    if (total > 0) out.Append(*row, 1);
  }
  return out;
}

}  // namespace

void SetPartitionMinRows(int64_t min_rows) {
  g_partition_min_rows.store(min_rows < 0 ? 0 : min_rows,
                             std::memory_order_relaxed);
}

int64_t PartitionMinRows() {
  return g_partition_min_rows.load(std::memory_order_relaxed);
}

void SetPartitionCount(int count) {
  g_partition_count.store(count < 1 ? 1 : count, std::memory_order_relaxed);
}

int PartitionCount() {
  return g_partition_count.load(std::memory_order_relaxed);
}

std::vector<int> ResolveColumns(const Schema& schema,
                                const std::vector<std::string>& attrs) {
  std::vector<int> cols;
  cols.reserve(attrs.size());
  for (const std::string& a : attrs) {
    const int i = schema.IndexOf(a);
    AUXVIEW_CHECK_MSG(i >= 0, ("kernel attr missing from schema: " + a).c_str());
    cols.push_back(i);
  }
  return cols;
}

HashIndex::HashIndex(const RowBatch* batch, std::vector<int> key_cols)
    : batch_(batch), key_cols_(std::move(key_cols)) {
  map_.reserve(static_cast<size_t>(batch_->num_rows()));
  for (int64_t i = 0; i < batch_->num_rows(); ++i) {
    const RowRef row = batch_->row(i);
    Row key;
    key.reserve(key_cols_.size());
    for (int c : key_cols_) key.push_back(row[c]);
    map_[std::move(key)].push_back(i);
  }
}

const std::vector<int64_t>* HashIndex::Probe(const Row& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

StatusOr<RowBatch> Filter(const Expr& expr, const RowBatch& input) {
  static const KernelMetrics metrics = KernelMetrics::Resolve("filter");
  KernelScope scope(metrics);
  RowBatch out(expr.output_schema());
  if (ShouldPartition(input.num_rows())) {
    AUXVIEW_ASSIGN_OR_RETURN(
        out, RunPartitions(expr, SplitChunks(input, PartitionCount()),
                           &FilterSeq));
  } else {
    AUXVIEW_ASSIGN_OR_RETURN(out, FilterSeq(expr, input));
  }
  metrics.rows->Add(out.num_rows());
  return out;
}

StatusOr<RowBatch> Project(const Expr& expr, const RowBatch& input) {
  static const KernelMetrics metrics = KernelMetrics::Resolve("project");
  KernelScope scope(metrics);
  RowBatch out(expr.output_schema());
  if (ShouldPartition(input.num_rows())) {
    AUXVIEW_ASSIGN_OR_RETURN(
        out, RunPartitions(expr, SplitChunks(input, PartitionCount()),
                           &ProjectSeq));
  } else {
    AUXVIEW_ASSIGN_OR_RETURN(out, ProjectSeq(expr, input));
  }
  metrics.rows->Add(out.num_rows());
  return out;
}

StatusOr<RowBatch> HashJoin(const Expr& expr, const RowBatch& left,
                            const RowBatch& right) {
  static const KernelMetrics metrics = KernelMetrics::Resolve("hash_join");
  KernelScope scope(metrics);
  RowBatch out(expr.output_schema());
  // Co-partition both sides by join-key hash: matching rows share a
  // partition, so the partitioned join computes exactly the unpartitioned
  // result set. Cross joins (no join attrs) stay sequential.
  if (!expr.join_attrs().empty() &&
      (ShouldPartition(left.num_rows()) || ShouldPartition(right.num_rows()))) {
    const int p = PartitionCount();
    const std::vector<RowBatch> l_parts = SplitByHash(
        left, ResolveColumns(left.schema(), expr.join_attrs()), p);
    const std::vector<RowBatch> r_parts = SplitByHash(
        right, ResolveColumns(right.schema(), expr.join_attrs()), p);
    std::vector<RowBatch> outs(static_cast<size_t>(p),
                               RowBatch(expr.output_schema()));
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i) {
      tasks.push_back([&expr, &l_parts, &r_parts, &outs, i]() -> Status {
        AUXVIEW_ASSIGN_OR_RETURN(
            outs[static_cast<size_t>(i)],
            HashJoinSeq(expr, l_parts[static_cast<size_t>(i)],
                        r_parts[static_cast<size_t>(i)]));
        return Status::Ok();
      });
    }
    PartitionsCounter()->Add(p);
    AUXVIEW_RETURN_IF_ERROR(WorkerPool::Shared().RunAll(std::move(tasks)));
    for (const RowBatch& o : outs) out.AppendBatch(o);
  } else {
    AUXVIEW_ASSIGN_OR_RETURN(out, HashJoinSeq(expr, left, right));
  }
  metrics.rows->Add(out.num_rows());
  return out;
}

StatusOr<RowBatch> GroupedAggregate(const Expr& expr, const RowBatch& input) {
  static const KernelMetrics metrics = KernelMetrics::Resolve("aggregate");
  KernelScope scope(metrics);
  RowBatch out(expr.output_schema());
  // Partition by group-key hash: a group's rows stay together and in order,
  // so every group accumulates exactly as it would unpartitioned. A global
  // aggregate (no group-by) is one group and stays sequential.
  if (!expr.group_by().empty() && ShouldPartition(input.num_rows())) {
    const std::vector<int> group_cols =
        ResolveColumns(input.schema(), expr.group_by());
    AUXVIEW_ASSIGN_OR_RETURN(
        out, RunPartitions(expr,
                           SplitByHash(input, group_cols, PartitionCount()),
                           &GroupedAggregateSeq));
  } else {
    AUXVIEW_ASSIGN_OR_RETURN(out, GroupedAggregateSeq(expr, input));
  }
  metrics.rows->Add(out.num_rows());
  return out;
}

StatusOr<RowBatch> DupElim(const Expr& expr, const RowBatch& input) {
  static const KernelMetrics metrics = KernelMetrics::Resolve("dup_elim");
  KernelScope scope(metrics);
  RowBatch out(expr.output_schema());
  // Partition by whole-row hash: all copies of a row share a partition, so
  // per-row totals (and the negative-total check) are complete per
  // partition.
  if (input.width() > 0 && ShouldPartition(input.num_rows())) {
    std::vector<int> all_cols;
    all_cols.reserve(static_cast<size_t>(input.width()));
    for (int c = 0; c < input.width(); ++c) all_cols.push_back(c);
    AUXVIEW_ASSIGN_OR_RETURN(
        out, RunPartitions(expr,
                           SplitByHash(input, all_cols, PartitionCount()),
                           &DupElimSeq));
  } else {
    AUXVIEW_ASSIGN_OR_RETURN(out, DupElimSeq(expr, input));
  }
  metrics.rows->Add(out.num_rows());
  return out;
}

StatusOr<RowBatch> ApplyUnary(const Expr& expr, const RowBatch& input) {
  switch (expr.kind()) {
    case OpKind::kSelect:
      return Filter(expr, input);
    case OpKind::kProject:
      return Project(expr, input);
    case OpKind::kAggregate:
      return GroupedAggregate(expr, input);
    case OpKind::kDupElim:
      return DupElim(expr, input);
    case OpKind::kScan:
    case OpKind::kJoin:
      break;
  }
  return Status::Internal("ApplyUnary on a non-unary operator");
}

}  // namespace kernels
}  // namespace auxview
