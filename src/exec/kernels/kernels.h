#ifndef AUXVIEW_EXEC_KERNELS_KERNELS_H_
#define AUXVIEW_EXEC_KERNELS_KERNELS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "exec/kernels/row_batch.h"

namespace auxview {
namespace kernels {

/// The shared batch-at-a-time operator kernels.
///
/// Every relational operator the engine evaluates — whether for ad-hoc view
/// computation (Executor), for delta propagation, or for push-down lookup
/// plans (DeltaEngine) — runs through exactly one implementation here. A
/// kernel consumes whole RowBatches and produces a RowBatch; semantics are
/// the paper's bag algebra with signed multiplicities (deltas are batches
/// with negative counts).
///
/// Each kernel maintains `exec.kernel.<name>.{batches,rows,us}` metrics
/// (invocations, output-row entries, per-invocation wall time); see
/// docs/EXECUTION.md and docs/OBSERVABILITY.md.

/// A hash index over one batch: key = the projection of a row onto
/// `key_cols`, value = the indexes of the batch entries with that key, in
/// batch order. Build once, probe many times — the join/semijoin kernels and
/// the batched partner fetch all share this utility.
class HashIndex {
 public:
  HashIndex(const RowBatch* batch, std::vector<int> key_cols);

  /// Entry indexes whose key projection equals `key` (nullptr when none).
  const std::vector<int64_t>* Probe(const Row& key) const;

  int64_t distinct_keys() const { return static_cast<int64_t>(map_.size()); }

 private:
  const RowBatch* batch_;
  std::vector<int> key_cols_;
  std::unordered_map<Row, std::vector<int64_t>, RowHash, RowEq> map_;
};

/// Select: keeps entries whose predicate evaluates to (non-NULL) true.
StatusOr<RowBatch> Filter(const Expr& expr, const RowBatch& input);

/// Generalized projection: evaluates every ProjectItem per entry.
StatusOr<RowBatch> Project(const Expr& expr, const RowBatch& input);

/// Natural-style equi-join on expr.join_attrs(): builds a HashIndex on the
/// right batch, probes with every left entry, output multiplicity is the
/// product. Output schema = left columns then the right's non-join columns
/// (expr.output_schema()).
StatusOr<RowBatch> HashJoin(const Expr& expr, const RowBatch& left,
                            const RowBatch& right);

/// Grouped aggregation (SUM/COUNT/MIN/MAX/AVG over groups of
/// expr.group_by()). Entries accumulate in batch order, so floating-point
/// results are deterministic for a given input order. Rejects negative
/// multiplicities (delta aggregation splits signs before calling this).
StatusOr<RowBatch> GroupedAggregate(const Expr& expr, const RowBatch& input);

/// Duplicate elimination: coalesces entries by row, emits each row whose
/// total multiplicity is positive once; rejects negative totals.
StatusOr<RowBatch> DupElim(const Expr& expr, const RowBatch& input);

/// Applies a unary operator kind (Select/Project/Aggregate/DupElim) of
/// `expr` to `input` — the dispatch both consumers share.
StatusOr<RowBatch> ApplyUnary(const Expr& expr, const RowBatch& input);

/// ---- Hash-partitioned execution -------------------------------------------
///
/// When enabled (min-rows threshold > 0) and an input batch has at least
/// that many entries, the kernels split the work into PartitionCount()
/// partitions — contiguous chunks for filter/project, key-hash partitions
/// for join (join attrs), aggregate (group-by attrs) and dup-elim (whole
/// row) — run the partitions through WorkerPool::Shared(), and concatenate
/// the outputs by partition index. The partition count and every row's
/// partition assignment are pure functions of the batch and this
/// configuration, never of the pool's worker count, so results are
/// bit-identical for any parallelism (same-key rows share a partition and
/// keep their relative order, which preserves per-group accumulation order).
/// Partition subtasks are counted in `maintain.pool.partitions`.
///
/// Disabled by default (threshold 0): the single-partition path is
/// byte-identical to the pre-partitioning kernels.

/// Minimum batch entries before a kernel partitions; 0 disables.
void SetPartitionMinRows(int64_t min_rows);
int64_t PartitionMinRows();

/// Number of partitions to split into (clamped to >= 1; default 4).
void SetPartitionCount(int count);
int PartitionCount();

/// Resolves `attrs` to column indexes in `schema`; every name must bind.
std::vector<int> ResolveColumns(const Schema& schema,
                                const std::vector<std::string>& attrs);

}  // namespace kernels
}  // namespace auxview

#endif  // AUXVIEW_EXEC_KERNELS_KERNELS_H_
