#ifndef AUXVIEW_EXEC_KERNELS_ROW_BATCH_H_
#define AUXVIEW_EXEC_KERNELS_ROW_BATCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/check.h"
#include "common/value.h"
#include "exec/relation.h"

namespace auxview {

/// A lightweight view of one row inside a RowBatch's value arena. Valid only
/// while the owning batch is alive and not appended to.
struct RowRef {
  const Value* data = nullptr;
  int size = 0;

  const Value& operator[](int i) const { return data[i]; }
};

/// An ordered batch of rows sharing one schema, each with a signed
/// multiplicity. This is the unit of work of the shared operator-kernel
/// layer (exec/kernels/kernels.h): both ad-hoc evaluation (Executor) and
/// delta propagation (DeltaEngine) move whole batches through the same
/// kernels.
///
/// Unlike Relation — a coalesced bag keyed by row — a batch is a flat
/// sequence: the same row may appear in several entries and kernels process
/// entries in order (which keeps floating-point accumulation order, and thus
/// bit-identity with the previous row-at-a-time code, deterministic for a
/// given input order). Values live in one contiguous arena (`values_`, row i
/// at offset i * width), so iterating a batch touches memory sequentially
/// instead of chasing one heap vector per row.
///
/// Zero-multiplicity entries are dropped on append, mirroring Relation::Add.
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(Schema schema)
      : schema_(std::move(schema)), width_(schema_.num_columns()) {}

  const Schema& schema() const { return schema_; }
  /// Columns per row (fixed by the schema).
  int width() const { return width_; }

  int64_t num_rows() const { return static_cast<int64_t>(counts_.size()); }
  bool empty() const { return counts_.empty(); }
  /// Sum of multiplicities (may be negative for delta batches).
  int64_t total_count() const {
    int64_t total = 0;
    for (int64_t c : counts_) total += c;
    return total;
  }

  RowRef row(int64_t i) const {
    return RowRef{values_.data() + i * width_, width_};
  }
  int64_t count(int64_t i) const { return counts_[i]; }

  /// Materializes row `i` as an owning Row (for Relation interop and index
  /// probes keyed by Row).
  Row RowAt(int64_t i) const {
    const Value* base = values_.data() + i * width_;
    return Row(base, base + width_);
  }

  void Reserve(int64_t rows) {
    values_.reserve(static_cast<size_t>(rows) * width_);
    counts_.reserve(static_cast<size_t>(rows));
  }

  /// Appends `count` copies of `row`; zero counts are dropped.
  void Append(const Row& row, int64_t count) {
    if (count == 0) return;
    values_.insert(values_.end(), row.begin(), row.end());
    counts_.push_back(count);
  }

  void Append(RowRef row, int64_t count) {
    if (count == 0) return;
    values_.insert(values_.end(), row.data, row.data + row.size);
    counts_.push_back(count);
  }

  /// Appends a row assembled from `left` followed by the `right_cols`
  /// columns of `right` (the hash-join output shape) without an
  /// intermediate Row allocation.
  void AppendConcat(RowRef left, RowRef right, const std::vector<int>& right_cols,
                    int64_t count) {
    if (count == 0) return;
    values_.insert(values_.end(), left.data, left.data + left.size);
    for (int c : right_cols) values_.push_back(right[c]);
    counts_.push_back(count);
  }

  /// Appends every entry of `other`, in order. Schemas must have the same
  /// width (batch-native delta propagation concatenates aligned batches).
  void AppendBatch(const RowBatch& other) {
    AUXVIEW_CHECK_MSG(other.width_ == width_,
                      "AppendBatch across mismatched widths");
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    counts_.insert(counts_.end(), other.counts_.begin(), other.counts_.end());
  }

  /// Coalesced copy: one entry per distinct row with multiplicities summed
  /// (zero totals dropped — Relation semantics), in first-appearance order.
  /// Unlike ToRelation, the result stays a batch and the entry order is a
  /// deterministic function of this batch's entry order, which keeps
  /// batch-native delta tracks bit-identical across worker counts.
  RowBatch Coalesced() const {
    std::unordered_map<Row, int64_t, RowHash, RowEq> totals;
    std::vector<const Row*> order;  // first-appearance order
    totals.reserve(static_cast<size_t>(num_rows()));
    order.reserve(static_cast<size_t>(num_rows()));
    for (int64_t i = 0; i < num_rows(); ++i) {
      auto [it, inserted] = totals.try_emplace(RowAt(i), 0);
      it->second += counts_[i];
      if (inserted) order.push_back(&it->first);
    }
    RowBatch out(schema_);
    out.Reserve(static_cast<int64_t>(order.size()));
    for (const Row* row : order) out.Append(*row, totals.at(*row));
    return out;
  }

  /// Batch from a coalesced Relation; entry order follows the relation's
  /// (unordered-map) iteration order, exactly as the row-at-a-time code
  /// consumed it.
  static RowBatch FromRelation(const Relation& rel) {
    RowBatch out(rel.schema());
    out.Reserve(rel.distinct_rows());
    for (const auto& [row, count] : rel.rows()) out.Append(row, count);
    return out;
  }

  /// Coalesces into a Relation (summing multiplicities; zero rows vanish).
  Relation ToRelation() const {
    Relation out(schema_);
    AccumulateInto(&out);
    return out;
  }

  void AccumulateInto(Relation* rel) const {
    for (int64_t i = 0; i < num_rows(); ++i) rel->Add(RowAt(i), counts_[i]);
  }

 private:
  Schema schema_;
  int width_ = 0;
  /// Row-major value arena: num_rows() * width_ values.
  std::vector<Value> values_;
  std::vector<int64_t> counts_;
};

}  // namespace auxview

#endif  // AUXVIEW_EXEC_KERNELS_ROW_BATCH_H_
