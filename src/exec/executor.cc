#include "exec/executor.h"

#include <map>

#include "common/check.h"
#include "exec/kernels/kernels.h"
#include "obs/metrics.h"

namespace auxview {

namespace {

/// Per-operator executor metrics: exec.ops.<op> counts evaluations,
/// exec.rows_out.<op> counts result multiplicity. Handles are resolved once
/// per operator kind. (The kernel layer keeps its own exec.kernel.* metrics;
/// these count tree-node evaluations, which include Scan.)
void RecordOperator(OpKind kind, const RowBatch& result) {
  struct OpMetrics {
    obs::Counter* ops;
    obs::Counter* rows_out;
  };
  static const std::map<OpKind, OpMetrics>* metrics = [] {
    auto* m = new std::map<OpKind, OpMetrics>();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    for (OpKind k : {OpKind::kScan, OpKind::kSelect, OpKind::kProject,
                     OpKind::kJoin, OpKind::kAggregate, OpKind::kDupElim}) {
      const std::string name = OpKindName(k);
      (*m)[k] = OpMetrics{reg.GetCounter("exec.ops." + name),
                          reg.GetCounter("exec.rows_out." + name)};
    }
    return m;
  }();
  const OpMetrics& om = metrics->at(kind);
  om.ops->Add(1);
  om.rows_out->Add(result.total_count());
}

}  // namespace

StatusOr<RowBatch> Executor::ScanBatch(const Expr& expr) const {
  const Table* table = db_->ResolveTable(expr.table());
  if (table == nullptr) {
    return Status::NotFound("scan of missing table: " + expr.table());
  }
  if (!(table->schema() == expr.output_schema())) {
    return Status::FailedPrecondition("schema mismatch for table " +
                                      expr.table());
  }
  RowBatch out(expr.output_schema());
  out.Reserve(table->distinct_rows());
  for (const CountedRow& cr : table->SnapshotUncharged()) {
    out.Append(cr.row, cr.count);
  }
  return out;
}

StatusOr<RowBatch> Executor::ExecuteBatch(const Expr& expr) const {
  StatusOr<RowBatch> result = [&]() -> StatusOr<RowBatch> {
    switch (expr.kind()) {
      case OpKind::kScan:
        return ScanBatch(expr);
      case OpKind::kJoin: {
        AUXVIEW_ASSIGN_OR_RETURN(RowBatch left, ExecuteBatch(*expr.child(0)));
        AUXVIEW_ASSIGN_OR_RETURN(RowBatch right, ExecuteBatch(*expr.child(1)));
        return kernels::HashJoin(expr, left, right);
      }
      case OpKind::kSelect:
      case OpKind::kProject:
      case OpKind::kAggregate:
      case OpKind::kDupElim: {
        AUXVIEW_ASSIGN_OR_RETURN(RowBatch in, ExecuteBatch(*expr.child(0)));
        return kernels::ApplyUnary(expr, in);
      }
    }
    return Status::Internal("unhandled op kind in executor");
  }();
  if (result.ok()) RecordOperator(expr.kind(), *result);
  return result;
}

StatusOr<Relation> Executor::Execute(const Expr& expr) const {
  AUXVIEW_ASSIGN_OR_RETURN(RowBatch batch, ExecuteBatch(expr));
  return batch.ToRelation();
}

}  // namespace auxview
