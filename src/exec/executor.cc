#include "exec/executor.h"

#include <map>

#include "common/check.h"
#include "obs/metrics.h"

namespace auxview {

namespace {

/// Per-operator executor metrics: exec.ops.<op> counts evaluations,
/// exec.rows_out.<op> counts result multiplicity. Handles are resolved once
/// per operator kind.
void RecordOperator(OpKind kind, const Relation& result) {
  struct OpMetrics {
    obs::Counter* ops;
    obs::Counter* rows_out;
  };
  static const std::map<OpKind, OpMetrics>* metrics = [] {
    auto* m = new std::map<OpKind, OpMetrics>();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    for (OpKind k : {OpKind::kScan, OpKind::kSelect, OpKind::kProject,
                     OpKind::kJoin, OpKind::kAggregate, OpKind::kDupElim}) {
      const std::string name = OpKindName(k);
      (*m)[k] = OpMetrics{reg.GetCounter("exec.ops." + name),
                          reg.GetCounter("exec.rows_out." + name)};
    }
    return m;
  }();
  const OpMetrics& om = metrics->at(kind);
  om.ops->Add(1);
  om.rows_out->Add(result.total_count());
}

}  // namespace

namespace exec_detail {

StatusOr<Relation> ApplySelect(const Expr& expr, const Relation& input) {
  Relation out(expr.output_schema());
  for (const auto& [row, count] : input.rows()) {
    AUXVIEW_ASSIGN_OR_RETURN(Value v,
                             expr.predicate()->Eval(row, input.schema()));
    if (!v.is_null() && v.boolean()) out.Add(row, count);
  }
  return out;
}

StatusOr<Relation> ApplyProject(const Expr& expr, const Relation& input) {
  Relation out(expr.output_schema());
  for (const auto& [row, count] : input.rows()) {
    Row projected;
    projected.reserve(expr.projections().size());
    for (const ProjectItem& item : expr.projections()) {
      AUXVIEW_ASSIGN_OR_RETURN(Value v, item.expr->Eval(row, input.schema()));
      projected.push_back(std::move(v));
    }
    out.Add(projected, count);
  }
  return out;
}

StatusOr<Relation> ApplyJoin(const Expr& expr, const Relation& left,
                             const Relation& right) {
  Relation out(expr.output_schema());
  const Schema& ls = left.schema();
  const Schema& rs = right.schema();
  std::vector<int> l_key_cols;
  std::vector<int> r_key_cols;
  for (const std::string& a : expr.join_attrs()) {
    l_key_cols.push_back(ls.IndexOf(a));
    r_key_cols.push_back(rs.IndexOf(a));
    AUXVIEW_CHECK(l_key_cols.back() >= 0 && r_key_cols.back() >= 0);
  }
  // Columns of the right side that survive (non-join attrs).
  std::vector<int> r_out_cols;
  for (int c = 0; c < rs.num_columns(); ++c) {
    bool is_join = false;
    for (int k : r_key_cols) {
      if (k == c) {
        is_join = true;
        break;
      }
    }
    if (!is_join) r_out_cols.push_back(c);
  }
  // Hash the right side on the join key.
  std::unordered_map<Row, std::vector<std::pair<const Row*, int64_t>>, RowHash,
                     RowEq>
      hash;
  for (const auto& [row, count] : right.rows()) {
    Row key;
    key.reserve(r_key_cols.size());
    for (int c : r_key_cols) key.push_back(row[c]);
    hash[std::move(key)].emplace_back(&row, count);
  }
  for (const auto& [lrow, lcount] : left.rows()) {
    Row key;
    key.reserve(l_key_cols.size());
    for (int c : l_key_cols) key.push_back(lrow[c]);
    auto it = hash.find(key);
    if (it == hash.end()) continue;
    for (const auto& [rrow, rcount] : it->second) {
      Row joined = lrow;
      for (int c : r_out_cols) joined.push_back((*rrow)[c]);
      out.Add(joined, lcount * rcount);
    }
  }
  return out;
}

namespace {

/// Running aggregate state for one group.
struct GroupState {
  int64_t count = 0;           // total multiplicity of contributing rows
  std::vector<double> sums;    // per-agg running sum (SUM/AVG)
  std::vector<bool> all_int;   // SUM stays integral?
  std::vector<Value> minmax;   // per-agg current MIN/MAX
  std::vector<int64_t> nonnull_count;  // per-agg count of non-null args
};

}  // namespace

StatusOr<Relation> ApplyAggregate(const Expr& expr, const Relation& input) {
  const Schema& cs = input.schema();
  std::vector<int> group_cols;
  for (const std::string& g : expr.group_by()) {
    group_cols.push_back(cs.IndexOf(g));
    AUXVIEW_CHECK(group_cols.back() >= 0);
  }
  const size_t num_aggs = expr.aggs().size();
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  for (const auto& [row, count] : input.rows()) {
    if (count < 0) {
      return Status::FailedPrecondition(
          "Aggregate over a relation with negative multiplicities");
    }
    Row key;
    key.reserve(group_cols.size());
    for (int c : group_cols) key.push_back(row[c]);
    GroupState& gs = groups[std::move(key)];
    if (gs.sums.empty()) {
      gs.sums.assign(num_aggs, 0.0);
      gs.all_int.assign(num_aggs, true);
      gs.minmax.assign(num_aggs, Value::Null());
      gs.nonnull_count.assign(num_aggs, 0);
    }
    gs.count += count;
    for (size_t i = 0; i < num_aggs; ++i) {
      const AggSpec& agg = expr.aggs()[i];
      Value v = Value::Null();
      if (agg.arg != nullptr) {
        AUXVIEW_ASSIGN_OR_RETURN(v, agg.arg->Eval(row, cs));
      }
      switch (agg.func) {
        case AggFunc::kCount:
          if (agg.arg == nullptr) {
            gs.nonnull_count[i] += count;
          } else if (!v.is_null()) {
            gs.nonnull_count[i] += count;
          }
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (!v.is_null()) {
            gs.sums[i] += v.AsDouble() * static_cast<double>(count);
            gs.nonnull_count[i] += count;
            if (v.type() != ValueType::kInt64) gs.all_int[i] = false;
          }
          break;
        case AggFunc::kMin:
          if (!v.is_null() &&
              (gs.minmax[i].is_null() || v.Compare(gs.minmax[i]) < 0)) {
            gs.minmax[i] = v;
          }
          break;
        case AggFunc::kMax:
          if (!v.is_null() &&
              (gs.minmax[i].is_null() || v.Compare(gs.minmax[i]) > 0)) {
            gs.minmax[i] = v;
          }
          break;
      }
    }
  }
  Relation out(expr.output_schema());
  for (const auto& [key, gs] : groups) {
    Row row = key;
    for (size_t i = 0; i < num_aggs; ++i) {
      const AggSpec& agg = expr.aggs()[i];
      switch (agg.func) {
        case AggFunc::kCount:
          row.push_back(Value::Int64(gs.nonnull_count[i]));
          break;
        case AggFunc::kSum:
          if (gs.nonnull_count[i] == 0) {
            row.push_back(Value::Null());
          } else if (gs.all_int[i]) {
            row.push_back(Value::Int64(static_cast<int64_t>(gs.sums[i])));
          } else {
            row.push_back(Value::Double(gs.sums[i]));
          }
          break;
        case AggFunc::kAvg:
          if (gs.nonnull_count[i] == 0) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value::Double(
                gs.sums[i] / static_cast<double>(gs.nonnull_count[i])));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          row.push_back(gs.minmax[i]);
          break;
      }
    }
    out.Add(row, 1);
  }
  return out;
}

StatusOr<Relation> ApplyDupElim(const Expr& expr, const Relation& input) {
  Relation out(expr.output_schema());
  for (const auto& [row, count] : input.rows()) {
    if (count < 0) {
      return Status::FailedPrecondition(
          "DupElim over a relation with negative multiplicities");
    }
    if (count > 0) out.Add(row, 1);
  }
  return out;
}

}  // namespace exec_detail

StatusOr<Relation> Executor::ExecuteScan(const Expr& expr) const {
  const Table* table = db_->FindTable(expr.table());
  if (table == nullptr) {
    return Status::NotFound("scan of missing table: " + expr.table());
  }
  if (!(table->schema() == expr.output_schema())) {
    return Status::FailedPrecondition("schema mismatch for table " +
                                      expr.table());
  }
  Relation out(expr.output_schema());
  for (const CountedRow& cr : table->SnapshotUncharged()) {
    out.Add(cr.row, cr.count);
  }
  return out;
}

StatusOr<Relation> Executor::Execute(const Expr& expr) const {
  StatusOr<Relation> result = [&]() -> StatusOr<Relation> {
    switch (expr.kind()) {
      case OpKind::kScan:
        return ExecuteScan(expr);
      case OpKind::kSelect: {
        AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0)));
        return exec_detail::ApplySelect(expr, in);
      }
      case OpKind::kProject: {
        AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0)));
        return exec_detail::ApplyProject(expr, in);
      }
      case OpKind::kJoin: {
        AUXVIEW_ASSIGN_OR_RETURN(Relation left, Execute(*expr.child(0)));
        AUXVIEW_ASSIGN_OR_RETURN(Relation right, Execute(*expr.child(1)));
        return exec_detail::ApplyJoin(expr, left, right);
      }
      case OpKind::kAggregate: {
        AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0)));
        return exec_detail::ApplyAggregate(expr, in);
      }
      case OpKind::kDupElim: {
        AUXVIEW_ASSIGN_OR_RETURN(Relation in, Execute(*expr.child(0)));
        return exec_detail::ApplyDupElim(expr, in);
      }
    }
    return Status::Internal("unhandled op kind in executor");
  }();
  if (result.ok()) RecordOperator(expr.kind(), *result);
  return result;
}

}  // namespace auxview
