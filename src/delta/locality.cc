#include "delta/locality.h"

#include <algorithm>
#include <map>
#include <set>

#include "algebra/expr.h"

namespace auxview {

namespace {

std::set<std::string> ToSet(const std::vector<std::string>& attrs) {
  return std::set<std::string>(attrs.begin(), attrs.end());
}

bool Subset(const std::vector<std::string>& small,
            const std::vector<std::string>& big) {
  for (const std::string& a : small) {
    if (std::find(big.begin(), big.end(), a) == big.end()) return false;
  }
  return true;
}

std::string AttrList(const std::vector<std::string>& attrs) {
  std::string out = "(";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs[i];
  }
  return out + ")";
}

TrackLocality Worst(TrackLocality a, TrackLocality b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

const char* TrackLocalityName(TrackLocality locality) {
  switch (locality) {
    case TrackLocality::kSelfMaintainable:
      return "self-maintainable";
    case TrackLocality::kKeyLocal:
      return "key-local";
    case TrackLocality::kCrossShard:
      return "cross-shard";
  }
  return "unknown";
}

struct LocalityClassifier::ClassifyState {
  const UpdateTrack* track = nullptr;
  ViewSet marked;  // canonicalized group ids
  const TransactionType* type = nullptr;
  std::set<GroupId> affected;
  std::map<GroupId, DeltaInfo> static_deltas;
  /// Memoized fetch localities, keyed by "<group>|attr,attr,...".
  std::map<std::string, TrackLocality> fetch_memo;
  std::map<GroupId, std::vector<std::string>> alignments;
  std::set<GroupId> alignment_in_progress;
  TrackLocalityReport report;
};

StatusOr<DeltaInfo> LocalityClassifier::StaticDeltaOf(
    GroupId g, ClassifyState& state) const {
  // Mirrors DeltaEngine::StaticDeltaOf so AggregateNeedsQuery sees the same
  // DeltaInfo the runtime's branch decision sees.
  g = memo_->Find(g);
  auto it = state.static_deltas.find(g);
  if (it != state.static_deltas.end()) return it->second;
  const MemoGroup& grp = memo_->group(g);
  DeltaInfo info;
  if (grp.is_leaf) {
    const UpdateSpec* spec = state.type->SpecFor(grp.table);
    if (spec != nullptr) {
      const TableDef* def = catalog_->FindTable(grp.table);
      if (def == nullptr) {
        return Status::NotFound("relation missing from catalog: " + grp.table);
      }
      info = delta_->LeafDelta(*def, *spec);
    }
  } else if (state.affected.count(g) > 0) {
    auto choice_it = state.track->choice.find(g);
    if (choice_it == state.track->choice.end()) {
      return Status::Internal("affected group off-track: N" +
                              std::to_string(g));
    }
    const MemoExpr& e = memo_->expr(choice_it->second);
    std::vector<DeltaInfo> child_deltas;
    for (GroupId in : e.inputs) {
      AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child, StaticDeltaOf(in, state));
      child_deltas.push_back(std::move(child));
    }
    info = delta_->Propagate(e, child_deltas);
  }
  state.static_deltas[g] = info;
  return info;
}

StatusOr<TrackLocality> LocalityClassifier::FetchLocality(
    GroupId g, const std::vector<std::string>& attrs,
    ClassifyState& state) const {
  g = memo_->Find(g);
  std::string memo_key = std::to_string(g) + "|";
  for (const std::string& a : attrs) memo_key += a + ",";
  auto hit = state.fetch_memo.find(memo_key);
  if (hit != state.fetch_memo.end()) return hit->second;

  const MemoGroup& grp = memo_->group(g);
  TrackLocality result = TrackLocality::kSelfMaintainable;
  if (state.marked.count(g) > 0 && !grp.is_leaf) {
    // Probe of a materialized aux view — reads already-maintained state,
    // never a base relation.
    state.report.notes.push_back("fetch N" + std::to_string(g) + " " +
                                 AttrList(attrs) +
                                 ": materialized view probe");
  } else if (grp.is_leaf) {
    const TableDef* def = catalog_->FindTable(grp.table);
    if (def == nullptr) {
      return Status::NotFound("relation missing from catalog: " + grp.table);
    }
    if (def->shard_key.empty()) {
      result = TrackLocality::kCrossShard;
      state.report.notes.push_back("fetch base " + grp.table + " " +
                                   AttrList(attrs) +
                                   ": relation unsharded -> cross-shard");
    } else if (attrs.empty()) {
      result = TrackLocality::kCrossShard;
      state.report.notes.push_back("fetch base " + grp.table +
                                   ": full scan -> cross-shard");
    } else if (Subset(def->shard_key, attrs)) {
      result = TrackLocality::kKeyLocal;
      state.report.notes.push_back("fetch base " + grp.table + " " +
                                   AttrList(attrs) +
                                   ": equality covers shard key " +
                                   AttrList(def->shard_key) + " -> key-local");
    } else {
      result = TrackLocality::kCrossShard;
      state.report.notes.push_back("fetch base " + grp.table + " " +
                                   AttrList(attrs) +
                                   ": probe below shard key " +
                                   AttrList(def->shard_key) +
                                   " -> cross-shard");
    }
  } else {
    // Unmaterialized view: the runtime answers through the cheapest live
    // candidate's push-down, a choice that depends on live statistics —
    // take the worst over every candidate it could pick. Memoize before
    // descending: the memo DAG is acyclic, and the pre-inserted value only
    // serves identical (group, attrs) re-queries, whose push-downs repeat.
    state.fetch_memo[memo_key] = TrackLocality::kSelfMaintainable;
    for (int eid : grp.exprs) {
      const MemoExpr& e = memo_->expr(eid);
      if (e.dead) continue;
      TrackLocality cand = TrackLocality::kSelfMaintainable;
      switch (e.kind()) {
        case OpKind::kScan:
          continue;  // never a member of a non-leaf group
        case OpKind::kSelect:
        case OpKind::kDupElim: {
          AUXVIEW_ASSIGN_OR_RETURN(
              cand, FetchLocality(e.inputs[0], attrs, state));
          break;
        }
        case OpKind::kProject: {
          std::set<std::string> passthrough;
          for (const ProjectItem& item : e.op->projections()) {
            if (item.expr->op() == ScalarOp::kColumn &&
                item.expr->column_name() == item.name) {
              passthrough.insert(item.name);
            }
          }
          const bool pushable = std::all_of(
              attrs.begin(), attrs.end(),
              [&](const std::string& a) { return passthrough.count(a) > 0; });
          AUXVIEW_ASSIGN_OR_RETURN(
              cand, FetchLocality(e.inputs[0],
                                  pushable ? attrs
                                           : std::vector<std::string>{},
                                  state));
          break;
        }
        case OpKind::kJoin: {
          const GroupId left = memo_->Find(e.inputs[0]);
          const GroupId right = memo_->Find(e.inputs[1]);
          int side = -1;
          for (int candidate = 0; candidate < 2 && !attrs.empty();
               ++candidate) {
            const GroupId x = candidate == 0 ? left : right;
            const Schema& xs = memo_->group(x).schema;
            if (std::all_of(
                    attrs.begin(), attrs.end(),
                    [&](const std::string& a) { return xs.Contains(a); })) {
              side = candidate;
              break;
            }
          }
          if (attrs.empty() || side < 0) {
            AUXVIEW_ASSIGN_OR_RETURN(
                TrackLocality l, FetchLocality(left, {}, state));
            AUXVIEW_ASSIGN_OR_RETURN(
                TrackLocality r, FetchLocality(right, {}, state));
            cand = Worst(l, r);
          } else {
            const GroupId x = side == 0 ? left : right;
            const GroupId y = side == 0 ? right : left;
            AUXVIEW_ASSIGN_OR_RETURN(
                TrackLocality lx, FetchLocality(x, attrs, state));
            AUXVIEW_ASSIGN_OR_RETURN(
                TrackLocality ly,
                FetchLocality(y, e.op->join_attrs(), state));
            cand = Worst(lx, ly);
          }
          break;
        }
        case OpKind::kAggregate: {
          const std::set<std::string> gb = ToSet(e.op->group_by());
          const bool pushable =
              !attrs.empty() &&
              std::all_of(attrs.begin(), attrs.end(),
                          [&](const std::string& a) {
                            return gb.count(a) > 0;
                          });
          AUXVIEW_ASSIGN_OR_RETURN(
              cand, FetchLocality(e.inputs[0],
                                  pushable ? attrs
                                           : std::vector<std::string>{},
                                  state));
          break;
        }
      }
      result = Worst(result, cand);
    }
  }
  state.fetch_memo[memo_key] = result;
  return result;
}

StatusOr<std::vector<std::string>> LocalityClassifier::AlignmentOf(
    GroupId g, ClassifyState& state) const {
  g = memo_->Find(g);
  auto hit = state.alignments.find(g);
  if (hit != state.alignments.end()) return hit->second;
  const MemoGroup& grp = memo_->group(g);
  std::vector<std::string> align;
  if (grp.is_leaf) {
    const TableDef* def = catalog_->FindTable(grp.table);
    if (def == nullptr) {
      return Status::NotFound("relation missing from catalog: " + grp.table);
    }
    align = def->shard_key;
  } else if (state.affected.count(g) > 0) {
    auto choice_it = state.track->choice.find(g);
    if (choice_it == state.track->choice.end()) {
      return Status::Internal("affected group off-track: N" +
                              std::to_string(g));
    }
    const MemoExpr& e = memo_->expr(choice_it->second);
    switch (e.kind()) {
      case OpKind::kScan:
        return Status::Internal("scan operation node off a leaf group");
      case OpKind::kSelect:
      case OpKind::kDupElim: {
        AUXVIEW_ASSIGN_OR_RETURN(align, AlignmentOf(e.inputs[0], state));
        break;
      }
      case OpKind::kProject: {
        AUXVIEW_ASSIGN_OR_RETURN(align, AlignmentOf(e.inputs[0], state));
        for (const std::string& a : align) {
          if (!grp.schema.Contains(a)) {
            state.report.notes.push_back(
                "N" + std::to_string(g) + " project drops alignment attr " +
                a);
            align.clear();
            break;
          }
        }
        break;
      }
      case OpKind::kAggregate: {
        AUXVIEW_ASSIGN_OR_RETURN(align, AlignmentOf(e.inputs[0], state));
        if (align.empty() || !Subset(align, e.op->group_by())) {
          if (!align.empty()) {
            state.report.notes.push_back(
                "N" + std::to_string(g) + " aggregate group-by " +
                AttrList(e.op->group_by()) + " does not cover alignment " +
                AttrList(align));
          }
          align.clear();
        }
        break;
      }
      case OpKind::kJoin: {
        const GroupId left = memo_->Find(e.inputs[0]);
        const GroupId right = memo_->Find(e.inputs[1]);
        const bool l_aff = state.affected.count(left) > 0;
        const bool r_aff = state.affected.count(right) > 0;
        if (l_aff && r_aff) {
          AUXVIEW_ASSIGN_OR_RETURN(std::vector<std::string> al,
                                   AlignmentOf(left, state));
          AUXVIEW_ASSIGN_OR_RETURN(std::vector<std::string> ar,
                                   AlignmentOf(right, state));
          // The delta-x-delta term pairs rows across both inputs, which
          // colocate exactly when both sides hash the same attribute list
          // and the join equates it.
          if (!al.empty() && al == ar && Subset(al, e.op->join_attrs())) {
            align = al;
          } else {
            state.report.notes.push_back(
                "N" + std::to_string(g) +
                " join of two affected inputs breaks alignment");
          }
        } else if (l_aff) {
          AUXVIEW_ASSIGN_OR_RETURN(align, AlignmentOf(left, state));
        } else if (r_aff) {
          AUXVIEW_ASSIGN_OR_RETURN(align, AlignmentOf(right, state));
        }
        break;
      }
    }
  }
  state.alignments[g] = align;
  return align;
}

StatusOr<TrackLocalityReport> LocalityClassifier::Classify(
    const UpdateTrack& track, const ViewSet& marked,
    const TransactionType& type) const {
  ClassifyState state;
  state.track = &track;
  state.type = &type;
  for (GroupId g : marked) state.marked.insert(memo_->Find(g));
  state.affected = delta_->AffectedGroups(type);
  TrackLocalityReport& report = state.report;

  // Every fetch the runtime propagation can issue, walked off the chosen
  // operation nodes exactly as DeltaEngine's delta kernels issue them.
  bool decomposable = true;
  for (const auto& [raw_g, eid] : track.choice) {
    const GroupId g = memo_->Find(raw_g);
    if (state.affected.count(g) == 0 || memo_->group(g).is_leaf) continue;
    const MemoExpr& e = memo_->expr(eid);
    switch (e.kind()) {
      case OpKind::kScan:
        return Status::Internal("scan operation node off a leaf group");
      case OpKind::kSelect:
      case OpKind::kProject:
        break;  // pure delta rewrites, no fetch
      case OpKind::kJoin: {
        const GroupId left = memo_->Find(e.inputs[0]);
        const GroupId right = memo_->Find(e.inputs[1]);
        if (state.affected.count(left) > 0) {
          AUXVIEW_ASSIGN_OR_RETURN(
              TrackLocality l,
              FetchLocality(right, e.op->join_attrs(), state));
          report.locality = Worst(report.locality, l);
        }
        if (state.affected.count(right) > 0) {
          AUXVIEW_ASSIGN_OR_RETURN(
              TrackLocality l,
              FetchLocality(left, e.op->join_attrs(), state));
          report.locality = Worst(report.locality, l);
        }
        break;
      }
      case OpKind::kAggregate: {
        const GroupId input = memo_->Find(e.inputs[0]);
        AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child_static,
                                 StaticDeltaOf(input, state));
        const bool materialized = state.marked.count(g) > 0;
        const bool complete =
            child_static.CompleteWithin(ToSet(e.op->group_by()));
        const bool needs_query =
            delta_->AggregateNeedsQuery(e, child_static, materialized);
        if (complete) {
          report.notes.push_back("N" + std::to_string(g) +
                                 " aggregate: group-complete delta, no fetch");
        } else if (!needs_query && materialized) {
          report.notes.push_back(
              "N" + std::to_string(g) +
              " aggregate: self-maintained via own view probe");
        } else {
          AUXVIEW_ASSIGN_OR_RETURN(
              TrackLocality l,
              FetchLocality(input, e.op->group_by(), state));
          report.locality = Worst(report.locality, l);
        }
        break;
      }
      case OpKind::kDupElim: {
        const GroupId input = memo_->Find(e.inputs[0]);
        const Schema& in_schema = memo_->group(input).schema;
        std::vector<std::string> attrs;
        attrs.reserve(static_cast<size_t>(in_schema.num_columns()));
        for (int c = 0; c < in_schema.num_columns(); ++c) {
          attrs.push_back(in_schema.column(c).name);
        }
        AUXVIEW_ASSIGN_OR_RETURN(TrackLocality l,
                                 FetchLocality(input, attrs, state));
        report.locality = Worst(report.locality, l);
        break;
      }
    }
    AUXVIEW_ASSIGN_OR_RETURN(std::vector<std::string> align,
                             AlignmentOf(g, state));
    if (align.empty()) decomposable = false;
  }

  // Per-shard seeding partitions every updated relation's delta by its
  // shard key; an unsharded updated relation has no partition.
  for (const UpdateSpec& spec : type.updates) {
    const TableDef* def = catalog_->FindTable(spec.relation);
    if (def == nullptr) {
      return Status::NotFound("relation missing from catalog: " +
                              spec.relation);
    }
    if (def->shard_key.empty()) {
      decomposable = false;
      report.notes.push_back("updated relation " + spec.relation +
                             " is unsharded: not decomposable");
    }
  }
  report.decomposable = decomposable;
  return report;
}

}  // namespace auxview
