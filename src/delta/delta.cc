#include "delta/delta.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace auxview {

bool DeltaInfo::CompleteWithin(const std::set<std::string>& attrs) const {
  for (const std::set<std::string>& c : complete) {
    if (std::all_of(c.begin(), c.end(), [&](const std::string& a) {
          return attrs.count(a) > 0;
        })) {
      return true;
    }
  }
  return false;
}

void DeltaInfo::AddComplete(std::set<std::string> attrs) {
  if (attrs.empty()) return;
  for (const std::set<std::string>& c : complete) {
    if (c == attrs) return;
  }
  complete.push_back(std::move(attrs));
}

std::string DeltaInfo::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "delta{size=%.4g, %s", size,
                UpdateKindName(kind));
  std::string out = buf;
  for (const std::set<std::string>& c : complete) {
    out += ", complete(" + Join(c, ",") + ")";
  }
  out += "}";
  return out;
}

}  // namespace auxview
