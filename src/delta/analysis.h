#ifndef AUXVIEW_DELTA_ANALYSIS_H_
#define AUXVIEW_DELTA_ANALYSIS_H_

#include <map>
#include <set>
#include <vector>

#include "catalog/catalog.h"
#include "cost/statistics_propagation.h"
#include "delta/delta.h"
#include "delta/transaction.h"
#include "memo/memo.h"

namespace auxview {

/// Static delta analysis over the expression DAG for one transaction type:
/// which nodes are affected (Definition 3.3's U_V), what deltas are expected
/// at each node, and when an Aggregate can skip its old-group query.
class DeltaAnalysis {
 public:
  DeltaAnalysis(const Memo* memo, const Catalog* catalog, StatsAnalysis* stats)
      : memo_(memo), catalog_(catalog), stats_(stats) {}

  /// Disables the group-completeness (key-based) query elision — ablation
  /// switch for measuring what the paper's Q3d optimization is worth. The
  /// runtime engine always keeps it on (it is exact there).
  void set_use_completeness(bool enabled) { use_completeness_ = enabled; }
  bool use_completeness() const { return use_completeness_; }

  /// Groups with an updated relation as a descendant (including the updated
  /// leaf groups themselves).
  std::set<GroupId> AffectedGroups(const TransactionType& txn) const;

  /// Live operation nodes of `g` that have at least one affected input —
  /// the candidate ops for propagating `txn`'s updates into `g`.
  std::vector<int> AffectedOps(GroupId g, const TransactionType& txn) const;

  /// The delta expected at an updated base relation.
  DeltaInfo LeafDelta(const TableDef& def, const UpdateSpec& spec) const;

  /// The delta produced by operation node `e` given its inputs' deltas
  /// (unaffected inputs carry a default-constructed DeltaInfo).
  DeltaInfo Propagate(const MemoExpr& e,
                      const std::vector<DeltaInfo>& child_deltas) const;

  /// Whether Aggregate node `e` must pose the old-group query on its input
  /// to compute its output delta. False when the incoming delta is
  /// group-complete, or when the node's group is materialized and every
  /// aggregate is self-maintainable for the delta's kind (SUM/COUNT always;
  /// MIN/MAX/AVG for insertions only; deletions additionally require a
  /// COUNT(*) column so emptied groups are detectable).
  bool AggregateNeedsQuery(const MemoExpr& e, const DeltaInfo& child_delta,
                           bool group_materialized) const;

 private:
  const Memo* memo_;
  const Catalog* catalog_;
  StatsAnalysis* stats_;
  bool use_completeness_ = true;
};

}  // namespace auxview

#endif  // AUXVIEW_DELTA_ANALYSIS_H_
