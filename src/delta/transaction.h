#ifndef AUXVIEW_DELTA_TRANSACTION_H_
#define AUXVIEW_DELTA_TRANSACTION_H_

#include <string>
#include <vector>

namespace auxview {

/// Kinds of base-relation updates a transaction type performs (Section 3.2:
/// insertions, deletions, modifications).
enum class UpdateKind { kInsert, kDelete, kModify };

const char* UpdateKindName(UpdateKind kind);

/// One relation updated by a transaction type.
struct UpdateSpec {
  std::string relation;
  UpdateKind kind = UpdateKind::kModify;
  /// Expected number of tuples touched per transaction (cost estimation).
  double count = 1;
  /// kModify: the attributes whose values change.
  std::vector<std::string> modified_attrs;
  /// The attributes whose values identify the touched tuples; the update
  /// comprises *all* tuples matching those values (drives the completeness
  /// analysis). Empty means the relation's primary key.
  std::vector<std::string> selected_by;
};

/// A transaction type T_i with weight f_i (Section 3.2).
struct TransactionType {
  std::string name;
  double weight = 1;
  std::vector<UpdateSpec> updates;

  /// The update spec touching `relation`, or nullptr.
  const UpdateSpec* SpecFor(const std::string& relation) const;

  std::string ToString() const;
};

/// Convenience constructor: a transaction modifying `count` tuples of one
/// relation (e.g. the paper's ">Emp" / ">Dept").
TransactionType SingleModifyTxn(std::string name, std::string relation,
                                std::vector<std::string> modified_attrs,
                                double weight = 1, double count = 1);

class Catalog;
struct ConcreteTxn;

/// Maps a concrete transaction back to a declared type by name, or — for
/// transactions whose type is not in `declared` (e.g. WAL replay of ad-hoc
/// DML) — derives a one-off spec from its content: one UpdateSpec per
/// touched relation, kind by dominant delta (modify > insert > delete),
/// modified_attrs by diffing the modify pairs against the schema. Recovery
/// uses this so a replayed transaction takes the same maintenance path the
/// original commit took.
TransactionType DeriveTransactionType(
    const ConcreteTxn& txn, const std::vector<TransactionType>& declared,
    const Catalog& catalog);

}  // namespace auxview

#endif  // AUXVIEW_DELTA_TRANSACTION_H_
