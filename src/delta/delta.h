#ifndef AUXVIEW_DELTA_DELTA_H_
#define AUXVIEW_DELTA_DELTA_H_

#include <set>
#include <string>
#include <vector>

#include "delta/transaction.h"

namespace auxview {

/// Static (estimated) properties of the delta arriving at a DAG node for a
/// transaction type — the "size of the deltas on the inputs" the paper
/// assumes available (Section 2.2), plus the completeness information that
/// drives the key-based query elision (Q3d = 0 in Section 3.6).
struct DeltaInfo {
  /// Expected number of delta tuples (for modifications: the number of
  /// modified tuples, counting each old/new pair once, matching the paper's
  /// convention of "one update tuple ... but 10 update tuples").
  double size = 0;

  /// Dominant update kind of the delta.
  UpdateKind kind = UpdateKind::kModify;

  /// For kModify: the attributes whose values change (propagated from the
  /// transaction's UpdateSpec). A modification that touches an Aggregate's
  /// group-by attributes moves rows between groups and may empty a group,
  /// which self-maintenance cannot detect without a COUNT column.
  std::set<std::string> modified_attrs;

  /// For kModify: true while each modified entity contributes the same
  /// number of rows before and after. A modify that changes a join
  /// attribute (re-pointing the join) or that flips a selection predicate
  /// breaks this: a group downstream can then gain or lose rows — or empty
  /// out entirely — so SUM-only self-maintenance is unsound.
  bool count_preserving = true;

  /// Completeness witnesses: for each attribute set C here, the delta
  /// contains *every* tuple of the node's relation whose C-value occurs in
  /// the delta. An Aggregate above may skip its old-group query when some
  /// C is a subset of its group-by attributes (all affected groups arrive
  /// whole).
  std::vector<std::set<std::string>> complete;

  bool affected() const { return size > 0; }

  /// True iff some completeness witness is contained in `attrs`.
  bool CompleteWithin(const std::set<std::string>& attrs) const;

  /// Adds a witness, deduplicating.
  void AddComplete(std::set<std::string> attrs);

  std::string ToString() const;
};

}  // namespace auxview

#endif  // AUXVIEW_DELTA_DELTA_H_
