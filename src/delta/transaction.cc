#include "delta/transaction.h"

#include <algorithm>

#include "catalog/catalog.h"
#include "common/string_util.h"
#include "maintain/concrete.h"

namespace auxview {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "insert";
    case UpdateKind::kDelete:
      return "delete";
    case UpdateKind::kModify:
      return "modify";
  }
  return "?";
}

const UpdateSpec* TransactionType::SpecFor(const std::string& relation) const {
  for (const UpdateSpec& spec : updates) {
    if (spec.relation == relation) return &spec;
  }
  return nullptr;
}

std::string TransactionType::ToString() const {
  std::string out = name + " (weight " + std::to_string(weight) + "):";
  for (const UpdateSpec& spec : updates) {
    out += " " + std::string(UpdateKindName(spec.kind)) + " " +
           std::to_string(spec.count) + " of " + spec.relation;
    if (!spec.modified_attrs.empty()) {
      out += " [" + Join(spec.modified_attrs, ",") + "]";
    }
  }
  return out;
}

TransactionType SingleModifyTxn(std::string name, std::string relation,
                                std::vector<std::string> modified_attrs,
                                double weight, double count) {
  TransactionType txn;
  txn.name = std::move(name);
  txn.weight = weight;
  UpdateSpec spec;
  spec.relation = std::move(relation);
  spec.kind = UpdateKind::kModify;
  spec.count = count;
  spec.modified_attrs = std::move(modified_attrs);
  txn.updates.push_back(std::move(spec));
  return txn;
}

TransactionType DeriveTransactionType(
    const ConcreteTxn& txn, const std::vector<TransactionType>& declared,
    const Catalog& catalog) {
  for (const TransactionType& type : declared) {
    if (type.name == txn.type_name) return type;
  }
  TransactionType derived;
  derived.name = txn.type_name;
  for (const TableUpdate& update : txn.updates) {
    if (update.empty()) continue;
    UpdateSpec spec;
    spec.relation = update.relation;
    if (!update.modifies.empty()) {
      spec.kind = UpdateKind::kModify;
      spec.count = static_cast<double>(update.modifies.size());
      // The changed attributes are whatever differs across any pair.
      const TableDef* def = catalog.FindTable(update.relation);
      if (def != nullptr) {
        const auto& columns = def->schema.columns();
        std::vector<bool> changed(columns.size(), false);
        for (const auto& [old_row, new_row] : update.modifies) {
          for (size_t i = 0;
               i < columns.size() && i < old_row.size() && i < new_row.size();
               ++i) {
            if (!(old_row[i] == new_row[i])) changed[i] = true;
          }
        }
        for (size_t i = 0; i < columns.size(); ++i) {
          if (changed[i]) spec.modified_attrs.push_back(columns[i].name);
        }
      }
    } else if (!update.inserts.empty()) {
      spec.kind = UpdateKind::kInsert;
      spec.count = static_cast<double>(update.inserts.size());
    } else {
      spec.kind = UpdateKind::kDelete;
      spec.count = static_cast<double>(update.deletes.size());
    }
    derived.updates.push_back(std::move(spec));
  }
  return derived;
}

}  // namespace auxview
