#include "delta/transaction.h"

#include "common/string_util.h"

namespace auxview {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "insert";
    case UpdateKind::kDelete:
      return "delete";
    case UpdateKind::kModify:
      return "modify";
  }
  return "?";
}

const UpdateSpec* TransactionType::SpecFor(const std::string& relation) const {
  for (const UpdateSpec& spec : updates) {
    if (spec.relation == relation) return &spec;
  }
  return nullptr;
}

std::string TransactionType::ToString() const {
  std::string out = name + " (weight " + std::to_string(weight) + "):";
  for (const UpdateSpec& spec : updates) {
    out += " " + std::string(UpdateKindName(spec.kind)) + " " +
           std::to_string(spec.count) + " of " + spec.relation;
    if (!spec.modified_attrs.empty()) {
      out += " [" + Join(spec.modified_attrs, ",") + "]";
    }
  }
  return out;
}

TransactionType SingleModifyTxn(std::string name, std::string relation,
                                std::vector<std::string> modified_attrs,
                                double weight, double count) {
  TransactionType txn;
  txn.name = std::move(name);
  txn.weight = weight;
  UpdateSpec spec;
  spec.relation = std::move(relation);
  spec.kind = UpdateKind::kModify;
  spec.count = count;
  spec.modified_attrs = std::move(modified_attrs);
  txn.updates.push_back(std::move(spec));
  return txn;
}

}  // namespace auxview
