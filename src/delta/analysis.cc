#include "delta/analysis.h"

#include <algorithm>

#include "common/check.h"

namespace auxview {

std::set<GroupId> DeltaAnalysis::AffectedGroups(
    const TransactionType& txn) const {
  std::set<GroupId> affected;
  for (GroupId g : memo_->LiveGroups()) {
    const MemoGroup& grp = memo_->group(g);
    if (grp.is_leaf && txn.SpecFor(grp.table) != nullptr) affected.insert(g);
  }
  // Fixpoint: a group is affected when any member op has an affected input.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int eid : memo_->LiveExprs()) {
      const MemoExpr& e = memo_->expr(eid);
      const GroupId g = memo_->Find(e.group);
      if (affected.count(g) > 0) continue;
      for (GroupId in : e.inputs) {
        if (affected.count(memo_->Find(in)) > 0) {
          affected.insert(g);
          changed = true;
          break;
        }
      }
    }
  }
  return affected;
}

std::vector<int> DeltaAnalysis::AffectedOps(GroupId g,
                                            const TransactionType& txn) const {
  const std::set<GroupId> affected = AffectedGroups(txn);
  std::vector<int> out;
  for (int eid : memo_->group(g).exprs) {
    const MemoExpr& e = memo_->expr(eid);
    if (e.dead) continue;
    for (GroupId in : e.inputs) {
      if (affected.count(memo_->Find(in)) > 0) {
        out.push_back(eid);
        break;
      }
    }
  }
  return out;
}

DeltaInfo DeltaAnalysis::LeafDelta(const TableDef& def,
                                   const UpdateSpec& spec) const {
  DeltaInfo delta;
  delta.size = spec.count;
  delta.kind = spec.kind;
  std::vector<std::string> key =
      spec.selected_by.empty() ? def.primary_key : spec.selected_by;
  if (!key.empty()) {
    delta.AddComplete(std::set<std::string>(key.begin(), key.end()));
  }
  delta.modified_attrs.insert(spec.modified_attrs.begin(),
                              spec.modified_attrs.end());
  return delta;
}

DeltaInfo DeltaAnalysis::Propagate(
    const MemoExpr& e, const std::vector<DeltaInfo>& child_deltas) const {
  AUXVIEW_CHECK(child_deltas.size() == e.inputs.size());
  DeltaInfo out;
  switch (e.kind()) {
    case OpKind::kScan:
      break;
    case OpKind::kSelect: {
      const DeltaInfo& in = child_deltas[0];
      if (!in.affected()) break;
      const RelationStats& child_stats = stats_->StatsOf(e.inputs[0]);
      const double sel =
          StatsAnalysis::Selectivity(*e.op->predicate(), child_stats);
      out = in;
      out.size = in.size * std::max(sel, 0.0);
      // Keep a trace of the delta even under selective predicates: the node
      // is affected, a zero estimate would wrongly prune it from tracks.
      if (in.size > 0 && out.size <= 0) out.size = 1e-6;
      // A modify touching the predicate's columns can flip rows in or out.
      if (in.kind == UpdateKind::kModify) {
        for (const std::string& a : e.op->predicate()->Columns()) {
          if (in.modified_attrs.count(a) > 0) out.count_preserving = false;
        }
      }
      break;
    }
    case OpKind::kProject: {
      const DeltaInfo& in = child_deltas[0];
      if (!in.affected()) break;
      out.size = in.size;
      out.kind = in.kind;
      // Completeness survives when every witness attribute is projected
      // through as a plain column of the same name.
      std::set<std::string> passthrough;
      for (const ProjectItem& item : e.op->projections()) {
        if (item.expr->op() == ScalarOp::kColumn &&
            item.expr->column_name() == item.name) {
          passthrough.insert(item.name);
        }
      }
      for (const std::set<std::string>& c : in.complete) {
        if (std::all_of(c.begin(), c.end(), [&](const std::string& a) {
              return passthrough.count(a) > 0;
            })) {
          out.AddComplete(c);
        }
      }
      for (const std::string& a : in.modified_attrs) {
        if (passthrough.count(a) > 0) out.modified_attrs.insert(a);
      }
      break;
    }
    case OpKind::kJoin: {
      const DeltaInfo& dl = child_deltas[0];
      const DeltaInfo& dr = child_deltas[1];
      const RelationStats& sl = stats_->StatsOf(e.inputs[0]);
      const RelationStats& sr = stats_->StatsOf(e.inputs[1]);
      const std::vector<std::string>& s = e.op->join_attrs();
      const double fanout_into_r =
          std::max(1.0, StatsAnalysis::RowsPerJointValue(sr, s));
      const double fanout_into_l =
          std::max(1.0, StatsAnalysis::RowsPerJointValue(sl, s));
      // A modify of a join attribute re-points the join: the old and new
      // rows can match different partner sets, so per-group row counts are
      // no longer preserved downstream.
      auto join_preserving = [&](const DeltaInfo& d) {
        if (!d.count_preserving) return false;
        if (d.kind != UpdateKind::kModify) return true;
        for (const std::string& a : s) {
          if (d.modified_attrs.count(a) > 0) return false;
        }
        return true;
      };
      if (dl.affected() && !dr.affected()) {
        out.size = dl.size * fanout_into_r;
        out.kind = dl.kind;
        out.modified_attrs = dl.modified_attrs;
        out.count_preserving = join_preserving(dl);
        // The semijoin expands each delta tuple with all matching partners,
        // so the updated side's witnesses remain complete.
        for (const std::set<std::string>& c : dl.complete) out.AddComplete(c);
      } else if (dr.affected() && !dl.affected()) {
        out.size = dr.size * fanout_into_l;
        out.kind = dr.kind;
        out.modified_attrs = dr.modified_attrs;
        out.count_preserving = join_preserving(dr);
        for (const std::set<std::string>& c : dr.complete) out.AddComplete(c);
      } else if (dl.affected() && dr.affected()) {
        out.size = dl.size * fanout_into_r + dr.size * fanout_into_l;
        out.kind = UpdateKind::kModify;
        out.modified_attrs = dl.modified_attrs;
        out.modified_attrs.insert(dr.modified_attrs.begin(),
                                  dr.modified_attrs.end());
        out.count_preserving = false;
        // No completeness witness survives a two-sided update.
      }
      break;
    }
    case OpKind::kAggregate: {
      const DeltaInfo& in = child_deltas[0];
      if (!in.affected()) break;
      const RelationStats& child_stats = stats_->StatsOf(e.inputs[0]);
      const double rows_per_group = std::max(
          1.0, StatsAnalysis::RowsPerJointValue(child_stats, e.op->group_by()));
      // A modify that changes a group-by attribute moves each entity between
      // two groups (the old one and the new one) — unless the delta is
      // group-complete, in which case the whole group moves as one pair
      // (the paper's >Dept budget change: (d, old) -> (d, new)).
      bool group_moving = false;
      if (in.kind == UpdateKind::kModify) {
        for (const std::string& a : e.op->group_by()) {
          if (in.modified_attrs.count(a) > 0) group_moving = true;
        }
      }
      const std::set<std::string> gb_set(e.op->group_by().begin(),
                                         e.op->group_by().end());
      const double spread =
          group_moving && !in.CompleteWithin(gb_set) ? 2.0 : 1.0;
      // Expected number of affected groups.
      if (in.size >= 1.0) {
        out.size = std::min(in.size * spread,
                            std::max(1.0, in.size / rows_per_group) * spread);
      } else {
        out.size = in.size;
      }
      // Updates to existing groups surface as modifications of the group row
      // — but groups can also appear or vanish, so downstream consumers may
      // not assume per-group counts are preserved.
      out.kind = UpdateKind::kModify;
      out.count_preserving = false;
      const std::set<std::string> gb(e.op->group_by().begin(),
                                     e.op->group_by().end());
      for (const AggSpec& agg : e.op->aggs()) {
        out.modified_attrs.insert(agg.output_name);
      }
      for (const std::string& a : in.modified_attrs) {
        if (gb.count(a) > 0) out.modified_attrs.insert(a);
      }
      for (const std::set<std::string>& c : in.complete) {
        if (std::all_of(c.begin(), c.end(), [&](const std::string& a) {
              return gb.count(a) > 0;
            })) {
          out.AddComplete(c);
        }
      }
      break;
    }
    case OpKind::kDupElim: {
      const DeltaInfo& in = child_deltas[0];
      if (!in.affected()) break;
      out = in;
      break;
    }
  }
  return out;
}

bool DeltaAnalysis::AggregateNeedsQuery(const MemoExpr& e,
                                        const DeltaInfo& child_delta,
                                        bool group_materialized) const {
  AUXVIEW_CHECK(e.kind() == OpKind::kAggregate);
  if (!child_delta.affected()) return false;
  const std::set<std::string> gb(e.op->group_by().begin(),
                                 e.op->group_by().end());
  // Key-based elision (the paper's Q3d): whole groups arrive in the delta.
  if (use_completeness_ && child_delta.CompleteWithin(gb)) return false;
  if (!group_materialized) return true;
  // Self-maintainability from the materialized old value.
  bool has_count_star = false;
  for (const AggSpec& agg : e.op->aggs()) {
    if (agg.func == AggFunc::kCount) has_count_star = true;
  }
  for (const AggSpec& agg : e.op->aggs()) {
    switch (agg.func) {
      case AggFunc::kSum:
      case AggFunc::kCount:
        break;  // self-maintainable for every delta kind given the old value
      case AggFunc::kMin:
      case AggFunc::kMax:
      case AggFunc::kAvg:
        if (child_delta.kind != UpdateKind::kInsert) return true;
        break;
    }
  }
  // Deletions can empty a group; detecting that requires a COUNT column.
  if (child_delta.kind == UpdateKind::kDelete && !has_count_star) return true;
  // A modification of a group-by attribute moves rows between groups, which
  // is a delete from the old group; likewise a non-count-preserving modify
  // (one that re-pointed a join or flipped a selection) can empty a group.
  if (child_delta.kind == UpdateKind::kModify && !has_count_star) {
    if (!child_delta.count_preserving) return true;
    for (const std::string& a : child_delta.modified_attrs) {
      if (gb.count(a) > 0) return true;
    }
  }
  return false;
}

}  // namespace auxview
