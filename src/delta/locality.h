#ifndef AUXVIEW_DELTA_LOCALITY_H_
#define AUXVIEW_DELTA_LOCALITY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "delta/analysis.h"
#include "delta/transaction.h"
#include "memo/memo.h"
#include "optimizer/track.h"
#include "optimizer/view_set.h"

namespace auxview {

/// Where an update track's maintenance work can run when base relations are
/// hash-sharded (docs/SHARDING.md). The labels form a lattice
/// kSelfMaintainable < kKeyLocal < kCrossShard; a track's label is the worst
/// label any of its fetches earns.
enum class TrackLocality {
  /// Propagation touches no base relation: every value it reads comes from
  /// the transaction's delta or from already-materialized aux views. The
  /// delta engine asserts this at runtime — a self-maintainable track that
  /// issues a base-relation fetch is a CHECK failure, so the static verdict
  /// is proven sound on every maintained transaction.
  kSelfMaintainable = 0,
  /// Base relations are fetched, but only through equality probes whose
  /// attributes cover the probed relation's shard key — each probe resolves
  /// within one shard.
  kKeyLocal = 1,
  /// At least one fetch scans a relation, probes below its shard key, or
  /// reaches an unsharded relation.
  kCrossShard = 2,
};

const char* TrackLocalityName(TrackLocality locality);

struct TrackLocalityReport {
  TrackLocality locality = TrackLocality::kSelfMaintainable;
  /// True when the transaction's delta can be partitioned by shard and
  /// propagated through this track independently per shard: every updated
  /// relation is sharded and every affected non-leaf node on the track
  /// keeps a nonempty alignment — a shard-key attribute list, inherited from
  /// the updated leaves, that colocates all delta rows of one aggregate
  /// group / distinct row / join match in a single shard. The engine runs a
  /// track per-shard iff decomposable and not cross-shard.
  bool decomposable = false;
  /// One line per classification step (fetch sites, aggregate branch
  /// decisions, alignment breaks) — explain/debug output.
  std::vector<std::string> notes;
};

/// Static classifier for update tracks over sharded storage. Mirrors the
/// exact complete/self-maintenance/query branch decisions and fetch
/// push-downs the DeltaEngine takes at runtime (same DeltaAnalysis
/// machinery), so the verdict is a sound over-approximation of the fetches a
/// maintained transaction of this type can issue: where the runtime picks
/// the cheapest push-down plan by live statistics, the classifier takes the
/// worst label over every live candidate.
class LocalityClassifier {
 public:
  LocalityClassifier(const Memo* memo, const Catalog* catalog,
                     DeltaAnalysis* delta)
      : memo_(memo), catalog_(catalog), delta_(delta) {}

  StatusOr<TrackLocalityReport> Classify(const UpdateTrack& track,
                                         const ViewSet& marked,
                                         const TransactionType& type) const;

 private:
  struct ClassifyState;

  StatusOr<DeltaInfo> StaticDeltaOf(GroupId g, ClassifyState& state) const;
  /// The locality of answering FetchMatchingBatch(g, attrs, ...) — the
  /// runtime push-down of delta_engine.cc's FetchUncached, taken over every
  /// live candidate operation node.
  StatusOr<TrackLocality> FetchLocality(GroupId g,
                                        const std::vector<std::string>& attrs,
                                        ClassifyState& state) const;
  /// The alignment attribute list of group `g`'s per-shard delta (empty =
  /// none survives to this node).
  StatusOr<std::vector<std::string>> AlignmentOf(GroupId g,
                                                 ClassifyState& state) const;

  const Memo* memo_;
  const Catalog* catalog_;
  DeltaAnalysis* delta_;
};

}  // namespace auxview

#endif  // AUXVIEW_DELTA_LOCALITY_H_
