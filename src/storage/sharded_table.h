#ifndef AUXVIEW_STORAGE_SHARDED_TABLE_H_
#define AUXVIEW_STORAGE_SHARDED_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace auxview {

/// The shard a key row hashes to under `shard_count` shards. Shared by the
/// storage router and the delta engine's per-shard partitioning so "same
/// shard-key value" means "same shard index" everywhere in the process.
int ShardIndexFor(const Row& key, int shard_count);

/// A hash-sharded stored relation: N sub-tables (each a plain Table with the
/// same definition) behind the Table interface, rows routed by
/// hash(projection onto TableDef::shard_key) % N. Callers — the executor,
/// the delta engine, snapshots, the undo log — see one Table.
///
/// The hard invariant (docs/SHARDING.md, "Charge identity"): logical
/// contents, fingerprints and charged page I/O are bit-identical to the
/// unsharded table. Contents follow from deterministic routing; fingerprints
/// are composed from sub-shard state in the unsharded format; charges are
/// replicated at the router where per-shard delegation would diverge:
///
///  - Apply and bucket-local lookups (the resolved index covers the shard
///    key, so a probed bucket lives wholly in one shard) delegate charged to
///    one sub-table — identical cost by construction.
///  - Index lookups whose bucket spans shards fan out uncharged and the
///    router bills one index-page read per key plus the merged bucket's
///    tuple instances — what the single unsharded bucket would have cost.
///  - Scan-fallback lookups and ScanAll always fan out charged across every
///    shard: per-shard scans sum to exactly the whole-table scan (routing to
///    one shard would make sharded execution cheaper and break identity).
///  - A ModifyBatch whose old and new rows all land in one shard delegates
///    charged; a cross-shard batch replays the unsharded two-phase cost at
///    the router (one index read for the batch, an index write per changed
///    index projection, read+write per tuple) and moves rows through
///    uncharged sub-table applies (undo still recorded, so rollback works).
///
/// Per-relation metric attribution: sub-table charges land in
/// storage.rel.[<label>.]<name>.shard.<i>.* and the shard's
/// storage.[<label>.]shard.<i>.* counter scope; router-level charges land in
/// the parent-level storage.rel.[<label>.]<name>.*. Global storage.*
/// totals are identical to unsharded either way (PageCounter forwarding).
class ShardedTable : public Table {
 public:
  /// `shard_counters` must have one entry per shard and outlive the table;
  /// `parent_counter` is the database-level counter router charges go to.
  ShardedTable(TableDef def, PageCounter* parent_counter,
               const std::vector<PageCounter*>& shard_counters,
               const std::string& metric_scope = "");

  std::unique_ptr<Table> Clone(PageCounter* counter) const override;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const Table& shard(int i) const { return *shards_[i]; }

  /// The shard `row` (a full-arity table row) routes to.
  int ShardOf(const Row& row) const;

  int64_t distinct_rows() const override;
  int64_t row_count() const override;

  Status Apply(const Row& row, int64_t count) override;
  Status ModifyBatch(const std::vector<std::pair<Row, Row>>& pairs) override;
  int64_t CountOf(const Row& row) const override;
  std::vector<CountedRow> Lookup(const std::vector<std::string>& attrs,
                                 const Row& key) const override;
  std::vector<std::vector<CountedRow>> LookupBatch(
      const std::vector<std::string>& attrs,
      const std::vector<Row>& keys) const override;
  std::vector<std::vector<CountedRow>> LookupBatchUncharged(
      const std::vector<std::string>& attrs,
      const std::vector<Row>& keys) const override;
  std::vector<CountedRow> ScanAll() const override;
  std::vector<CountedRow> SnapshotUncharged() const override;
  RelationStats ComputeStats() const override;
  std::string Fingerprint() const override;
  void set_undo_log(UndoLog* log) override;

 private:
  std::vector<std::vector<CountedRow>> LookupBatchImpl(
      const std::vector<std::string>& attrs, const std::vector<Row>& keys,
      bool charged) const;

  /// Schema positions of the shard-key attributes (TableDef::shard_key
  /// order).
  std::vector<int> shard_cols_;
  std::vector<std::unique_ptr<Table>> shards_;
};

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_SHARDED_TABLE_H_
