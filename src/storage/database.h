#ifndef AUXVIEW_STORAGE_DATABASE_H_
#define AUXVIEW_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/page_counter.h"
#include "storage/table.h"

namespace auxview {

/// A collection of stored relations sharing one page-I/O counter. Holds both
/// base relations and materialized views (views are stored tables whose
/// definitions live in the view manager).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; fails on duplicates.
  StatusOr<Table*> CreateTable(TableDef def);

  /// Drops a table; fails with NotFound when absent.
  Status DropTable(const std::string& name);

  /// nullptr when absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return FindTable(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;

  PageCounter& counter() { return counter_; }
  const PageCounter& counter() const { return counter_; }

  /// Refreshes catalog-style statistics for table `name` from its contents.
  StatusOr<RelationStats> RefreshStats(const std::string& name) const;

 private:
  PageCounter counter_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_DATABASE_H_
