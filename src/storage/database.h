#ifndef AUXVIEW_STORAGE_DATABASE_H_
#define AUXVIEW_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/page_counter.h"
#include "storage/table.h"

namespace auxview {

struct ConcreteTxn;
struct DatabaseOptions;
struct WalRecovery;
class WriteAheadLog;

/// Read-only table lookup. The executor resolves Scan leaves through this
/// interface, so a query can run against the live database, an immutable
/// snapshot, or a writer's snapshot-plus-delta overlay (src/concurrency/)
/// with the same operator code.
class TableSource {
 public:
  virtual ~TableSource() = default;

  /// The table serving reads of `name`; nullptr when absent.
  virtual const Table* ResolveTable(const std::string& name) const = 0;
};

/// A collection of stored relations sharing one page-I/O counter. Holds both
/// base relations and materialized views (views are stored tables whose
/// definitions live in the view manager). Optionally backed by a durable
/// write-ahead log (see storage/wal/wal.h).
class Database : public TableSource {
 public:
  Database();
  ~Database() override;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; fails on duplicates.
  StatusOr<Table*> CreateTable(TableDef def);

  /// Drops a table; fails with NotFound when absent.
  Status DropTable(const std::string& name);

  /// nullptr when absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  const Table* ResolveTable(const std::string& name) const override {
    return FindTable(name);
  }

  bool HasTable(const std::string& name) const {
    return FindTable(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;

  /// Metric scope label. A process hosting several databases labels each one
  /// so per-relation counters stay distinguishable: an unlabeled database
  /// charges `storage.rel.<table>.*`, a labeled one
  /// `storage.rel.<label>.<table>.*` (docs/OBSERVABILITY.md). Must be set
  /// before the first CreateTable; tables created earlier keep their names.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Hash-shard count for stored relations (docs/SHARDING.md). With a count
  /// above 1, CreateTable builds a ShardedTable for every definition that
  /// carries a shard key (relations without one, including materialized
  /// views, stay unsharded). Like set_label, must be set before the first
  /// CreateTable — and after set_label, so per-shard counter scopes pick up
  /// the label. Tables created earlier keep their layout.
  void set_shard_count(int shards);
  int shard_count() const { return shard_count_; }

  PageCounter& counter() { return counter_; }
  const PageCounter& counter() const { return counter_; }

  /// Refreshes catalog-style statistics for table `name` from its contents.
  StatusOr<RelationStats> RefreshStats(const std::string& name) const;

  /// Attaches a write-ahead log rooted at `options.wal_dir`, scanning any
  /// existing durable state. At most one log per database; fails if one is
  /// already attached.
  Status OpenWal(const DatabaseOptions& options);

  /// nullptr when no log is attached.
  WriteAheadLog* wal() { return wal_.get(); }
  const WriteAheadLog* wal() const { return wal_.get(); }

  /// Loads the log's latest checkpoint into this database's tables (creating
  /// them, or filling tables that already exist empty with a matching
  /// schema) and hands back the staged post-checkpoint transactions for the
  /// caller to replay. Unblocks appends.
  Status Recover(WalRecovery* out);

  /// Applies a concrete transaction's updates straight to the stored tables
  /// without charging page I/O — the load/recovery path, not the maintained
  /// commit path.
  Status ApplyTxnDirect(const ConcreteTxn& txn);

 private:
  PageCounter counter_;
  std::string label_;
  int shard_count_ = 1;
  /// One scoped child counter per shard (scope `[<label>.]shard.<i>`),
  /// shared by every sharded relation in this database and forwarding into
  /// counter_ so global totals stay identical to unsharded execution.
  std::vector<std::unique_ptr<PageCounter>> shard_counters_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::unique_ptr<WriteAheadLog> wal_;
};

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_DATABASE_H_
