#include "storage/sharded_table.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"

namespace auxview {

int ShardIndexFor(const Row& key, int shard_count) {
  AUXVIEW_CHECK(shard_count > 0);
  return static_cast<int>(HashRow(key) % static_cast<size_t>(shard_count));
}

ShardedTable::ShardedTable(TableDef def, PageCounter* parent_counter,
                           const std::vector<PageCounter*>& shard_counters,
                           const std::string& metric_scope)
    : Table(std::move(def), parent_counter, metric_scope) {
  AUXVIEW_CHECK_MSG(!shard_counters.empty(),
                    "sharded table needs at least one shard counter");
  AUXVIEW_CHECK_MSG(!this->def().shard_key.empty(),
                    ("sharded table without a shard key: " + name()).c_str());
  for (const std::string& a : this->def().shard_key) {
    const int col = schema().IndexOf(a);
    AUXVIEW_CHECK_MSG(col >= 0,
                      ("shard key attr missing from schema: " + a).c_str());
    shard_cols_.push_back(col);
  }
  shards_.reserve(shard_counters.size());
  for (size_t i = 0; i < shard_counters.size(); ++i) {
    shards_.push_back(std::make_unique<Table>(this->def(), shard_counters[i],
                                              metric_scope,
                                              "shard." + std::to_string(i)));
  }
}

std::unique_ptr<Table> ShardedTable::Clone(PageCounter* counter) const {
  // Clones serve snapshot reads behind a (typically disabled) counter of
  // their own, so sub-tables charge `counter` directly instead of scoped
  // children. Metric names re-resolve to the same registry counters
  // (GetCounter is idempotent) and stay silent while the counter is off.
  std::vector<PageCounter*> sub_counters(shards_.size(), counter);
  auto clone = std::make_unique<ShardedTable>(def(), counter, sub_counters,
                                              metric_scope_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Table& src = *shards_[i];
    Table& dst = *clone->shards_[i];
    dst.rows_ = src.rows_;
    dst.total_count_ = src.total_count_;
    dst.indexes_ = src.indexes_;
  }
  return clone;
}

int ShardedTable::ShardOf(const Row& row) const {
  Row key;
  key.reserve(shard_cols_.size());
  for (int col : shard_cols_) key.push_back(row[static_cast<size_t>(col)]);
  return ShardIndexFor(key, shard_count());
}

int64_t ShardedTable::distinct_rows() const {
  // Equal rows always route to the same shard, so per-shard distinct counts
  // partition the table's distinct rows.
  int64_t n = 0;
  for (const auto& shard : shards_) n += shard->distinct_rows();
  return n;
}

int64_t ShardedTable::row_count() const {
  int64_t n = 0;
  for (const auto& shard : shards_) n += shard->row_count();
  return n;
}

Status ShardedTable::Apply(const Row& row, int64_t count) {
  if (count == 0) return Status::Ok();
  if (static_cast<int>(row.size()) != schema().num_columns()) {
    // The unsharded table reports this before touching anything; ShardOf
    // would index out of bounds, so guard here with the identical error.
    return Status::InvalidArgument("row arity mismatch for table " + name());
  }
  // Single-shard delegation: the sub-table charges and records undo exactly
  // like the unsharded table would.
  return shards_[ShardOf(row)]->Apply(row, count);
}

Status ShardedTable::ModifyBatch(
    const std::vector<std::pair<Row, Row>>& pairs) {
  if (pairs.empty()) return Status::Ok();
  const int cols = schema().num_columns();
  // If every old and new row lives in one shard, the whole batch delegates
  // charged — per-tuple and per-index costs are identical by construction.
  bool single = true;
  int target = -1;
  for (const auto& [old_row, new_row] : pairs) {
    if (static_cast<int>(old_row.size()) != cols ||
        static_cast<int>(new_row.size()) != cols) {
      // Arity-mismatched rows surface as the unsharded NotFound on the
      // global path below.
      single = false;
      break;
    }
    const int so = ShardOf(old_row);
    const int sn = ShardOf(new_row);
    if (target == -1) target = so;
    if (so != target || sn != target) {
      single = false;
      break;
    }
  }
  if (single) return shards_[target]->ModifyBatch(pairs);

  // Cross-shard batch: replay the unsharded two-phase modify at the router.
  // Charges and batch-level failpoints fire here exactly as the unsharded
  // table fires them; rows move through uncharged sub-table applies, which
  // still record undo so a mid-batch fault rolls back precisely.
  AUXVIEW_FAILPOINT("storage.table.modify_batch");
  ChargeIndexRead(static_cast<int64_t>(indexes_.size()));
  RowEq eq;
  for (const IndexState& idx : indexes_) {
    for (const auto& [old_row, new_row] : pairs) {
      if (static_cast<int>(old_row.size()) != cols ||
          static_cast<int>(new_row.size()) != cols) {
        continue;
      }
      if (!eq(ProjectKey(idx, old_row), ProjectKey(idx, new_row))) {
        ChargeIndexWrite(1);
        break;
      }
    }
  }
  // Two phases, as in Table::ModifyBatch: detach every old row at its
  // pre-batch multiplicity, then attach every new row — UPDATE chains
  // (27->28, 28->29) stay order-independent even when the chain hops shards.
  std::vector<int64_t> counts(pairs.size());
  std::vector<int> new_shard(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    AUXVIEW_FAILPOINT("storage.table.modify_pair");
    const Row& old_row = pairs[i].first;
    const Row& new_row = pairs[i].second;
    if (static_cast<int>(old_row.size()) != cols ||
        static_cast<int>(new_row.size()) != cols) {
      // An arity-mismatched row cannot be stored anywhere.
      return Status::NotFound("modify of absent row in " + name() + ": " +
                              RowToString(old_row));
    }
    Table& src = *shards_[ShardOf(old_row)];
    counts[i] = src.CountOf(old_row);
    if (counts[i] == 0) {
      return Status::NotFound("modify of absent row in " + name() + ": " +
                              RowToString(old_row));
    }
    new_shard[i] = ShardOf(new_row);
    ChargeTupleRead(counts[i]);
    ChargeTupleWrite(counts[i]);
    Status s = src.ApplyInternal(old_row, -counts[i], /*charged=*/false);
    if (!s.ok()) return s;
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    Status s = shards_[static_cast<size_t>(new_shard[i])]->ApplyInternal(
        pairs[i].second, counts[i], /*charged=*/false);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

int64_t ShardedTable::CountOf(const Row& row) const {
  if (static_cast<int>(row.size()) != schema().num_columns()) return 0;
  return shards_[ShardOf(row)]->CountOf(row);
}

std::vector<std::vector<CountedRow>> ShardedTable::LookupBatchImpl(
    const std::vector<std::string>& attrs, const std::vector<Row>& keys,
    bool charged) const {
  std::vector<std::vector<CountedRow>> out;
  out.reserve(keys.size());
  if (keys.empty()) return out;
  // Resolve against the (row-less) base: sub-tables share the def, so index
  // choice, key reordering and residual filters are identical everywhere.
  const ResolvedProbe router_probe = ResolveProbe(attrs);
  std::vector<ResolvedProbe> sub_probes;
  sub_probes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    sub_probes.push_back(shard->ResolveProbe(attrs));
  }

  // Rule A — bucket-local index probe. When the chosen index's attributes
  // cover the shard key, every row of a probed bucket shares the shard-key
  // value, so the whole bucket (including residual-filtered rows the cost
  // model still bills) lives in one shard: delegate charged. Note that the
  // shard key merely appearing among the probe attrs is NOT enough — a
  // bucket keyed on fewer attributes spans shards and its scan cost must
  // cover all of them.
  if (router_probe.index != nullptr) {
    const std::vector<std::string>& index_attrs = router_probe.index->attrs;
    bool bucket_local = true;
    for (const std::string& a : def().shard_key) {
      if (std::find(index_attrs.begin(), index_attrs.end(), a) ==
          index_attrs.end()) {
        bucket_local = false;
        break;
      }
    }
    if (bucket_local) {
      std::vector<int> shard_key_pos;  // probe-key slot per shard-key attr
      shard_key_pos.reserve(def().shard_key.size());
      for (const std::string& a : def().shard_key) {
        auto it = std::find(attrs.begin(), attrs.end(), a);
        AUXVIEW_CHECK(it != attrs.end());  // index attrs ⊆ probe attrs
        shard_key_pos.push_back(static_cast<int>(it - attrs.begin()));
      }
      Row key_proj(shard_key_pos.size());
      for (const Row& key : keys) {
        for (size_t i = 0; i < shard_key_pos.size(); ++i) {
          key_proj[i] = key[static_cast<size_t>(shard_key_pos[i])];
        }
        const size_t s = static_cast<size_t>(
            ShardIndexFor(key_proj, shard_count()));
        out.push_back(shards_[s]->ProbeOnce(sub_probes[s], key, charged));
      }
      return out;
    }
    // Rule B — the bucket spans shards: probe every shard uncharged and
    // bill at the router what the single unsharded bucket would have cost —
    // one index-page read per key plus the merged bucket's tuple instances.
    for (const Row& key : keys) {
      std::vector<CountedRow> merged;
      int64_t scanned = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        std::vector<CountedRow> part = shards_[s]->ProbeOnce(
            sub_probes[s], key, /*charged=*/false, &scanned);
        merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
      }
      if (charged) {
        ChargeIndexRead(1);
        ChargeTupleRead(scanned);
      }
      out.push_back(std::move(merged));
    }
    return out;
  }

  // Rule C — scan fallback: always fan out charged across every shard; the
  // per-shard scans sum to exactly the whole-table scan. Routing a
  // shard-key-covering probe to one shard here would make sharded execution
  // cheaper than unsharded and break charge identity.
  for (const Row& key : keys) {
    std::vector<CountedRow> merged;
    for (size_t s = 0; s < shards_.size(); ++s) {
      std::vector<CountedRow> part =
          shards_[s]->ProbeOnce(sub_probes[s], key, charged);
      merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    out.push_back(std::move(merged));
  }
  return out;
}

std::vector<CountedRow> ShardedTable::Lookup(
    const std::vector<std::string>& attrs, const Row& key) const {
  return std::move(LookupBatchImpl(attrs, {key}, /*charged=*/true).front());
}

std::vector<std::vector<CountedRow>> ShardedTable::LookupBatch(
    const std::vector<std::string>& attrs,
    const std::vector<Row>& keys) const {
  return LookupBatchImpl(attrs, keys, /*charged=*/true);
}

std::vector<std::vector<CountedRow>> ShardedTable::LookupBatchUncharged(
    const std::vector<std::string>& attrs,
    const std::vector<Row>& keys) const {
  return LookupBatchImpl(attrs, keys, /*charged=*/false);
}

std::vector<CountedRow> ShardedTable::ScanAll() const {
  std::vector<CountedRow> out;
  out.reserve(static_cast<size_t>(distinct_rows()));
  for (const auto& shard : shards_) {
    std::vector<CountedRow> part = shard->ScanAll();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<CountedRow> ShardedTable::SnapshotUncharged() const {
  std::vector<CountedRow> out;
  out.reserve(static_cast<size_t>(distinct_rows()));
  for (const auto& shard : shards_) {
    std::vector<CountedRow> part = shard->SnapshotUncharged();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

RelationStats ShardedTable::ComputeStats() const {
  RelationStats stats;
  stats.row_count = static_cast<double>(row_count());
  for (int c = 0; c < schema().num_columns(); ++c) {
    std::unordered_map<Row, int, RowHash, RowEq> seen;
    for (const auto& shard : shards_) {
      for (const auto& [row, count] : shard->rows_) {
        (void)count;
        seen.try_emplace(Row{row[static_cast<size_t>(c)]}, 1);
      }
    }
    stats.distinct[schema().column(c).name] = static_cast<double>(seen.size());
  }
  return stats;
}

std::string ShardedTable::Fingerprint() const {
  // Composed from sub-shard state in the exact unsharded format — building a
  // merged temporary table would fire apply failpoints and charge I/O.
  std::vector<std::string> lines;
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->total_count_;
    for (const auto& [row, count] : shard->rows_) {
      lines.push_back("row " + RowToString(row) + " x" +
                      std::to_string(count));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out =
      "table " + name() + " total=" + std::to_string(total) + "\n";
  for (const std::string& line : lines) out += line + "\n";
  for (size_t i = 0; i < indexes_.size(); ++i) {
    std::unordered_map<Row, std::vector<std::string>, RowHash, RowEq> merged;
    for (const auto& shard : shards_) {
      for (const auto& [key, rows] : shard->indexes_[i].map) {
        auto& members = merged[key];
        for (const Row& r : rows) members.push_back(RowToString(r));
      }
    }
    std::vector<std::string> buckets;
    buckets.reserve(merged.size());
    for (auto& [key, members] : merged) {
      std::sort(members.begin(), members.end());
      std::string bucket = "  " + RowToString(key) + " ->";
      for (const std::string& m : members) bucket += " " + m;
      buckets.push_back(std::move(bucket));
    }
    std::sort(buckets.begin(), buckets.end());
    std::string attrs;
    for (const std::string& a : indexes_[i].attrs) attrs += a + ",";
    out += "index (" + attrs + ")\n";
    for (const std::string& b : buckets) out += b + "\n";
  }
  return out;
}

void ShardedTable::set_undo_log(UndoLog* log) {
  // The undo log records mutations against the sub-table that performed
  // them, so rollback replays into the right shard without routing again.
  Table::set_undo_log(log);
  for (auto& shard : shards_) shard->set_undo_log(log);
}

}  // namespace auxview
