#include "storage/database.h"

#include "common/check.h"
#include "maintain/concrete.h"
#include "storage/sharded_table.h"
#include "storage/wal/wal.h"

namespace auxview {

Database::Database() = default;
Database::~Database() = default;

void Database::set_shard_count(int shards) {
  AUXVIEW_CHECK_MSG(shards >= 1, "shard count must be at least 1");
  shard_count_ = shards;
  if (shards <= 1 || !shard_counters_.empty()) return;
  shard_counters_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    const std::string scope = (label_.empty() ? "" : label_ + ".") + "shard." +
                              std::to_string(i);
    shard_counters_.push_back(std::make_unique<PageCounter>(scope, &counter_));
  }
}

StatusOr<Table*> Database::CreateTable(TableDef def) {
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table already exists: " + def.name);
  }
  const std::string name = def.name;
  std::unique_ptr<Table> table;
  if (shard_count_ > 1 && !def.shard_key.empty()) {
    std::vector<PageCounter*> shard_counters;
    shard_counters.reserve(shard_counters_.size());
    for (const auto& c : shard_counters_) shard_counters.push_back(c.get());
    table = std::make_unique<ShardedTable>(std::move(def), &counter_,
                                           shard_counters, label_);
  } else {
    table = std::make_unique<Table>(std::move(def), &counter_, label_);
  }
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<RelationStats> Database::RefreshStats(const std::string& name) const {
  const Table* table = FindTable(name);
  if (table == nullptr) return Status::NotFound("no such table: " + name);
  return table->ComputeStats();
}

Status Database::OpenWal(const DatabaseOptions& options) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a write-ahead log is already attached");
  }
  AUXVIEW_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(options));
  return Status::Ok();
}

Status Database::Recover(WalRecovery* out) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no write-ahead log attached");
  }
  WalRecovery rec = wal_->TakeRecovery();
  if (rec.has_checkpoint) {
    for (const TableImage& img : rec.checkpoint.tables) {
      Table* table = FindTable(img.def.name);
      if (table == nullptr) {
        AUXVIEW_ASSIGN_OR_RETURN(table, CreateTable(img.def));
      } else if (!table->empty()) {
        return Status::FailedPrecondition(
            "cannot recover into non-empty table: " + img.def.name);
      } else if (table->schema().num_columns() !=
                 img.def.schema.num_columns()) {
        return Status::Internal("recovered schema mismatch for table: " +
                                img.def.name);
      }
      ScopedCountingDisabled uncharged(&counter_);
      for (const auto& [row, count] : img.rows) {
        AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
      }
    }
  }
  *out = std::move(rec);
  return Status::Ok();
}

Status Database::ApplyTxnDirect(const ConcreteTxn& txn) {
  for (const TableUpdate& update : txn.updates) {
    Table* table = FindTable(update.relation);
    if (table == nullptr) {
      return Status::NotFound("no such table: " + update.relation);
    }
    ScopedCountingDisabled uncharged(&counter_);
    for (const auto& [row, count] : update.inserts) {
      AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
    }
    for (const auto& [row, count] : update.deletes) {
      AUXVIEW_RETURN_IF_ERROR(table->Delete(row, count));
    }
    AUXVIEW_RETURN_IF_ERROR(table->ModifyBatch(update.modifies));
  }
  return Status::Ok();
}

}  // namespace auxview
