#include "storage/database.h"

namespace auxview {

StatusOr<Table*> Database::CreateTable(TableDef def) {
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table already exists: " + def.name);
  }
  const std::string name = def.name;
  auto table = std::make_unique<Table>(std::move(def), &counter_);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<RelationStats> Database::RefreshStats(const std::string& name) const {
  const Table* table = FindTable(name);
  if (table == nullptr) return Status::NotFound("no such table: " + name);
  return table->ComputeStats();
}

}  // namespace auxview
