#include "storage/database.h"

#include "maintain/concrete.h"
#include "storage/wal/wal.h"

namespace auxview {

Database::Database() = default;
Database::~Database() = default;

StatusOr<Table*> Database::CreateTable(TableDef def) {
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table already exists: " + def.name);
  }
  const std::string name = def.name;
  auto table = std::make_unique<Table>(std::move(def), &counter_, label_);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<RelationStats> Database::RefreshStats(const std::string& name) const {
  const Table* table = FindTable(name);
  if (table == nullptr) return Status::NotFound("no such table: " + name);
  return table->ComputeStats();
}

Status Database::OpenWal(const DatabaseOptions& options) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a write-ahead log is already attached");
  }
  AUXVIEW_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(options));
  return Status::Ok();
}

Status Database::Recover(WalRecovery* out) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no write-ahead log attached");
  }
  WalRecovery rec = wal_->TakeRecovery();
  if (rec.has_checkpoint) {
    for (const TableImage& img : rec.checkpoint.tables) {
      Table* table = FindTable(img.def.name);
      if (table == nullptr) {
        AUXVIEW_ASSIGN_OR_RETURN(table, CreateTable(img.def));
      } else if (!table->empty()) {
        return Status::FailedPrecondition(
            "cannot recover into non-empty table: " + img.def.name);
      } else if (table->schema().num_columns() !=
                 img.def.schema.num_columns()) {
        return Status::Internal("recovered schema mismatch for table: " +
                                img.def.name);
      }
      ScopedCountingDisabled uncharged(&counter_);
      for (const auto& [row, count] : img.rows) {
        AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
      }
    }
  }
  *out = std::move(rec);
  return Status::Ok();
}

Status Database::ApplyTxnDirect(const ConcreteTxn& txn) {
  for (const TableUpdate& update : txn.updates) {
    Table* table = FindTable(update.relation);
    if (table == nullptr) {
      return Status::NotFound("no such table: " + update.relation);
    }
    ScopedCountingDisabled uncharged(&counter_);
    for (const auto& [row, count] : update.inserts) {
      AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
    }
    for (const auto& [row, count] : update.deletes) {
      AUXVIEW_RETURN_IF_ERROR(table->Delete(row, count));
    }
    AUXVIEW_RETURN_IF_ERROR(table->ModifyBatch(update.modifies));
  }
  return Status::Ok();
}

}  // namespace auxview
