#include "storage/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/failpoint.h"
#include "storage/undo_log.h"

namespace auxview {

Table::Table(TableDef def, PageCounter* counter,
             const std::string& metric_scope,
             const std::string& metric_suffix)
    : def_(std::move(def)),
      metric_scope_(metric_scope),
      metric_suffix_(metric_suffix),
      counter_(counter) {
  AUXVIEW_CHECK(counter_ != nullptr);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::string scoped =
      "storage.rel." +
      (metric_scope_.empty() ? "" : metric_scope_ + ".") + def_.name +
      (metric_suffix_.empty() ? "" : "." + metric_suffix_);
  rel_page_reads_ = reg.GetCounter(scoped + ".page_reads");
  rel_page_writes_ = reg.GetCounter(scoped + ".page_writes");
  auto add_index = [&](const std::vector<std::string>& attrs) {
    if (attrs.empty()) return;
    // Skip duplicates (primary key may also be listed as an index).
    for (const IndexState& existing : indexes_) {
      if (existing.attrs == attrs) return;
    }
    IndexState idx;
    idx.attrs = attrs;
    for (const std::string& a : attrs) {
      const int col = def_.schema.IndexOf(a);
      AUXVIEW_CHECK_MSG(col >= 0, ("index attr missing from schema: " + a).c_str());
      idx.col_idxs.push_back(col);
    }
    indexes_.push_back(std::move(idx));
  };
  add_index(def_.primary_key);
  for (const IndexDef& idx : def_.indexes) add_index(idx.attrs);
}

std::unique_ptr<Table> Table::Clone(PageCounter* counter) const {
  // The constructor rebuilds empty index states from the def; copying the
  // populated maps afterwards avoids re-inserting (and re-charging) every
  // row. The clone is a pure value copy: no undo log, no shared state.
  auto clone =
      std::make_unique<Table>(def_, counter, metric_scope_, metric_suffix_);
  clone->rows_ = rows_;
  clone->total_count_ = total_count_;
  clone->indexes_ = indexes_;
  return clone;
}

Row Table::ProjectKey(const IndexState& idx, const Row& row) const {
  Row key;
  key.reserve(idx.col_idxs.size());
  for (int col : idx.col_idxs) key.push_back(row[col]);
  return key;
}

void Table::IndexInsert(const Row& row) {
  for (IndexState& idx : indexes_) {
    idx.map[ProjectKey(idx, row)].push_back(row);
  }
}

void Table::IndexErase(const Row& row) {
  RowEq eq;
  for (IndexState& idx : indexes_) {
    auto it = idx.map.find(ProjectKey(idx, row));
    if (it == idx.map.end()) continue;
    auto& rows = it->second;
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](const Row& r) { return eq(r, row); }),
               rows.end());
    if (rows.empty()) idx.map.erase(it);
  }
}

Status Table::Apply(const Row& row, int64_t count) {
  return ApplyInternal(row, count, /*charged=*/true);
}

Status Table::ApplyInternal(const Row& row, int64_t count, bool charged) {
  if (count == 0) return Status::Ok();
  AUXVIEW_FAILPOINT("storage.table.apply");
  if (static_cast<int>(row.size()) != def_.schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   def_.name);
  }
  auto it = rows_.find(row);
  const int64_t old = it == rows_.end() ? 0 : it->second;
  const int64_t next = old + count;
  if (next < 0) {
    return Status::FailedPrecondition("bag multiplicity would go negative in " +
                                      def_.name + " for row " +
                                      RowToString(row));
  }
  // Charge I/O per the paper's update model. One index page per index
  // (read; write only when the index contents change, which they do for
  // inserts/deletes of a distinct row).
  const int64_t tuples = count > 0 ? count : -count;
  if (charged) {
    ChargeIndexRead(static_cast<int64_t>(indexes_.size()));
    if (count > 0) {
      ChargeTupleWrite(tuples);
    } else {
      ChargeTupleRead(tuples);
      ChargeTupleWrite(tuples);
    }
  }
  // The structural update below is all-or-nothing: the failpoint sits
  // before the first mutation, so a triggered fault leaves the table (rows
  // and indexes) untouched by this call.
  AUXVIEW_FAILPOINT("storage.table.index_update");
  if (old == 0 && next > 0) {
    IndexInsert(row);
    if (charged) ChargeIndexWrite(static_cast<int64_t>(indexes_.size()));
  } else if (old > 0 && next == 0) {
    IndexErase(row);
    if (charged) ChargeIndexWrite(static_cast<int64_t>(indexes_.size()));
  }
  if (next == 0) {
    rows_.erase(it);
  } else if (it == rows_.end()) {
    rows_.emplace(row, next);
  } else {
    it->second = next;
  }
  total_count_ += count;
  if (undo_log_ != nullptr) undo_log_->RecordApply(this, row, count);
  return Status::Ok();
}

Status Table::Modify(const Row& old_row, const Row& new_row) {
  return ModifyBatch({{old_row, new_row}});
}

Status Table::ModifyBatch(const std::vector<std::pair<Row, Row>>& pairs) {
  if (pairs.empty()) return Status::Ok();
  AUXVIEW_FAILPOINT("storage.table.modify_batch");
  // Paper's modify model: per index one index-page read for the batch
  // (write only when the indexed attributes change); per tuple one read
  // (old value) + one write.
  ChargeIndexRead(static_cast<int64_t>(indexes_.size()));
  RowEq eq;
  for (const IndexState& idx : indexes_) {
    for (const auto& [old_row, new_row] : pairs) {
      if (!eq(ProjectKey(idx, old_row), ProjectKey(idx, new_row))) {
        ChargeIndexWrite(1);
        break;
      }
    }
  }
  // Two phases — detach every old row at its pre-batch multiplicity, then
  // attach every new row — so the batch is order-independent. One pair's
  // new row may equal another pair's old row (an UPDATE chain such as
  // 27->28, 28->29); per-pair in-place application would merge the moved
  // copy into the pre-existing row and then move both copies, leaving the
  // table diverged from the delta the maintenance layer derived from
  // pre-state counts.
  std::vector<int64_t> counts(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    // A mid-batch fault leaves the earlier pairs detached (and recorded in
    // the undo log) and this pair untouched — the interleaving the
    // rollback sweep exercises.
    AUXVIEW_FAILPOINT("storage.table.modify_pair");
    const Row& old_row = pairs[i].first;
    auto it = rows_.find(old_row);
    if (it == rows_.end()) {
      return Status::NotFound("modify of absent row in " + def_.name + ": " +
                              RowToString(old_row));
    }
    counts[i] = it->second;
    ChargeTupleRead(counts[i]);
    ChargeTupleWrite(counts[i]);
    // Structural update without re-charging. total_count_ tracks each
    // phase (not just the balanced whole) so that a mid-batch fault leaves
    // it consistent with rows_ — the undo log restores both through
    // Apply, which adjusts the count as it re-inserts.
    IndexErase(old_row);
    rows_.erase(it);
    total_count_ -= counts[i];
    if (undo_log_ != nullptr) {
      undo_log_->RecordApply(this, old_row, -counts[i]);
    }
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Row& new_row = pairs[i].second;
    auto [new_it, inserted] = rows_.try_emplace(new_row, 0);
    new_it->second += counts[i];
    total_count_ += counts[i];
    // A pre-existing row (inserted == false) is already indexed; zero-count
    // rows never persist in rows_, so this is exhaustive.
    if (inserted) IndexInsert(new_row);
    if (undo_log_ != nullptr) {
      undo_log_->RecordApply(this, new_row, counts[i]);
    }
  }
  return Status::Ok();
}

int64_t Table::CountOf(const Row& row) const {
  auto it = rows_.find(row);
  return it == rows_.end() ? 0 : it->second;
}

const Table::IndexState* Table::FindIndex(
    const std::vector<std::string>& attrs) const {
  // Best index whose attributes are a subset of the probe attributes
  // (residual attributes are filtered after the fetch); ties prefer more
  // index attributes (more selective).
  const IndexState* best = nullptr;
  for (const IndexState& idx : indexes_) {
    if (idx.attrs.size() > attrs.size()) continue;
    bool subset = true;
    for (const std::string& a : idx.attrs) {
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        subset = false;
        break;
      }
    }
    if (!subset) continue;
    if (best == nullptr || idx.attrs.size() > best->attrs.size()) {
      best = &idx;
    }
  }
  return best;
}

bool Table::HasIndexOn(const std::vector<std::string>& attrs) const {
  return FindIndex(attrs) != nullptr;
}

Table::ResolvedProbe Table::ResolveProbe(
    const std::vector<std::string>& attrs) const {
  ResolvedProbe probe;
  probe.index = FindIndex(attrs);
  if (probe.index != nullptr) {
    const IndexState* idx = probe.index;
    // Key reordering to the index's attribute order (the index may cover
    // only a subset of the probe attributes; the rest filter after the
    // fetch).
    probe.key_positions.reserve(idx->attrs.size());
    for (const std::string& a : idx->attrs) {
      auto pos = std::find(attrs.begin(), attrs.end(), a);
      probe.key_positions.push_back(static_cast<int>(pos - attrs.begin()));
    }
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (std::find(idx->attrs.begin(), idx->attrs.end(), attrs[i]) ==
          idx->attrs.end()) {
        const int col = def_.schema.IndexOf(attrs[i]);
        AUXVIEW_CHECK_MSG(col >= 0, ("lookup attr missing: " + attrs[i]).c_str());
        probe.residual_cols.push_back(col);
        probe.residual_key_pos.push_back(static_cast<int>(i));
      }
    }
    return probe;
  }
  // No index: full scan.
  probe.scan_cols.reserve(attrs.size());
  for (const std::string& a : attrs) {
    const int col = def_.schema.IndexOf(a);
    AUXVIEW_CHECK_MSG(col >= 0, ("lookup attr missing: " + a).c_str());
    probe.scan_cols.push_back(col);
  }
  return probe;
}

std::vector<CountedRow> Table::ProbeOnce(const ResolvedProbe& probe,
                                         const Row& key, bool charged,
                                         int64_t* tuples_scanned) const {
  std::vector<CountedRow> out;
  if (probe.index != nullptr) {
    const IndexState* idx = probe.index;
    if (charged) ChargeIndexRead(1);
    Row ordered_key(idx->attrs.size());
    for (size_t i = 0; i < idx->attrs.size(); ++i) {
      ordered_key[i] = key[static_cast<size_t>(probe.key_positions[i])];
    }
    auto it = idx->map.find(ordered_key);
    if (it != idx->map.end()) {
      for (const Row& row : it->second) {
        const int64_t count = CountOf(row);
        if (charged) ChargeTupleRead(count);
        if (tuples_scanned != nullptr) *tuples_scanned += count;
        bool match = true;
        for (size_t i = 0; i < probe.residual_cols.size(); ++i) {
          if (row[static_cast<size_t>(probe.residual_cols[i])] !=
              key[static_cast<size_t>(probe.residual_key_pos[i])]) {
            match = false;
            break;
          }
        }
        if (match) out.push_back(CountedRow{row, count});
      }
    }
    return out;
  }
  for (const auto& [row, count] : rows_) {
    if (charged) ChargeTupleRead(count);
    if (tuples_scanned != nullptr) *tuples_scanned += count;
    bool match = true;
    for (size_t i = 0; i < probe.scan_cols.size(); ++i) {
      if (row[static_cast<size_t>(probe.scan_cols[i])] != key[i]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(CountedRow{row, count});
  }
  return out;
}

std::vector<CountedRow> Table::Lookup(const std::vector<std::string>& attrs,
                                      const Row& key) const {
  return ProbeOnce(ResolveProbe(attrs), key);
}

std::vector<std::vector<CountedRow>> Table::LookupBatch(
    const std::vector<std::string>& attrs,
    const std::vector<Row>& keys) const {
  std::vector<std::vector<CountedRow>> out;
  out.reserve(keys.size());
  if (keys.empty()) return out;
  const ResolvedProbe probe = ResolveProbe(attrs);
  for (const Row& key : keys) out.push_back(ProbeOnce(probe, key));
  return out;
}

std::vector<std::vector<CountedRow>> Table::LookupBatchUncharged(
    const std::vector<std::string>& attrs,
    const std::vector<Row>& keys) const {
  std::vector<std::vector<CountedRow>> out;
  out.reserve(keys.size());
  if (keys.empty()) return out;
  const ResolvedProbe probe = ResolveProbe(attrs);
  for (const Row& key : keys) {
    out.push_back(ProbeOnce(probe, key, /*charged=*/false));
  }
  return out;
}

std::vector<CountedRow> Table::ScanAll() const {
  std::vector<CountedRow> out;
  out.reserve(rows_.size());
  for (const auto& [row, count] : rows_) {
    ChargeTupleRead(count);
    out.push_back(CountedRow{row, count});
  }
  return out;
}

std::vector<CountedRow> Table::SnapshotUncharged() const {
  std::vector<CountedRow> out;
  out.reserve(rows_.size());
  for (const auto& [row, count] : rows_) {
    out.push_back(CountedRow{row, count});
  }
  return out;
}

std::string Table::Fingerprint() const {
  std::vector<std::string> lines;
  lines.reserve(rows_.size());
  for (const auto& [row, count] : rows_) {
    lines.push_back("row " + RowToString(row) + " x" + std::to_string(count));
  }
  std::sort(lines.begin(), lines.end());
  std::string out = "table " + def_.name + " total=" +
                    std::to_string(total_count_) + "\n";
  for (const std::string& line : lines) out += line + "\n";
  for (const IndexState& idx : indexes_) {
    std::vector<std::string> buckets;
    for (const auto& [key, rows] : idx.map) {
      std::vector<std::string> members;
      members.reserve(rows.size());
      for (const Row& r : rows) members.push_back(RowToString(r));
      std::sort(members.begin(), members.end());
      std::string bucket = "  " + RowToString(key) + " ->";
      for (const std::string& m : members) bucket += " " + m;
      buckets.push_back(std::move(bucket));
    }
    std::sort(buckets.begin(), buckets.end());
    std::string attrs;
    for (const std::string& a : idx.attrs) attrs += a + ",";
    out += "index (" + attrs + ")\n";
    for (const std::string& b : buckets) out += b + "\n";
  }
  return out;
}

RelationStats Table::ComputeStats() const {
  RelationStats stats;
  stats.row_count = static_cast<double>(total_count_);
  for (int c = 0; c < def_.schema.num_columns(); ++c) {
    std::unordered_map<Row, int, RowHash, RowEq> seen;
    for (const auto& [row, count] : rows_) {
      (void)count;
      seen.try_emplace(Row{row[c]}, 1);
    }
    stats.distinct[def_.schema.column(c).name] =
        static_cast<double>(seen.size());
  }
  return stats;
}

}  // namespace auxview
