#include "storage/page_counter.h"

#include <cstdio>

namespace auxview {

PageCounter::PageCounter() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  m_index_reads_ = reg.GetCounter("storage.index_reads");
  m_index_writes_ = reg.GetCounter("storage.index_writes");
  m_tuple_reads_ = reg.GetCounter("storage.tuple_reads");
  m_tuple_writes_ = reg.GetCounter("storage.tuple_writes");
  m_page_reads_ = reg.GetCounter("storage.page_reads");
  m_page_writes_ = reg.GetCounter("storage.page_writes");
}

PageCounter::PageCounter(const std::string& scope, PageCounter* parent)
    : parent_(parent) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::string base = "storage." + scope + ".";
  m_index_reads_ = reg.GetCounter(base + "index_reads");
  m_index_writes_ = reg.GetCounter(base + "index_writes");
  m_tuple_reads_ = reg.GetCounter(base + "tuple_reads");
  m_tuple_writes_ = reg.GetCounter(base + "tuple_writes");
  m_page_reads_ = reg.GetCounter(base + "page_reads");
  m_page_writes_ = reg.GetCounter(base + "page_writes");
}

void PageCounter::Reset() {
  index_reads_.store(0, std::memory_order_relaxed);
  index_writes_.store(0, std::memory_order_relaxed);
  tuple_reads_.store(0, std::memory_order_relaxed);
  tuple_writes_.store(0, std::memory_order_relaxed);
}

std::string PageCounter::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "io{total=%lld, index_r=%lld, index_w=%lld, tuple_r=%lld, "
                "tuple_w=%lld}",
                static_cast<long long>(total()),
                static_cast<long long>(index_reads()),
                static_cast<long long>(index_writes()),
                static_cast<long long>(tuple_reads()),
                static_cast<long long>(tuple_writes()));
  return buf;
}

}  // namespace auxview
