#ifndef AUXVIEW_STORAGE_TABLE_H_
#define AUXVIEW_STORAGE_TABLE_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/page_counter.h"

namespace auxview {

class UndoLog;

/// A (row, multiplicity) pair — relations have bag semantics.
struct CountedRow {
  Row row;
  int64_t count = 0;
};

/// An in-memory stored relation with bag semantics and hash indexes.
///
/// The table charges a PageCounter per the paper's I/O model: a key lookup
/// through a hash index costs one index-page read plus one relation-page read
/// per tuple instance returned; a full scan costs one relation-page read per
/// tuple instance; updates cost one index-page read per index (plus a write
/// when the indexed attributes change) and one relation-page read/write per
/// tuple touched.
class Table {
 public:
  /// `counter` must outlive the table; may not be null. A non-empty
  /// `metric_scope` labels this table's per-relation counters as
  /// `storage.rel.<scope>.<name>.*` — the per-database scoping a process
  /// hosting several databases needs (docs/OBSERVABILITY.md). A non-empty
  /// `metric_suffix` appends after the table name — `ShardedTable` gives
  /// sub-shard i the suffix `shard.<i>`, composing to
  /// `storage.rel.[<scope>.]<name>.shard.<i>.*`.
  Table(TableDef def, PageCounter* counter, const std::string& metric_scope = "",
        const std::string& metric_suffix = "");
  virtual ~Table() = default;

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// An independent deep copy — rows, multiplicities and every hash index —
  /// charged to `counter` (typically a permanently disabled one: snapshot
  /// versions serve uncharged reads). The clone carries no undo log and
  /// shares nothing with the original, so it is safe to read from other
  /// threads while the original keeps mutating.
  virtual std::unique_ptr<Table> Clone(PageCounter* counter) const;

  const TableDef& def() const { return def_; }
  const Schema& schema() const { return def_.schema; }
  const std::string& name() const { return def_.name; }

  /// Number of distinct rows.
  virtual int64_t distinct_rows() const {
    return static_cast<int64_t>(rows_.size());
  }
  /// Total multiplicity.
  virtual int64_t row_count() const { return total_count_; }
  bool empty() const { return row_count() == 0; }

  /// Adds `count` copies of `row` (count may be negative: bag subtraction;
  /// a row whose multiplicity reaches zero disappears). Multiplicities must
  /// not go negative. Charges update I/O.
  virtual Status Apply(const Row& row, int64_t count);

  /// Insert `count` copies (count > 0).
  Status Insert(const Row& row, int64_t count = 1) { return Apply(row, count); }
  /// Delete `count` copies (count > 0).
  Status Delete(const Row& row, int64_t count = 1) {
    return Apply(row, -count);
  }

  /// In-place modification of all copies of `old_row` to `new_row`.
  /// Charges the paper's modify cost (read + write per tuple, index page
  /// read per index; index write only if indexed attrs changed).
  Status Modify(const Row& old_row, const Row& new_row);

  /// Batch of in-place modifications sharing index pages: one index-page
  /// read per index for the whole batch (the paper's N4/>Dept case: ten
  /// tuples of one department modify behind a single index page), one
  /// relation-page read + write per tuple. An index-page write is charged
  /// per index whose key projection changes for any pair.
  virtual Status ModifyBatch(const std::vector<std::pair<Row, Row>>& pairs);

  /// Multiplicity of `row` (0 when absent). Does not charge I/O (the caller
  /// charges lookups through Lookup/ScanAll).
  virtual int64_t CountOf(const Row& row) const;

  /// All rows matching `key` on `attrs` (attribute names). Uses a hash index
  /// when one exists on exactly these attributes, else falls back to a full
  /// scan; charges I/O accordingly.
  virtual std::vector<CountedRow> Lookup(const std::vector<std::string>& attrs,
                                         const Row& key) const;

  /// Batched Lookup: one result vector per key, in key order. Resolves the
  /// probe plan (index choice, key reordering, residual filter) once for the
  /// whole batch and then probes per key — the delta engine's semijoin-style
  /// partner fetches land here. Charges exactly what the equivalent per-key
  /// Lookup calls would: one index-page read per key plus one relation-page
  /// read per tuple instance inspected (the paper's cost model is per
  /// logical probe, so batching saves CPU, never modeled I/O).
  virtual std::vector<std::vector<CountedRow>> LookupBatch(
      const std::vector<std::string>& attrs,
      const std::vector<Row>& keys) const;

  /// LookupBatch without any cost-model charging (neither the shared
  /// PageCounter nor this relation's storage.rel.* mirrors). The parallel
  /// delta engine uses this where the sequential code wrapped a lookup in
  /// ScopedCountingDisabled: flipping the shared enabled flag from inside a
  /// worker task would leak into concurrent tasks' charges.
  virtual std::vector<std::vector<CountedRow>> LookupBatchUncharged(
      const std::vector<std::string>& attrs,
      const std::vector<Row>& keys) const;

  /// True if a hash index exists on exactly `attrs`.
  bool HasIndexOn(const std::vector<std::string>& attrs) const;

  /// All rows (charges one page read per tuple instance).
  virtual std::vector<CountedRow> ScanAll() const;

  /// All rows without charging I/O (test oracles, materialization snapshots).
  virtual std::vector<CountedRow> SnapshotUncharged() const;

  /// Recomputed exact statistics (row count, per-column distinct counts).
  virtual RelationStats ComputeStats() const;

  /// Deterministic dump of the full physical state — rows with
  /// multiplicities plus every hash index's buckets — for byte-identity
  /// checks in the fault-injection harness.
  virtual std::string Fingerprint() const;

  /// Attaches an undo log: every successful mutation records its net effect
  /// so an aborting transaction can be rolled back exactly. nullptr
  /// detaches. Normally managed by ScopedUndo.
  virtual void set_undo_log(UndoLog* log) { undo_log_ = log; }

  PageCounter* counter() const { return counter_; }

 private:
  /// The shard router replicates this class's charge model at the router
  /// level (and composes fingerprints/stats from sub-tables), which needs
  /// access to sub-table internals across objects — friendship, not
  /// protected access (docs/SHARDING.md, "Charge identity").
  friend class ShardedTable;

  struct IndexState {
    std::vector<std::string> attrs;
    std::vector<int> col_idxs;
    // Key projection -> distinct full rows with that key.
    std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> map;
  };

  // Charge helpers: the shared PageCounter plus this relation's own
  // storage.rel.<name>.page_{reads,writes} metrics. Gated on the counter's
  // enabled flag so per-relation metrics match the charged cost model
  // (materialization and test oracles stay invisible).
  void ChargeIndexRead(int64_t n) const {
    counter_->AddIndexRead(n);
    if (counter_->enabled()) rel_page_reads_->Add(n);
  }
  void ChargeIndexWrite(int64_t n) const {
    counter_->AddIndexWrite(n);
    if (counter_->enabled()) rel_page_writes_->Add(n);
  }
  void ChargeTupleRead(int64_t n) const {
    counter_->AddTupleRead(n);
    if (counter_->enabled()) rel_page_reads_->Add(n);
  }
  void ChargeTupleWrite(int64_t n) const {
    counter_->AddTupleWrite(n);
    if (counter_->enabled()) rel_page_writes_->Add(n);
  }

  Row ProjectKey(const IndexState& idx, const Row& row) const;
  void IndexInsert(const Row& row);
  void IndexErase(const Row& row);
  const IndexState* FindIndex(const std::vector<std::string>& attrs) const;

  /// A probe plan resolved once per (attrs) set and reused across a batch of
  /// keys: the chosen index (nullptr = full scan), how to reorder a probe
  /// key into index order, and which residual columns to filter after the
  /// fetch.
  struct ResolvedProbe {
    const IndexState* index = nullptr;
    /// index attr i takes probe-key position key_positions[i].
    std::vector<int> key_positions;
    /// Post-fetch filter: row[residual_cols[i]] == key[residual_key_pos[i]].
    std::vector<int> residual_cols;
    std::vector<int> residual_key_pos;
    /// Full-scan fallback: schema column per probe attr.
    std::vector<int> scan_cols;
  };
  ResolvedProbe ResolveProbe(const std::vector<std::string>& attrs) const;
  /// One probe through a resolved plan; `charged` applies the Lookup cost
  /// model (false skips both the PageCounter and the storage.rel.* mirrors,
  /// exactly like probing under ScopedCountingDisabled). When
  /// `tuples_scanned` is non-null it accumulates the tuple instances this
  /// probe inspected (bucket contents for an index probe, the whole table
  /// for a scan) — what a charged probe would have billed as tuple reads;
  /// the shard router charges fanned-out probes from it.
  std::vector<CountedRow> ProbeOnce(const ResolvedProbe& probe, const Row& key,
                                    bool charged = true,
                                    int64_t* tuples_scanned = nullptr) const;

  /// Apply with charging optional: the shard router's cross-shard
  /// ModifyBatch detaches/attaches rows through sub-tables uncharged and
  /// bills the batch cost itself, exactly mirroring the unsharded model.
  /// Undo recording always happens, so rollback is charge-independent.
  Status ApplyInternal(const Row& row, int64_t count, bool charged);

  TableDef def_;
  std::string metric_scope_;
  std::string metric_suffix_;
  PageCounter* counter_;
  UndoLog* undo_log_ = nullptr;
  obs::Counter* rel_page_reads_;   // storage.rel.<name>.page_reads
  obs::Counter* rel_page_writes_;  // storage.rel.<name>.page_writes
  std::unordered_map<Row, int64_t, RowHash, RowEq> rows_;
  int64_t total_count_ = 0;
  std::vector<IndexState> indexes_;
};

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_TABLE_H_
