#ifndef AUXVIEW_STORAGE_PAGE_COUNTER_H_
#define AUXVIEW_STORAGE_PAGE_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace auxview {

/// Page-I/O accounting that mirrors the paper's cost model (Section 3.6):
/// hash indexes with no overflow pages, no clustering, one tuple per relation
/// page. Every index probe costs one index-page read; every tuple touched
/// costs one relation-page read and/or write.
///
/// The storage engine charges this counter on real operations so that
/// model-estimated costs can be validated against counted I/Os
/// (bench_v1_model_validation).
///
/// Every charge is mirrored into the process-wide metrics registry
/// (storage.page_reads / storage.page_writes and the four
/// storage.{index,tuple}_{reads,writes} counters), so bench JSON reports and
/// the shell's .metrics command see page I/O without plumbing a counter
/// reference around. The local fields keep the scoped per-database /
/// per-transaction accounting the cost-model validation relies on.
class PageCounter {
 public:
  PageCounter();

  /// A scoped child counter: charges land in this counter's own atomics and
  /// in `storage.<scope>.*` registry mirrors, then forward to `parent` —
  /// which adds its atomics and the unscoped `storage.*` mirrors exactly
  /// once. A Database hosting N shards gives every shard a child with scope
  /// `shard.<i>` (label-prefixed when the database is labeled) so per-shard
  /// I/O stays observable without double-counting the global totals
  /// (docs/SHARDING.md). `parent` must outlive this counter.
  PageCounter(const std::string& scope, PageCounter* parent);

  void Reset();

  /// Suspends charging (bulk loads, view materialization, test oracles).
  /// Scope-based toggling is inherently sequential: parallel propagation
  /// paths that must skip charging use the *Uncharged storage entry points
  /// instead of flipping this shared flag.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// A child counter is enabled only while its parent is: disabling the
  /// database counter (ScopedCountingDisabled) silences every shard.
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed) &&
           (parent_ == nullptr || parent_->enabled());
  }

  void AddIndexRead(int64_t n = 1) {
    if (!enabled()) return;
    index_reads_.fetch_add(n, std::memory_order_relaxed);
    m_index_reads_->Add(n);
    m_page_reads_->Add(n);
    if (parent_ != nullptr) parent_->AddIndexRead(n);
  }
  void AddIndexWrite(int64_t n = 1) {
    if (!enabled()) return;
    index_writes_.fetch_add(n, std::memory_order_relaxed);
    m_index_writes_->Add(n);
    m_page_writes_->Add(n);
    if (parent_ != nullptr) parent_->AddIndexWrite(n);
  }
  void AddTupleRead(int64_t n = 1) {
    if (!enabled()) return;
    tuple_reads_.fetch_add(n, std::memory_order_relaxed);
    m_tuple_reads_->Add(n);
    m_page_reads_->Add(n);
    if (parent_ != nullptr) parent_->AddTupleRead(n);
  }
  void AddTupleWrite(int64_t n = 1) {
    if (!enabled()) return;
    tuple_writes_.fetch_add(n, std::memory_order_relaxed);
    m_tuple_writes_->Add(n);
    m_page_writes_->Add(n);
    if (parent_ != nullptr) parent_->AddTupleWrite(n);
  }

  int64_t index_reads() const {
    return index_reads_.load(std::memory_order_relaxed);
  }
  int64_t index_writes() const {
    return index_writes_.load(std::memory_order_relaxed);
  }
  int64_t tuple_reads() const {
    return tuple_reads_.load(std::memory_order_relaxed);
  }
  int64_t tuple_writes() const {
    return tuple_writes_.load(std::memory_order_relaxed);
  }
  int64_t total() const {
    return index_reads() + index_writes() + tuple_reads() + tuple_writes();
  }

  std::string ToString() const;

 private:
  /// Relaxed atomics: charges come from every propagation worker; totals are
  /// order-independent sums, so bit-identity across thread counts holds.
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> index_reads_{0};
  std::atomic<int64_t> index_writes_{0};
  std::atomic<int64_t> tuple_reads_{0};
  std::atomic<int64_t> tuple_writes_{0};
  /// Non-null for scoped (per-shard) children; forwarded to after the local
  /// charge so the parent's atomics and global mirrors count each I/O once.
  PageCounter* parent_ = nullptr;
  // Global mirrors (never null; resolved once in the constructor).
  obs::Counter* m_index_reads_;
  obs::Counter* m_index_writes_;
  obs::Counter* m_tuple_reads_;
  obs::Counter* m_tuple_writes_;
  obs::Counter* m_page_reads_;
  obs::Counter* m_page_writes_;
};

/// RAII guard that disables a counter for a scope.
class ScopedCountingDisabled {
 public:
  explicit ScopedCountingDisabled(PageCounter* counter)
      : counter_(counter), was_enabled_(counter->enabled()) {
    counter_->set_enabled(false);
  }
  ~ScopedCountingDisabled() { counter_->set_enabled(was_enabled_); }

  ScopedCountingDisabled(const ScopedCountingDisabled&) = delete;
  ScopedCountingDisabled& operator=(const ScopedCountingDisabled&) = delete;

 private:
  PageCounter* counter_;
  bool was_enabled_;
};

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_PAGE_COUNTER_H_
