#include "storage/undo_log.h"

#include "common/failpoint.h"
#include "storage/database.h"
#include "storage/table.h"

namespace auxview {

namespace {

obs::Gauge* UndoBytesGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("storage.undo_log_bytes");
  return gauge;
}

/// Per-transaction peak log size, observed once per consumed log (Commit,
/// RollBack or destruction) — the distribution answers "how much undo state
/// does a transaction hold at worst", which the live gauge cannot.
obs::Histogram* UndoHighwaterHist() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global().GetHistogram(
      "storage.undo_log_highwater_bytes",
      {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304});
  return hist;
}

int64_t RowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(row.size() * sizeof(Value));
  for (const Value& v : row) {
    if (v.type() == ValueType::kString) {
      bytes += static_cast<int64_t>(v.str().size());
    }
  }
  return bytes;
}

}  // namespace

UndoLog::UndoLog() = default;

UndoLog::~UndoLog() {
  // A destroyed log zeroes its share of the gauge even if the owner forgot
  // to Commit (the entries die with it either way).
  if (bytes_ != 0) {
    UndoBytesGauge()->Add(-bytes_);
  }
  ObserveHighwater();
}

void UndoLog::RecordApply(Table* table, const Row& row, int64_t count) {
  if (rolling_back_ || count == 0) return;
  entries_.push_back(Entry{table, row, count});
  const int64_t delta = static_cast<int64_t>(sizeof(Entry)) + RowBytes(row);
  bytes_ += delta;
  if (bytes_ > highwater_) highwater_ = bytes_;
  UndoBytesGauge()->Add(delta);
}

void UndoLog::ObserveHighwater() {
  // Only logs that recorded something contribute: a read-only transaction
  // holding an (empty) log is not an interesting zero observation.
  if (highwater_ > 0) {
    UndoHighwaterHist()->Observe(static_cast<double>(highwater_));
    highwater_ = 0;
  }
}

void UndoLog::SnapshotCatalog(Catalog* catalog) {
  if (catalog == nullptr || catalog_ != nullptr) return;
  catalog_ = catalog;
  stats_snapshot_ = catalog->SnapshotStats();
}

Status UndoLog::RollBack() {
  // Rollback must be unconditional: no fault injection, no I/O charging
  // (the paper's counters account the forward work; an abort does not pay
  // twice), no re-recording into this same log.
  FailpointSuspension no_faults;
  rolling_back_ = true;
  Status first_error;
  for (size_t i = entries_.size(); i-- > 0;) {
    const Entry& e = entries_[i];
    ScopedCountingDisabled guard(e.table->counter());
    Status st = e.table->Apply(e.row, -e.count);
    if (!st.ok() && first_error.ok()) {
      first_error = Status::Internal("undo log replay failed on " +
                                     e.table->name() + ": " + st.ToString());
    }
  }
  rolling_back_ = false;
  // Group-level rollback of optimizer state: stat refreshes made inside the
  // transaction must not survive its abort (a cheap epoch check keeps the
  // common no-refresh abort free of map copies).
  if (stats_snapshot_.has_value() &&
      catalog_->stats_epoch() != stats_snapshot_->epoch) {
    catalog_->RestoreStats(*stats_snapshot_);
  }
  Commit();  // the entries are consumed either way
  return first_error;
}

void UndoLog::Commit() {
  entries_.clear();
  catalog_ = nullptr;
  stats_snapshot_.reset();
  if (bytes_ != 0) {
    UndoBytesGauge()->Add(-bytes_);
    bytes_ = 0;
  }
  ObserveHighwater();
}

ScopedUndo::ScopedUndo(Database* db, UndoLog* log, Catalog* catalog)
    : db_(db) {
  for (const std::string& name : db_->TableNames()) {
    db_->FindTable(name)->set_undo_log(log);
  }
  if (log != nullptr) log->SnapshotCatalog(catalog);
}

ScopedUndo::~ScopedUndo() {
  for (const std::string& name : db_->TableNames()) {
    db_->FindTable(name)->set_undo_log(nullptr);
  }
}

}  // namespace auxview
