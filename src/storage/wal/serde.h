#ifndef AUXVIEW_STORAGE_WAL_SERDE_H_
#define AUXVIEW_STORAGE_WAL_SERDE_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"
#include "maintain/concrete.h"

namespace auxview {
namespace wal {

/// Little-endian binary serialization for WAL record payloads and checkpoint
/// images. Fixed-width integers (no varints: the log stores logical deltas,
/// so compactness is not worth platform-dependent decode paths) and
/// length-prefixed strings.

/// Appends primitive values to a byte buffer.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern; bitwise round-trip (recovery must be
  /// bit-identical, so no decimal detour).
  void F64(double v);
  /// u32 length + bytes.
  void Str(const std::string& s);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads primitives back with a sticky failure flag: every accessor returns
/// a value (zero/default once failed) and the caller checks ok() once at the
/// end — decode code stays linear instead of a Status per field.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  bool Need(size_t n);

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

void EncodeValue(ByteWriter* w, const Value& v);
Value DecodeValue(ByteReader* r);

void EncodeRow(ByteWriter* w, const Row& row);
Row DecodeRow(ByteReader* r);

/// A concrete transaction's full delta content — the WAL txn-record payload.
void EncodeTxn(ByteWriter* w, const ConcreteTxn& txn);
StatusOr<ConcreteTxn> DecodeTxn(ByteReader* r);

/// Table definition (name, schema, primary key, indexes) for checkpoints.
/// TableDef::stats is included so a recovered Table carries the same def the
/// original was created with.
void EncodeTableDef(ByteWriter* w, const TableDef& def);
StatusOr<TableDef> DecodeTableDef(ByteReader* r);

void EncodeStats(ByteWriter* w, const RelationStats& stats);
RelationStats DecodeStats(ByteReader* r);

}  // namespace wal
}  // namespace auxview

#endif  // AUXVIEW_STORAGE_WAL_SERDE_H_
