#include "storage/wal/crc32c.h"

#include <array>

namespace auxview {

namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial, built
/// once at first use (constant-initialized tables would bloat the binary
/// diff for no runtime win).
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const auto& table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace auxview
