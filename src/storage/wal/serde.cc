#include "storage/wal/serde.h"

#include <cstring>

namespace auxview {
namespace wal {

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

bool ByteReader::Need(size_t n) {
  if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(*p_++);
}

uint32_t ByteReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(*p_++)) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(*p_++)) << (8 * i);
  }
  return v;
}

double ByteReader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::Str() {
  const uint32_t n = U32();
  if (!Need(n)) return {};
  std::string s(p_, n);
  p_ += n;
  return s;
}

namespace {

/// Value type tags on the wire (stable: never renumber).
enum : uint8_t {
  kTagNull = 0,
  kTagInt64 = 1,
  kTagDouble = 2,
  kTagString = 3,
  kTagBool = 4,
};

}  // namespace

void EncodeValue(ByteWriter* w, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      w->U8(kTagNull);
      return;
    case ValueType::kInt64:
      w->U8(kTagInt64);
      w->I64(v.int64());
      return;
    case ValueType::kDouble:
      w->U8(kTagDouble);
      w->F64(v.dbl());
      return;
    case ValueType::kString:
      w->U8(kTagString);
      w->Str(v.str());
      return;
    case ValueType::kBool:
      w->U8(kTagBool);
      w->U8(v.boolean() ? 1 : 0);
      return;
  }
}

Value DecodeValue(ByteReader* r) {
  switch (r->U8()) {
    case kTagNull:
      return Value::Null();
    case kTagInt64:
      return Value::Int64(r->I64());
    case kTagDouble:
      return Value::Double(r->F64());
    case kTagString:
      return Value::String(r->Str());
    case kTagBool:
      return Value::Bool(r->U8() != 0);
    default:
      // Unknown tag: poison the reader so the caller's ok() check fails.
      r->U8();
      while (r->ok()) r->U64();
      return Value::Null();
  }
}

void EncodeRow(ByteWriter* w, const Row& row) {
  w->U32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(w, v);
}

Row DecodeRow(ByteReader* r) {
  const uint32_t n = r->U32();
  Row row;
  for (uint32_t i = 0; i < n && r->ok(); ++i) row.push_back(DecodeValue(r));
  return row;
}

void EncodeTxn(ByteWriter* w, const ConcreteTxn& txn) {
  w->Str(txn.type_name);
  w->U32(static_cast<uint32_t>(txn.updates.size()));
  for (const TableUpdate& u : txn.updates) {
    w->Str(u.relation);
    w->U32(static_cast<uint32_t>(u.inserts.size()));
    for (const auto& [row, count] : u.inserts) {
      EncodeRow(w, row);
      w->I64(count);
    }
    w->U32(static_cast<uint32_t>(u.deletes.size()));
    for (const auto& [row, count] : u.deletes) {
      EncodeRow(w, row);
      w->I64(count);
    }
    w->U32(static_cast<uint32_t>(u.modifies.size()));
    for (const auto& [old_row, new_row] : u.modifies) {
      EncodeRow(w, old_row);
      EncodeRow(w, new_row);
    }
  }
}

StatusOr<ConcreteTxn> DecodeTxn(ByteReader* r) {
  ConcreteTxn txn;
  txn.type_name = r->Str();
  const uint32_t n_updates = r->U32();
  for (uint32_t i = 0; i < n_updates && r->ok(); ++i) {
    TableUpdate u;
    u.relation = r->Str();
    const uint32_t n_ins = r->U32();
    for (uint32_t k = 0; k < n_ins && r->ok(); ++k) {
      Row row = DecodeRow(r);
      u.inserts.emplace_back(std::move(row), r->I64());
    }
    const uint32_t n_del = r->U32();
    for (uint32_t k = 0; k < n_del && r->ok(); ++k) {
      Row row = DecodeRow(r);
      u.deletes.emplace_back(std::move(row), r->I64());
    }
    const uint32_t n_mod = r->U32();
    for (uint32_t k = 0; k < n_mod && r->ok(); ++k) {
      Row old_row = DecodeRow(r);
      Row new_row = DecodeRow(r);
      u.modifies.emplace_back(std::move(old_row), std::move(new_row));
    }
    txn.updates.push_back(std::move(u));
  }
  if (!r->ok()) return Status::Internal("wal: malformed txn payload");
  return txn;
}

void EncodeStats(ByteWriter* w, const RelationStats& stats) {
  w->F64(stats.row_count);
  w->U32(static_cast<uint32_t>(stats.distinct.size()));
  for (const auto& [attr, d] : stats.distinct) {
    w->Str(attr);
    w->F64(d);
  }
}

RelationStats DecodeStats(ByteReader* r) {
  RelationStats stats;
  stats.row_count = r->F64();
  const uint32_t n = r->U32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    std::string attr = r->Str();
    stats.distinct[attr] = r->F64();
  }
  return stats;
}

void EncodeTableDef(ByteWriter* w, const TableDef& def) {
  w->Str(def.name);
  w->U32(static_cast<uint32_t>(def.schema.num_columns()));
  for (const Column& col : def.schema.columns()) {
    w->Str(col.name);
    w->U8(static_cast<uint8_t>(col.type));
  }
  w->U32(static_cast<uint32_t>(def.primary_key.size()));
  for (const std::string& attr : def.primary_key) w->Str(attr);
  w->U32(static_cast<uint32_t>(def.indexes.size()));
  for (const IndexDef& idx : def.indexes) {
    w->U32(static_cast<uint32_t>(idx.attrs.size()));
    for (const std::string& attr : idx.attrs) w->Str(attr);
  }
  w->U32(static_cast<uint32_t>(def.shard_key.size()));
  for (const std::string& attr : def.shard_key) w->Str(attr);
  EncodeStats(w, def.stats);
}

StatusOr<TableDef> DecodeTableDef(ByteReader* r) {
  TableDef def;
  def.name = r->Str();
  const uint32_t n_cols = r->U32();
  std::vector<Column> cols;
  for (uint32_t i = 0; i < n_cols && r->ok(); ++i) {
    Column col;
    col.name = r->Str();
    col.type = static_cast<ValueType>(r->U8());
    cols.push_back(std::move(col));
  }
  if (!r->ok()) return Status::Internal("wal: malformed table def");
  AUXVIEW_ASSIGN_OR_RETURN(def.schema, Schema::Create(std::move(cols)));
  const uint32_t n_pk = r->U32();
  for (uint32_t i = 0; i < n_pk && r->ok(); ++i) {
    def.primary_key.push_back(r->Str());
  }
  const uint32_t n_idx = r->U32();
  for (uint32_t i = 0; i < n_idx && r->ok(); ++i) {
    IndexDef idx;
    const uint32_t n_attrs = r->U32();
    for (uint32_t k = 0; k < n_attrs && r->ok(); ++k) {
      idx.attrs.push_back(r->Str());
    }
    def.indexes.push_back(std::move(idx));
  }
  const uint32_t n_shard = r->U32();
  for (uint32_t i = 0; i < n_shard && r->ok(); ++i) {
    def.shard_key.push_back(r->Str());
  }
  def.stats = DecodeStats(r);
  if (!r->ok()) return Status::Internal("wal: malformed table def");
  return def;
}

}  // namespace wal
}  // namespace auxview
