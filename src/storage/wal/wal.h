#ifndef AUXVIEW_STORAGE_WAL_WAL_H_
#define AUXVIEW_STORAGE_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"
#include "maintain/concrete.h"

namespace auxview {

class Database;

/// When the write-ahead log calls fsync.
enum class WalFsync {
  /// After every appended record (default): a committed transaction is
  /// durable the moment ApplyTransaction returns.
  kCommit,
  /// Only at checkpoints: appends reach the OS page cache immediately but a
  /// crash may lose the post-checkpoint suffix. Trades durability of the
  /// tail for commit latency.
  kCheckpoint,
  /// Never (tests and benchmarks on throwaway directories).
  kNever,
};

/// Durability knobs for a Database (see docs/DURABILITY.md).
struct DatabaseOptions {
  /// Directory holding the log segments and checkpoint; empty = no
  /// durability (the pre-existing in-memory behavior).
  std::string wal_dir;
  WalFsync wal_fsync = WalFsync::kCommit;
  /// Auto-checkpoint after this many appended transactions (0 = only
  /// explicit checkpoints and the one Session::Prepare takes).
  int64_t wal_checkpoint_every = 0;
};

/// One base table frozen into a checkpoint: its definition, the catalog's
/// statistics for it (so a recovered optimizer sees the same inputs and
/// re-derives the same plan), and every row with its multiplicity.
struct TableImage {
  TableDef def;
  bool has_catalog_stats = false;
  RelationStats catalog_stats;
  std::vector<std::pair<Row, int64_t>> rows;
};

/// A consistent snapshot of every base relation plus the catalog epoch,
/// covering all log records with lsn <= last_lsn.
struct CheckpointImage {
  uint64_t last_lsn = 0;
  uint64_t stats_epoch = 0;
  std::vector<TableImage> tables;
};

/// One surviving committed transaction staged for replay.
struct WalRecord {
  uint64_t lsn = 0;
  ConcreteTxn txn;
};

/// Everything a crashed process left durable: the latest checkpoint (if
/// any) and the committed transactions after it, in LSN order. Transactions
/// cancelled by an abort record are already filtered out.
struct WalRecovery {
  bool has_checkpoint = false;
  CheckpointImage checkpoint;
  std::vector<WalRecord> txns;
  /// Highest LSN recovered (checkpoint coverage or last surviving record).
  uint64_t last_lsn = 0;
  /// Bytes of torn final record discarded during the opening scan.
  int64_t truncated_tail_bytes = 0;

  bool empty() const { return !has_checkpoint && txns.empty(); }
};

/// Append-only durable delta log with checksummed, LSN-stamped records.
///
/// Commit ordering (the write-ahead rule): ViewManager/Session serialize a
/// transaction's base-table deltas and append them — fsynced per
/// `WalFsync` — *before* the in-memory attach phase. A mid-commit failure
/// rolls memory back and appends a compensating abort record, so recovery
/// replays exactly the committed transactions. On startup the opening scan
/// validates every frame: a torn or short final record is truncated with a
/// warning (counted in `wal.truncated_tail`); a CRC mismatch or LSN gap in
/// the middle of the log fails with an error anchored to the offending LSN.
///
/// The log is segmented (`wal-<first-lsn>.log`); WriteCheckpoint atomically
/// publishes a base-table snapshot (`checkpoint.tmp` + rename) and then
/// deletes the segment prefix it covers. Not thread-safe, matching the rest
/// of the storage layer.
class WriteAheadLog {
 public:
  /// Opens (creating the directory if needed) and scans the log. Fails on
  /// mid-log corruption; truncates a torn tail. If the scan finds durable
  /// state, appends are refused until the caller consumes it via
  /// Database::Recover / TakeRecovery.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const DatabaseOptions& options);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a committed transaction's deltas; returns the assigned LSN.
  /// Failure (injected torn write, failed fsync) leaves the durable tail
  /// either clean or self-healing-torn; the transaction must then abort.
  StatusOr<uint64_t> AppendTxn(const ConcreteTxn& txn);

  /// Appends a compensation record: the transaction logged as `aborted_lsn`
  /// was rolled back and must not be replayed.
  Status AppendAbort(uint64_t aborted_lsn);

  /// True while the opening scan's result has not been consumed; appends
  /// and checkpoints are refused in this state.
  bool recovery_pending() const { return recovery_pending_; }

  /// Hands over the opening scan's result (checkpoint + staged txns) and
  /// unblocks appends. Callers normally go through Database::Recover.
  WalRecovery TakeRecovery();

  /// Atomically publishes `image` (stamped with the current last LSN) and
  /// truncates the covered log prefix. See docs/DURABILITY.md for the
  /// crash-safe protocol.
  Status WriteCheckpoint(CheckpointImage image);

  /// True while a WalReplayGuard is active: recovery replays transactions
  /// through the normal commit path, which must not re-append them.
  bool replaying() const { return replaying_ > 0; }

  /// LSN of the last appended (or recovered) record; 0 when empty.
  uint64_t last_lsn() const { return next_lsn_ - 1; }

  /// True when `wal_checkpoint_every` transactions accumulated since the
  /// last checkpoint.
  bool ShouldAutoCheckpoint() const {
    return options_.wal_checkpoint_every > 0 &&
           appends_since_checkpoint_ >= options_.wal_checkpoint_every;
  }

  const DatabaseOptions& options() const { return options_; }
  const std::string& dir() const { return options_.wal_dir; }

 private:
  friend class WalReplayGuard;

  explicit WriteAheadLog(DatabaseOptions options);

  /// Reads the checkpoint and every segment, validating frames and the LSN
  /// chain; truncates a torn tail; stages surviving records.
  Status ScanOnOpen();
  Status LoadCheckpointFile(const std::string& path);
  Status ScanSegment(const std::string& path, bool last_segment,
                     uint64_t* prev_lsn,
                     std::vector<std::pair<uint64_t, ConcreteTxn>>* staged);

  Status CheckWritable() const;
  /// Truncates a half-written frame left by an injected torn append, so the
  /// next record starts at a clean boundary.
  Status HealTear();
  StatusOr<uint64_t> AppendRecord(uint8_t type, const std::string& payload,
                                  bool inject_faults);
  Status WriteAt(int64_t offset, const char* data, size_t n);
  Status Fsync();
  Status FsyncDir();
  Status OpenSegment(const std::string& path, bool truncate);
  std::string SegmentPath(uint64_t first_lsn) const;

  DatabaseOptions options_;
  int fd_ = -1;
  std::string segment_path_;
  int64_t offset_ = 0;
  uint64_t next_lsn_ = 1;
  /// Offset of a torn record awaiting truncation; -1 = clean tail.
  int64_t pending_tear_offset_ = -1;
  int64_t appends_since_checkpoint_ = 0;
  int replaying_ = 0;
  bool recovery_pending_ = false;
  WalRecovery recovery_;
};

/// RAII guard marking a recovery replay: while active, the commit path
/// skips re-appending transactions that are already in the log. Null-safe.
class WalReplayGuard {
 public:
  explicit WalReplayGuard(WriteAheadLog* wal) : wal_(wal) {
    if (wal_ != nullptr) ++wal_->replaying_;
  }
  ~WalReplayGuard() {
    if (wal_ != nullptr) --wal_->replaying_;
  }

  WalReplayGuard(const WalReplayGuard&) = delete;
  WalReplayGuard& operator=(const WalReplayGuard&) = delete;

 private:
  WriteAheadLog* wal_;
};

/// Freezes every base relation of `db` — materialized-view tables (the
/// "__mv_" prefix) are excluded and re-derived through the DeltaEngine at
/// recovery — plus the catalog's statistics into a checkpoint image. The
/// image's last_lsn is stamped by WriteCheckpoint.
CheckpointImage BuildCheckpointImage(const Database& db,
                                     const Catalog* catalog);

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_WAL_WAL_H_
