#ifndef AUXVIEW_STORAGE_WAL_CRC32C_H_
#define AUXVIEW_STORAGE_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace auxview {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum the WAL frames every record and checkpoint with. Table-driven
/// software implementation: portable, deterministic across platforms, and
/// fast enough for the record sizes this engine produces (the log serializes
/// logical deltas, not pages).
///
/// `Extend` continues a running CRC so a frame can be checksummed in pieces;
/// `Crc32c` is the one-shot convenience over a whole buffer.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_WAL_CRC32C_H_
