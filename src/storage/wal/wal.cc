#include "storage/wal/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "storage/wal/crc32c.h"
#include "storage/wal/serde.h"

namespace auxview {

namespace {

// Record frame: magic u32 | type u8 | lsn u64 | payload_len u32 | crc u32 |
// payload. The CRC covers type + lsn + payload_len + payload, so a frame
// whose header or body was damaged in place fails the check even when the
// magic survives.
constexpr uint32_t kRecordMagic = 0x314C5741u;  // "AWL1" little-endian
constexpr size_t kHeaderSize = 4 + 1 + 8 + 4 + 4;

constexpr uint8_t kTypeTxn = 1;
constexpr uint8_t kTypeAbort = 2;

constexpr uint32_t kCheckpointMagic = 0x314B4341u;  // "ACK1" little-endian
// v2: TableDef payloads carry the hash-sharding key.
constexpr uint32_t kCheckpointVersion = 2;

constexpr char kCheckpointName[] = "checkpoint";
constexpr char kCheckpointTmpName[] = "checkpoint.tmp";

obs::Counter* WalCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string EncodeFrame(uint8_t type, uint64_t lsn,
                        const std::string& payload) {
  wal::ByteWriter w;
  w.U32(kRecordMagic);
  w.U8(type);
  w.U64(lsn);
  w.U32(static_cast<uint32_t>(payload.size()));
  const uint32_t crc = ExtendCrc32c(
      Crc32c(w.buffer().data() + 4, w.buffer().size() - 4), payload.data(),
      payload.size());
  w.U32(crc);
  std::string frame = w.Take();
  frame.append(payload);
  return frame;
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal(Errno("wal: open " + path));
  std::string buf;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal(Errno("wal: read " + path));
    }
    if (n == 0) break;
    buf.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return buf;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void EncodeCheckpointImage(wal::ByteWriter* w, const CheckpointImage& image) {
  w->U32(kCheckpointMagic);
  w->U32(kCheckpointVersion);
  w->U64(image.last_lsn);
  w->U64(image.stats_epoch);
  w->U32(static_cast<uint32_t>(image.tables.size()));
  for (const TableImage& t : image.tables) {
    wal::EncodeTableDef(w, t.def);
    w->U8(t.has_catalog_stats ? 1 : 0);
    if (t.has_catalog_stats) wal::EncodeStats(w, t.catalog_stats);
    w->U64(t.rows.size());
    for (const auto& [row, count] : t.rows) {
      wal::EncodeRow(w, row);
      w->I64(count);
    }
  }
}

StatusOr<CheckpointImage> DecodeCheckpointImage(const std::string& buf) {
  if (buf.size() < 12) {
    return Status::Internal("wal: checkpoint file too short");
  }
  // Trailing u32 CRC over everything before it.
  wal::ByteReader tail(buf.data() + buf.size() - 4, 4);
  const uint32_t stored_crc = tail.U32();
  if (Crc32c(buf.data(), buf.size() - 4) != stored_crc) {
    return Status::Internal("wal: checkpoint file failed CRC check");
  }
  wal::ByteReader r(buf.data(), buf.size() - 4);
  if (r.U32() != kCheckpointMagic) {
    return Status::Internal("wal: checkpoint file has bad magic");
  }
  const uint32_t version = r.U32();
  if (version != kCheckpointVersion) {
    return Status::Internal("wal: unsupported checkpoint version " +
                            std::to_string(version));
  }
  CheckpointImage image;
  image.last_lsn = r.U64();
  image.stats_epoch = r.U64();
  const uint32_t n_tables = r.U32();
  for (uint32_t i = 0; i < n_tables && r.ok(); ++i) {
    TableImage t;
    AUXVIEW_ASSIGN_OR_RETURN(t.def, wal::DecodeTableDef(&r));
    t.has_catalog_stats = r.U8() != 0;
    if (t.has_catalog_stats) t.catalog_stats = wal::DecodeStats(&r);
    const uint64_t n_rows = r.U64();
    for (uint64_t k = 0; k < n_rows && r.ok(); ++k) {
      Row row = wal::DecodeRow(&r);
      t.rows.emplace_back(std::move(row), r.I64());
    }
    image.tables.push_back(std::move(t));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::Internal("wal: malformed checkpoint image");
  }
  return image;
}

}  // namespace

WriteAheadLog::WriteAheadLog(DatabaseOptions options)
    : options_(std::move(options)) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

std::string WriteAheadLog::SegmentPath(uint64_t first_lsn) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(first_lsn));
  return options_.wal_dir + "/" + name;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const DatabaseOptions& options) {
  if (options.wal_dir.empty()) {
    return Status::InvalidArgument("wal: wal_dir must be non-empty");
  }
  if (::mkdir(options.wal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(Errno("wal: mkdir " + options.wal_dir));
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(options));
  AUXVIEW_RETURN_IF_ERROR(wal->ScanOnOpen());
  return wal;
}

Status WriteAheadLog::ScanOnOpen() {
  // A leftover checkpoint.tmp means a checkpoint crashed before its rename;
  // the published checkpoint (if any) is still the authoritative one.
  ::unlink((options_.wal_dir + "/" + kCheckpointTmpName).c_str());

  const std::string ckpt_path = options_.wal_dir + "/" + kCheckpointName;
  if (FileExists(ckpt_path)) {
    AUXVIEW_RETURN_IF_ERROR(LoadCheckpointFile(ckpt_path));
    next_lsn_ = recovery_.checkpoint.last_lsn + 1;
  }

  // Collect segments ordered by their first LSN.
  std::vector<std::pair<uint64_t, std::string>> segments;
  DIR* dir = ::opendir(options_.wal_dir.c_str());
  if (dir == nullptr) {
    return Status::Internal(Errno("wal: opendir " + options_.wal_dir));
  }
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.size() != 24 || name.rfind("wal-", 0) != 0 ||
        name.substr(20) != ".log") {
      continue;
    }
    char* end = nullptr;
    const uint64_t first = std::strtoull(name.c_str() + 4, &end, 16);
    if (end != name.c_str() + 20) continue;
    segments.emplace_back(first, options_.wal_dir + "/" + name);
  }
  ::closedir(dir);
  std::sort(segments.begin(), segments.end());

  uint64_t prev_lsn = 0;
  std::vector<std::pair<uint64_t, ConcreteTxn>> staged;
  for (size_t i = 0; i < segments.size(); ++i) {
    AUXVIEW_RETURN_IF_ERROR(ScanSegment(segments[i].second,
                                        i + 1 == segments.size(), &prev_lsn,
                                        &staged));
  }
  if (prev_lsn != 0) next_lsn_ = std::max(next_lsn_, prev_lsn + 1);

  for (auto& [lsn, txn] : staged) {
    recovery_.txns.push_back(WalRecord{lsn, std::move(txn)});
  }
  recovery_.last_lsn = next_lsn_ - 1;
  recovery_pending_ = !recovery_.empty();

  // Open the tail segment for appending, or start a fresh one.
  if (segments.empty()) {
    AUXVIEW_RETURN_IF_ERROR(OpenSegment(SegmentPath(next_lsn_), false));
  } else {
    AUXVIEW_RETURN_IF_ERROR(OpenSegment(segments.back().second, false));
  }
  return Status::Ok();
}

Status WriteAheadLog::LoadCheckpointFile(const std::string& path) {
  AUXVIEW_ASSIGN_OR_RETURN(std::string buf, ReadWholeFile(path));
  StatusOr<CheckpointImage> image = DecodeCheckpointImage(buf);
  if (!image.ok()) {
    // The checkpoint was published with rename + fsync, so damage here is
    // external corruption, not a torn write — refuse to guess.
    return Status::Internal("wal: " + path + " is corrupt: " +
                            image.status().message());
  }
  recovery_.has_checkpoint = true;
  recovery_.checkpoint = std::move(image).value();
  return Status::Ok();
}

Status WriteAheadLog::ScanSegment(
    const std::string& path, bool last_segment, uint64_t* prev_lsn,
    std::vector<std::pair<uint64_t, ConcreteTxn>>* staged) {
  AUXVIEW_ASSIGN_OR_RETURN(std::string buf, ReadWholeFile(path));
  const uint64_t ckpt_lsn =
      recovery_.has_checkpoint ? recovery_.checkpoint.last_lsn : 0;

  size_t off = 0;
  bool torn = false;
  std::string torn_reason;
  while (off < buf.size()) {
    const size_t rest = buf.size() - off;
    if (rest < kHeaderSize) {
      torn = true;
      torn_reason = "short header";
      break;
    }
    wal::ByteReader header(buf.data() + off, kHeaderSize);
    const uint32_t magic = header.U32();
    const uint8_t type = header.U8();
    const uint64_t lsn = header.U64();
    const uint32_t payload_len = header.U32();
    const uint32_t stored_crc = header.U32();
    if (magic != kRecordMagic) {
      // A torn append truncates the record, it does not rewrite the magic —
      // a full header with a bad magic means in-place damage.
      return Status::Internal(
          "wal: bad record magic in " + path + " at offset " +
          std::to_string(off) + " (last good lsn " + std::to_string(*prev_lsn) +
          ")");
    }
    const size_t frame_size = kHeaderSize + payload_len;
    if (rest < frame_size) {
      if (!last_segment) {
        return Status::Internal(
            "wal: record at lsn " + std::to_string(lsn) + " in " + path +
            " extends past end of a non-final segment");
      }
      torn = true;
      torn_reason = "short payload";
      break;
    }
    const uint32_t crc = ExtendCrc32c(
        Crc32c(buf.data() + off + 4, kHeaderSize - 8),
        buf.data() + off + kHeaderSize, payload_len);
    if (crc != stored_crc) {
      // A frame that ends exactly at EOF of the final segment may simply
      // have lost its last sectors; anything else is mid-log corruption.
      if (last_segment && off + frame_size == buf.size()) {
        torn = true;
        torn_reason = "checksum mismatch on final record";
        break;
      }
      return Status::Internal("wal: CRC mismatch at lsn " +
                              std::to_string(lsn) + " in " + path +
                              " (last good lsn " + std::to_string(*prev_lsn) +
                              ")");
    }
    if (*prev_lsn != 0 && lsn != *prev_lsn + 1) {
      return Status::Internal(
          "wal: LSN gap in " + path + ": expected " +
          std::to_string(*prev_lsn + 1) + ", found " + std::to_string(lsn));
    }
    if (*prev_lsn == 0 && recovery_.has_checkpoint && lsn > ckpt_lsn + 1) {
      return Status::Internal(
          "wal: LSN gap after checkpoint: covered through " +
          std::to_string(ckpt_lsn) + ", log resumes at " + std::to_string(lsn));
    }
    *prev_lsn = lsn;

    wal::ByteReader payload(buf.data() + off + kHeaderSize, payload_len);
    if (type == kTypeTxn) {
      AUXVIEW_ASSIGN_OR_RETURN(ConcreteTxn txn, wal::DecodeTxn(&payload));
      // Records the checkpoint already covers are skipped, not replayed.
      if (lsn > ckpt_lsn) staged->emplace_back(lsn, std::move(txn));
    } else if (type == kTypeAbort) {
      const uint64_t aborted = payload.U64();
      if (!payload.ok()) {
        return Status::Internal("wal: malformed abort record at lsn " +
                                std::to_string(lsn));
      }
      staged->erase(std::remove_if(staged->begin(), staged->end(),
                                   [aborted](const auto& e) {
                                     return e.first == aborted;
                                   }),
                    staged->end());
    } else {
      return Status::Internal("wal: unknown record type " +
                              std::to_string(type) + " at lsn " +
                              std::to_string(lsn));
    }
    off += frame_size;
  }

  if (torn) {
    const int64_t removed = static_cast<int64_t>(buf.size() - off);
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0 || ::ftruncate(fd, static_cast<off_t>(off)) != 0) {
      if (fd >= 0) ::close(fd);
      return Status::Internal(Errno("wal: truncating torn tail of " + path));
    }
    ::close(fd);
    std::fprintf(stderr,
                 "auxview wal: truncated torn tail of %s (%s, %lld bytes "
                 "discarded after lsn %llu)\n",
                 path.c_str(), torn_reason.c_str(),
                 static_cast<long long>(removed),
                 static_cast<unsigned long long>(*prev_lsn));
    WalCounter("wal.truncated_tail")->Add(1);
    recovery_.truncated_tail_bytes += removed;
  }
  return Status::Ok();
}

Status WriteAheadLog::CheckWritable() const {
  if (recovery_pending_) {
    return Status::FailedPrecondition(
        "wal: recovered state is pending; run recovery before appending");
  }
  if (fd_ < 0) return Status::FailedPrecondition("wal: no open segment");
  return Status::Ok();
}

Status WriteAheadLog::HealTear() {
  if (pending_tear_offset_ < 0) return Status::Ok();
  if (::ftruncate(fd_, static_cast<off_t>(pending_tear_offset_)) != 0) {
    return Status::Internal(Errno("wal: healing torn tail"));
  }
  offset_ = pending_tear_offset_;
  pending_tear_offset_ = -1;
  return Status::Ok();
}

Status WriteAheadLog::WriteAt(int64_t offset, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t w = ::pwrite(fd_, data + written, n - written,
                               static_cast<off_t>(offset) + written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("wal: write " + segment_path_));
    }
    written += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status WriteAheadLog::Fsync() {
  if (::fsync(fd_) != 0) {
    return Status::Internal(Errno("wal: fsync " + segment_path_));
  }
  WalCounter("wal.fsyncs")->Add(1);
  return Status::Ok();
}

Status WriteAheadLog::FsyncDir() {
  const int fd = ::open(options_.wal_dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal(Errno("wal: open dir for fsync"));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("wal: fsync dir"));
  WalCounter("wal.fsyncs")->Add(1);
  return Status::Ok();
}

Status WriteAheadLog::OpenSegment(const std::string& path, bool truncate) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  int flags = O_CREAT | O_RDWR;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return Status::Internal(Errno("wal: open " + path));
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::Internal(Errno("wal: lseek " + path));
  segment_path_ = path;
  offset_ = static_cast<int64_t>(size);
  pending_tear_offset_ = -1;
  return Status::Ok();
}

StatusOr<uint64_t> WriteAheadLog::AppendTxn(const ConcreteTxn& txn) {
  AUXVIEW_RETURN_IF_ERROR(CheckWritable());
  AUXVIEW_RETURN_IF_ERROR(HealTear());
  wal::ByteWriter payload;
  wal::EncodeTxn(&payload, txn);
  AUXVIEW_ASSIGN_OR_RETURN(
      const uint64_t lsn,
      AppendRecord(kTypeTxn, payload.buffer(), /*inject_faults=*/true));
  ++appends_since_checkpoint_;
  return lsn;
}

Status WriteAheadLog::AppendAbort(uint64_t aborted_lsn) {
  AUXVIEW_RETURN_IF_ERROR(CheckWritable());
  AUXVIEW_RETURN_IF_ERROR(HealTear());
  wal::ByteWriter payload;
  payload.U64(aborted_lsn);
  AUXVIEW_RETURN_IF_ERROR(
      AppendRecord(kTypeAbort, payload.buffer(), /*inject_faults=*/false)
          .status());
  WalCounter("wal.aborts")->Add(1);
  return Status::Ok();
}

StatusOr<uint64_t> WriteAheadLog::AppendRecord(uint8_t type,
                                               const std::string& payload,
                                               bool inject_faults) {
  const uint64_t lsn = next_lsn_;
  const std::string frame = EncodeFrame(type, lsn, payload);
  const int64_t start = offset_;

  if (inject_faults) {
    const Status torn = FailpointRegistry::Global().Check("wal.append.partial");
    if (!torn.ok()) {
      // Model a mid-write crash: half the frame reaches the file and the
      // record is never completed. The LSN is not consumed. The torn bytes
      // stay on disk — a recovery scan right now sees exactly what a real
      // crash would leave — until the next append heals the tail.
      (void)WriteAt(start, frame.data(), frame.size() / 2);
      offset_ = start + static_cast<int64_t>(frame.size() / 2);
      pending_tear_offset_ = start;
      return torn;
    }
  }

  AUXVIEW_RETURN_IF_ERROR(WriteAt(start, frame.data(), frame.size()));
  offset_ = start + static_cast<int64_t>(frame.size());

  if (options_.wal_fsync == WalFsync::kCommit) {
    Status synced = Status::Ok();
    if (inject_faults) {
      synced = FailpointRegistry::Global().Check("wal.fsync.fail");
    }
    if (synced.ok()) synced = Fsync();
    if (!synced.ok()) {
      // The record never became durable; take it back out so the tail stays
      // clean and the transaction can abort without a compensation record.
      (void)::ftruncate(fd_, static_cast<off_t>(start));
      offset_ = start;
      return synced;
    }
  }

  ++next_lsn_;
  WalCounter("wal.appends")->Add(1);
  WalCounter("wal.bytes")->Add(static_cast<int64_t>(frame.size()));
  return lsn;
}

WalRecovery WriteAheadLog::TakeRecovery() {
  WalRecovery out = std::move(recovery_);
  recovery_ = WalRecovery{};
  recovery_pending_ = false;
  return out;
}

Status WriteAheadLog::WriteCheckpoint(CheckpointImage image) {
  AUXVIEW_RETURN_IF_ERROR(CheckWritable());
  AUXVIEW_RETURN_IF_ERROR(HealTear());
  image.last_lsn = last_lsn();

  // 1. Everything the image claims to cover must be on disk first.
  AUXVIEW_RETURN_IF_ERROR(Fsync());

  // 2. Rotate so the already-written segments become a deletable prefix.
  //    (When no records were appended since the last rotation the "new"
  //    segment is the current empty one.)
  const std::string fresh = SegmentPath(next_lsn_);
  if (fresh != segment_path_) {
    AUXVIEW_RETURN_IF_ERROR(OpenSegment(fresh, false));
    AUXVIEW_RETURN_IF_ERROR(FsyncDir());
  }

  // 3. Serialize the image to a temp file and make it durable.
  wal::ByteWriter w;
  EncodeCheckpointImage(&w, image);
  const uint32_t crc = Crc32c(w.buffer().data(), w.buffer().size());
  w.U32(crc);
  const std::string tmp_path = options_.wal_dir + "/" + kCheckpointTmpName;
  const int tmp_fd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC,
                            0644);
  if (tmp_fd < 0) return Status::Internal(Errno("wal: open " + tmp_path));
  size_t written = 0;
  const std::string& buf = w.buffer();
  while (written < buf.size()) {
    const ssize_t n = ::write(tmp_fd, buf.data() + written,
                              buf.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(tmp_fd);
      return Status::Internal(Errno("wal: write " + tmp_path));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    return Status::Internal(Errno("wal: fsync " + tmp_path));
  }
  ::close(tmp_fd);
  WalCounter("wal.fsyncs")->Add(1);

  // 4. The crash window the protocol is designed around: a failure here
  //    leaves checkpoint.tmp behind, which the next Open discards.
  AUXVIEW_FAILPOINT("wal.checkpoint.mid");

  // 5. Atomically publish.
  const std::string ckpt_path = options_.wal_dir + "/" + kCheckpointName;
  if (::rename(tmp_path.c_str(), ckpt_path.c_str()) != 0) {
    return Status::Internal(Errno("wal: rename " + tmp_path));
  }
  AUXVIEW_RETURN_IF_ERROR(FsyncDir());

  // 6. The prefix is now redundant: every record it holds has
  //    lsn <= image.last_lsn. A crash between unlinks is fine — the scan
  //    skips covered records by LSN.
  DIR* dir = ::opendir(options_.wal_dir.c_str());
  if (dir != nullptr) {
    std::vector<std::string> stale;
    while (struct dirent* ent = ::readdir(dir)) {
      const std::string name = ent->d_name;
      if (name.size() == 24 && name.rfind("wal-", 0) == 0 &&
          name.substr(20) == ".log" &&
          options_.wal_dir + "/" + name != segment_path_) {
        stale.push_back(options_.wal_dir + "/" + name);
      }
    }
    ::closedir(dir);
    for (const std::string& path : stale) ::unlink(path.c_str());
    if (!stale.empty()) AUXVIEW_RETURN_IF_ERROR(FsyncDir());
  }

  appends_since_checkpoint_ = 0;
  WalCounter("wal.checkpoints")->Add(1);
  return Status::Ok();
}

CheckpointImage BuildCheckpointImage(const Database& db,
                                     const Catalog* catalog) {
  CheckpointImage image;
  if (catalog != nullptr) image.stats_epoch = catalog->stats_epoch();
  for (const std::string& name : db.TableNames()) {
    // Materialized views are derived state: recovery re-creates them from
    // the base tables through the normal Materialize path.
    if (name.rfind("__mv_", 0) == 0) continue;
    const Table* table = db.FindTable(name);
    TableImage t;
    t.def = table->def();
    if (catalog != nullptr) {
      const TableDef* cat_def = catalog->FindTable(name);
      if (cat_def != nullptr) {
        t.has_catalog_stats = true;
        t.catalog_stats = cat_def->stats;
      }
    }
    for (CountedRow& cr : table->SnapshotUncharged()) {
      t.rows.emplace_back(std::move(cr.row), cr.count);
    }
    image.tables.push_back(std::move(t));
  }
  return image;
}

}  // namespace auxview
