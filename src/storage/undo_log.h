#ifndef AUXVIEW_STORAGE_UNDO_LOG_H_
#define AUXVIEW_STORAGE_UNDO_LOG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"

namespace auxview {

class Database;
class Table;

/// Physical undo log for atomic transaction application.
///
/// While attached to a set of tables (ScopedUndo), every successful mutation
/// — a bag Apply or one pair of an in-place ModifyBatch — appends its net
/// effect as signed (row, count) entries. RollBack() replays the entries in
/// reverse with the sign flipped, restoring rows *and* hash indexes to the
/// exact pre-transaction state; it runs with page-I/O charging disabled (an
/// abort costs whatever the forward work cost, not double) and failpoints
/// suspended (rollback itself must be infallible).
///
/// Live size is exported as the `storage.undo_log_bytes` gauge; the
/// per-transaction peak is observed into the
/// `storage.undo_log_highwater_bytes` histogram each time a non-empty log
/// is consumed (Commit, RollBack or destruction).
class UndoLog {
 public:
  UndoLog();
  ~UndoLog();

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  /// Appends the net effect of a successful Table mutation. Called by Table;
  /// no-op while a rollback is replaying.
  void RecordApply(Table* table, const Row& row, int64_t count);

  /// Snapshots the catalog's statistics so RollBack can restore optimizer
  /// state (stats + epoch) refreshed mid-transaction, not just table data.
  /// Called by ScopedUndo when given a mutable catalog.
  void SnapshotCatalog(Catalog* catalog);

  /// Undoes every recorded entry (newest first) and clears the log. Returns
  /// Internal if an undo application fails — which means the log no longer
  /// matches the table state, i.e. a bug, not a recoverable condition.
  Status RollBack();

  /// Forgets the recorded entries (the transaction committed).
  void Commit();

  bool empty() const { return entries_.empty(); }
  int64_t entry_count() const { return static_cast<int64_t>(entries_.size()); }
  /// Approximate live heap footprint of the log.
  int64_t bytes() const { return bytes_; }

  /// Peak bytes() since the log was last consumed.
  int64_t highwater_bytes() const { return highwater_; }

 private:
  struct Entry {
    Table* table;
    Row row;
    int64_t count;  // the applied delta; undo applies -count
  };

  /// Flushes the pending high-water reading into the histogram (no-op for
  /// a log that recorded nothing since last consume).
  void ObserveHighwater();

  std::vector<Entry> entries_;
  Catalog* catalog_ = nullptr;
  std::optional<Catalog::StatsSnapshot> stats_snapshot_;
  int64_t bytes_ = 0;
  int64_t highwater_ = 0;
  bool rolling_back_ = false;
};

/// RAII guard attaching an undo log to every table of a database for one
/// transaction's scope. Detaches on destruction; the log's contents survive
/// so the caller decides between Commit() and RollBack(). When a catalog is
/// supplied, its statistics are snapshotted too, making RollBack restore
/// optimizer state alongside table data.
class ScopedUndo {
 public:
  ScopedUndo(Database* db, UndoLog* log, Catalog* catalog = nullptr);
  ~ScopedUndo();

  ScopedUndo(const ScopedUndo&) = delete;
  ScopedUndo& operator=(const ScopedUndo&) = delete;

 private:
  Database* db_;
};

}  // namespace auxview

#endif  // AUXVIEW_STORAGE_UNDO_LOG_H_
