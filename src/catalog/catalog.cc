#include "catalog/catalog.h"

#include "common/string_util.h"

namespace auxview {

std::string IndexDef::ToString() const {
  return "INDEX(" + Join(attrs, ", ") + ")";
}

bool TableDef::HasIndexOn(const std::set<std::string>& attrs) const {
  auto matches = [&](const std::vector<std::string>& idx_attrs) {
    if (idx_attrs.size() != attrs.size()) return false;
    for (const std::string& a : idx_attrs) {
      if (attrs.count(a) == 0) return false;
    }
    return true;
  };
  if (!primary_key.empty() && matches(primary_key)) return true;
  for (const IndexDef& idx : indexes) {
    if (matches(idx.attrs)) return true;
  }
  return false;
}

FdSet TableDef::Fds() const {
  FdSet fds;
  if (!primary_key.empty()) {
    std::set<std::string> lhs(primary_key.begin(), primary_key.end());
    std::set<std::string> rhs;
    for (const Column& c : schema.columns()) rhs.insert(c.name);
    fds.Add(std::move(lhs), std::move(rhs));
  }
  return fds;
}

Status Catalog::AddTable(TableDef def) {
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table already exists: " + def.name);
  }
  tables_.emplace(def.name, std::move(def));
  ++stats_epoch_;
  return Status::Ok();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

StatusOr<TableDef> Catalog::GetTable(const std::string& name) const {
  const TableDef* def = FindTable(name);
  if (def == nullptr) return Status::NotFound("no such table: " + name);
  return *def;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

Catalog::StatsSnapshot Catalog::SnapshotStats() const {
  StatsSnapshot snapshot;
  snapshot.epoch = stats_epoch_;
  for (const auto& [name, def] : tables_) snapshot.stats[name] = def.stats;
  return snapshot;
}

void Catalog::RestoreStats(const StatsSnapshot& snapshot) {
  for (const auto& [name, stats] : snapshot.stats) {
    auto it = tables_.find(name);
    if (it != tables_.end()) it->second.stats = stats;
  }
  stats_epoch_ = snapshot.epoch;
}

Status Catalog::SetShardKey(const std::string& name,
                            std::vector<std::string> shard_key) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  for (const std::string& attr : shard_key) {
    if (it->second.schema.IndexOf(attr) < 0) {
      return Status::InvalidArgument("shard key attr missing from schema of " +
                                     name + ": " + attr);
    }
  }
  it->second.shard_key = std::move(shard_key);
  return Status::Ok();
}

Status Catalog::SetStats(const std::string& name, RelationStats stats) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  it->second.stats = std::move(stats);
  ++stats_epoch_;
  return Status::Ok();
}

}  // namespace auxview
