#ifndef AUXVIEW_CATALOG_STATISTICS_H_
#define AUXVIEW_CATALOG_STATISTICS_H_

#include <map>
#include <string>

namespace auxview {

/// Cardinality statistics for a (base or derived) relation.
///
/// The cost model needs row counts and per-attribute distinct counts; the
/// paper's examples use exact values (1000 departments, 10000 employees,
/// uniform 10 employees/department), and the estimator propagates them with
/// the standard uniformity assumptions.
struct RelationStats {
  /// Expected number of rows.
  double row_count = 0;

  /// Distinct values per attribute name. Attributes absent from the map are
  /// assumed to have min(row_count, kDefaultDistinct) distinct values.
  std::map<std::string, double> distinct;

  static constexpr double kDefaultDistinct = 100.0;

  /// Distinct count for `attr`, clamped to [1, row_count].
  double DistinctOf(const std::string& attr) const;

  /// Average rows per value of `attr` (row_count / distinct), >= 0.
  double RowsPerValue(const std::string& attr) const;

  std::string ToString() const;
};

}  // namespace auxview

#endif  // AUXVIEW_CATALOG_STATISTICS_H_
