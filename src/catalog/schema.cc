#include "catalog/schema.h"

namespace auxview {

StatusOr<Schema> Schema::Create(std::vector<Column> columns) {
  Schema schema;
  schema.columns_ = std::move(columns);
  for (int i = 0; i < schema.num_columns(); ++i) {
    for (int j = i + 1; j < schema.num_columns(); ++j) {
      if (schema.columns_[i].name == schema.columns_[j].name) {
        return Status::InvalidArgument("duplicate column name: " +
                                       schema.columns_[i].name);
      }
    }
  }
  return schema;
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name);
  return names;
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace auxview
