#include "catalog/statistics.h"

#include <algorithm>
#include <cstdio>

namespace auxview {

double RelationStats::DistinctOf(const std::string& attr) const {
  double d = kDefaultDistinct;
  auto it = distinct.find(attr);
  if (it != distinct.end()) d = it->second;
  d = std::min(d, std::max(row_count, 1.0));
  return std::max(d, 1.0);
}

double RelationStats::RowsPerValue(const std::string& attr) const {
  if (row_count <= 0) return 0;
  return row_count / DistinctOf(attr);
}

std::string RelationStats::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rows=%.6g", row_count);
  std::string out = buf;
  for (const auto& [attr, d] : distinct) {
    std::snprintf(buf, sizeof(buf), ", d(%s)=%.6g", attr.c_str(), d);
    out += buf;
  }
  return out;
}

}  // namespace auxview
