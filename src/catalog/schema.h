#ifndef AUXVIEW_CATALOG_SCHEMA_H_
#define AUXVIEW_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace auxview {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of uniquely named columns.
///
/// Derived relations (join/aggregate outputs) reuse source column names, so
/// the engine keeps names unique per schema: natural-style joins merge the
/// shared join columns (see algebra::JoinExpr).
class Schema {
 public:
  Schema() = default;

  /// Fails with InvalidArgument on duplicate column names.
  static StatusOr<Schema> Create(std::vector<Column> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  std::vector<std::string> ColumnNames() const;

  /// "name:TYPE, name:TYPE, ...".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace auxview

#endif  // AUXVIEW_CATALOG_SCHEMA_H_
