#include "catalog/fd.h"

#include <algorithm>

namespace auxview {

void FdSet::Add(std::set<std::string> lhs, std::set<std::string> rhs) {
  fds_.push_back(FunctionalDependency{std::move(lhs), std::move(rhs)});
}

void FdSet::AddAll(const FdSet& other) {
  fds_.insert(fds_.end(), other.fds_.begin(), other.fds_.end());
}

std::set<std::string> FdSet::Closure(
    const std::set<std::string>& attrs) const {
  std::set<std::string> closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds_) {
      const bool applies = std::all_of(
          fd.lhs.begin(), fd.lhs.end(),
          [&](const std::string& a) { return closure.count(a) > 0; });
      if (!applies) continue;
      for (const std::string& a : fd.rhs) {
        if (closure.insert(a).second) changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::Determines(const std::set<std::string>& attrs,
                       const std::set<std::string>& target) const {
  const std::set<std::string> closure = Closure(attrs);
  return std::all_of(
      target.begin(), target.end(),
      [&](const std::string& a) { return closure.count(a) > 0; });
}

FdSet FdSet::Restrict(const std::set<std::string>& attrs) const {
  FdSet out;
  for (const FunctionalDependency& fd : fds_) {
    const bool lhs_in = std::all_of(
        fd.lhs.begin(), fd.lhs.end(),
        [&](const std::string& a) { return attrs.count(a) > 0; });
    if (!lhs_in) continue;
    std::set<std::string> rhs;
    for (const std::string& a : fd.rhs) {
      if (attrs.count(a) > 0) rhs.insert(a);
    }
    if (!rhs.empty()) {
      FunctionalDependency restricted;
      restricted.lhs = fd.lhs;
      restricted.rhs = std::move(rhs);
      out.fds_.push_back(std::move(restricted));
    }
  }
  return out;
}

}  // namespace auxview
