#ifndef AUXVIEW_CATALOG_FD_H_
#define AUXVIEW_CATALOG_FD_H_

#include <set>
#include <string>
#include <vector>

namespace auxview {

/// One functional dependency lhs -> rhs over attribute names.
struct FunctionalDependency {
  std::set<std::string> lhs;
  std::set<std::string> rhs;
};

/// A set of functional dependencies with closure computation.
///
/// FDs drive two parts of the reproduction: (a) the Yan-Larson aggregate
/// push-down rule requires the join attribute to be a key of the non-aggregated
/// side, and (b) the paper's key-based query elision (Q3d = 0 in Section 3.6)
/// requires that a delta's "complete attributes" functionally determine the
/// aggregate's group-by attributes.
class FdSet {
 public:
  void Add(std::set<std::string> lhs, std::set<std::string> rhs);

  /// Adds every FD of `other` (used when combining join inputs).
  void AddAll(const FdSet& other);

  /// Attribute closure of `attrs` under the stored FDs.
  std::set<std::string> Closure(const std::set<std::string>& attrs) const;

  /// True iff Closure(attrs) contains every attribute in `target`.
  bool Determines(const std::set<std::string>& attrs,
                  const std::set<std::string>& target) const;

  /// True iff `attrs` is a key of a relation with attributes `all`.
  bool IsKey(const std::set<std::string>& attrs,
             const std::set<std::string>& all) const {
    return Determines(attrs, all);
  }

  /// Keeps only FDs whose attributes all fall inside `attrs` (projection).
  FdSet Restrict(const std::set<std::string>& attrs) const;

  const std::vector<FunctionalDependency>& fds() const { return fds_; }

 private:
  std::vector<FunctionalDependency> fds_;
};

}  // namespace auxview

#endif  // AUXVIEW_CATALOG_FD_H_
