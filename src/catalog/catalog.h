#ifndef AUXVIEW_CATALOG_CATALOG_H_
#define AUXVIEW_CATALOG_CATALOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/fd.h"
#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/status.h"

namespace auxview {

/// A secondary (or primary) hash index over a list of attributes.
struct IndexDef {
  std::vector<std::string> attrs;

  std::string ToString() const;
};

/// Definition of a base relation: schema, primary key, indexes, statistics.
struct TableDef {
  std::string name;
  Schema schema;
  /// Primary key attributes (may be empty for keyless relations).
  std::vector<std::string> primary_key;
  std::vector<IndexDef> indexes;
  /// Hash-sharding key (docs/SHARDING.md). Empty = unsharded. Only takes
  /// effect when the owning Database has a shard count > 1; rows then live
  /// in the sub-table indexed by hash(projection onto these attributes).
  std::vector<std::string> shard_key;
  RelationStats stats;

  /// True if an index with exactly these attributes (in any order) exists.
  bool HasIndexOn(const std::set<std::string>& attrs) const;

  /// Functional dependencies implied by the primary key.
  FdSet Fds() const;
};

/// The schema catalog: base relation definitions keyed by name.
class Catalog {
 public:
  /// Registers a table; fails with AlreadyExists on duplicates.
  Status AddTable(TableDef def);

  /// nullptr when absent.
  const TableDef* FindTable(const std::string& name) const;

  StatusOr<TableDef> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return FindTable(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;

  /// Replaces the statistics of an existing table.
  Status SetStats(const std::string& name, RelationStats stats);

  /// Designates the hash-sharding key of an existing table; every attribute
  /// must exist in its schema. Does not bump the stats epoch (sharding never
  /// changes logical contents or charged costs — docs/SHARDING.md).
  Status SetShardKey(const std::string& name,
                     std::vector<std::string> shard_key);

  /// Monotonic version of the catalog's cost-relevant contents; bumped by
  /// every AddTable and SetStats. Consumers that cache values derived from
  /// table statistics (the optimizer's TrackCostCache, see
  /// docs/OPTIMIZER.md) compare epochs to decide when to invalidate.
  uint64_t stats_epoch() const { return stats_epoch_; }

  /// A point-in-time copy of every table's statistics plus the epoch, taken
  /// at transaction start so an aborted transaction's stat refreshes can be
  /// rolled back along with its data (see UndoLog::SnapshotCatalog).
  struct StatsSnapshot {
    uint64_t epoch = 0;
    std::map<std::string, RelationStats> stats;
  };

  StatsSnapshot SnapshotStats() const;

  /// Restores statistics (and the epoch) captured by SnapshotStats. Tables
  /// added since the snapshot keep their current stats — AddTable is not a
  /// transactional operation.
  void RestoreStats(const StatsSnapshot& snapshot);

 private:
  std::map<std::string, TableDef> tables_;
  uint64_t stats_epoch_ = 0;
};

}  // namespace auxview

#endif  // AUXVIEW_CATALOG_CATALOG_H_
