#include "parser/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace auxview {

namespace {

const char* const kKeywords[] = {
    "CREATE",  "TABLE",   "VIEW",    "ASSERTION", "CHECK",  "NOT",
    "EXISTS",  "SELECT",  "DISTINCT", "FROM",     "WHERE",  "GROUP",
    "BY",      "GROUPBY", "HAVING",  "AS",        "AND",    "OR",
    "SUM",     "COUNT",   "MIN",     "MAX",       "AVG",    "PRIMARY",
    "KEY",     "INDEX",   "INT",     "INTEGER",   "BIGINT", "DOUBLE",
    "FLOAT",   "REAL",    "STRING",  "VARCHAR",   "TEXT",   "CHAR",
    "NULL",    "TRUE",    "FALSE",   "ON",        "JOIN",   "INSERT",
    "INTO",    "VALUES",  "DELETE",  "UPDATE",    "SET",
};

bool IsKeywordWord(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) { return std::isalpha(c) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(c) || c == '_'; }

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsKeywordWord(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(c) ||
               (c == '.' && i + 1 < n && std::isdigit(input[i + 1]))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(input[j]) || input[j] == '.')) {
        if (input[j] == '.') {
          // "1." followed by another '.' or identifier is malformed; a single
          // dot makes it a float literal.
          if (is_float) break;
          is_float = true;
        }
        ++j;
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      while (j < n && input[j] != '\'') {
        text += input[j];
        ++j;
      }
      if (j >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      i = j + 1;
    } else {
      // Multi-char operators first.
      auto two = (i + 1 < n) ? input.substr(i, 2) : std::string();
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.type = TokenType::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        i += 2;
      } else if (std::string("(),.;*=<>+-/").find(c) != std::string::npos) {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace auxview
