#include "parser/parser.h"

#include <cstdlib>

#include "parser/lexer.h"

namespace auxview {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::vector<Statement>> ParseScript() {
    std::vector<Statement> stmts;
    while (!Peek().IsSymbol(";") && Peek().type != TokenType::kEnd) {
      AUXVIEW_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      stmts.push_back(std::move(stmt));
      while (Peek().IsSymbol(";")) Advance();
    }
    return stmts;
  }

  StatusOr<SelectQuery> ParseSelectOnly() {
    AUXVIEW_ASSIGN_OR_RETURN(SelectQuery q, ParseSelectQuery());
    while (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after SELECT");
    }
    return q;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " (near offset " +
                                   std::to_string(Peek().position) + ", got '" +
                                   Peek().text + "')");
  }

  Status Expect(const char* what, bool symbol) {
    if (symbol ? Peek().IsSymbol(what) : Peek().IsKeyword(what)) {
      Advance();
      return Status::Ok();
    }
    return Error(std::string("expected '") + what + "'");
  }
  Status ExpectKeyword(const char* kw) { return Expect(kw, false); }
  Status ExpectSymbol(const char* sym) { return Expect(sym, true); }

  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return Advance().text;
  }

  StatusOr<Statement> ParseStatement() {
    if (Peek().IsKeyword("CREATE")) {
      Advance();
      if (Peek().IsKeyword("TABLE")) {
        Advance();
        AUXVIEW_ASSIGN_OR_RETURN(CreateTableStmt ct, ParseCreateTable());
        Statement stmt;
        stmt.kind = Statement::Kind::kCreateTable;
        stmt.create_table = std::move(ct);
        return stmt;
      }
      if (Peek().IsKeyword("VIEW")) {
        Advance();
        AUXVIEW_ASSIGN_OR_RETURN(CreateViewStmt cv, ParseCreateView());
        Statement stmt;
        stmt.kind = Statement::Kind::kCreateView;
        stmt.create_view = std::move(cv);
        return stmt;
      }
      if (Peek().IsKeyword("ASSERTION")) {
        Advance();
        AUXVIEW_ASSIGN_OR_RETURN(CreateAssertionStmt ca,
                                 ParseCreateAssertion());
        Statement stmt;
        stmt.kind = Statement::Kind::kCreateAssertion;
        stmt.create_assertion = std::move(ca);
        return stmt;
      }
      return Error("expected TABLE, VIEW or ASSERTION after CREATE");
    }
    if (Peek().IsKeyword("SELECT")) {
      AUXVIEW_ASSIGN_OR_RETURN(SelectQuery q, ParseSelectQuery());
      Statement stmt;
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = std::move(q);
      return stmt;
    }
    if (Peek().IsKeyword("INSERT")) {
      Advance();
      AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("INTO"));
      InsertStmt ins;
      AUXVIEW_ASSIGN_OR_RETURN(ins.table, ExpectIdentifier());
      AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
      while (true) {
        AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<SqlExpr::Ptr> row;
        while (true) {
          AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr v, ParseExpr());
          row.push_back(std::move(v));
          if (Peek().IsSymbol(",")) {
            Advance();
            continue;
          }
          break;
        }
        AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
        ins.rows.push_back(std::move(row));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      Statement stmt;
      stmt.kind = Statement::Kind::kInsert;
      stmt.insert = std::move(ins);
      return stmt;
    }
    if (Peek().IsKeyword("DELETE")) {
      Advance();
      AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      DeleteStmt del;
      AUXVIEW_ASSIGN_OR_RETURN(del.table, ExpectIdentifier());
      if (Peek().IsKeyword("WHERE")) {
        Advance();
        AUXVIEW_ASSIGN_OR_RETURN(del.where, ParseExpr());
      }
      Statement stmt;
      stmt.kind = Statement::Kind::kDelete;
      stmt.del = std::move(del);
      return stmt;
    }
    if (Peek().IsKeyword("UPDATE")) {
      Advance();
      UpdateStmt upd;
      AUXVIEW_ASSIGN_OR_RETURN(upd.table, ExpectIdentifier());
      AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("SET"));
      while (true) {
        AUXVIEW_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("="));
        AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr value, ParseExpr());
        upd.sets.emplace_back(std::move(col), std::move(value));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().IsKeyword("WHERE")) {
        Advance();
        AUXVIEW_ASSIGN_OR_RETURN(upd.where, ParseExpr());
      }
      Statement stmt;
      stmt.kind = Statement::Kind::kUpdate;
      stmt.update = std::move(upd);
      return stmt;
    }
    return Error("expected CREATE, SELECT, INSERT, DELETE or UPDATE");
  }

  StatusOr<ValueType> ParseColumnType() {
    const Token& tok = Peek();
    if (tok.type != TokenType::kKeyword) return Error("expected column type");
    const std::string& t = tok.text;
    ValueType type;
    if (t == "INT" || t == "INTEGER" || t == "BIGINT") {
      type = ValueType::kInt64;
    } else if (t == "DOUBLE" || t == "FLOAT" || t == "REAL") {
      type = ValueType::kDouble;
    } else if (t == "STRING" || t == "VARCHAR" || t == "TEXT" || t == "CHAR") {
      type = ValueType::kString;
    } else {
      return Error("unknown column type " + t);
    }
    Advance();
    // Optional length, e.g. VARCHAR(32).
    if (Peek().IsSymbol("(")) {
      Advance();
      if (Peek().type != TokenType::kInteger) return Error("expected length");
      Advance();
      AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return type;
  }

  StatusOr<std::vector<std::string>> ParseNameList() {
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> names;
    while (true) {
      AUXVIEW_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      names.push_back(std::move(name));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
    return names;
  }

  StatusOr<CreateTableStmt> ParseCreateTable() {
    CreateTableStmt ct;
    AUXVIEW_ASSIGN_OR_RETURN(ct.name, ExpectIdentifier());
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        AUXVIEW_ASSIGN_OR_RETURN(ct.primary_key, ParseNameList());
      } else if (Peek().IsKeyword("INDEX")) {
        Advance();
        AUXVIEW_ASSIGN_OR_RETURN(std::vector<std::string> idx,
                                 ParseNameList());
        ct.indexes.push_back(std::move(idx));
      } else {
        ColumnSpec col;
        AUXVIEW_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
        AUXVIEW_ASSIGN_OR_RETURN(col.type, ParseColumnType());
        if (Peek().IsKeyword("PRIMARY")) {
          Advance();
          AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          ct.primary_key.push_back(col.name);
        }
        ct.columns.push_back(std::move(col));
      }
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ct;
  }

  StatusOr<CreateViewStmt> ParseCreateView() {
    CreateViewStmt cv;
    AUXVIEW_ASSIGN_OR_RETURN(cv.name, ExpectIdentifier());
    if (Peek().IsSymbol("(")) {
      AUXVIEW_ASSIGN_OR_RETURN(cv.column_names, ParseNameList());
    }
    AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("AS"));
    AUXVIEW_ASSIGN_OR_RETURN(cv.select, ParseSelectQuery());
    return cv;
  }

  StatusOr<CreateAssertionStmt> ParseCreateAssertion() {
    CreateAssertionStmt ca;
    AUXVIEW_ASSIGN_OR_RETURN(ca.name, ExpectIdentifier());
    AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("CHECK"));
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("("));
    AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("NOT"));
    AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("("));
    AUXVIEW_ASSIGN_OR_RETURN(ca.select, ParseSelectQuery());
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
    AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ca;
  }

  StatusOr<SelectQuery> ParseSelectQuery() {
    AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectQuery q;
    if (Peek().IsKeyword("DISTINCT")) {
      Advance();
      q.distinct = true;
    }
    while (true) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.star = true;
      } else {
        AUXVIEW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Peek().IsKeyword("AS")) {
          Advance();
          AUXVIEW_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        }
      }
      q.items.push_back(std::move(item));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      AUXVIEW_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
      q.from.push_back(std::move(table));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      AUXVIEW_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    bool has_group_by = false;
    if (Peek().IsKeyword("GROUPBY")) {
      Advance();
      has_group_by = true;
    } else if (Peek().IsKeyword("GROUP")) {
      Advance();
      AUXVIEW_RETURN_IF_ERROR(ExpectKeyword("BY"));
      has_group_by = true;
    }
    if (has_group_by) {
      while (true) {
        AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr col, ParsePrimary());
        if (col->kind != SqlExpr::Kind::kColumn) {
          return Error("GROUP BY supports column references only");
        }
        q.group_by.push_back(std::move(col));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().IsKeyword("HAVING")) {
      Advance();
      AUXVIEW_ASSIGN_OR_RETURN(q.having, ParseExpr());
    }
    return q;
  }

  // Expression grammar: or_expr > and_expr > not_expr > comparison > additive
  // > multiplicative > primary.
  StatusOr<SqlExpr::Ptr> ParseExpr() { return ParseOr(); }

  static SqlExpr::Ptr MakeBinary(std::string op, SqlExpr::Ptr l,
                                 SqlExpr::Ptr r) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExpr::Kind::kBinary;
    e->op = std::move(op);
    e->args = {std::move(l), std::move(r)};
    return e;
  }

  StatusOr<SqlExpr::Ptr> ParseOr() {
    AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Advance();
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExpr::Ptr> ParseAnd() {
    AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr lhs, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExpr::Ptr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr inner, ParseNot());
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kUnaryNot;
      e->args = {std::move(inner)};
      return SqlExpr::Ptr(e);
    }
    return ParseComparison();
  }

  StatusOr<SqlExpr::Ptr> ParseComparison() {
    AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr lhs, ParseAdditive());
    const Token& tok = Peek();
    if (tok.type == TokenType::kSymbol &&
        (tok.text == "=" || tok.text == "<>" || tok.text == "<" ||
         tok.text == "<=" || tok.text == ">" || tok.text == ">=")) {
      std::string op = Advance().text;
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr rhs, ParseAdditive());
      return MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExpr::Ptr> ParseAdditive() {
    AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr lhs, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Advance().text;
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr rhs, ParseMultiplicative());
      lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExpr::Ptr> ParseMultiplicative() {
    AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr lhs, ParsePrimary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      std::string op = Advance().text;
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr rhs, ParsePrimary());
      lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExpr::Ptr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.IsSymbol("(")) {
      Advance();
      AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr inner, ParseExpr());
      AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (tok.type == TokenType::kInteger) {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value::Int64(std::strtoll(Advance().text.c_str(), nullptr, 10));
      return SqlExpr::Ptr(e);
    }
    if (tok.type == TokenType::kFloat) {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value::Double(std::strtod(Advance().text.c_str(), nullptr));
      return SqlExpr::Ptr(e);
    }
    if (tok.type == TokenType::kString) {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value::String(Advance().text);
      return SqlExpr::Ptr(e);
    }
    if (tok.IsKeyword("NULL")) {
      Advance();
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value::Null();
      return SqlExpr::Ptr(e);
    }
    if (tok.IsKeyword("TRUE") || tok.IsKeyword("FALSE")) {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kLiteral;
      e->literal = Value::Bool(Advance().text == "TRUE");
      return SqlExpr::Ptr(e);
    }
    if (tok.IsKeyword("SUM") || tok.IsKeyword("COUNT") ||
        tok.IsKeyword("MIN") || tok.IsKeyword("MAX") || tok.IsKeyword("AVG")) {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kFuncCall;
      e->name = Advance().text;
      AUXVIEW_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().IsSymbol("*")) {
        Advance();
        e->star = true;
      } else {
        AUXVIEW_ASSIGN_OR_RETURN(SqlExpr::Ptr arg, ParseExpr());
        e->args.push_back(std::move(arg));
      }
      AUXVIEW_RETURN_IF_ERROR(ExpectSymbol(")"));
      return SqlExpr::Ptr(e);
    }
    if (tok.type == TokenType::kIdentifier) {
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kColumn;
      e->name = Advance().text;
      if (Peek().IsSymbol(".")) {
        Advance();
        e->qualifier = e->name;
        AUXVIEW_ASSIGN_OR_RETURN(e->name, ExpectIdentifier());
      }
      return SqlExpr::Ptr(e);
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::vector<Statement>> ParseSql(const std::string& input) {
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

StatusOr<SelectQuery> ParseSelect(const std::string& input) {
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseSelectOnly();
}

}  // namespace auxview
