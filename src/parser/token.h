#ifndef AUXVIEW_PARSER_TOKEN_H_
#define AUXVIEW_PARSER_TOKEN_H_

#include <string>

namespace auxview {

enum class TokenType {
  kIdentifier,
  kKeyword,   // normalized to upper case in `text`
  kInteger,
  kFloat,
  kString,    // contents without quotes
  kSymbol,    // punctuation / operator in `text`: ( ) , . ; * = <> < <= > >= + - /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

}  // namespace auxview

#endif  // AUXVIEW_PARSER_TOKEN_H_
