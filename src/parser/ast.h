#ifndef AUXVIEW_PARSER_AST_H_
#define AUXVIEW_PARSER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace auxview {

/// SQL expression AST (pre-binding). Distinct from algebra::Scalar because it
/// still contains qualified names and aggregate function calls.
struct SqlExpr {
  using Ptr = std::shared_ptr<const SqlExpr>;

  enum class Kind {
    kColumn,    // qualifier.name or name
    kLiteral,
    kBinary,    // op in {+,-,*,/,=,<>,<,<=,>,>=,AND,OR}
    kUnaryNot,
    kFuncCall,  // SUM/COUNT/MIN/MAX/AVG; star=true for COUNT(*)
  };

  Kind kind = Kind::kColumn;
  std::string qualifier;  // kColumn
  std::string name;       // kColumn / kFuncCall (upper-case func name)
  Value literal;          // kLiteral
  std::string op;         // kBinary
  bool star = false;      // kFuncCall
  std::vector<Ptr> args;  // kBinary (2), kUnaryNot (1), kFuncCall (0..1)

  std::string ToString() const;
};

/// One item of a SELECT list: expression with optional alias ("AS name").
struct SelectItem {
  SqlExpr::Ptr expr;
  std::string alias;  // empty when none
  bool star = false;  // SELECT *
};

/// A parsed SELECT query (no nesting except via CREATE ASSERTION).
struct SelectQuery {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::string> from;  // table / view names, in syntactic order
  SqlExpr::Ptr where;             // may be null
  std::vector<SqlExpr::Ptr> group_by;
  SqlExpr::Ptr having;            // may be null
};

struct ColumnSpec {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// CREATE TABLE name (col type [PRIMARY KEY], ..., [PRIMARY KEY (cols)],
/// [INDEX (cols)]...).
struct CreateTableStmt {
  std::string name;
  std::vector<ColumnSpec> columns;
  std::vector<std::string> primary_key;
  std::vector<std::vector<std::string>> indexes;
};

/// CREATE VIEW name [(col, ...)] AS select.
struct CreateViewStmt {
  std::string name;
  std::vector<std::string> column_names;  // optional rename list
  SelectQuery select;
};

/// CREATE ASSERTION name CHECK (NOT EXISTS (select)).
struct CreateAssertionStmt {
  std::string name;
  SelectQuery select;  // the inner query that must stay empty
};

/// INSERT INTO t VALUES (lit, ...), (lit, ...).
struct InsertStmt {
  std::string table;
  std::vector<std::vector<SqlExpr::Ptr>> rows;
};

/// DELETE FROM t [WHERE pred].
struct DeleteStmt {
  std::string table;
  SqlExpr::Ptr where;  // null = all rows
};

/// UPDATE t SET col = expr [, col = expr]* [WHERE pred].
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlExpr::Ptr>> sets;
  SqlExpr::Ptr where;  // null = all rows
};

/// A parsed SQL statement.
struct Statement {
  enum class Kind {
    kCreateTable,
    kCreateView,
    kCreateAssertion,
    kSelect,
    kInsert,
    kDelete,
    kUpdate,
  };
  Kind kind = Kind::kSelect;
  std::optional<CreateTableStmt> create_table;
  std::optional<CreateViewStmt> create_view;
  std::optional<CreateAssertionStmt> create_assertion;
  std::optional<SelectQuery> select;
  std::optional<InsertStmt> insert;
  std::optional<DeleteStmt> del;
  std::optional<UpdateStmt> update;
};

}  // namespace auxview

#endif  // AUXVIEW_PARSER_AST_H_
