#ifndef AUXVIEW_PARSER_LEXER_H_
#define AUXVIEW_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace auxview {

/// Tokenizes the SQL subset. Keywords are case-insensitive and normalized to
/// upper case; identifiers keep their spelling. `--` starts a line comment.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace auxview

#endif  // AUXVIEW_PARSER_LEXER_H_
