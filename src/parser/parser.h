#ifndef AUXVIEW_PARSER_PARSER_H_
#define AUXVIEW_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"

namespace auxview {

/// Parses a script of ';'-separated statements in the supported SQL subset:
///
///   CREATE TABLE t (c TYPE [PRIMARY KEY], ... [, PRIMARY KEY (c, ...)]
///                   [, INDEX (c, ...)]...)
///   CREATE VIEW v [(c, ...)] AS SELECT ...
///   CREATE ASSERTION a CHECK (NOT EXISTS (SELECT ...))
///   SELECT [DISTINCT] items FROM t1, t2, ... [WHERE p]
///          [GROUP BY cols | GROUPBY cols] [HAVING p]
///
/// `GROUPBY` (one word) is accepted because the paper spells it that way.
StatusOr<std::vector<Statement>> ParseSql(const std::string& input);

/// Parses a single SELECT query.
StatusOr<SelectQuery> ParseSelect(const std::string& input);

}  // namespace auxview

#endif  // AUXVIEW_PARSER_PARSER_H_
