#include "parser/ast.h"

namespace auxview {

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() +
             ")";
    case Kind::kUnaryNot:
      return "NOT (" + args[0]->ToString() + ")";
    case Kind::kFuncCall: {
      std::string out = name + "(";
      if (star) {
        out += "*";
      } else if (!args.empty()) {
        out += args[0]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace auxview
