#ifndef AUXVIEW_PARSER_BINDER_H_
#define AUXVIEW_PARSER_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace auxview {

/// A bound CREATE VIEW: the view name and its algebra tree.
struct BoundView {
  std::string name;
  Expr::Ptr expr;
};

/// A bound CREATE ASSERTION: a view that must remain empty.
struct BoundAssertion {
  std::string name;
  Expr::Ptr expr;
};

/// Resolves parsed statements against a catalog, producing algebra trees.
///
/// - CREATE TABLE registers the table in the catalog.
/// - CREATE VIEW binds the SELECT to an algebra tree; later queries may name
///   the view in FROM (the definition is inlined).
/// - CREATE ASSERTION binds the inner NOT EXISTS query.
///
/// Supported SELECT shape: conjunctive equi-join predicates over same-named
/// columns (the paper's natural-join style), residual selection predicates,
/// one grouping level with SUM/COUNT/MIN/MAX/AVG, HAVING over group-by
/// columns and aggregate results, optional DISTINCT.
class Binder {
 public:
  explicit Binder(Catalog* catalog) : catalog_(catalog) {}

  /// Binds one statement; records created views/assertions internally.
  Status Bind(const Statement& stmt);

  /// Parses and binds a whole ';'-separated script.
  Status Run(const std::string& sql);

  /// Binds a stand-alone SELECT. `out_names` optionally renames the output
  /// columns positionally (the CREATE VIEW (c1, c2, ...) list).
  StatusOr<Expr::Ptr> BindSelect(const SelectQuery& query,
                                 const std::vector<std::string>& out_names = {});

  const std::vector<BoundView>& views() const { return views_; }
  const std::vector<BoundAssertion>& assertions() const { return assertions_; }

  /// nullptr when no view of that name was bound.
  const Expr::Ptr* FindView(const std::string& name) const;

 private:
  Catalog* catalog_;
  std::vector<BoundView> views_;
  std::vector<BoundAssertion> assertions_;
};

}  // namespace auxview

#endif  // AUXVIEW_PARSER_BINDER_H_
