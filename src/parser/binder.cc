#include "parser/binder.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "parser/parser.h"

namespace auxview {

namespace {

/// One FROM entry resolved to an algebra subtree.
struct Source {
  std::string name;  // table or view name (the usable qualifier)
  Expr::Ptr expr;
  bool joined = false;
};

/// Where a column reference resolves among the sources.
struct Resolution {
  int source = -1;  // index into sources
  std::string column;
};

StatusOr<Resolution> ResolveColumn(const std::vector<Source>& sources,
                                   const std::string& qualifier,
                                   const std::string& name) {
  Resolution res;
  res.column = name;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (!qualifier.empty() && sources[i].name != qualifier) continue;
    if (sources[i].expr->output_schema().Contains(name)) {
      if (res.source >= 0 && qualifier.empty()) {
        // Ambiguous without a qualifier is fine in this dialect only when the
        // column is a join attribute (both occurrences are merged); accept
        // the first source.
        continue;
      }
      res.source = static_cast<int>(i);
    }
  }
  if (res.source < 0) {
    return Status::InvalidArgument(
        "cannot resolve column " +
        (qualifier.empty() ? name : qualifier + "." + name));
  }
  return res;
}

StatusOr<AggFunc> AggFuncFromName(const std::string& name) {
  if (name == "SUM") return AggFunc::kSum;
  if (name == "COUNT") return AggFunc::kCount;
  if (name == "MIN") return AggFunc::kMin;
  if (name == "MAX") return AggFunc::kMax;
  if (name == "AVG") return AggFunc::kAvg;
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

bool ContainsAggregate(const SqlExpr::Ptr& e) {
  if (e == nullptr) return false;
  if (e->kind == SqlExpr::Kind::kFuncCall) return true;
  for (const SqlExpr::Ptr& a : e->args) {
    if (ContainsAggregate(a)) return true;
  }
  return false;
}

/// Converts a pure (aggregate-free) SQL expression to a Scalar, dropping
/// qualifiers after validating them against `sources`.
StatusOr<Scalar::Ptr> ToScalar(const SqlExpr::Ptr& e,
                               const std::vector<Source>& sources) {
  switch (e->kind) {
    case SqlExpr::Kind::kColumn: {
      AUXVIEW_ASSIGN_OR_RETURN(Resolution res,
                               ResolveColumn(sources, e->qualifier, e->name));
      (void)res;
      return Scalar::Column(e->name);
    }
    case SqlExpr::Kind::kLiteral:
      return Scalar::Literal(e->literal);
    case SqlExpr::Kind::kUnaryNot: {
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr inner, ToScalar(e->args[0], sources));
      return Scalar::Not(inner);
    }
    case SqlExpr::Kind::kBinary: {
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr l, ToScalar(e->args[0], sources));
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr r, ToScalar(e->args[1], sources));
      ScalarOp op;
      if (e->op == "+") {
        op = ScalarOp::kAdd;
      } else if (e->op == "-") {
        op = ScalarOp::kSub;
      } else if (e->op == "*") {
        op = ScalarOp::kMul;
      } else if (e->op == "/") {
        op = ScalarOp::kDiv;
      } else if (e->op == "=") {
        op = ScalarOp::kEq;
      } else if (e->op == "<>") {
        op = ScalarOp::kNe;
      } else if (e->op == "<") {
        op = ScalarOp::kLt;
      } else if (e->op == "<=") {
        op = ScalarOp::kLe;
      } else if (e->op == ">") {
        op = ScalarOp::kGt;
      } else if (e->op == ">=") {
        op = ScalarOp::kGe;
      } else if (e->op == "AND") {
        op = ScalarOp::kAnd;
      } else if (e->op == "OR") {
        op = ScalarOp::kOr;
      } else {
        return Status::InvalidArgument("unsupported operator: " + e->op);
      }
      return Scalar::Binary(op, l, r);
    }
    case SqlExpr::Kind::kFuncCall:
      return Status::InvalidArgument(
          "aggregate function not allowed here: " + e->ToString());
  }
  return Status::Internal("unhandled SqlExpr kind");
}

/// Splits the WHERE AST into conjuncts.
void SplitWhere(const SqlExpr::Ptr& e, std::vector<SqlExpr::Ptr>* out) {
  if (e == nullptr) return;
  if (e->kind == SqlExpr::Kind::kBinary && e->op == "AND") {
    SplitWhere(e->args[0], out);
    SplitWhere(e->args[1], out);
    return;
  }
  out->push_back(e);
}

}  // namespace

const Expr::Ptr* Binder::FindView(const std::string& name) const {
  for (const BoundView& v : views_) {
    if (v.name == name) return &v.expr;
  }
  return nullptr;
}

Status Binder::Bind(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      const CreateTableStmt& ct = *stmt.create_table;
      TableDef def;
      def.name = ct.name;
      std::vector<Column> cols;
      for (const ColumnSpec& c : ct.columns) {
        cols.push_back(Column{c.name, c.type});
      }
      AUXVIEW_ASSIGN_OR_RETURN(def.schema, Schema::Create(std::move(cols)));
      def.primary_key = ct.primary_key;
      for (const auto& idx : ct.indexes) {
        def.indexes.push_back(IndexDef{idx});
      }
      return catalog_->AddTable(std::move(def));
    }
    case Statement::Kind::kCreateView: {
      const CreateViewStmt& cv = *stmt.create_view;
      AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr expr,
                               BindSelect(cv.select, cv.column_names));
      views_.push_back(BoundView{cv.name, std::move(expr)});
      return Status::Ok();
    }
    case Statement::Kind::kCreateAssertion: {
      const CreateAssertionStmt& ca = *stmt.create_assertion;
      AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr expr, BindSelect(ca.select));
      assertions_.push_back(BoundAssertion{ca.name, std::move(expr)});
      return Status::Ok();
    }
    case Statement::Kind::kSelect:
      // Stand-alone SELECTs are bound on demand via BindSelect.
      return Status::Ok();
    case Statement::Kind::kInsert:
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate:
      return Status::FailedPrecondition(
          "DML statements execute through a Session, not the binder");
  }
  return Status::Internal("unhandled statement kind");
}

Status Binder::Run(const std::string& sql) {
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseSql(sql));
  for (const Statement& stmt : stmts) {
    AUXVIEW_RETURN_IF_ERROR(Bind(stmt));
  }
  return Status::Ok();
}

StatusOr<Expr::Ptr> Binder::BindSelect(
    const SelectQuery& query, const std::vector<std::string>& out_names) {
  if (query.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  // 1. Resolve FROM sources (base tables and previously bound views).
  std::vector<Source> sources;
  for (const std::string& name : query.from) {
    Source src;
    src.name = name;
    if (const Expr::Ptr* view = FindView(name); view != nullptr) {
      src.expr = *view;
    } else if (const TableDef* def = catalog_->FindTable(name);
               def != nullptr) {
      src.expr = Expr::Scan(name, def->schema);
    } else {
      return Status::NotFound("FROM names unknown table or view: " + name);
    }
    sources.push_back(std::move(src));
  }

  // 2. Partition WHERE conjuncts into equi-join conditions (same-named
  //    columns of two different sources) and residual predicates.
  std::vector<SqlExpr::Ptr> conjuncts;
  SplitWhere(query.where, &conjuncts);
  struct JoinCond {
    int a = -1;
    int b = -1;
    std::string attr;
    bool used = false;
  };
  std::vector<JoinCond> join_conds;
  std::vector<SqlExpr::Ptr> residual;
  for (const SqlExpr::Ptr& c : conjuncts) {
    bool is_join = false;
    if (c->kind == SqlExpr::Kind::kBinary && c->op == "=" &&
        c->args[0]->kind == SqlExpr::Kind::kColumn &&
        c->args[1]->kind == SqlExpr::Kind::kColumn) {
      const SqlExpr& l = *c->args[0];
      const SqlExpr& r = *c->args[1];
      AUXVIEW_ASSIGN_OR_RETURN(Resolution lr,
                               ResolveColumn(sources, l.qualifier, l.name));
      AUXVIEW_ASSIGN_OR_RETURN(Resolution rr,
                               ResolveColumn(sources, r.qualifier, r.name));
      if (lr.source != rr.source) {
        if (l.name != r.name) {
          return Status::Unimplemented(
              "equi-joins must use same-named columns (got " + l.name + " = " +
              r.name + ")");
        }
        join_conds.push_back(JoinCond{lr.source, rr.source, l.name, false});
        is_join = true;
      }
    }
    if (!is_join) residual.push_back(c);
  }

  // 3. Greedy left-deep join of all sources; reject cross products.
  std::set<int> in_tree = {0};
  sources[0].joined = true;
  Expr::Ptr current = sources[0].expr;
  size_t remaining = sources.size() - 1;
  while (remaining > 0) {
    int next = -1;
    std::vector<std::string> attrs;
    for (JoinCond& jc : join_conds) {
      if (jc.used) continue;
      const bool a_in = in_tree.count(jc.a) > 0;
      const bool b_in = in_tree.count(jc.b) > 0;
      if (a_in == b_in) continue;  // both in (handled later) or both out
      const int candidate = a_in ? jc.b : jc.a;
      if (next == -1 || candidate == next) {
        next = candidate;
        attrs.push_back(jc.attr);
        jc.used = true;
      }
    }
    if (next == -1) {
      return Status::Unimplemented(
          "FROM list requires a cross product or disconnected join graph");
    }
    // Deduplicate attrs.
    std::sort(attrs.begin(), attrs.end());
    attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
    AUXVIEW_ASSIGN_OR_RETURN(current,
                             Expr::Join(current, sources[next].expr, attrs));
    in_tree.insert(next);
    --remaining;
  }
  // Join conditions between sources already in the tree become residual
  // equality predicates (both columns merged to one name — always true) —
  // reject them as redundant rather than silently dropping.
  for (const JoinCond& jc : join_conds) {
    if (!jc.used) {
      return Status::Unimplemented("redundant join condition on " + jc.attr);
    }
  }

  // 4. Residual WHERE predicates.
  if (!residual.empty()) {
    std::vector<Scalar::Ptr> preds;
    for (const SqlExpr::Ptr& c : residual) {
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr s, ToScalar(c, sources));
      preds.push_back(std::move(s));
    }
    AUXVIEW_ASSIGN_OR_RETURN(
        current, Expr::Select(current, Scalar::CombineConjuncts(preds)));
  }

  // 5. Aggregation.
  const bool has_aggregates =
      std::any_of(query.items.begin(), query.items.end(),
                  [](const SelectItem& i) {
                    return !i.star && ContainsAggregate(i.expr);
                  }) ||
      ContainsAggregate(query.having);
  std::vector<AggSpec> agg_specs;      // deduplicated aggregates
  std::vector<std::string> agg_keys;   // canonical "FUNC(arg)" strings
  auto agg_output_name = [&](const std::string& key) -> std::string {
    for (size_t i = 0; i < agg_keys.size(); ++i) {
      if (agg_keys[i] == key) return agg_specs[i].output_name;
    }
    return "";
  };
  // Registers an aggregate call, returning its output column name.
  auto register_agg = [&](const SqlExpr& call,
                          const std::string& preferred_name)
      -> StatusOr<std::string> {
    AUXVIEW_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromName(call.name));
    Scalar::Ptr arg;
    std::string key = call.name + "(";
    if (call.star) {
      key += "*";
    } else {
      AUXVIEW_ASSIGN_OR_RETURN(arg, ToScalar(call.args[0], sources));
      key += arg->ToString();
    }
    key += ")";
    const std::string existing = agg_output_name(key);
    if (!existing.empty()) return existing;
    std::string name = preferred_name;
    if (name.empty()) {
      // Synthesize e.g. SUM_Salary.
      name = call.name;
      if (!call.star) {
        for (const std::string& c : arg->Columns()) name += "_" + c;
      }
    }
    agg_specs.push_back(AggSpec{func, arg, name});
    agg_keys.push_back(key);
    return name;
  };
  // Rewrites an SQL expression over the aggregate output (column refs stay,
  // aggregate calls become their output columns).
  std::function<StatusOr<Scalar::Ptr>(const SqlExpr::Ptr&)> rewrite_agg_expr =
      [&](const SqlExpr::Ptr& e) -> StatusOr<Scalar::Ptr> {
    if (e->kind == SqlExpr::Kind::kFuncCall) {
      AUXVIEW_ASSIGN_OR_RETURN(std::string name, register_agg(*e, ""));
      return Scalar::Column(name);
    }
    if (e->kind == SqlExpr::Kind::kColumn) {
      AUXVIEW_ASSIGN_OR_RETURN(Resolution res,
                               ResolveColumn(sources, e->qualifier, e->name));
      (void)res;
      return Scalar::Column(e->name);
    }
    if (e->kind == SqlExpr::Kind::kLiteral) return Scalar::Literal(e->literal);
    if (e->kind == SqlExpr::Kind::kUnaryNot) {
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr inner, rewrite_agg_expr(e->args[0]));
      return Scalar::Not(inner);
    }
    // Binary: rebuild with rewritten children through ToScalar-style mapping.
    AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr l, rewrite_agg_expr(e->args[0]));
    AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr r, rewrite_agg_expr(e->args[1]));
    // Reuse ToScalar's operator mapping by building a tiny shim.
    static const std::map<std::string, ScalarOp> kOps = {
        {"+", ScalarOp::kAdd}, {"-", ScalarOp::kSub},  {"*", ScalarOp::kMul},
        {"/", ScalarOp::kDiv}, {"=", ScalarOp::kEq},   {"<>", ScalarOp::kNe},
        {"<", ScalarOp::kLt},  {"<=", ScalarOp::kLe},  {">", ScalarOp::kGt},
        {">=", ScalarOp::kGe}, {"AND", ScalarOp::kAnd}, {"OR", ScalarOp::kOr}};
    auto it = kOps.find(e->op);
    if (it == kOps.end()) {
      return Status::InvalidArgument("unsupported operator: " + e->op);
    }
    return Scalar::Binary(it->second, l, r);
  };

  std::vector<std::string> group_by;
  if (!query.group_by.empty() || has_aggregates) {
    for (const SqlExpr::Ptr& g : query.group_by) {
      AUXVIEW_ASSIGN_OR_RETURN(Resolution res,
                               ResolveColumn(sources, g->qualifier, g->name));
      (void)res;
      group_by.push_back(g->name);
    }
    // Register aggregates from the select list first so CREATE VIEW renames
    // apply to them positionally.
    for (size_t i = 0; i < query.items.size(); ++i) {
      const SelectItem& item = query.items[i];
      if (item.star) {
        return Status::InvalidArgument("SELECT * with GROUP BY is not allowed");
      }
      if (item.expr->kind == SqlExpr::Kind::kFuncCall) {
        std::string preferred = item.alias;
        if (preferred.empty() && i < out_names.size()) {
          preferred = out_names[i];
        }
        AUXVIEW_RETURN_IF_ERROR(register_agg(*item.expr, preferred).status());
      } else if (ContainsAggregate(item.expr)) {
        AUXVIEW_RETURN_IF_ERROR(rewrite_agg_expr(item.expr).status());
      }
    }
    // HAVING may introduce more aggregates.
    Scalar::Ptr having;
    if (query.having != nullptr) {
      AUXVIEW_ASSIGN_OR_RETURN(having, rewrite_agg_expr(query.having));
    }
    if (agg_specs.empty()) {
      // GROUP BY without aggregates degenerates to duplicate elimination of
      // the group-by columns; express as COUNT(*) then project it away is
      // overkill — use COUNT(*) named with a synthetic column.
      agg_specs.push_back(AggSpec{AggFunc::kCount, nullptr, "__count"});
    }
    AUXVIEW_ASSIGN_OR_RETURN(current,
                             Expr::Aggregate(current, group_by, agg_specs));
    if (having != nullptr) {
      AUXVIEW_ASSIGN_OR_RETURN(current, Expr::Select(current, having));
    }
  }

  // 6. Final projection. SELECT * keeps the schema as-is.
  const bool select_star =
      query.items.size() == 1 && query.items[0].star;
  if (!select_star) {
    std::vector<ProjectItem> items;
    for (size_t i = 0; i < query.items.size(); ++i) {
      const SelectItem& item = query.items[i];
      if (item.star) {
        return Status::InvalidArgument("mixed * and expressions in SELECT");
      }
      Scalar::Ptr scalar;
      if (!group_by.empty() || has_aggregates) {
        AUXVIEW_ASSIGN_OR_RETURN(scalar, rewrite_agg_expr(item.expr));
      } else {
        AUXVIEW_ASSIGN_OR_RETURN(scalar, ToScalar(item.expr, sources));
      }
      std::string name = item.alias;
      if (i < out_names.size()) name = out_names[i];
      if (name.empty()) {
        if (scalar->op() == ScalarOp::kColumn) {
          name = scalar->column_name();
        } else {
          name = "col" + std::to_string(i + 1);
        }
      }
      items.push_back(ProjectItem{std::move(scalar), std::move(name)});
    }
    // Skip the Project when it is an exact identity of the current schema.
    const Schema& cur = current->output_schema();
    bool identity = static_cast<int>(items.size()) == cur.num_columns();
    if (identity) {
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].expr->op() != ScalarOp::kColumn ||
            items[i].expr->column_name() != cur.column(static_cast<int>(i)).name ||
            items[i].name != cur.column(static_cast<int>(i)).name) {
          identity = false;
          break;
        }
      }
    }
    if (!identity) {
      AUXVIEW_ASSIGN_OR_RETURN(current, Expr::Project(current, items));
    }
  } else if (!out_names.empty()) {
    return Status::InvalidArgument(
        "CREATE VIEW column list requires an explicit select list");
  }

  if (query.distinct) {
    AUXVIEW_ASSIGN_OR_RETURN(current, Expr::DupElim(current));
  }
  return current;
}

}  // namespace auxview
