#ifndef AUXVIEW_API_DML_UTIL_H_
#define AUXVIEW_API_DML_UTIL_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/scalar.h"
#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "parser/ast.h"
#include "storage/table.h"

namespace auxview {
namespace dml {

/// Converts a SQL expression over one table's columns to a Scalar
/// (qualifiers must match the table name when present).
StatusOr<Scalar::Ptr> ToTableScalar(const SqlExpr::Ptr& e,
                                    const std::string& table,
                                    const Schema& schema);

/// Evaluates a column-free expression (literal / arithmetic).
StatusOr<Value> EvalConstant(const SqlExpr::Ptr& e);

/// Coerces a value to a column type where lossless (int -> double).
StatusOr<Value> Coerce(const Value& v, ValueType type, const std::string& col);

/// Rows of `table` matching a WHERE predicate (nullptr = all rows). Reads
/// through SnapshotUncharged — works identically against a live table and a
/// snapshot/overlay version.
StatusOr<std::vector<Row>> MatchingRows(const Table& table,
                                        const SqlExpr::Ptr& where);

/// If `where` is a conjunction of `column = constant` equalities over
/// `schema`, the (column index, coerced value) pairs — the key-read form a
/// writer records in its footprint so only matching later commits conflict.
/// nullopt for any other shape (callers fall back to a whole-relation read).
std::optional<std::vector<std::pair<int, Value>>> ExtractEqualities(
    const SqlExpr::Ptr& where, const Schema& schema);

}  // namespace dml
}  // namespace auxview

#endif  // AUXVIEW_API_DML_UTIL_H_
