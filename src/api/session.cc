#include "api/session.h"

#include <algorithm>

#include "api/dml_util.h"
#include "api/txn_session.h"
#include "common/string_util.h"
#include "delta/transaction.h"
#include "exec/executor.h"
#include "maintain/assertion.h"
#include "maintain/delta_engine.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "storage/undo_log.h"

namespace auxview {

Session::Session(SessionOptions options)
    : options_(std::move(options)), binder_(&catalog_) {
  // In a Session every root is a user-facing materialized view; its update
  // costs are real, both in the estimates and at the I/O counter (unlike
  // the paper's worked example, which excludes the assertion view).
  options_.optimize.cost.include_root_update_cost = true;
  options_.maintain.charge_root_update = true;
  if (!options_.durability.wal_dir.empty()) {
    // Constructors can't fail; the first Execute/Prepare/Recover surfaces
    // an open error instead of silently running without durability.
    wal_status_ = db_.OpenWal(options_.durability);
  }
}

Status Session::OpenWal(const DatabaseOptions& options) {
  AUXVIEW_RETURN_IF_ERROR(wal_status_);
  if (prepared()) {
    return Status::FailedPrecondition("attach the WAL before Prepare");
  }
  return db_.OpenWal(options);
}

void Session::DeclareWorkload(std::vector<TransactionType> txns) {
  workload_ = std::move(txns);
}

void Session::SetMaintainThreads(int threads) {
  options_.maintain.threads = threads < 1 ? 1 : threads;
  if (manager_ != nullptr) {
    manager_->set_maintain_threads(options_.maintain.threads);
  }
}

Status Session::SetShardCount(int shards) {
  if (prepared()) {
    return Status::FailedPrecondition("set the shard count before Prepare");
  }
  if (shards < 1) return Status::InvalidArgument("shard count must be >= 1");
  db_.set_shard_count(shards);
  options_.optimize.cost.shard_fanout = shards;
  return Status::Ok();
}

void Session::SetShardKey(const std::string& table,
                          std::vector<std::string> attrs) {
  pending_shard_keys_[table] = std::move(attrs);
}

StatusOr<ExecResult> Session::Execute(const std::string& sql) {
  AUXVIEW_RETURN_IF_ERROR(wal_status_);
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseSql(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty statement");
  ExecResult last;
  for (const Statement& stmt : stmts) {
    AUXVIEW_ASSIGN_OR_RETURN(last, ExecuteOne(stmt));
    if (last.rejected()) break;  // a rejected DML aborts the script
  }
  return last;
}

StatusOr<ExecResult> Session::ExecuteOne(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      if (prepared()) {
        return Status::FailedPrecondition(
            "schema changes after Prepare are not supported");
      }
      AUXVIEW_RETURN_IF_ERROR(binder_.Bind(stmt));
      AUXVIEW_ASSIGN_OR_RETURN(TableDef def,
                               catalog_.GetTable(stmt.create_table->name));
      auto shard_it = pending_shard_keys_.find(def.name);
      if (shard_it != pending_shard_keys_.end()) {
        // Declared via SetShardKey/.shardkey: validate against the bound
        // schema and record in the catalog before the table is laid out.
        AUXVIEW_RETURN_IF_ERROR(
            catalog_.SetShardKey(def.name, shard_it->second));
        def.shard_key = shard_it->second;
        pending_shard_keys_.erase(shard_it);
      }
      AUXVIEW_RETURN_IF_ERROR(db_.CreateTable(std::move(def)).status());
      return ExecResult{};
    }
    case Statement::Kind::kCreateView:
    case Statement::Kind::kCreateAssertion: {
      if (prepared()) {
        return Status::FailedPrecondition(
            "view/assertion changes after Prepare are not supported");
      }
      AUXVIEW_RETURN_IF_ERROR(binder_.Bind(stmt));
      return ExecResult{};
    }
    case Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select);
    case Statement::Kind::kInsert:
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate:
      return ApplyDml(stmt);
  }
  return Status::Internal("unhandled statement kind");
}

StatusOr<ExecResult> Session::ExecuteSelect(const SelectQuery& query) {
  ExecResult result;
  result.kind = ExecResult::Kind::kRows;
  const bool mv_shortcut =
      prepared() && query.from.size() == 1 && query.items.size() == 1 &&
      query.items[0].star && query.where == nullptr &&
      query.group_by.empty() && !query.distinct &&
      roots_.find(query.from[0]) != roots_.end();
  // With concurrency enabled, reads run against the latest published
  // snapshot so they never race a commit mutating the live tables.
  if (controller_ != nullptr) {
    SnapshotRef snap = controller_->Pin();
    if (mv_shortcut) {
      const Table* table =
          snap->ResolveTable(MaterializedViewName(roots_.at(query.from[0])));
      if (table == nullptr) {
        return Status::Internal("materialized view missing from snapshot");
      }
      Relation rows(table->schema());
      for (const CountedRow& cr : table->SnapshotUncharged()) {
        rows.Add(cr.row, cr.count);
      }
      result.rows = std::move(rows);
      return result;
    }
    AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr tree, binder_.BindSelect(query));
    Executor executor(snap.get());
    AUXVIEW_ASSIGN_OR_RETURN(Relation rows, executor.Execute(*tree));
    result.rows = std::move(rows);
    return result;
  }
  // SELECT * FROM <maintained view>: serve straight from the materialized
  // table — the whole point of maintaining it.
  if (mv_shortcut) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation rows,
                             manager_->ViewContents(roots_.at(query.from[0])));
    result.rows = std::move(rows);
    return result;
  }
  AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr tree, binder_.BindSelect(query));
  Executor executor(&db_);
  AUXVIEW_ASSIGN_OR_RETURN(Relation rows, executor.Execute(*tree));
  result.rows = std::move(rows);
  return result;
}

StatusOr<std::vector<Row>> Session::MatchingRows(const std::string& table,
                                                 const SqlExpr::Ptr& where) {
  const Table* t = db_.FindTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  return dml::MatchingRows(*t, where);
}

StatusOr<ConcreteTxn> Session::BuildConcreteTxn(const Statement& stmt,
                                                TransactionType* type) {
  ConcreteTxn txn;
  UpdateSpec spec;
  TableUpdate update;
  switch (stmt.kind) {
    case Statement::Kind::kInsert: {
      const InsertStmt& ins = *stmt.insert;
      const Table* t = db_.FindTable(ins.table);
      if (t == nullptr) return Status::NotFound("no such table: " + ins.table);
      update.relation = ins.table;
      for (const auto& exprs : ins.rows) {
        if (static_cast<int>(exprs.size()) != t->schema().num_columns()) {
          return Status::InvalidArgument("INSERT arity mismatch for " +
                                         ins.table);
        }
        Row row;
        for (size_t i = 0; i < exprs.size(); ++i) {
          AUXVIEW_ASSIGN_OR_RETURN(Value v, dml::EvalConstant(exprs[i]));
          AUXVIEW_ASSIGN_OR_RETURN(
              v, dml::Coerce(v, t->schema().column(static_cast<int>(i)).type,
                        t->schema().column(static_cast<int>(i)).name));
          row.push_back(std::move(v));
        }
        update.inserts.emplace_back(std::move(row), 1);
      }
      spec.relation = ins.table;
      spec.kind = UpdateKind::kInsert;
      spec.count = static_cast<double>(ins.rows.size());
      txn.type_name = "insert:" + ins.table;
      break;
    }
    case Statement::Kind::kDelete: {
      const DeleteStmt& del = *stmt.del;
      AUXVIEW_ASSIGN_OR_RETURN(std::vector<Row> victims,
                               MatchingRows(del.table, del.where));
      const Table* t = db_.FindTable(del.table);
      update.relation = del.table;
      for (const Row& row : victims) {
        update.deletes.emplace_back(row, t->CountOf(row));
      }
      spec.relation = del.table;
      spec.kind = UpdateKind::kDelete;
      spec.count = std::max<double>(1, static_cast<double>(victims.size()));
      txn.type_name = "delete:" + del.table;
      break;
    }
    case Statement::Kind::kUpdate: {
      const UpdateStmt& upd = *stmt.update;
      const Table* t = db_.FindTable(upd.table);
      if (t == nullptr) return Status::NotFound("no such table: " + upd.table);
      AUXVIEW_ASSIGN_OR_RETURN(std::vector<Row> victims,
                               MatchingRows(upd.table, upd.where));
      update.relation = upd.table;
      std::vector<std::pair<int, Scalar::Ptr>> sets;
      for (const auto& [col, expr] : upd.sets) {
        const int idx = t->schema().IndexOf(col);
        if (idx < 0) return Status::InvalidArgument("unknown column: " + col);
        AUXVIEW_ASSIGN_OR_RETURN(
            Scalar::Ptr scalar,
            dml::ToTableScalar(expr, upd.table, t->schema()));
        sets.emplace_back(idx, std::move(scalar));
        spec.modified_attrs.push_back(col);
      }
      for (const Row& old_row : victims) {
        Row new_row = old_row;
        for (const auto& [idx, scalar] : sets) {
          AUXVIEW_ASSIGN_OR_RETURN(Value v, scalar->Eval(old_row, t->schema()));
          AUXVIEW_ASSIGN_OR_RETURN(
              v, dml::Coerce(v, t->schema().column(idx).type,
                             t->schema().column(idx).name));
          new_row[static_cast<size_t>(idx)] = std::move(v);
        }
        if (!RowEq()(old_row, new_row)) {
          update.modifies.emplace_back(old_row, new_row);
        }
      }
      spec.relation = upd.table;
      spec.kind = UpdateKind::kModify;
      spec.count = std::max<double>(1, static_cast<double>(victims.size()));
      txn.type_name = "update:" + upd.table;
      break;
    }
    default:
      return Status::Internal("not a DML statement");
  }
  txn.updates.push_back(std::move(update));
  type->name = txn.type_name;
  type->weight = 1;
  type->updates = {std::move(spec)};
  return txn;
}

Status Session::ApplyDirect(const ConcreteTxn& txn) {
  // Write-ahead, as in the maintained path: a load statement is durable
  // before it touches memory.
  WriteAheadLog* wal = db_.wal();
  uint64_t lsn = 0;
  if (wal != nullptr && !wal->replaying()) {
    AUXVIEW_ASSIGN_OR_RETURN(lsn, wal->AppendTxn(txn));
  }
  // Pre-Prepare loads are transactions too: a mid-statement failure
  // (e.g. deleting below multiplicity zero) must not leave half the rows in.
  UndoLog undo;
  Status applied;
  {
    ScopedUndo undo_scope(&db_, &undo, &catalog_);
    applied = db_.ApplyTxnDirect(txn);
  }
  if (!applied.ok()) {
    AUXVIEW_RETURN_IF_ERROR(undo.RollBack());
    if (lsn != 0) (void)wal->AppendAbort(lsn);  // best-effort compensation
    return applied;
  }
  undo.Commit();
  return Status::Ok();
}

StatusOr<UpdateTrack> Session::TrackFor(const TransactionType& type) {
  std::string key = type.name;
  for (const UpdateSpec& spec : type.updates) {
    key += "|" + spec.relation + ":" + UpdateKindName(spec.kind) + ":" +
           Join(spec.modified_attrs, ",") + ":" +
           std::to_string(static_cast<int>(spec.count));
  }
  auto it = track_cache_.find(key);
  if (it != track_cache_.end()) return it->second;
  AUXVIEW_ASSIGN_OR_RETURN(TxnPlan plan,
                           selector_->BestTrack(plan_.views, type,
                                                options_.optimize));
  track_cache_[key] = plan.track;
  return plan.track;
}

StatusOr<ExecResult> Session::ApplyDml(const Statement& stmt) {
  // With concurrency enabled, the whole statement — victim selection
  // against the live tables, track choice, commit — runs under the commit
  // mutex so it serializes with optimistic TxnSession commits (and the
  // selector's costing entry points stay single-threaded).
  std::unique_lock<std::mutex> funnel;
  if (controller_ != nullptr) {
    funnel = std::unique_lock<std::mutex>(controller_->commit_mutex());
  }
  TransactionType type;
  AUXVIEW_ASSIGN_OR_RETURN(ConcreteTxn txn, BuildConcreteTxn(stmt, &type));
  ExecResult result;
  result.kind = ExecResult::Kind::kDml;
  for (const TableUpdate& u : txn.updates) {
    result.affected += static_cast<int64_t>(u.inserts.size()) +
                       static_cast<int64_t>(u.deletes.size()) +
                       static_cast<int64_t>(u.modifies.size());
  }
  if (result.affected == 0) return result;

  if (!prepared()) {
    AUXVIEW_RETURN_IF_ERROR(ApplyDirect(txn));
    return result;
  }

  AUXVIEW_ASSIGN_OR_RETURN(UpdateTrack track, TrackFor(type));
  if (controller_ != nullptr) {
    AUXVIEW_ASSIGN_OR_RETURN(CommitOutcome outcome,
                             controller_->CommitSerialLocked(txn, type, track));
    if (outcome.kind == CommitOutcome::Kind::kRejected) {
      result.violated_assertion = outcome.detail;
      result.affected = 0;
      return result;
    }
    funnel.unlock();  // Checkpoint retakes the commit lock
    MaybeAutoCheckpoint();
    return result;
  }
  // Assertion enforcement happens inside the staged apply: the verdict is
  // computed against the pre-update state and a violating transaction is
  // rejected before a single row moves (Section 4's "abort before commit").
  Status applied = manager_->ApplyTransaction(txn, type, track);
  if (!applied.ok()) {
    if (applied.code() == StatusCode::kAborted &&
        !manager_->aborted_assertion().empty()) {
      result.violated_assertion = manager_->aborted_assertion();
      result.affected = 0;
      return result;
    }
    return applied;  // injected fault or genuine error — rolled back
  }
  MaybeAutoCheckpoint();
  return result;
}

void Session::MaybeAutoCheckpoint() {
  WriteAheadLog* wal = db_.wal();
  if (wal == nullptr || wal->replaying() || recovering_ || !prepared() ||
      !wal->ShouldAutoCheckpoint()) {
    return;
  }
  const Status st = Checkpoint();
  if (!st.ok()) {
    // Advisory: the statement already committed and the log alone still
    // recovers it — a failed compaction is a metric, not a statement error.
    obs::MetricsRegistry::Global()
        .GetCounter("wal.checkpoint_failures")
        ->Add(1);
  }
}

Status Session::Checkpoint() {
  AUXVIEW_RETURN_IF_ERROR(wal_status_);
  WriteAheadLog* wal = db_.wal();
  if (wal == nullptr) {
    return Status::FailedPrecondition("no write-ahead log attached");
  }
  if (!prepared()) {
    return Status::FailedPrecondition(
        "Checkpoint requires Prepare: a pre-Prepare image would freeze "
        "unrefreshed statistics and recovery could choose different views");
  }
  // Under concurrency the image must be a committed state — hold the funnel
  // while reading the tables.
  std::unique_lock<std::mutex> funnel;
  if (controller_ != nullptr) {
    funnel = std::unique_lock<std::mutex>(controller_->commit_mutex());
  }
  return wal->WriteCheckpoint(BuildCheckpointImage(db_, &catalog_));
}

Status Session::EnableConcurrency() {
  if (!prepared()) {
    return Status::FailedPrecondition(
        "EnableConcurrency requires Prepare: snapshots cover the "
        "materialized views too");
  }
  if (controller_ != nullptr) return Status::Ok();
  controller_ = std::make_unique<ConcurrencyController>(
      &catalog_, &db_, manager_.get(), workload_,
      [this](const TransactionType& type) { return TrackFor(type); });
  return Status::Ok();
}

StatusOr<std::unique_ptr<TxnSession>> Session::OpenSession() {
  if (controller_ == nullptr) {
    return Status::FailedPrecondition(
        "call EnableConcurrency before OpenSession");
  }
  return std::unique_ptr<TxnSession>(
      new TxnSession(this, controller_.get()));
}

Status Session::Recover() {
  AUXVIEW_RETURN_IF_ERROR(wal_status_);
  WriteAheadLog* wal = db_.wal();
  if (wal == nullptr) {
    return Status::FailedPrecondition("no write-ahead log attached");
  }
  if (prepared()) {
    return Status::FailedPrecondition("Recover must run before Prepare");
  }
  WalRecovery rec;
  AUXVIEW_RETURN_IF_ERROR(db_.Recover(&rec));
  recovery_info_ = RecoveryInfo{};
  recovery_info_.recovered = !rec.empty();
  recovery_info_.had_checkpoint = rec.has_checkpoint;
  recovery_info_.last_lsn = rec.last_lsn;
  recovery_info_.truncated_tail_bytes = rec.truncated_tail_bytes;
  if (rec.empty()) return Status::Ok();

  WalReplayGuard replay(wal);
  recovering_ = true;
  Status replayed = [&]() -> Status {
    if (rec.has_checkpoint) {
      // The checkpoint froze the catalog statistics the original Prepare
      // optimized with; restoring them (and skipping the refresh) makes the
      // re-run Prepare see identical inputs, hence identical views.
      for (const TableImage& t : rec.checkpoint.tables) {
        if (t.has_catalog_stats) {
          AUXVIEW_RETURN_IF_ERROR(
              catalog_.SetStats(t.def.name, t.catalog_stats));
        }
      }
      skip_stats_refresh_ = true;
      AUXVIEW_RETURN_IF_ERROR(Prepare());
      for (const WalRecord& r : rec.txns) {
        const TransactionType type =
            DeriveTransactionType(r.txn, workload_, catalog_);
        StatusOr<UpdateTrack> track = TrackFor(type);
        if (!track.ok()) {
          return Status::Internal("wal replay failed at lsn " +
                                  std::to_string(r.lsn) + ": " +
                                  track.status().ToString());
        }
        const Status applied = manager_->ApplyTransaction(r.txn, type, *track);
        if (!applied.ok()) {
          return Status::Internal("wal replay failed at lsn " +
                                  std::to_string(r.lsn) + ": " +
                                  applied.ToString());
        }
        ++recovery_info_.replayed;
      }
    } else {
      // No checkpoint: everything in the log predates Prepare, i.e. load
      // statements — apply them directly, as the original run did.
      for (const WalRecord& r : rec.txns) {
        const Status applied = ApplyDirect(r.txn);
        if (!applied.ok()) {
          return Status::Internal("wal replay failed at lsn " +
                                  std::to_string(r.lsn) + ": " +
                                  applied.ToString());
        }
        ++recovery_info_.replayed;
      }
    }
    return Status::Ok();
  }();
  recovering_ = false;
  AUXVIEW_RETURN_IF_ERROR(replayed);
  obs::MetricsRegistry::Global()
      .GetCounter("wal.recovered_txns")
      ->Add(recovery_info_.replayed);
  if (rec.has_checkpoint) {
    // Fold the replayed suffix into a fresh checkpoint so the next recovery
    // starts from here.
    AUXVIEW_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::Ok();
}

Status Session::Prepare() {
  AUXVIEW_RETURN_IF_ERROR(wal_status_);
  if (prepared()) return Status::FailedPrecondition("already prepared");
  if (binder_.views().empty() && binder_.assertions().empty()) {
    return Status::FailedPrecondition(
        "declare at least one view or assertion before Prepare");
  }
  // Refresh statistics from the loaded data — unless recovery restored the
  // checkpoint-time statistics, which must be optimized with as-is.
  if (!skip_stats_refresh_) {
    for (const std::string& name : db_.TableNames()) {
      AUXVIEW_ASSIGN_OR_RETURN(RelationStats stats, db_.RefreshStats(name));
      AUXVIEW_RETURN_IF_ERROR(catalog_.SetStats(name, stats));
    }
  }

  // One expression DAG, multiple roots (Section 6).
  memo_ = std::make_unique<Memo>();
  std::vector<GroupId> roots;
  for (const BoundView& view : binder_.views()) {
    AUXVIEW_ASSIGN_OR_RETURN(GroupId g, memo_->AddTree(view.expr));
    roots_.emplace(view.name, g);
    roots.push_back(g);
  }
  for (const BoundAssertion& assertion : binder_.assertions()) {
    AUXVIEW_ASSIGN_OR_RETURN(GroupId g, memo_->AddTree(assertion.expr));
    roots_.emplace(assertion.name, g);
    roots.push_back(g);
  }
  const auto rules = DefaultRuleSet();
  AUXVIEW_RETURN_IF_ERROR(
      ExpandMemo(memo_.get(), catalog_, rules, options_.expand).status());
  // Group merges may have collapsed roots.
  for (auto& [name, g] : roots_) g = memo_->Find(g);
  for (GroupId& g : roots) g = memo_->Find(g);

  if (workload_.empty()) {
    for (const std::string& name : db_.TableNames()) {
      TransactionType txn;
      txn.name = ">" + name;
      txn.weight = 1;
      txn.updates.push_back(UpdateSpec{name, UpdateKind::kModify, 1, {}, {}});
      workload_.push_back(std::move(txn));
    }
  }

  selector_ = std::make_unique<ViewSelector>(memo_.get(), &catalog_);
  StatusOr<OptimizeResult> plan = [&]() -> StatusOr<OptimizeResult> {
    if (roots.size() == 1 &&
        options_.strategy != Strategy::kExhaustive) {
      memo_->set_root(roots[0]);
      switch (options_.strategy) {
        case Strategy::kShielding:
          return selector_->Shielding(workload_, options_.optimize);
        case Strategy::kSingleTree:
          return selector_->SingleTree(workload_, options_.optimize);
        case Strategy::kHeuristicMarking:
          return selector_->HeuristicMarking(workload_, options_.optimize);
        case Strategy::kGreedy:
          return selector_->Greedy(workload_, options_.optimize);
        default:
          break;
      }
    }
    return selector_->ExhaustiveMultiView(roots, workload_,
                                          options_.optimize);
  }();
  AUXVIEW_RETURN_IF_ERROR(plan.status());
  plan_ = std::move(plan).value();
  for (GroupId g : roots) plan_.views.insert(g);

  manager_ = std::make_unique<ViewManager>(memo_.get(), &catalog_, &db_,
                                           options_.maintain);
  // Group-level rollback of optimizer state: aborted transactions restore
  // any statistics refreshed while they ran.
  manager_->set_mutable_catalog(&catalog_);
  for (const BoundAssertion& assertion : binder_.assertions()) {
    AUXVIEW_ASSIGN_OR_RETURN(GroupId g, GroupOf(assertion.name));
    manager_->DeclareAssertion(assertion.name, g);
  }
  AUXVIEW_RETURN_IF_ERROR(manager_->Materialize(plan_.views));
  // The initial checkpoint: freezes the loaded base tables and refreshed
  // statistics, making the bulk-load log prefix redundant. Skipped during
  // recovery's internal Prepare (Recover writes its own at the end).
  WriteAheadLog* wal = db_.wal();
  if (wal != nullptr && !wal->replaying() && !recovering_) {
    AUXVIEW_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::Ok();
}

StatusOr<GroupId> Session::GroupOf(const std::string& name) const {
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    return Status::NotFound("no such view or assertion: " + name);
  }
  return it->second;
}

StatusOr<Relation> Session::ViewContents(const std::string& name) const {
  if (!prepared()) return Status::FailedPrecondition("call Prepare first");
  AUXVIEW_ASSIGN_OR_RETURN(GroupId g, GroupOf(name));
  return manager_->ViewContents(g);
}

StatusOr<std::vector<AssertionCheck>> Session::CheckAssertions() const {
  if (!prepared()) return Status::FailedPrecondition("call Prepare first");
  AssertionChecker checker(manager_.get());
  std::vector<AssertionCheck> out;
  for (const BoundAssertion& assertion : binder_.assertions()) {
    AUXVIEW_ASSIGN_OR_RETURN(GroupId g, GroupOf(assertion.name));
    AUXVIEW_ASSIGN_OR_RETURN(AssertionCheck check,
                             checker.Check(assertion.name, g));
    out.push_back(std::move(check));
  }
  return out;
}

Status Session::CheckConsistency() const {
  if (!prepared()) return Status::FailedPrecondition("call Prepare first");
  return manager_->CheckConsistency();
}

}  // namespace auxview
