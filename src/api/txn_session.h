#ifndef AUXVIEW_API_TXN_SESSION_H_
#define AUXVIEW_API_TXN_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "concurrency/writer.h"
#include "parser/ast.h"

namespace auxview {

/// One concurrent SQL session over a prepared, concurrency-enabled Session
/// (Session::OpenSession). Statements execute against this session's pinned
/// snapshot overlaid with its own staged changes; nothing becomes visible
/// to other sessions until Commit(), which runs first-committer-wins
/// validation before funneling the staged transaction through the shared
/// maintenance pipeline (docs/CONCURRENCY.md).
///
/// A TxnSession belongs to one thread; open as many as you need for
/// concurrency. DML before Prepare, DDL, and workload declaration remain
/// the owning Session's job.
///
///   auto txn = session.OpenSession().value();
///   txn->Execute("UPDATE Emp SET Salary = 60000 WHERE EName = 'e1';");
///   auto outcome = txn->Commit().value();
///   if (outcome.kind == CommitOutcome::Kind::kConflict) {
///     txn->Restart();   // fresh snapshot; re-run the statements
///   }
class TxnSession {
 public:
  /// Parses and executes a ';'-separated script of SELECT / INSERT /
  /// DELETE / UPDATE statements against snapshot ∪ staged delta. DML stages
  /// changes privately (affected counts reflect the overlay); SELECT sees
  /// the staged changes of this session only.
  StatusOr<ExecResult> Execute(const std::string& sql);

  /// One optimistic commit attempt for everything staged since the last
  /// Commit/Abort/Restart. kCommitted clears the staged set and repins;
  /// kConflict (validation lost) and kRejected (assertion violation) leave
  /// the session untouched for inspection.
  StatusOr<CommitOutcome> Commit();

  /// Drops staged changes and repins the latest snapshot.
  void Abort();

  /// Abort() that counts in `concurrency.retries` — use when re-running a
  /// conflicted transaction.
  void Restart();

  /// Epoch of the pinned snapshot this session reads from.
  uint64_t snapshot_epoch() const { return writer_.snapshot_epoch(); }

  /// True when changes are staged but not committed.
  bool dirty() const { return !writer_.delta().empty(); }

  WriterTxn& writer() { return writer_; }

 private:
  friend class Session;
  TxnSession(Session* owner, ConcurrencyController* controller)
      : owner_(owner), writer_(controller) {}

  StatusOr<ExecResult> ExecuteOne(const Statement& stmt);
  StatusOr<ExecResult> ExecuteSelect(const SelectQuery& query);
  StatusOr<ExecResult> ApplyDml(const Statement& stmt);
  /// Victim rows for DELETE/UPDATE through the overlay; records a key read
  /// when the WHERE clause is a pure equality conjunction, else a
  /// whole-relation read.
  StatusOr<std::vector<Row>> MatchingRows(const std::string& table,
                                          const SqlExpr::Ptr& where);

  Session* owner_;
  WriterTxn writer_;
};

}  // namespace auxview

#endif  // AUXVIEW_API_TXN_SESSION_H_
