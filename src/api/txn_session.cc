#include "api/txn_session.h"

#include <utility>

#include "api/dml_util.h"
#include "exec/executor.h"
#include "maintain/delta_engine.h"
#include "parser/parser.h"

namespace auxview {

namespace {

/// Leaf (stored) relations an algebra tree reads — the read footprint of a
/// SELECT whose view references were inlined by the binder.
void CollectScanTables(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind() == OpKind::kScan) out->push_back(expr.table());
  for (const Expr::Ptr& child : expr.children()) {
    CollectScanTables(*child, out);
  }
}

}  // namespace

StatusOr<ExecResult> TxnSession::Execute(const std::string& sql) {
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseSql(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty statement");
  ExecResult last;
  for (const Statement& stmt : stmts) {
    AUXVIEW_ASSIGN_OR_RETURN(last, ExecuteOne(stmt));
  }
  return last;
}

StatusOr<ExecResult> TxnSession::ExecuteOne(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select);
    case Statement::Kind::kInsert:
    case Statement::Kind::kDelete:
    case Statement::Kind::kUpdate:
      return ApplyDml(stmt);
    default:
      return Status::FailedPrecondition(
          "DDL runs on the owning Session, not a concurrent TxnSession");
  }
}

StatusOr<ExecResult> TxnSession::ExecuteSelect(const SelectQuery& query) {
  ExecResult result;
  result.kind = ExecResult::Kind::kRows;
  // SELECT * FROM <maintained view>: serve from the snapshot's materialized
  // table. The read is footprinted against the view table itself; commits
  // list rewritten views in their touched set, so any change to the view's
  // contents conflicts (coarse, but views carry no row-level footprints).
  if (query.from.size() == 1 && query.items.size() == 1 &&
      query.items[0].star && query.where == nullptr &&
      query.group_by.empty() && !query.distinct) {
    auto it = owner_->roots_.find(query.from[0]);
    if (it != owner_->roots_.end()) {
      const std::string mv_name = MaterializedViewName(it->second);
      const Table* table = writer_.ResolveTable(mv_name);
      if (table == nullptr) {
        return Status::Internal("materialized view missing from snapshot: " +
                                mv_name);
      }
      writer_.footprint().AddScanRead(mv_name);
      Relation rows(table->schema());
      for (const CountedRow& cr : table->SnapshotUncharged()) {
        rows.Add(cr.row, cr.count);
      }
      result.rows = std::move(rows);
      return result;
    }
  }
  AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr tree, owner_->binder_.BindSelect(query));
  // Inlined view references bottom out at base-table scans; footprint every
  // stored relation the plan reads.
  std::vector<std::string> scans;
  CollectScanTables(*tree, &scans);
  for (const std::string& name : scans) {
    writer_.footprint().AddScanRead(name);
  }
  Executor executor(&writer_);
  AUXVIEW_ASSIGN_OR_RETURN(Relation rows, executor.Execute(*tree));
  result.rows = std::move(rows);
  return result;
}

StatusOr<std::vector<Row>> TxnSession::MatchingRows(const std::string& table,
                                                    const SqlExpr::Ptr& where) {
  const Table* t = writer_.ResolveTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  if (auto equalities = dml::ExtractEqualities(where, t->schema())) {
    writer_.footprint().AddKeyRead(table, *std::move(equalities));
  } else {
    writer_.footprint().AddScanRead(table);
  }
  return dml::MatchingRows(*t, where);
}

StatusOr<ExecResult> TxnSession::ApplyDml(const Statement& stmt) {
  ExecResult result;
  result.kind = ExecResult::Kind::kDml;
  switch (stmt.kind) {
    case Statement::Kind::kInsert: {
      const InsertStmt& ins = *stmt.insert;
      const Table* t = writer_.ResolveTable(ins.table);
      if (t == nullptr) return Status::NotFound("no such table: " + ins.table);
      const Schema schema = t->schema();  // staging invalidates `t`
      for (const auto& exprs : ins.rows) {
        if (static_cast<int>(exprs.size()) != schema.num_columns()) {
          return Status::InvalidArgument("INSERT arity mismatch for " +
                                         ins.table);
        }
        Row row;
        for (size_t i = 0; i < exprs.size(); ++i) {
          AUXVIEW_ASSIGN_OR_RETURN(Value v, dml::EvalConstant(exprs[i]));
          AUXVIEW_ASSIGN_OR_RETURN(
              v, dml::Coerce(v, schema.column(static_cast<int>(i)).type,
                             schema.column(static_cast<int>(i)).name));
          row.push_back(std::move(v));
        }
        AUXVIEW_RETURN_IF_ERROR(writer_.Insert(ins.table, row));
        ++result.affected;
      }
      return result;
    }
    case Statement::Kind::kDelete: {
      const DeleteStmt& del = *stmt.del;
      AUXVIEW_ASSIGN_OR_RETURN(std::vector<Row> victims,
                               MatchingRows(del.table, del.where));
      for (const Row& row : victims) {
        const Table* t = writer_.ResolveTable(del.table);
        AUXVIEW_RETURN_IF_ERROR(
            writer_.Delete(del.table, row, t->CountOf(row)));
        ++result.affected;
      }
      return result;
    }
    case Statement::Kind::kUpdate: {
      const UpdateStmt& upd = *stmt.update;
      const Table* t = writer_.ResolveTable(upd.table);
      if (t == nullptr) return Status::NotFound("no such table: " + upd.table);
      const Schema schema = t->schema();
      AUXVIEW_ASSIGN_OR_RETURN(std::vector<Row> victims,
                               MatchingRows(upd.table, upd.where));
      std::vector<std::pair<int, Scalar::Ptr>> sets;
      for (const auto& [col, expr] : upd.sets) {
        const int idx = schema.IndexOf(col);
        if (idx < 0) return Status::InvalidArgument("unknown column: " + col);
        AUXVIEW_ASSIGN_OR_RETURN(
            Scalar::Ptr scalar, dml::ToTableScalar(expr, upd.table, schema));
        sets.emplace_back(idx, std::move(scalar));
      }
      for (const Row& old_row : victims) {
        Row new_row = old_row;
        for (const auto& [idx, scalar] : sets) {
          AUXVIEW_ASSIGN_OR_RETURN(Value v, scalar->Eval(old_row, schema));
          AUXVIEW_ASSIGN_OR_RETURN(v, dml::Coerce(v, schema.column(idx).type,
                                                  schema.column(idx).name));
          new_row[static_cast<size_t>(idx)] = std::move(v);
        }
        if (RowEq()(old_row, new_row)) continue;
        const Table* current = writer_.ResolveTable(upd.table);
        AUXVIEW_RETURN_IF_ERROR(writer_.Modify(upd.table, old_row, new_row,
                                               current->CountOf(old_row)));
        ++result.affected;
      }
      return result;
    }
    default:
      return Status::Internal("not a DML statement");
  }
}

StatusOr<CommitOutcome> TxnSession::Commit() {
  AUXVIEW_ASSIGN_OR_RETURN(CommitOutcome outcome, writer_.Commit());
  if (outcome.kind == CommitOutcome::Kind::kRejected) {
    // Match the Session's serial semantics: a rejected transaction rolls
    // back entirely — drop the staged set so the session starts clean.
    Abort();
  }
  return outcome;
}

void TxnSession::Abort() { writer_.Abort(); }

void TxnSession::Restart() { writer_.Restart(); }

}  // namespace auxview
