#ifndef AUXVIEW_API_SESSION_H_
#define AUXVIEW_API_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrency/controller.h"
#include "exec/relation.h"
#include "maintain/assertion.h"
#include "maintain/view_manager.h"
#include "optimizer/optimizer.h"
#include "optimizer/select_views.h"
#include "parser/binder.h"
#include "storage/database.h"
#include "storage/wal/wal.h"

namespace auxview {

class TxnSession;

/// Result of Session::Execute for one statement.
struct ExecResult {
  enum class Kind { kDdl, kRows, kDml };
  Kind kind = Kind::kDdl;
  /// SELECT results.
  std::optional<Relation> rows;
  /// DML: tuples inserted/deleted/modified.
  int64_t affected = 0;
  /// DML rejected because an assertion would be violated (the transaction
  /// was rolled back); the violating assertion's name.
  std::string violated_assertion;

  bool rejected() const { return !violated_assertion.empty(); }
};

/// Options for a Session.
struct SessionOptions {
  /// Strategy used by Prepare to pick the auxiliary views.
  Strategy strategy = Strategy::kExhaustive;
  OptimizeOptions optimize;
  ExpandOptions expand;
  MaintainOptions maintain;
  /// Durability: a non-empty wal_dir attaches a write-ahead log at
  /// construction (see docs/DURABILITY.md).
  DatabaseOptions durability;
};

/// What Session::Recover found and did (for harnesses and the shell).
struct RecoveryInfo {
  /// True when the log held durable state (checkpoint and/or transactions).
  bool recovered = false;
  bool had_checkpoint = false;
  /// Highest LSN the recovered state covers.
  uint64_t last_lsn = 0;
  /// Transactions replayed (checkpoint-covered ones are loaded, not
  /// replayed).
  int64_t replayed = 0;
  /// Bytes of torn final record discarded by the opening scan.
  int64_t truncated_tail_bytes = 0;
};

/// The end-to-end facade: a tiny "database" whose views and assertions are
/// maintained incrementally with optimizer-chosen auxiliary views.
///
///   Session session;
///   session.Execute("CREATE TABLE ...; CREATE VIEW ...; "
///                   "CREATE ASSERTION a CHECK (NOT EXISTS (...));");
///   session.Execute("INSERT INTO Emp VALUES ('e1', 'd1', 50000);");
///   session.DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"})});
///   session.Prepare();   // optimize + materialize (Section 6: one memo,
///                        // multiple roots — all views and assertions)
///   session.Execute("UPDATE Emp SET Salary = 99999 WHERE EName = 'e1';");
///   //  -> maintained incrementally; REJECTED (rolled back) if it would
///   //     violate an assertion.
///
/// Before Prepare, DML applies to base tables directly (bulk-load phase).
/// After Prepare, every DML statement flows through the chosen update
/// tracks and all views stay consistent.
class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Parses and executes a ';'-separated script; returns the result of the
  /// last statement.
  StatusOr<ExecResult> Execute(const std::string& sql);

  /// Declares the expected update workload (transaction types + weights)
  /// used by Prepare's optimization. Optional: without it, Prepare derives
  /// one modify-transaction per base relation with equal weights.
  void DeclareWorkload(std::vector<TransactionType> txns);

  /// Builds the multi-root expression DAG over every view and assertion,
  /// runs view selection, and materializes the chosen views. With a
  /// write-ahead log attached, also takes the initial checkpoint (the loaded
  /// base tables plus the freshly refreshed statistics), so the log prefix
  /// of bulk loads becomes redundant.
  Status Prepare();

  bool prepared() const { return manager_ != nullptr; }

  /// Attaches a write-ahead log to the database. A convenience over
  /// SessionOptions::durability for an already-constructed session; must
  /// run before Prepare.
  Status OpenWal(const DatabaseOptions& options);

  /// Replays the log's durable state: loads the latest checkpoint (base
  /// tables + catalog statistics), re-prepares with the identical optimizer
  /// inputs — re-deriving every materialized view bit-identically through
  /// the DeltaEngine — and replays the post-checkpoint transactions through
  /// the normal maintenance path. Without a checkpoint, the logged
  /// transactions are pre-Prepare loads and are applied directly. The
  /// caller must first re-create the schema (DDL script) and re-declare the
  /// workload, then call Recover *instead of* loading data. No-op on a
  /// fresh log.
  Status Recover();

  /// What the last Recover call found (zero-initialized before any call).
  const RecoveryInfo& last_recovery() const { return recovery_info_; }

  /// Writes a checkpoint covering the current state and truncates the log
  /// prefix. Requires Prepare (a pre-Prepare checkpoint would freeze
  /// unrefreshed statistics, and a recovered Prepare could then choose
  /// different views than the original run). With concurrency enabled, runs
  /// under the commit lock so the image is a committed state.
  Status Checkpoint();

  /// Turns on concurrent serving (docs/CONCURRENCY.md): publishes the
  /// initial snapshot and opens the optimistic commit funnel. Requires
  /// Prepare; idempotent. Afterwards this Session's own DML serializes
  /// through the same funnel, and OpenSession hands out concurrent
  /// sessions.
  Status EnableConcurrency();

  bool concurrent() const { return controller_ != nullptr; }

  /// A new concurrent SQL session over this database (its own snapshot pin
  /// and private delta-set; one thread each). Requires EnableConcurrency.
  /// The returned session must not outlive this Session.
  StatusOr<std::unique_ptr<TxnSession>> OpenSession();

  ConcurrencyController* controller() { return controller_.get(); }

  /// Chosen view set and its expected cost (valid after Prepare).
  const OptimizeResult& plan() const { return plan_; }
  const Memo& memo() const { return *memo_; }

  /// The maintained contents of a view or assertion by name.
  StatusOr<Relation> ViewContents(const std::string& name) const;

  /// Checks one assertion (or all, with empty name) right now.
  StatusOr<std::vector<AssertionCheck>> CheckAssertions() const;

  /// Verifies every maintained view against recomputation.
  Status CheckConsistency() const;

  Database& db() { return db_; }
  Catalog& catalog() { return catalog_; }
  const PageCounter& counter() const { return db_.counter(); }

  /// Sets the delta-propagation worker count (>= 1; 1 = sequential).
  /// Applies to the live ViewManager when prepared and to any manager a
  /// later Prepare/Recover constructs. Results and charged costs are
  /// bit-identical for every value (docs/CONCURRENCY.md). The shell's
  /// .threads command lands here.
  void SetMaintainThreads(int threads);
  int maintain_threads() const { return options_.maintain.threads; }

  /// Hash-shards every base relation that declares a shard key across
  /// `shards` sub-tables, and teaches the optimizer's cost model the same
  /// fanout. Must run before the first CREATE TABLE (the storage layout is
  /// fixed at table creation). Results, fingerprints and charged I/O are
  /// bit-identical for every count (docs/SHARDING.md); the shell's .shards
  /// command lands here.
  Status SetShardCount(int shards);
  int shard_count() const { return db_.shard_count(); }

  /// Declares `attrs` as the shard key of a not-yet-created table — applied
  /// when its CREATE TABLE executes (the shell's .shardkey command; SQL has
  /// no shard-key syntax). Attrs are validated against the schema then.
  void SetShardKey(const std::string& table, std::vector<std::string> attrs);

 private:
  StatusOr<ExecResult> ExecuteOne(const Statement& stmt);
  StatusOr<ExecResult> ExecuteSelect(const SelectQuery& query);
  StatusOr<ConcreteTxn> BuildConcreteTxn(const Statement& stmt,
                                         TransactionType* type);
  StatusOr<ExecResult> ApplyDml(const Statement& stmt);
  Status ApplyDirect(const ConcreteTxn& txn);
  /// Advisory auto-checkpoint after a committed DML (wal_checkpoint_every);
  /// a failure counts in `wal.checkpoint_failures` but does not fail the
  /// already-committed statement.
  void MaybeAutoCheckpoint();
  /// Best track for a transaction type, cached by signature.
  StatusOr<UpdateTrack> TrackFor(const TransactionType& type);
  /// Group id of a view/assertion name.
  StatusOr<GroupId> GroupOf(const std::string& name) const;
  /// Rows of `table` matching a WHERE predicate (nullptr = all).
  StatusOr<std::vector<Row>> MatchingRows(const std::string& table,
                                          const SqlExpr::Ptr& where);

  SessionOptions options_;
  Catalog catalog_;
  Database db_;
  Binder binder_;
  std::vector<TransactionType> workload_;
  /// Deferred construction-time OpenWal failure, surfaced by the first
  /// Execute/Prepare/Recover.
  Status wal_status_;
  RecoveryInfo recovery_info_;
  /// Recovery restored checkpoint-time statistics; Prepare must not refresh
  /// them from the tables, or the optimizer could see different inputs than
  /// the original run and pick different views.
  bool skip_stats_refresh_ = false;
  bool recovering_ = false;
  /// Shard keys declared via SetShardKey, consumed by CREATE TABLE.
  std::map<std::string, std::vector<std::string>> pending_shard_keys_;

  // Populated by Prepare.
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<ViewSelector> selector_;
  std::unique_ptr<ViewManager> manager_;
  OptimizeResult plan_;
  std::map<std::string, GroupId> roots_;  // view/assertion name -> group
  std::map<std::string, UpdateTrack> track_cache_;
  /// Non-null after EnableConcurrency.
  std::unique_ptr<ConcurrencyController> controller_;

  friend class TxnSession;
};

}  // namespace auxview

#endif  // AUXVIEW_API_SESSION_H_
