#ifndef AUXVIEW_API_SESSION_H_
#define AUXVIEW_API_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/relation.h"
#include "maintain/assertion.h"
#include "maintain/view_manager.h"
#include "optimizer/optimizer.h"
#include "optimizer/select_views.h"
#include "parser/binder.h"
#include "storage/database.h"

namespace auxview {

/// Result of Session::Execute for one statement.
struct ExecResult {
  enum class Kind { kDdl, kRows, kDml };
  Kind kind = Kind::kDdl;
  /// SELECT results.
  std::optional<Relation> rows;
  /// DML: tuples inserted/deleted/modified.
  int64_t affected = 0;
  /// DML rejected because an assertion would be violated (the transaction
  /// was rolled back); the violating assertion's name.
  std::string violated_assertion;

  bool rejected() const { return !violated_assertion.empty(); }
};

/// Options for a Session.
struct SessionOptions {
  /// Strategy used by Prepare to pick the auxiliary views.
  Strategy strategy = Strategy::kExhaustive;
  OptimizeOptions optimize;
  ExpandOptions expand;
  MaintainOptions maintain;
};

/// The end-to-end facade: a tiny "database" whose views and assertions are
/// maintained incrementally with optimizer-chosen auxiliary views.
///
///   Session session;
///   session.Execute("CREATE TABLE ...; CREATE VIEW ...; "
///                   "CREATE ASSERTION a CHECK (NOT EXISTS (...));");
///   session.Execute("INSERT INTO Emp VALUES ('e1', 'd1', 50000);");
///   session.DeclareWorkload({SingleModifyTxn(">Emp", "Emp", {"Salary"})});
///   session.Prepare();   // optimize + materialize (Section 6: one memo,
///                        // multiple roots — all views and assertions)
///   session.Execute("UPDATE Emp SET Salary = 99999 WHERE EName = 'e1';");
///   //  -> maintained incrementally; REJECTED (rolled back) if it would
///   //     violate an assertion.
///
/// Before Prepare, DML applies to base tables directly (bulk-load phase).
/// After Prepare, every DML statement flows through the chosen update
/// tracks and all views stay consistent.
class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Parses and executes a ';'-separated script; returns the result of the
  /// last statement.
  StatusOr<ExecResult> Execute(const std::string& sql);

  /// Declares the expected update workload (transaction types + weights)
  /// used by Prepare's optimization. Optional: without it, Prepare derives
  /// one modify-transaction per base relation with equal weights.
  void DeclareWorkload(std::vector<TransactionType> txns);

  /// Builds the multi-root expression DAG over every view and assertion,
  /// runs view selection, and materializes the chosen views.
  Status Prepare();

  bool prepared() const { return manager_ != nullptr; }

  /// Chosen view set and its expected cost (valid after Prepare).
  const OptimizeResult& plan() const { return plan_; }
  const Memo& memo() const { return *memo_; }

  /// The maintained contents of a view or assertion by name.
  StatusOr<Relation> ViewContents(const std::string& name) const;

  /// Checks one assertion (or all, with empty name) right now.
  StatusOr<std::vector<AssertionCheck>> CheckAssertions() const;

  /// Verifies every maintained view against recomputation.
  Status CheckConsistency() const;

  Database& db() { return db_; }
  Catalog& catalog() { return catalog_; }
  const PageCounter& counter() const { return db_.counter(); }

 private:
  StatusOr<ExecResult> ExecuteOne(const Statement& stmt);
  StatusOr<ExecResult> ExecuteSelect(const SelectQuery& query);
  StatusOr<ConcreteTxn> BuildConcreteTxn(const Statement& stmt,
                                         TransactionType* type);
  StatusOr<ExecResult> ApplyDml(const Statement& stmt);
  Status ApplyDirect(const ConcreteTxn& txn);
  /// Best track for a transaction type, cached by signature.
  StatusOr<UpdateTrack> TrackFor(const TransactionType& type);
  /// Group id of a view/assertion name.
  StatusOr<GroupId> GroupOf(const std::string& name) const;
  /// Rows of `table` matching a WHERE predicate (nullptr = all).
  StatusOr<std::vector<Row>> MatchingRows(const std::string& table,
                                          const SqlExpr::Ptr& where);

  SessionOptions options_;
  Catalog catalog_;
  Database db_;
  Binder binder_;
  std::vector<TransactionType> workload_;

  // Populated by Prepare.
  std::unique_ptr<Memo> memo_;
  std::unique_ptr<ViewSelector> selector_;
  std::unique_ptr<ViewManager> manager_;
  OptimizeResult plan_;
  std::map<std::string, GroupId> roots_;  // view/assertion name -> group
  std::map<std::string, UpdateTrack> track_cache_;
};

}  // namespace auxview

#endif  // AUXVIEW_API_SESSION_H_
