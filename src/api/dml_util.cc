#include "api/dml_util.h"

#include <map>

namespace auxview {
namespace dml {

StatusOr<Scalar::Ptr> ToTableScalar(const SqlExpr::Ptr& e,
                                    const std::string& table,
                                    const Schema& schema) {
  switch (e->kind) {
    case SqlExpr::Kind::kColumn:
      if (!e->qualifier.empty() && e->qualifier != table) {
        return Status::InvalidArgument("unknown qualifier: " + e->qualifier);
      }
      if (!schema.Contains(e->name)) {
        return Status::InvalidArgument("unknown column: " + e->name);
      }
      return Scalar::Column(e->name);
    case SqlExpr::Kind::kLiteral:
      return Scalar::Literal(e->literal);
    case SqlExpr::Kind::kUnaryNot: {
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr inner,
                               ToTableScalar(e->args[0], table, schema));
      return Scalar::Not(inner);
    }
    case SqlExpr::Kind::kBinary: {
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr l,
                               ToTableScalar(e->args[0], table, schema));
      AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr r,
                               ToTableScalar(e->args[1], table, schema));
      static const std::map<std::string, ScalarOp> kOps = {
          {"+", ScalarOp::kAdd}, {"-", ScalarOp::kSub},
          {"*", ScalarOp::kMul}, {"/", ScalarOp::kDiv},
          {"=", ScalarOp::kEq},  {"<>", ScalarOp::kNe},
          {"<", ScalarOp::kLt},  {"<=", ScalarOp::kLe},
          {">", ScalarOp::kGt},  {">=", ScalarOp::kGe},
          {"AND", ScalarOp::kAnd}, {"OR", ScalarOp::kOr}};
      auto it = kOps.find(e->op);
      if (it == kOps.end()) {
        return Status::InvalidArgument("unsupported operator: " + e->op);
      }
      return Scalar::Binary(it->second, l, r);
    }
    case SqlExpr::Kind::kFuncCall:
      return Status::InvalidArgument("aggregates not allowed in DML");
  }
  return Status::Internal("unhandled SqlExpr");
}

StatusOr<Value> EvalConstant(const SqlExpr::Ptr& e) {
  static const Schema kEmpty;
  AUXVIEW_ASSIGN_OR_RETURN(Scalar::Ptr scalar, ToTableScalar(e, "", kEmpty));
  static const Row kNoRow;
  return scalar->Eval(kNoRow, kEmpty);
}

StatusOr<Value> Coerce(const Value& v, ValueType type,
                       const std::string& col) {
  if (v.is_null() || v.type() == type) return v;
  if (type == ValueType::kDouble && v.type() == ValueType::kInt64) {
    return Value::Double(static_cast<double>(v.int64()));
  }
  if (type == ValueType::kInt64 && v.type() == ValueType::kDouble &&
      v.dbl() == static_cast<double>(static_cast<int64_t>(v.dbl()))) {
    return Value::Int64(static_cast<int64_t>(v.dbl()));
  }
  return Status::InvalidArgument("type mismatch for column " + col + ": " +
                                 v.ToString());
}

StatusOr<std::vector<Row>> MatchingRows(const Table& table,
                                        const SqlExpr::Ptr& where) {
  Scalar::Ptr pred;
  if (where != nullptr) {
    AUXVIEW_ASSIGN_OR_RETURN(
        pred, ToTableScalar(where, table.name(), table.schema()));
  }
  std::vector<Row> out;
  for (const CountedRow& cr : table.SnapshotUncharged()) {
    if (pred != nullptr) {
      AUXVIEW_ASSIGN_OR_RETURN(Value v, pred->Eval(cr.row, table.schema()));
      if (v.is_null() || !v.boolean()) continue;
    }
    out.push_back(cr.row);
  }
  return out;
}

namespace {

bool CollectEqualities(const SqlExpr::Ptr& e, const Schema& schema,
                       std::vector<std::pair<int, Value>>* out) {
  if (e->kind != SqlExpr::Kind::kBinary) return false;
  if (e->op == "AND") {
    return CollectEqualities(e->args[0], schema, out) &&
           CollectEqualities(e->args[1], schema, out);
  }
  if (e->op != "=") return false;
  const SqlExpr::Ptr* column = nullptr;
  const SqlExpr::Ptr* literal = nullptr;
  if (e->args[0]->kind == SqlExpr::Kind::kColumn &&
      e->args[1]->kind == SqlExpr::Kind::kLiteral) {
    column = &e->args[0];
    literal = &e->args[1];
  } else if (e->args[1]->kind == SqlExpr::Kind::kColumn &&
             e->args[0]->kind == SqlExpr::Kind::kLiteral) {
    column = &e->args[1];
    literal = &e->args[0];
  } else {
    return false;
  }
  const int idx = schema.IndexOf((*column)->name);
  if (idx < 0) return false;
  StatusOr<Value> coerced =
      Coerce((*literal)->literal, schema.column(idx).type, (*column)->name);
  if (!coerced.ok()) return false;
  out->emplace_back(idx, *std::move(coerced));
  return true;
}

}  // namespace

std::optional<std::vector<std::pair<int, Value>>> ExtractEqualities(
    const SqlExpr::Ptr& where, const Schema& schema) {
  if (where == nullptr) return std::nullopt;
  std::vector<std::pair<int, Value>> out;
  if (!CollectEqualities(where, schema, &out)) return std::nullopt;
  return out;
}

}  // namespace dml
}  // namespace auxview
