#ifndef AUXVIEW_MAINTAIN_DELTA_ENGINE_H_
#define AUXVIEW_MAINTAIN_DELTA_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cost/query_cost.h"
#include "delta/analysis.h"
#include "delta/locality.h"
#include "exec/kernels/row_batch.h"
#include "exec/relation.h"
#include "maintain/concrete.h"
#include "optimizer/track.h"
#include "optimizer/view_set.h"
#include "storage/database.h"

namespace auxview {

/// Stored-table name for a materialized (non-root) equivalence node.
std::string MaterializedViewName(GroupId g);

/// The runtime counterpart of track costing: given a concrete transaction,
/// computes real delta relations for every node on the update track — posing
/// real (I/O-charged) queries on base relations and materialized views — and
/// returns the per-group deltas. Queries see the pre-update database state;
/// the caller applies the deltas afterwards.
///
/// Propagation is batch-native and (optionally) parallel: deltas stay in
/// RowBatch form across the whole track and the track DAG is scheduled in
/// topological waves on WorkerPool::Shared() when `set_threads` asks for
/// more than one worker. Results, table fingerprints and charged page I/O
/// are bit-identical for every thread count (docs/CONCURRENCY.md,
/// "Intra-transaction parallelism").
class DeltaEngine {
 public:
  DeltaEngine(const Memo* memo, const Catalog* catalog, Database* db);

  /// Total propagation workers (>= 1; 1 = sequential). Resizes the shared
  /// pool to threads - 1 background workers (the applying thread is the
  /// extra one). Call between transactions only.
  void set_threads(int threads);
  int threads() const { return threads_; }

  /// Adapts the kernels' partitioning threshold to an EWMA of observed leaf
  /// delta sizes (MaintainOptions::adaptive_partitioning). Thresholds never
  /// affect results — partition assignment is a pure function of the batch —
  /// only where the parallel kernels kick in.
  void set_adaptive_partitioning(bool on) { adaptive_partitioning_ = on; }
  bool adaptive_partitioning() const { return adaptive_partitioning_; }

  /// Computes deltas for every group assigned on `track` (plus affected
  /// leaves), for the concrete transaction `txn` of declared type `type`.
  /// `marked` controls which groups answer queries by direct lookup.
  /// Deltas are signed counted bags aligned to each group's canonical schema.
  StatusOr<std::map<GroupId, Relation>> ComputeDeltas(
      const ConcreteTxn& txn, const TransactionType& type,
      const UpdateTrack& track, const ViewSet& marked);

  /// Fetches the (pre-update) rows of group `g` matching `key` on `attrs`,
  /// answering from a base relation / materialized view by indexed lookup or
  /// by the cheapest push-down plan otherwise. Empty attrs fetch everything.
  /// Within one ComputeDeltas call, identical fetches are served from a
  /// cache without re-charging I/O — the runtime counterpart of the cost
  /// model's multi-query sharing (Section 3.4).
  StatusOr<Relation> FetchMatching(GroupId g,
                                   const std::vector<std::string>& attrs,
                                   const Row& key, const ViewSet& marked);

  /// Batched FetchMatching: one result per key, in key order. The whole
  /// batch shares one push-down plan choice and one table probe-plan
  /// resolution (Table::LookupBatch), so a delta's partner fetch is a single
  /// build-once/probe-many pass instead of per-row lookups. Caching,
  /// modeled page I/O and the maintain.fetch_cache_* counters behave exactly
  /// as the equivalent sequence of single-key calls: a repeated key counts
  /// as a cache hit and is fetched once.
  StatusOr<std::vector<Relation>> FetchMatchingBatch(
      GroupId g, const std::vector<std::string>& attrs,
      const std::vector<Row>& keys, const ViewSet& marked);

  DeltaAnalysis& analysis() { return delta_; }

  /// Drops cached fetch results. Call after mutating the database outside
  /// ComputeDeltas (which clears automatically).
  void ClearFetchCache();

 private:
  /// The key-independent branch decisions of one aggregate node, precomputed
  /// sequentially (the memoizing static-delta analyses are not thread-safe).
  struct AggPlan {
    bool materialized = false;
    bool complete = false;
    bool needs_query = false;
  };

  struct ApplyContext {
    const ConcreteTxn* txn = nullptr;
    const TransactionType* type = nullptr;
    const UpdateTrack* track = nullptr;
    const ViewSet* marked = nullptr;
    std::set<GroupId> affected;
    std::map<GroupId, DeltaInfo> static_deltas;
    std::map<GroupId, AggPlan> agg_plans;
    /// Per-node coalesced delta batches (canonical group schema). Every
    /// entry is inserted sequentially before the waves run; a wave task
    /// assigns only its own node's mapped value, and tasks read only values
    /// finished in earlier waves — so no lock is needed on this map.
    std::map<GroupId, RowBatch> deltas;
  };

  /// Computes the distinct, uncached `keys` of FetchMatchingBatch: direct
  /// batched table probes for stored groups, the cheapest push-down plan
  /// (applied through the shared kernels) otherwise.
  StatusOr<std::vector<Relation>> FetchUncached(
      GroupId g, const std::vector<std::string>& attrs,
      const std::vector<Row>& keys, const ViewSet& marked);

  /// The memoized locality verdict for (type, track, marked) — classified
  /// once, validated on every transaction by the base-fetch assertion.
  StatusOr<const TrackLocalityReport*> ClassifyTrack(
      const TransactionType& type, const UpdateTrack& track,
      const ViewSet& marked);

  /// One wave task: computes node `g`'s delta from its (already finished)
  /// inputs and assigns the coalesced, aligned batch into ctx.deltas.
  Status ComputeNode(GroupId g, ApplyContext& ctx);
  /// The finished delta batch of `g` (must have been computed in an earlier
  /// wave or seeded — leaves and unaffected groups).
  const RowBatch& DeltaBatchOf(GroupId g, ApplyContext& ctx) const;
  StatusOr<RowBatch> LeafDeltaBatch(const MemoGroup& grp,
                                    const TableUpdate& update) const;
  StatusOr<RowBatch> JoinDelta(const MemoExpr& e, ApplyContext& ctx);
  StatusOr<RowBatch> AggregateDelta(const MemoExpr& e, ApplyContext& ctx);
  StatusOr<RowBatch> DupElimDelta(const MemoExpr& e, ApplyContext& ctx);
  StatusOr<DeltaInfo> StaticDeltaOf(GroupId g, ApplyContext& ctx);

  /// Aligns `rel` to `schema` (reorder/drop columns by name, summing counts).
  static StatusOr<Relation> AlignRelation(const Relation& rel,
                                          const Schema& schema);
  /// Aligns a batch to `schema` by per-entry column remap, preserving entry
  /// order (the batch-native counterpart of AlignRelation).
  static StatusOr<RowBatch> AlignBatch(const RowBatch& batch,
                                       const Schema& schema);

  const Memo* memo_;
  const Catalog* catalog_;
  Database* db_;
  StatsAnalysis stats_;
  FdAnalysis fds_;
  DeltaAnalysis delta_;
  QueryCoster coster_;
  int threads_ = 1;
  bool adaptive_partitioning_ = false;
  /// EWMA of total leaf-delta rows per ComputeDeltas (adaptive threshold).
  double batch_rows_ewma_ = 0;
  /// Locality verdicts keyed by (type name, track choice, marked set).
  std::map<std::string, TrackLocalityReport> locality_cache_;
  /// Armed while computing deltas of a track classified self-maintainable:
  /// a base-relation fetch under this flag is a CHECK failure, so the
  /// classifier's strongest verdict is re-proven on every transaction it is
  /// claimed for (read by wave workers, hence atomic).
  std::atomic<bool> forbid_base_fetch_{false};
  /// Per-ComputeDeltas query-result cache (pre-update state is immutable
  /// while deltas are computed, so caching is sound). Guarded by fetch_mu_
  /// together with the in-flight key set: the first requester of a key
  /// counts the miss and fetches outside the lock; concurrent requesters
  /// count a hit and wait on fetch_cv_. Waiting is deadlock-free because a
  /// fetch only ever waits on keys of strictly lower memo groups (push-down
  /// recursion descends the DAG). An owner's failure is recorded sticky in
  /// fetch_error_ so waiters wake with the same error instead of hanging.
  mutable std::mutex fetch_mu_;
  std::condition_variable fetch_cv_;
  std::map<std::string, Relation> fetch_cache_;
  std::set<std::string> fetch_pending_;
  Status fetch_error_;
  /// Serializes the push-down plan choice: QueryCoster and the analyses it
  /// reads memoize internally and are not thread-safe.
  std::mutex plan_mu_;
};

/// Applies a signed delta to a stored table, pairing matched -old/+new rows
/// on `pair_attrs` into in-place modifications (the paper's modify cost
/// model); unmatched rows become inserts/deletes.
Status ApplyDeltaToTable(Table* table, const Relation& delta,
                         const std::vector<std::string>& pair_attrs);

}  // namespace auxview

#endif  // AUXVIEW_MAINTAIN_DELTA_ENGINE_H_
