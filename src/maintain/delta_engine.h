#ifndef AUXVIEW_MAINTAIN_DELTA_ENGINE_H_
#define AUXVIEW_MAINTAIN_DELTA_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "cost/query_cost.h"
#include "delta/analysis.h"
#include "exec/relation.h"
#include "maintain/concrete.h"
#include "optimizer/track.h"
#include "optimizer/view_set.h"
#include "storage/database.h"

namespace auxview {

/// Stored-table name for a materialized (non-root) equivalence node.
std::string MaterializedViewName(GroupId g);

/// The runtime counterpart of track costing: given a concrete transaction,
/// computes real delta relations for every node on the update track — posing
/// real (I/O-charged) queries on base relations and materialized views — and
/// returns the per-group deltas. Queries see the pre-update database state;
/// the caller applies the deltas afterwards.
class DeltaEngine {
 public:
  DeltaEngine(const Memo* memo, const Catalog* catalog, Database* db);

  /// Computes deltas for every group assigned on `track` (plus affected
  /// leaves), for the concrete transaction `txn` of declared type `type`.
  /// `marked` controls which groups answer queries by direct lookup.
  /// Deltas are signed counted bags aligned to each group's canonical schema.
  StatusOr<std::map<GroupId, Relation>> ComputeDeltas(
      const ConcreteTxn& txn, const TransactionType& type,
      const UpdateTrack& track, const ViewSet& marked);

  /// Fetches the (pre-update) rows of group `g` matching `key` on `attrs`,
  /// answering from a base relation / materialized view by indexed lookup or
  /// by the cheapest push-down plan otherwise. Empty attrs fetch everything.
  /// Within one ComputeDeltas call, identical fetches are served from a
  /// cache without re-charging I/O — the runtime counterpart of the cost
  /// model's multi-query sharing (Section 3.4).
  StatusOr<Relation> FetchMatching(GroupId g,
                                   const std::vector<std::string>& attrs,
                                   const Row& key, const ViewSet& marked);

  /// Batched FetchMatching: one result per key, in key order. The whole
  /// batch shares one push-down plan choice and one table probe-plan
  /// resolution (Table::LookupBatch), so a delta's partner fetch is a single
  /// build-once/probe-many pass instead of per-row lookups. Caching,
  /// modeled page I/O and the maintain.fetch_cache_* counters behave exactly
  /// as the equivalent sequence of single-key calls: a repeated key counts
  /// as a cache hit and is fetched once.
  StatusOr<std::vector<Relation>> FetchMatchingBatch(
      GroupId g, const std::vector<std::string>& attrs,
      const std::vector<Row>& keys, const ViewSet& marked);

  DeltaAnalysis& analysis() { return delta_; }

  /// Drops cached fetch results. Call after mutating the database outside
  /// ComputeDeltas (which clears automatically).
  void ClearFetchCache();

 private:
  struct ApplyContext {
    const ConcreteTxn* txn = nullptr;
    const TransactionType* type = nullptr;
    const UpdateTrack* track = nullptr;
    const ViewSet* marked = nullptr;
    std::set<GroupId> affected;
    std::map<GroupId, DeltaInfo> static_deltas;
    std::map<GroupId, Relation> deltas;
  };

  /// Computes the distinct, uncached `keys` of FetchMatchingBatch: direct
  /// batched table probes for stored groups, the cheapest push-down plan
  /// (applied through the shared kernels) otherwise.
  StatusOr<std::vector<Relation>> FetchUncached(
      GroupId g, const std::vector<std::string>& attrs,
      const std::vector<Row>& keys, const ViewSet& marked);

  StatusOr<Relation> DeltaOf(GroupId g, ApplyContext& ctx);
  StatusOr<Relation> LeafDeltaRelation(const MemoGroup& grp,
                                       const TableUpdate& update) const;
  StatusOr<Relation> JoinDelta(const MemoExpr& e, ApplyContext& ctx);
  StatusOr<Relation> AggregateDelta(const MemoExpr& e, ApplyContext& ctx);
  StatusOr<Relation> DupElimDelta(const MemoExpr& e, ApplyContext& ctx);
  StatusOr<DeltaInfo> StaticDeltaOf(GroupId g, ApplyContext& ctx);

  /// Aligns `rel` to `schema` (reorder/drop columns by name, summing counts).
  static StatusOr<Relation> AlignRelation(const Relation& rel,
                                          const Schema& schema);

  const Memo* memo_;
  const Catalog* catalog_;
  Database* db_;
  StatsAnalysis stats_;
  FdAnalysis fds_;
  DeltaAnalysis delta_;
  QueryCoster coster_;
  /// Per-ComputeDeltas query-result cache (pre-update state is immutable
  /// while deltas are computed, so caching is sound).
  std::map<std::string, Relation> fetch_cache_;
};

/// Applies a signed delta to a stored table, pairing matched -old/+new rows
/// on `pair_attrs` into in-place modifications (the paper's modify cost
/// model); unmatched rows become inserts/deletes.
Status ApplyDeltaToTable(Table* table, const Relation& delta,
                         const std::vector<std::string>& pair_attrs);

}  // namespace auxview

#endif  // AUXVIEW_MAINTAIN_DELTA_ENGINE_H_
