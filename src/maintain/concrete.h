#ifndef AUXVIEW_MAINTAIN_CONCRETE_H_
#define AUXVIEW_MAINTAIN_CONCRETE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace auxview {

/// Concrete changes to one base relation in one transaction.
struct TableUpdate {
  std::string relation;
  std::vector<std::pair<Row, int64_t>> inserts;   // row, multiplicity
  std::vector<std::pair<Row, int64_t>> deletes;   // row, multiplicity
  std::vector<std::pair<Row, Row>> modifies;      // old row -> new row

  bool empty() const {
    return inserts.empty() && deletes.empty() && modifies.empty();
  }
};

/// A concrete transaction instance: actual tuples, belonging to a declared
/// TransactionType (whose name it carries).
struct ConcreteTxn {
  std::string type_name;
  std::vector<TableUpdate> updates;

  TableUpdate* FindUpdate(const std::string& relation) {
    for (TableUpdate& u : updates) {
      if (u.relation == relation) return &u;
    }
    return nullptr;
  }
  const TableUpdate* FindUpdate(const std::string& relation) const {
    for (const TableUpdate& u : updates) {
      if (u.relation == relation) return &u;
    }
    return nullptr;
  }
};

}  // namespace auxview

#endif  // AUXVIEW_MAINTAIN_CONCRETE_H_
