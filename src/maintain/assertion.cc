#include "maintain/assertion.h"

namespace auxview {

std::string AssertionCheck::ToString() const {
  if (holds) return "assertion " + name + " holds";
  std::string out = "assertion " + name + " VIOLATED by " +
                    std::to_string(violations.size()) + " row(s):";
  for (const Row& row : violations) {
    out += "\n  " + RowToString(row);
  }
  return out;
}

StatusOr<AssertionCheck> AssertionChecker::Check(const std::string& name,
                                                 GroupId g) const {
  AUXVIEW_ASSIGN_OR_RETURN(Relation contents, views_->ViewContents(g));
  AssertionCheck check;
  check.name = name;
  check.holds = contents.empty();
  for (const auto& [row, count] : contents.SortedRows()) {
    for (int64_t i = 0; i < count; ++i) check.violations.push_back(row);
  }
  return check;
}

}  // namespace auxview
