#include "maintain/delta_engine.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/worker_pool.h"
#include "exec/kernels/kernels.h"
#include "exec/kernels/row_batch.h"
#include "obs/metrics.h"
#include "storage/sharded_table.h"

namespace auxview {

namespace {

std::set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::set<std::string>(v.begin(), v.end());
}

std::vector<std::string> SchemaAttrList(const Schema& schema) {
  std::vector<std::string> out;
  for (const Column& c : schema.columns()) out.push_back(c.name);
  return out;
}

/// Projects `row` (laid out per `schema`) onto `attrs`.
Row ProjectRow(const Row& row, const Schema& schema,
               const std::vector<std::string>& attrs) {
  Row key;
  key.reserve(attrs.size());
  for (const std::string& a : attrs) {
    const int i = schema.IndexOf(a);
    AUXVIEW_CHECK(i >= 0);
    key.push_back(row[i]);
  }
  return key;
}

/// Filters `rel` to rows whose `attrs` projection equals `key`.
Relation FilterByKey(const Relation& rel, const std::vector<std::string>& attrs,
                     const Row& key) {
  if (attrs.empty()) return rel;
  Relation out(rel.schema());
  RowEq eq;
  for (const auto& [row, count] : rel.rows()) {
    if (eq(ProjectRow(row, rel.schema(), attrs), key)) out.Add(row, count);
  }
  return out;
}

/// Runs a unary operator kernel over a coalesced relation: batch in, batch
/// out, coalesce back. Survives only at fetch/materialization boundaries
/// (FetchUncached push-down, the aggregate query path) — track-internal
/// deltas stay RowBatch end to end.
StatusOr<Relation> ApplyUnaryKernel(const Expr& op, const Relation& in) {
  AUXVIEW_ASSIGN_OR_RETURN(RowBatch out,
                           kernels::ApplyUnary(op, RowBatch::FromRelation(in)));
  return out.ToRelation();
}

/// Joins two coalesced relations through the shared hash-join kernel: one
/// hash build over the right side, one probe per left row.
StatusOr<Relation> ApplyJoinKernel(const Expr& op, const Relation& left,
                                   const Relation& right) {
  AUXVIEW_ASSIGN_OR_RETURN(
      RowBatch out, kernels::HashJoin(op, RowBatch::FromRelation(left),
                                      RowBatch::FromRelation(right)));
  return out.ToRelation();
}

/// Live entry count of the (per-engine) fetch cache. Process-cumulative
/// last-writer-wins when several engines exist, like the other global
/// mirrors.
obs::Gauge* FetchCacheGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("maintain.fetch_cache_size");
  return gauge;
}

/// Entries merged away at batch coalesce points (leaf seeds and per-node
/// attach): in_entries - out_entries summed over every Coalesced() call.
obs::Counter* CoalesceRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintain.pool.coalesce_rows");
  return c;
}

obs::Counter* WavesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintain.pool.waves");
  return c;
}

// The closed maintain.shard.* namespace (docs/SHARDING.md,
// docs/OBSERVABILITY.md): per-transaction classification verdicts plus the
// sharded-vs-fallback routing decision.
obs::Counter* ShardClassCounter(TrackLocality locality) {
  static obs::Counter* sm = obs::MetricsRegistry::Global().GetCounter(
      "maintain.shard.class_self_maintainable");
  static obs::Counter* kl = obs::MetricsRegistry::Global().GetCounter(
      "maintain.shard.class_key_local");
  static obs::Counter* cs = obs::MetricsRegistry::Global().GetCounter(
      "maintain.shard.class_cross_shard");
  switch (locality) {
    case TrackLocality::kSelfMaintainable:
      return sm;
    case TrackLocality::kKeyLocal:
      return kl;
    case TrackLocality::kCrossShard:
      return cs;
  }
  return cs;
}

obs::Counter* ShardedTxnsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintain.shard.sharded_txns");
  return c;
}

obs::Counter* FallbackTxnsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintain.shard.fallback_txns");
  return c;
}

/// RAII arm/disarm of DeltaEngine::forbid_base_fetch_.
class ScopedForbidBaseFetch {
 public:
  ScopedForbidBaseFetch(std::atomic<bool>* flag, bool engage)
      : flag_(engage ? flag : nullptr) {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }
  ~ScopedForbidBaseFetch() {
    if (flag_ != nullptr) flag_->store(false, std::memory_order_relaxed);
  }
  ScopedForbidBaseFetch(const ScopedForbidBaseFetch&) = delete;
  ScopedForbidBaseFetch& operator=(const ScopedForbidBaseFetch&) = delete;

 private:
  std::atomic<bool>* flag_;
};

}  // namespace

std::string MaterializedViewName(GroupId g) {
  return "__mv_N" + std::to_string(g);
}

void DeltaEngine::ClearFetchCache() {
  std::lock_guard<std::mutex> lock(fetch_mu_);
  fetch_cache_.clear();
  fetch_pending_.clear();
  fetch_error_ = Status::Ok();
  FetchCacheGauge()->Set(0);
}

DeltaEngine::DeltaEngine(const Memo* memo, const Catalog* catalog,
                         Database* db)
    : memo_(memo),
      catalog_(catalog),
      db_(db),
      stats_(memo, catalog),
      fds_(memo, catalog),
      delta_(memo, catalog, &stats_),
      coster_(memo, catalog, &stats_, &fds_, IoCostModel()) {}

void DeltaEngine::set_threads(int threads) {
  threads_ = threads < 1 ? 1 : threads;
  WorkerPool::Shared().Resize(threads_ - 1);
}

StatusOr<const TrackLocalityReport*> DeltaEngine::ClassifyTrack(
    const TransactionType& type, const UpdateTrack& track,
    const ViewSet& marked) {
  std::string key = type.name + "#";
  for (const auto& [g, eid] : track.choice) {
    key += std::to_string(g) + ":" + std::to_string(eid) + ",";
  }
  key += "#";
  for (GroupId g : marked) key += std::to_string(g) + ",";
  auto it = locality_cache_.find(key);
  if (it == locality_cache_.end()) {
    LocalityClassifier classifier(memo_, catalog_, &delta_);
    AUXVIEW_ASSIGN_OR_RETURN(TrackLocalityReport report,
                             classifier.Classify(track, marked, type));
    it = locality_cache_.emplace(key, std::move(report)).first;
  }
  return &it->second;
}

StatusOr<Relation> DeltaEngine::AlignRelation(const Relation& rel,
                                              const Schema& schema) {
  if (rel.schema() == schema) return rel;
  std::vector<int> mapping;
  for (const Column& c : schema.columns()) {
    const int i = rel.schema().IndexOf(c.name);
    if (i < 0) {
      return Status::Internal("cannot align relation: missing column " +
                              c.name);
    }
    mapping.push_back(i);
  }
  Relation out(schema);
  for (const auto& [row, count] : rel.rows()) {
    Row aligned;
    aligned.reserve(mapping.size());
    for (int i : mapping) aligned.push_back(row[i]);
    out.Add(aligned, count);
  }
  return out;
}

StatusOr<RowBatch> DeltaEngine::AlignBatch(const RowBatch& batch,
                                           const Schema& schema) {
  if (batch.schema() == schema) return batch;
  std::vector<int> mapping;
  for (const Column& c : schema.columns()) {
    const int i = batch.schema().IndexOf(c.name);
    if (i < 0) {
      return Status::Internal("cannot align batch: missing column " + c.name);
    }
    mapping.push_back(i);
  }
  RowBatch out(schema);
  out.Reserve(batch.num_rows());
  Row aligned;
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    const RowRef row = batch.row(r);
    aligned.clear();
    aligned.reserve(mapping.size());
    for (int i : mapping) aligned.push_back(row[i]);
    out.Append(aligned, batch.count(r));
  }
  return out;
}

StatusOr<RowBatch> DeltaEngine::LeafDeltaBatch(const MemoGroup& grp,
                                               const TableUpdate& update) const {
  RowBatch out(grp.schema);
  for (const auto& [row, count] : update.inserts) out.Append(row, count);
  for (const auto& [row, count] : update.deletes) out.Append(row, -count);
  for (const auto& [old_row, new_row] : update.modifies) {
    const Table* table = db_->FindTable(grp.table);
    const int64_t mult = table != nullptr ? table->CountOf(old_row) : 1;
    out.Append(old_row, -std::max<int64_t>(mult, 1));
    out.Append(new_row, std::max<int64_t>(mult, 1));
  }
  RowBatch coalesced = out.Coalesced();
  CoalesceRowsCounter()->Add(out.num_rows() - coalesced.num_rows());
  return coalesced;
}

const RowBatch& DeltaEngine::DeltaBatchOf(GroupId g, ApplyContext& ctx) const {
  auto it = ctx.deltas.find(memo_->Find(g));
  AUXVIEW_CHECK_MSG(it != ctx.deltas.end(),
                    "delta dependency missing: wave scheduling bug");
  return it->second;
}

StatusOr<std::map<GroupId, Relation>> DeltaEngine::ComputeDeltas(
    const ConcreteTxn& txn, const TransactionType& type,
    const UpdateTrack& track, const ViewSet& marked) {
  static obs::Counter* calls =
      obs::MetricsRegistry::Global().GetCounter("maintain.compute_deltas");
  static obs::Counter* deltas_out = obs::MetricsRegistry::Global().GetCounter(
      "maintain.deltas_computed");
  static obs::Histogram* timing = obs::MetricsRegistry::Global().GetHistogram(
      "maintain.compute_deltas_us");
  calls->Add(1);
  obs::ScopedTimer timer(timing);
  AUXVIEW_FAILPOINT("maintain.compute_deltas");
  // Fresh caches (the database mutates between transactions).
  stats_.Clear();
  ClearFetchCache();
  ApplyContext ctx;
  ctx.txn = &txn;
  ctx.type = &type;
  ctx.track = &track;
  ViewSet marked_canon;
  for (GroupId g : marked) marked_canon.insert(memo_->Find(g));
  ctx.marked = &marked_canon;
  ctx.affected = delta_.AffectedGroups(type);

  // ---- Phase A (sequential): plan the track DAG. Walks exactly the
  // closure the former lazy recursion visited (join children only when
  // affected; every other input unconditionally), seeds leaf and
  // unaffected-group deltas, preinserts one ctx.deltas entry per node (wave
  // tasks assign mapped values only — the map never changes shape while
  // waves run), and precomputes the per-aggregate branch decisions through
  // the memoizing (single-threaded) static-delta analyses.
  std::set<GroupId> visited;
  std::vector<GroupId> node_order;  // post-order: inputs before consumers
  std::map<GroupId, std::vector<GroupId>> deps;  // affected non-leaf inputs
  std::function<Status(GroupId)> visit = [&](GroupId g) -> Status {
    g = memo_->Find(g);
    if (!visited.insert(g).second) return Status::Ok();
    const MemoGroup& grp = memo_->group(g);
    if (grp.is_leaf) {
      RowBatch seed(grp.schema);
      const TableUpdate* update = ctx.txn->FindUpdate(grp.table);
      if (update != nullptr) {
        AUXVIEW_ASSIGN_OR_RETURN(seed, LeafDeltaBatch(grp, *update));
      }
      ctx.deltas.emplace(g, std::move(seed));
      return Status::Ok();
    }
    if (ctx.affected.count(g) == 0) {
      ctx.deltas.emplace(g, RowBatch(grp.schema));
      return Status::Ok();
    }
    auto choice_it = ctx.track->choice.find(g);
    if (choice_it == ctx.track->choice.end()) {
      return Status::Internal("affected group off-track: N" +
                              std::to_string(g));
    }
    const MemoExpr& e = memo_->expr(choice_it->second);
    std::vector<GroupId> children;
    switch (e.kind()) {
      case OpKind::kScan:
        return Status::Internal("scan operation node off a leaf group");
      case OpKind::kSelect:
      case OpKind::kProject:
      case OpKind::kAggregate:
      case OpKind::kDupElim:
        children.push_back(memo_->Find(e.inputs[0]));
        break;
      case OpKind::kJoin: {
        const GroupId left = memo_->Find(e.inputs[0]);
        const GroupId right = memo_->Find(e.inputs[1]);
        if (ctx.affected.count(left) > 0) children.push_back(left);
        if (ctx.affected.count(right) > 0) children.push_back(right);
        break;
      }
    }
    std::vector<GroupId> my_deps;
    for (GroupId c : children) {
      AUXVIEW_RETURN_IF_ERROR(visit(c));
      if (!memo_->group(c).is_leaf && ctx.affected.count(c) > 0) {
        my_deps.push_back(c);
      }
    }
    if (e.kind() == OpKind::kAggregate) {
      const GroupId input = memo_->Find(e.inputs[0]);
      AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child_static,
                               StaticDeltaOf(input, ctx));
      AggPlan plan;
      plan.materialized = ctx.marked->count(g) > 0;
      plan.complete = child_static.CompleteWithin(ToSet(e.op->group_by()));
      plan.needs_query =
          delta_.AggregateNeedsQuery(e, child_static, plan.materialized);
      ctx.agg_plans[g] = plan;
    }
    deps[g] = std::move(my_deps);
    node_order.push_back(g);
    ctx.deltas.emplace(g, RowBatch(grp.schema));
    return Status::Ok();
  };
  for (const auto& [g, eid] : track.choice) {
    (void)eid;
    AUXVIEW_RETURN_IF_ERROR(visit(g));
  }

  // Wave assignment: a node runs one wave after its latest-finishing input.
  // Within a wave, tasks are ordered by ascending group id — a pure
  // function of the track, so the task list (and therefore the error chosen
  // on failure) is identical for every thread count.
  std::map<GroupId, size_t> wave_of;
  std::vector<std::vector<GroupId>> waves;
  for (GroupId g : node_order) {
    size_t w = 0;
    for (GroupId d : deps[g]) w = std::max(w, wave_of[d] + 1);
    wave_of[g] = w;
    if (waves.size() <= w) waves.resize(w + 1);
    waves[w].push_back(g);
  }
  for (std::vector<GroupId>& wave : waves) {
    std::sort(wave.begin(), wave.end());
  }

  // Adaptive partitioning threshold: track an EWMA of the transaction's
  // total leaf-delta rows and let kernels partition only batches at least
  // that large (small floor avoids partitioning trivial deltas). The
  // threshold never changes results, only where parallel kernels engage.
  if (adaptive_partitioning_) {
    int64_t seed_rows = 0;
    for (const auto& [g, batch] : ctx.deltas) {
      if (memo_->group(g).is_leaf) seed_rows += batch.num_rows();
    }
    batch_rows_ewma_ +=
        0.25 * (static_cast<double>(seed_rows) - batch_rows_ewma_);
    kernels::SetPartitionMinRows(
        std::max<int64_t>(16, static_cast<int64_t>(batch_rows_ewma_ + 0.5)));
  }

  // ---- Locality classification (docs/SHARDING.md). Every transaction
  // validates the strongest verdict at runtime: while a self-maintainable
  // track computes, any base-relation fetch is a CHECK failure. A sharded
  // database additionally runs decomposable, non-cross-shard tracks
  // independently per shard.
  AUXVIEW_ASSIGN_OR_RETURN(const TrackLocalityReport* locality,
                           ClassifyTrack(type, track, marked_canon));
  ShardClassCounter(locality->locality)->Add(1);
  ScopedForbidBaseFetch forbid_guard(
      &forbid_base_fetch_,
      locality->locality == TrackLocality::kSelfMaintainable);
  const int shards = db_->shard_count();
  const bool per_shard = shards > 1 && locality->decomposable &&
                         locality->locality != TrackLocality::kCrossShard;

  if (per_shard) {
    AUXVIEW_FAILPOINT("shard.route.fail");
    ShardedTxnsCounter()->Add(1);
    // One context per shard: shared plan state, private delta maps. Updated
    // leaves' seed batches are partitioned row-wise by the same hash the
    // storage router uses (a modify's -old/+new rows may land in different
    // shards; that is plain bag semantics — the classifier's alignment
    // condition keeps whole aggregate groups, distinct rows and join
    // matches inside one shard).
    std::vector<ApplyContext> shard_ctx(static_cast<size_t>(shards));
    for (ApplyContext& sc : shard_ctx) {
      sc.txn = ctx.txn;
      sc.type = ctx.type;
      sc.track = ctx.track;
      sc.marked = ctx.marked;
      sc.affected = ctx.affected;
      sc.static_deltas = ctx.static_deltas;
      sc.agg_plans = ctx.agg_plans;
    }
    for (const auto& [g, batch] : ctx.deltas) {
      for (ApplyContext& sc : shard_ctx) {
        sc.deltas.emplace(g, RowBatch(batch.schema()));
      }
      const MemoGroup& grp = memo_->group(g);
      if (!grp.is_leaf || batch.num_rows() == 0) continue;
      const TableDef* def = catalog_->FindTable(grp.table);
      if (def == nullptr) {
        return Status::NotFound("relation missing from catalog: " + grp.table);
      }
      std::vector<int> cols;
      cols.reserve(def->shard_key.size());
      for (const std::string& a : def->shard_key) {
        const int c = grp.schema.IndexOf(a);
        AUXVIEW_CHECK_MSG(c >= 0, "shard key attr missing from leaf schema");
        cols.push_back(c);
      }
      Row key;
      for (int64_t i = 0; i < batch.num_rows(); ++i) {
        const Row row = batch.RowAt(i);
        key.clear();
        for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
        const size_t s = static_cast<size_t>(ShardIndexFor(key, shards));
        shard_ctx[s].deltas.find(g)->second.Append(row, batch.count(i));
      }
    }
    // Same wave schedule, (node x shard) tasks. Fetches of all shards share
    // the engine cache, so every distinct key is still fetched — and
    // charged — exactly once, as on the global path.
    for (const std::vector<GroupId>& wave : waves) {
      WavesCounter()->Add(1);
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(wave.size() * static_cast<size_t>(shards));
      for (GroupId g : wave) {
        for (ApplyContext& sc : shard_ctx) {
          tasks.push_back([this, g, &sc] { return ComputeNode(g, sc); });
        }
      }
      AUXVIEW_RETURN_IF_ERROR(
          WorkerPool::Shared().RunAll(std::move(tasks), threads_));
    }
    deltas_out->Add(static_cast<int64_t>(ctx.deltas.size()));
    // Merge: a node's delta is the bag sum of its per-shard deltas
    // (Relation is order-canonical, so the merge order cannot show).
    std::map<GroupId, Relation> result;
    for (const auto& [g, batch] : ctx.deltas) {
      (void)batch;
      Relation merged(memo_->group(g).schema);
      for (const ApplyContext& sc : shard_ctx) {
        merged.AddAll(sc.deltas.find(g)->second.ToRelation());
      }
      result.emplace(g, std::move(merged));
    }
    return result;
  }
  if (shards > 1) FallbackTxnsCounter()->Add(1);

  // ---- Phase B: run the waves. Tasks of one wave only read deltas
  // finished in earlier waves (or seeded), so they are independent.
  for (const std::vector<GroupId>& wave : waves) {
    WavesCounter()->Add(1);
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(wave.size());
    for (GroupId g : wave) {
      tasks.push_back([this, g, &ctx] { return ComputeNode(g, ctx); });
    }
    AUXVIEW_RETURN_IF_ERROR(
        WorkerPool::Shared().RunAll(std::move(tasks), threads_));
  }

  deltas_out->Add(static_cast<int64_t>(ctx.deltas.size()));
  // The attach point: coalesced batches become the Relations the commit
  // path applies (batch-native until here).
  std::map<GroupId, Relation> result;
  for (const auto& [g, batch] : ctx.deltas) {
    result.emplace(g, batch.ToRelation());
  }
  return result;
}

Status DeltaEngine::ComputeNode(GroupId g, ApplyContext& ctx) {
  const MemoGroup& grp = memo_->group(g);
  auto choice_it = ctx.track->choice.find(g);
  AUXVIEW_CHECK(choice_it != ctx.track->choice.end());
  const MemoExpr& e = memo_->expr(choice_it->second);
  StatusOr<RowBatch> natural = [&]() -> StatusOr<RowBatch> {
    switch (e.kind()) {
      case OpKind::kScan:
        return Status::Internal("scan operation node off a leaf group");
      case OpKind::kSelect:
      case OpKind::kProject:
        return kernels::ApplyUnary(*e.op, DeltaBatchOf(e.inputs[0], ctx));
      case OpKind::kJoin:
        return JoinDelta(e, ctx);
      case OpKind::kAggregate:
        return AggregateDelta(e, ctx);
      case OpKind::kDupElim:
        return DupElimDelta(e, ctx);
    }
    return Status::Internal("unhandled op kind");
  }();
  AUXVIEW_RETURN_IF_ERROR(natural.status());
  AUXVIEW_ASSIGN_OR_RETURN(RowBatch aligned, AlignBatch(*natural, grp.schema));
  RowBatch coalesced = aligned.Coalesced();
  CoalesceRowsCounter()->Add(aligned.num_rows() - coalesced.num_rows());
  ctx.deltas.find(g)->second = std::move(coalesced);
  return Status::Ok();
}

StatusOr<DeltaInfo> DeltaEngine::StaticDeltaOf(GroupId g, ApplyContext& ctx) {
  g = memo_->Find(g);
  auto it = ctx.static_deltas.find(g);
  if (it != ctx.static_deltas.end()) return it->second;
  const MemoGroup& grp = memo_->group(g);
  DeltaInfo info;
  if (grp.is_leaf) {
    const UpdateSpec* spec = ctx.type->SpecFor(grp.table);
    if (spec != nullptr) {
      const TableDef* def = catalog_->FindTable(grp.table);
      if (def == nullptr) {
        return Status::NotFound("relation missing from catalog: " + grp.table);
      }
      info = delta_.LeafDelta(*def, *spec);
    }
  } else if (ctx.affected.count(g) > 0) {
    auto choice_it = ctx.track->choice.find(g);
    if (choice_it == ctx.track->choice.end()) {
      return Status::Internal("affected group off-track: N" +
                              std::to_string(g));
    }
    const MemoExpr& e = memo_->expr(choice_it->second);
    std::vector<DeltaInfo> child_deltas;
    for (GroupId in : e.inputs) {
      AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child, StaticDeltaOf(in, ctx));
      child_deltas.push_back(std::move(child));
    }
    info = delta_.Propagate(e, child_deltas);
  }
  ctx.static_deltas[g] = info;
  return info;
}

StatusOr<RowBatch> DeltaEngine::JoinDelta(const MemoExpr& e,
                                          ApplyContext& ctx) {
  const GroupId left = memo_->Find(e.inputs[0]);
  const GroupId right = memo_->Find(e.inputs[1]);
  const bool l_aff = ctx.affected.count(left) > 0;
  const bool r_aff = ctx.affected.count(right) > 0;
  const std::vector<std::string>& s = e.op->join_attrs();

  RowBatch out(e.natural_schema);

  // Distinct join keys of a delta, fetched as one batch: a single probe-plan
  // resolution (or push-down plan choice) serves every key, then the delta
  // joins its whole partner set through one hash build. Partner rows of
  // distinct keys are disjoint, so the partner batch is coalesced by
  // construction and appended in probe-key order (deterministic).
  auto fetch_partners = [&](const RowBatch& delta,
                            GroupId other) -> StatusOr<RowBatch> {
    std::set<std::string> seen;
    std::vector<Row> probe_keys;
    for (int64_t i = 0; i < delta.num_rows(); ++i) {
      Row key = ProjectRow(delta.RowAt(i), delta.schema(), s);
      if (!seen.insert(RowToString(key)).second) continue;
      probe_keys.push_back(std::move(key));
    }
    AUXVIEW_ASSIGN_OR_RETURN(
        std::vector<Relation> matches,
        FetchMatchingBatch(other, s, probe_keys, *ctx.marked));
    RowBatch partners(memo_->group(other).schema);
    for (const Relation& m : matches) {
      for (const auto& [row, count] : m.rows()) partners.Append(row, count);
    }
    return partners;
  };

  if (l_aff) {
    const RowBatch& dl = DeltaBatchOf(left, ctx);
    AUXVIEW_ASSIGN_OR_RETURN(RowBatch partners, fetch_partners(dl, right));
    AUXVIEW_ASSIGN_OR_RETURN(RowBatch term,
                             kernels::HashJoin(*e.op, dl, partners));
    out.AppendBatch(term);
  }
  if (r_aff) {
    const RowBatch& dr = DeltaBatchOf(right, ctx);
    AUXVIEW_ASSIGN_OR_RETURN(RowBatch partners, fetch_partners(dr, left));
    AUXVIEW_ASSIGN_OR_RETURN(RowBatch term,
                             kernels::HashJoin(*e.op, partners, dr));
    out.AppendBatch(term);
  }
  if (l_aff && r_aff) {
    AUXVIEW_ASSIGN_OR_RETURN(
        RowBatch term, kernels::HashJoin(*e.op, DeltaBatchOf(left, ctx),
                                         DeltaBatchOf(right, ctx)));
    out.AppendBatch(term);
  }
  return out;
}

StatusOr<RowBatch> DeltaEngine::AggregateDelta(const MemoExpr& e,
                                               ApplyContext& ctx) {
  const GroupId g = memo_->Find(e.group);
  const GroupId input = memo_->Find(e.inputs[0]);
  const RowBatch& dc = DeltaBatchOf(input, ctx);
  const AggPlan plan = ctx.agg_plans.at(g);
  const std::vector<std::string>& group_by = e.op->group_by();
  const bool materialized = plan.materialized;
  const bool complete = plan.complete;
  const bool needs_query = plan.needs_query;

  // Partition the child delta by group key (std::map: deterministic order
  // independent of the batch's entry order). Each group's sub-batch keeps
  // the delta's entry order.
  const Schema& child_schema = dc.schema();
  std::map<std::string, std::pair<Row, RowBatch>> per_key;
  for (int64_t i = 0; i < dc.num_rows(); ++i) {
    const Row row = dc.RowAt(i);
    Row key = ProjectRow(row, child_schema, group_by);
    const std::string key_str = RowToString(key);
    auto [it, inserted] =
        per_key.try_emplace(key_str, key, RowBatch(child_schema));
    it->second.second.Append(row, dc.count(i));
  }

  RowBatch out_natural(e.natural_schema);
  RowBatch out_canonical(memo_->group(g).schema);

  const Schema& view_schema = memo_->group(g).schema;
  const Table* view_table =
      materialized ? db_->FindTable(MaterializedViewName(g)) : nullptr;

  // The complete/self-maintenance/query choice below is key-independent, so
  // every group key takes the same branch — prefetch whatever that branch
  // reads with one batched probe over all keys (in per_key order).
  std::vector<Row> group_keys;
  group_keys.reserve(per_key.size());
  for (const auto& [key_str, entry] : per_key) {
    (void)key_str;
    group_keys.push_back(entry.first);
  }
  std::vector<Relation> old_contents;              // query path
  std::vector<std::vector<CountedRow>> view_rows;  // self-maintenance path
  if (!group_keys.empty() && !complete) {
    if (!needs_query && materialized) {
      if (view_table == nullptr) {
        return Status::Internal("materialized view table missing for N" +
                                std::to_string(g));
      }
      // These reads are part of the update cost, so they are not charged
      // (the uncharged probe replaces the sequential code's
      // ScopedCountingDisabled, which would leak across worker tasks).
      view_rows = view_table->LookupBatchUncharged(group_by, group_keys);
    } else {
      AUXVIEW_ASSIGN_OR_RETURN(
          old_contents,
          FetchMatchingBatch(input, group_by, group_keys, *ctx.marked));
    }
  }

  size_t key_idx = 0;
  for (auto& [key_str, entry] : per_key) {
    (void)key_str;
    const Row& key = entry.first;
    const RowBatch& sub = entry.second;
    if (complete) {
      // The delta covers the whole group: aggregate old and new content
      // directly from the sign-split sub-batch (entry order preserved).
      RowBatch old_content(child_schema);
      RowBatch new_content(child_schema);
      for (int64_t i = 0; i < sub.num_rows(); ++i) {
        const int64_t count = sub.count(i);
        if (count < 0) old_content.Append(sub.row(i), -count);
        if (count > 0) new_content.Append(sub.row(i), count);
      }
      AUXVIEW_ASSIGN_OR_RETURN(RowBatch old_rows,
                               kernels::GroupedAggregate(*e.op, old_content));
      AUXVIEW_ASSIGN_OR_RETURN(RowBatch new_rows,
                               kernels::GroupedAggregate(*e.op, new_content));
      for (int64_t i = 0; i < old_rows.num_rows(); ++i) {
        out_natural.Append(old_rows.row(i), -old_rows.count(i));
      }
      out_natural.AppendBatch(new_rows);
    } else if (!needs_query && materialized) {
      // Self-maintenance: the old group row came from the batched
      // (uncharged) view probe above; derive the new row algebraically.
      Row old_row;
      bool have_old = false;
      {
        const std::vector<CountedRow>& found = view_rows[key_idx];
        if (found.size() > 1) {
          return Status::Internal("duplicate group row in materialized view");
        }
        if (!found.empty()) {
          old_row = found[0].row;
          have_old = true;
        }
      }
      Row new_row(view_schema.num_columns());
      for (size_t i = 0; i < group_by.size(); ++i) {
        const int col = view_schema.IndexOf(group_by[i]);
        AUXVIEW_CHECK(col >= 0);
        new_row[col] = key[i];
      }
      int64_t new_total_count = -1;
      bool group_becomes_empty = false;
      for (const AggSpec& agg : e.op->aggs()) {
        const int col = view_schema.IndexOf(agg.output_name);
        AUXVIEW_CHECK(col >= 0);
        const Value old_val = have_old ? old_row[col] : Value::Null();
        switch (agg.func) {
          case AggFunc::kSum: {
            double delta_sum = 0;
            bool all_int = old_val.is_null() ||
                           old_val.type() == ValueType::kInt64;
            bool any = false;
            for (int64_t i = 0; i < sub.num_rows(); ++i) {
              const Row row = sub.RowAt(i);
              AUXVIEW_ASSIGN_OR_RETURN(Value v,
                                       agg.arg->Eval(row, child_schema));
              if (v.is_null()) continue;
              delta_sum += v.AsDouble() * static_cast<double>(sub.count(i));
              if (v.type() != ValueType::kInt64) all_int = false;
              any = true;
            }
            double base = old_val.is_null() ? 0 : old_val.AsDouble();
            if (!any && old_val.is_null()) {
              new_row[col] = Value::Null();
            } else if (all_int) {
              new_row[col] =
                  Value::Int64(static_cast<int64_t>(base + delta_sum));
            } else {
              new_row[col] = Value::Double(base + delta_sum);
            }
            break;
          }
          case AggFunc::kCount: {
            int64_t delta_count = 0;
            for (int64_t i = 0; i < sub.num_rows(); ++i) {
              if (agg.arg != nullptr) {
                const Row row = sub.RowAt(i);
                AUXVIEW_ASSIGN_OR_RETURN(Value v,
                                         agg.arg->Eval(row, child_schema));
                if (v.is_null()) continue;
              }
              delta_count += sub.count(i);
            }
            const int64_t base = old_val.is_null() ? 0 : old_val.int64();
            const int64_t next = base + delta_count;
            new_row[col] = Value::Int64(next);
            if (agg.arg == nullptr) {
              new_total_count = next;
              if (next <= 0) group_becomes_empty = true;
            }
            break;
          }
          case AggFunc::kMin:
          case AggFunc::kMax: {
            // Statically guaranteed: insert-only deltas.
            Value best = old_val;
            for (int64_t i = 0; i < sub.num_rows(); ++i) {
              if (sub.count(i) <= 0) {
                return Status::Internal(
                    "non-insert delta reached MIN/MAX self-maintenance");
              }
              const Row row = sub.RowAt(i);
              AUXVIEW_ASSIGN_OR_RETURN(Value v,
                                       agg.arg->Eval(row, child_schema));
              if (v.is_null()) continue;
              if (best.is_null() ||
                  (agg.func == AggFunc::kMin ? v.Compare(best) < 0
                                             : v.Compare(best) > 0)) {
                best = v;
              }
            }
            new_row[col] = best;
            break;
          }
          case AggFunc::kAvg:
            return Status::Internal(
                "AVG is not self-maintainable; query path expected");
        }
      }
      (void)new_total_count;
      if (have_old) out_canonical.Append(old_row, -1);
      if (!group_becomes_empty) out_canonical.Append(new_row, 1);
    } else {
      // Query path: the group's current contents came from the batched
      // prefetch above (a fetch boundary, so Relation interop is expected
      // here).
      const Relation& old_content = old_contents[key_idx];
      Relation new_content = old_content;
      sub.AccumulateInto(&new_content);
      AUXVIEW_ASSIGN_OR_RETURN(Relation old_rows,
                               ApplyUnaryKernel(*e.op, old_content));
      AUXVIEW_ASSIGN_OR_RETURN(Relation new_rows,
                               ApplyUnaryKernel(*e.op, new_content));
      for (const auto& [row, count] : old_rows.rows()) {
        out_natural.Append(row, -count);
      }
      for (const auto& [row, count] : new_rows.rows()) {
        out_natural.Append(row, count);
      }
    }
    ++key_idx;
  }

  AUXVIEW_ASSIGN_OR_RETURN(RowBatch aligned,
                           AlignBatch(out_natural, out_canonical.schema()));
  out_canonical.AppendBatch(aligned);
  return out_canonical;
}

StatusOr<RowBatch> DeltaEngine::DupElimDelta(const MemoExpr& e,
                                             ApplyContext& ctx) {
  const GroupId input = memo_->Find(e.inputs[0]);
  const RowBatch& dc = DeltaBatchOf(input, ctx);
  RowBatch out(e.natural_schema);
  const std::vector<std::string> attrs = SchemaAttrList(dc.schema());
  // One batched probe for every delta row's prior multiplicity (the node
  // batch is coalesced, so its entries are distinct rows).
  std::vector<Row> probe_rows;
  probe_rows.reserve(static_cast<size_t>(dc.num_rows()));
  for (int64_t i = 0; i < dc.num_rows(); ++i) probe_rows.push_back(dc.RowAt(i));
  AUXVIEW_ASSIGN_OR_RETURN(
      std::vector<Relation> existing_per_row,
      FetchMatchingBatch(input, attrs, probe_rows, *ctx.marked));
  for (size_t i = 0; i < probe_rows.size(); ++i) {
    const Row& row = probe_rows[i];
    const int64_t count = dc.count(static_cast<int64_t>(i));
    const int64_t old_mult = existing_per_row[i].CountOf(row);
    const int64_t new_mult = old_mult + count;
    if (new_mult < 0) {
      return Status::FailedPrecondition(
          "delta drives a multiplicity negative in DupElim");
    }
    if (old_mult > 0 && new_mult == 0) out.Append(row, -1);
    if (old_mult == 0 && new_mult > 0) out.Append(row, 1);
  }
  return out;
}

StatusOr<Relation> DeltaEngine::FetchMatching(
    GroupId g, const std::vector<std::string>& attrs, const Row& key,
    const ViewSet& marked) {
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> out,
                           FetchMatchingBatch(g, attrs, {key}, marked));
  return std::move(out[0]);
}

StatusOr<std::vector<Relation>> DeltaEngine::FetchMatchingBatch(
    GroupId g, const std::vector<std::string>& attrs,
    const std::vector<Row>& keys, const ViewSet& marked) {
  static obs::Counter* cache_hits =
      obs::MetricsRegistry::Global().GetCounter("maintain.fetch_cache_hits");
  static obs::Counter* cache_misses =
      obs::MetricsRegistry::Global().GetCounter("maintain.fetch_cache_misses");
  g = memo_->Find(g);
  const std::string prefix =
      "N" + std::to_string(g) + "|" + Join(attrs, ",") + "|";
  // Claim phase. Distinct unclaimed keys, in first-appearance order: a key
  // already cached — or pending, whether claimed by this call or a
  // concurrent one — counts as a hit, so the cache counters match the
  // equivalent per-key sequence exactly (the total charge is one fetch per
  // distinct key regardless of scheduling).
  std::vector<std::string> cache_keys;
  cache_keys.reserve(keys.size());
  std::vector<Row> miss_keys;
  std::vector<std::string> miss_cache_keys;
  {
    std::unique_lock<std::mutex> lock(fetch_mu_);
    if (!fetch_error_.ok()) return fetch_error_;
    for (const Row& key : keys) {
      std::string ck = prefix + RowToString(key);
      if (fetch_cache_.count(ck) > 0 || fetch_pending_.count(ck) > 0) {
        cache_hits->Add(1);
      } else {
        cache_misses->Add(1);
        Status fp = FailpointRegistry::Global().Check("maintain.fetch");
        if (!fp.ok()) {
          if (fetch_error_.ok()) fetch_error_ = fp;
          for (const std::string& claimed : miss_cache_keys) {
            fetch_pending_.erase(claimed);
          }
          fetch_cv_.notify_all();
          return fp;
        }
        fetch_pending_.insert(ck);
        miss_keys.push_back(key);
        miss_cache_keys.push_back(ck);
      }
      cache_keys.push_back(std::move(ck));
    }
  }
  // Fetch phase (no lock held): this thread owns its claimed keys; other
  // threads needing them wait on fetch_cv_ below.
  if (!miss_keys.empty()) {
    StatusOr<std::vector<Relation>> fetched =
        FetchUncached(g, attrs, miss_keys, marked);
    std::unique_lock<std::mutex> lock(fetch_mu_);
    if (!fetched.ok()) {
      if (fetch_error_.ok()) fetch_error_ = fetched.status();
      for (const std::string& claimed : miss_cache_keys) {
        fetch_pending_.erase(claimed);
      }
      fetch_cv_.notify_all();
      return fetched.status();
    }
    AUXVIEW_CHECK(fetched->size() == miss_keys.size());
    for (size_t i = 0; i < fetched->size(); ++i) {
      fetch_cache_[miss_cache_keys[i]] = std::move((*fetched)[i]);
      fetch_pending_.erase(miss_cache_keys[i]);
    }
    FetchCacheGauge()->Set(static_cast<int64_t>(fetch_cache_.size()));
    fetch_cv_.notify_all();
  }
  // Collect phase: wait for any keys a concurrent fetch still owns. This
  // cannot deadlock — by now this call owns no pending keys, and an owner
  // mid-FetchUncached only ever waits on strictly lower memo groups.
  std::vector<Relation> results;
  results.reserve(keys.size());
  {
    std::unique_lock<std::mutex> lock(fetch_mu_);
    for (const std::string& ck : cache_keys) {
      fetch_cv_.wait(lock, [this, &ck] {
        return fetch_cache_.count(ck) > 0 || !fetch_error_.ok();
      });
      auto it = fetch_cache_.find(ck);
      if (it == fetch_cache_.end()) return fetch_error_;
      results.push_back(it->second);
    }
  }
  return results;
}

StatusOr<std::vector<Relation>> DeltaEngine::FetchUncached(
    GroupId g, const std::vector<std::string>& attrs,
    const std::vector<Row>& keys, const ViewSet& marked) {
  const MemoGroup& grp = memo_->group(g);
  std::vector<Relation> out;
  out.reserve(keys.size());

  // Base relation or materialized view: direct (charged) probes — the probe
  // plan resolves once and every key goes through Table::LookupBatch.
  const Table* table = nullptr;
  if (grp.is_leaf) {
    // The classifier's strongest verdict, proven at runtime: a track labeled
    // self-maintainable must never reach a base relation.
    AUXVIEW_CHECK_MSG(
        !forbid_base_fetch_.load(std::memory_order_relaxed),
        "self-maintainable track fetched a base relation");
    table = db_->FindTable(grp.table);
    if (table == nullptr) {
      return Status::NotFound("missing base table: " + grp.table);
    }
  } else if (marked.count(g) > 0) {
    table = db_->FindTable(MaterializedViewName(g));
    if (table == nullptr) {
      return Status::Internal("missing materialized view table for N" +
                              std::to_string(g));
    }
  }
  if (table != nullptr) {
    if (attrs.empty()) {
      // Fetch-everything keys are all the empty row; distinct keys mean at
      // most one scan.
      for (size_t i = 0; i < keys.size(); ++i) {
        Relation rel(table->schema());
        for (const CountedRow& cr : table->ScanAll()) rel.Add(cr.row, cr.count);
        AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                                 AlignRelation(rel, grp.schema));
        out.push_back(std::move(aligned));
      }
      return out;
    }
    for (const std::vector<CountedRow>& found :
         table->LookupBatch(attrs, keys)) {
      Relation rel(table->schema());
      for (const CountedRow& cr : found) rel.Add(cr.row, cr.count);
      AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                               AlignRelation(rel, grp.schema));
      out.push_back(std::move(aligned));
    }
    return out;
  }

  // Unmaterialized: follow the cheapest plan (same choice as the estimator).
  // The plan cost depends on the probe attrs, never the key value, so one
  // choice serves the whole batch. The coster (and the stats/FD analyses it
  // reads) memoizes mutably, so the choice is serialized; the lock is
  // released before any push-down recursion.
  int best_eid = -1;
  {
    std::lock_guard<std::mutex> plan_lock(plan_mu_);
    std::set<GroupId> marked_set(marked.begin(), marked.end());
    double best_cost = std::numeric_limits<double>::infinity();
    for (int eid : grp.exprs) {
      const MemoExpr& cand = memo_->expr(eid);
      if (cand.dead) continue;
      const double cost = coster_.PlanLookupCost(cand, attrs, 1, marked_set);
      if (cost < best_cost) {
        best_cost = cost;
        best_eid = eid;
      }
    }
  }
  if (best_eid < 0) {
    return Status::Internal("no plan to answer a lookup on N" +
                            std::to_string(g));
  }
  const MemoExpr& e = memo_->expr(best_eid);

  StatusOr<std::vector<Relation>> naturals =
      [&]() -> StatusOr<std::vector<Relation>> {
    std::vector<Relation> nat;
    nat.reserve(keys.size());
    switch (e.kind()) {
      case OpKind::kScan:
        return Status::Internal("scan op in non-leaf group");
      case OpKind::kSelect: {
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            FetchMatchingBatch(e.inputs[0], attrs, keys, marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kProject: {
        std::set<std::string> passthrough;
        for (const ProjectItem& item : e.op->projections()) {
          if (item.expr->op() == ScalarOp::kColumn &&
              item.expr->column_name() == item.name) {
            passthrough.insert(item.name);
          }
        }
        const bool pushable = std::all_of(
            attrs.begin(), attrs.end(),
            [&](const std::string& a) { return passthrough.count(a) > 0; });
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            pushable ? FetchMatchingBatch(e.inputs[0], attrs, keys, marked)
                     : FetchMatchingBatch(e.inputs[0], {},
                                          std::vector<Row>(keys.size(), Row{}),
                                          marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kJoin: {
        const GroupId left = memo_->Find(e.inputs[0]);
        const GroupId right = memo_->Find(e.inputs[1]);
        const std::vector<std::string>& s = e.op->join_attrs();
        // Pick a side that contains every probe attribute.
        int side = -1;
        for (int candidate = 0; candidate < 2 && !attrs.empty(); ++candidate) {
          const GroupId x = candidate == 0 ? left : right;
          const Schema& xs = memo_->group(x).schema;
          if (std::all_of(attrs.begin(), attrs.end(),
                          [&](const std::string& a) {
                            return xs.Contains(a);
                          })) {
            side = candidate;
            break;
          }
        }
        if (attrs.empty() || side < 0) {
          const std::vector<Row> empties(keys.size(), Row{});
          AUXVIEW_ASSIGN_OR_RETURN(
              std::vector<Relation> full_l,
              FetchMatchingBatch(left, {}, empties, marked));
          AUXVIEW_ASSIGN_OR_RETURN(
              std::vector<Relation> full_r,
              FetchMatchingBatch(right, {}, empties, marked));
          for (size_t i = 0; i < keys.size(); ++i) {
            AUXVIEW_ASSIGN_OR_RETURN(
                Relation r, ApplyJoinKernel(*e.op, full_l[i], full_r[i]));
            nat.push_back(std::move(r));
          }
          return nat;
        }
        const GroupId x = side == 0 ? left : right;
        const GroupId y = side == 0 ? right : left;
        AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> subs,
                                 FetchMatchingBatch(x, attrs, keys, marked));
        // Per parent key, dedup its semijoin keys (a single sub never
        // re-fetches a partner key), then fetch every parent's partners in
        // one batch — cross-parent repeats become cache hits.
        std::vector<Row> all_skeys;
        std::vector<size_t> begin_of(keys.size() + 1, 0);
        for (size_t i = 0; i < subs.size(); ++i) {
          begin_of[i] = all_skeys.size();
          std::set<std::string> seen;
          for (const auto& [row, count] : subs[i].rows()) {
            (void)count;
            Row skey = ProjectRow(row, subs[i].schema(), s);
            if (!seen.insert(RowToString(skey)).second) continue;
            all_skeys.push_back(std::move(skey));
          }
        }
        begin_of[subs.size()] = all_skeys.size();
        AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> partner_rels,
                                 FetchMatchingBatch(y, s, all_skeys, marked));
        for (size_t i = 0; i < subs.size(); ++i) {
          Relation partners(memo_->group(y).schema);
          for (size_t j = begin_of[i]; j < begin_of[i + 1]; ++j) {
            partners.AddAll(partner_rels[j]);
          }
          AUXVIEW_ASSIGN_OR_RETURN(
              Relation r,
              side == 0 ? ApplyJoinKernel(*e.op, subs[i], partners)
                        : ApplyJoinKernel(*e.op, partners, subs[i]));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kAggregate: {
        const std::set<std::string> gb = ToSet(e.op->group_by());
        const bool pushable =
            !attrs.empty() &&
            std::all_of(attrs.begin(), attrs.end(),
                        [&](const std::string& a) { return gb.count(a) > 0; });
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            pushable ? FetchMatchingBatch(e.inputs[0], attrs, keys, marked)
                     : FetchMatchingBatch(e.inputs[0], {},
                                          std::vector<Row>(keys.size(), Row{}),
                                          marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kDupElim: {
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            FetchMatchingBatch(e.inputs[0], attrs, keys, marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
    }
    return Status::Internal("unhandled op kind");
  }();
  AUXVIEW_RETURN_IF_ERROR(naturals.status());
  for (size_t i = 0; i < keys.size(); ++i) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                             AlignRelation((*naturals)[i], grp.schema));
    out.push_back(FilterByKey(aligned, attrs, keys[i]));
  }
  return out;
}

Status ApplyDeltaToTable(Table* table, const Relation& delta,
                         const std::vector<std::string>& pair_attrs) {
  AUXVIEW_ASSIGN_OR_RETURN(Relation aligned, [&]() -> StatusOr<Relation> {
    if (delta.schema() == table->schema()) return delta;
    // Align by name.
    std::vector<int> mapping;
    for (const Column& c : table->schema().columns()) {
      const int i = delta.schema().IndexOf(c.name);
      if (i < 0) {
        return Status::Internal("delta misses view column " + c.name);
      }
      mapping.push_back(i);
    }
    Relation out(table->schema());
    for (const auto& [row, count] : delta.rows()) {
      Row aligned_row;
      for (int i : mapping) aligned_row.push_back(row[i]);
      out.Add(aligned_row, count);
    }
    return out;
  }());

  // Bucket by pairing key.
  std::vector<int> key_cols;
  for (const std::string& a : pair_attrs) {
    const int i = table->schema().IndexOf(a);
    if (i >= 0) key_cols.push_back(i);
  }
  // Iterate in sorted row order: Relation hashes rows, and the -n/+n
  // pairing below is first-match, so bucketing from raw iteration order
  // would make the chosen modify pairs — and their charges — depend on how
  // the delta was assembled (e.g. merged per shard vs computed globally).
  std::map<std::string, std::vector<std::pair<Row, int64_t>>> buckets;
  for (const auto& [row, count] : aligned.SortedRows()) {
    Row key;
    for (int c : key_cols) key.push_back(row[c]);
    buckets[RowToString(key)].emplace_back(row, count);
  }
  for (auto& [key, entries] : buckets) {
    (void)key;
    // Pair each -n with a +n into in-place modifications (batched: the
    // paper charges one index page for a whole same-key batch); whatever
    // cannot be paired falls back to plain inserts/deletes.
    std::vector<std::pair<Row, int64_t>> negs;
    std::vector<std::pair<Row, int64_t>> poss;
    for (auto& entry : entries) {
      (entry.second < 0 ? negs : poss).push_back(entry);
    }
    std::vector<std::pair<Row, Row>> pairs;
    std::vector<std::pair<Row, int64_t>> leftovers;
    std::vector<bool> pos_used(poss.size(), false);
    for (auto& neg : negs) {
      bool paired = false;
      if (table->CountOf(neg.first) == -neg.second) {
        for (size_t i = 0; i < poss.size(); ++i) {
          if (pos_used[i] || poss[i].second != -neg.second) continue;
          pairs.emplace_back(neg.first, poss[i].first);
          pos_used[i] = true;
          paired = true;
          break;
        }
      }
      if (!paired) leftovers.push_back(neg);
    }
    for (size_t i = 0; i < poss.size(); ++i) {
      if (!pos_used[i]) leftovers.push_back(poss[i]);
    }
    if (!pairs.empty()) {
      AUXVIEW_RETURN_IF_ERROR(table->ModifyBatch(pairs));
    }
    for (const auto& [row, count] : leftovers) {
      AUXVIEW_RETURN_IF_ERROR(table->Apply(row, count));
    }
  }
  return Status::Ok();
}

}  // namespace auxview
