#include "maintain/delta_engine.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "exec/kernels/kernels.h"
#include "exec/kernels/row_batch.h"
#include "obs/metrics.h"

namespace auxview {

namespace {

std::set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::set<std::string>(v.begin(), v.end());
}

std::vector<std::string> SchemaAttrList(const Schema& schema) {
  std::vector<std::string> out;
  for (const Column& c : schema.columns()) out.push_back(c.name);
  return out;
}

/// Projects `row` (laid out per `schema`) onto `attrs`.
Row ProjectRow(const Row& row, const Schema& schema,
               const std::vector<std::string>& attrs) {
  Row key;
  key.reserve(attrs.size());
  for (const std::string& a : attrs) {
    const int i = schema.IndexOf(a);
    AUXVIEW_CHECK(i >= 0);
    key.push_back(row[i]);
  }
  return key;
}

/// Filters `rel` to rows whose `attrs` projection equals `key`.
Relation FilterByKey(const Relation& rel, const std::vector<std::string>& attrs,
                     const Row& key) {
  if (attrs.empty()) return rel;
  Relation out(rel.schema());
  RowEq eq;
  for (const auto& [row, count] : rel.rows()) {
    if (eq(ProjectRow(row, rel.schema(), attrs), key)) out.Add(row, count);
  }
  return out;
}

/// Runs a unary operator kernel over a coalesced relation: batch in, batch
/// out, coalesce back. Entry order is the relation's iteration order, so
/// accumulation order matches the former row-at-a-time code.
StatusOr<Relation> ApplyUnaryKernel(const Expr& op, const Relation& in) {
  AUXVIEW_ASSIGN_OR_RETURN(RowBatch out,
                           kernels::ApplyUnary(op, RowBatch::FromRelation(in)));
  return out.ToRelation();
}

/// Joins two coalesced relations through the shared hash-join kernel: one
/// hash build over the right side, one probe per left row.
StatusOr<Relation> ApplyJoinKernel(const Expr& op, const Relation& left,
                                   const Relation& right) {
  AUXVIEW_ASSIGN_OR_RETURN(
      RowBatch out, kernels::HashJoin(op, RowBatch::FromRelation(left),
                                      RowBatch::FromRelation(right)));
  return out.ToRelation();
}

/// Live entry count of the (per-engine) fetch cache. Process-cumulative
/// last-writer-wins when several engines exist, like the other global
/// mirrors.
obs::Gauge* FetchCacheGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("maintain.fetch_cache_size");
  return gauge;
}

}  // namespace

std::string MaterializedViewName(GroupId g) {
  return "__mv_N" + std::to_string(g);
}

void DeltaEngine::ClearFetchCache() {
  fetch_cache_.clear();
  FetchCacheGauge()->Set(0);
}

DeltaEngine::DeltaEngine(const Memo* memo, const Catalog* catalog,
                         Database* db)
    : memo_(memo),
      catalog_(catalog),
      db_(db),
      stats_(memo, catalog),
      fds_(memo, catalog),
      delta_(memo, catalog, &stats_),
      coster_(memo, catalog, &stats_, &fds_, IoCostModel()) {}

StatusOr<Relation> DeltaEngine::AlignRelation(const Relation& rel,
                                              const Schema& schema) {
  if (rel.schema() == schema) return rel;
  std::vector<int> mapping;
  for (const Column& c : schema.columns()) {
    const int i = rel.schema().IndexOf(c.name);
    if (i < 0) {
      return Status::Internal("cannot align relation: missing column " +
                              c.name);
    }
    mapping.push_back(i);
  }
  Relation out(schema);
  for (const auto& [row, count] : rel.rows()) {
    Row aligned;
    aligned.reserve(mapping.size());
    for (int i : mapping) aligned.push_back(row[i]);
    out.Add(aligned, count);
  }
  return out;
}

StatusOr<Relation> DeltaEngine::LeafDeltaRelation(
    const MemoGroup& grp, const TableUpdate& update) const {
  Relation out(grp.schema);
  for (const auto& [row, count] : update.inserts) out.Add(row, count);
  for (const auto& [row, count] : update.deletes) out.Add(row, -count);
  for (const auto& [old_row, new_row] : update.modifies) {
    const Table* table = db_->FindTable(grp.table);
    const int64_t mult = table != nullptr ? table->CountOf(old_row) : 1;
    out.Add(old_row, -std::max<int64_t>(mult, 1));
    out.Add(new_row, std::max<int64_t>(mult, 1));
  }
  return out;
}

StatusOr<std::map<GroupId, Relation>> DeltaEngine::ComputeDeltas(
    const ConcreteTxn& txn, const TransactionType& type,
    const UpdateTrack& track, const ViewSet& marked) {
  static obs::Counter* calls =
      obs::MetricsRegistry::Global().GetCounter("maintain.compute_deltas");
  static obs::Counter* deltas_out = obs::MetricsRegistry::Global().GetCounter(
      "maintain.deltas_computed");
  static obs::Histogram* timing = obs::MetricsRegistry::Global().GetHistogram(
      "maintain.compute_deltas_us");
  calls->Add(1);
  obs::ScopedTimer timer(timing);
  AUXVIEW_FAILPOINT("maintain.compute_deltas");
  // Fresh caches (the database mutates between transactions).
  stats_.Clear();
  ClearFetchCache();
  ApplyContext ctx;
  ctx.txn = &txn;
  ctx.type = &type;
  ctx.track = &track;
  ViewSet marked_canon;
  for (GroupId g : marked) marked_canon.insert(memo_->Find(g));
  ctx.marked = &marked_canon;
  ctx.affected = delta_.AffectedGroups(type);
  for (const auto& [g, eid] : track.choice) {
    (void)eid;
    AUXVIEW_RETURN_IF_ERROR(DeltaOf(g, ctx).status());
  }
  deltas_out->Add(static_cast<int64_t>(ctx.deltas.size()));
  return std::move(ctx.deltas);
}

StatusOr<DeltaInfo> DeltaEngine::StaticDeltaOf(GroupId g, ApplyContext& ctx) {
  g = memo_->Find(g);
  auto it = ctx.static_deltas.find(g);
  if (it != ctx.static_deltas.end()) return it->second;
  const MemoGroup& grp = memo_->group(g);
  DeltaInfo info;
  if (grp.is_leaf) {
    const UpdateSpec* spec = ctx.type->SpecFor(grp.table);
    if (spec != nullptr) {
      const TableDef* def = catalog_->FindTable(grp.table);
      if (def == nullptr) {
        return Status::NotFound("relation missing from catalog: " + grp.table);
      }
      info = delta_.LeafDelta(*def, *spec);
    }
  } else if (ctx.affected.count(g) > 0) {
    auto choice_it = ctx.track->choice.find(g);
    if (choice_it == ctx.track->choice.end()) {
      return Status::Internal("affected group off-track: N" +
                              std::to_string(g));
    }
    const MemoExpr& e = memo_->expr(choice_it->second);
    std::vector<DeltaInfo> child_deltas;
    for (GroupId in : e.inputs) {
      AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child, StaticDeltaOf(in, ctx));
      child_deltas.push_back(std::move(child));
    }
    info = delta_.Propagate(e, child_deltas);
  }
  ctx.static_deltas[g] = info;
  return info;
}

StatusOr<Relation> DeltaEngine::DeltaOf(GroupId g, ApplyContext& ctx) {
  g = memo_->Find(g);
  auto it = ctx.deltas.find(g);
  if (it != ctx.deltas.end()) return it->second;
  const MemoGroup& grp = memo_->group(g);
  Relation delta(grp.schema);
  if (grp.is_leaf) {
    const TableUpdate* update = ctx.txn->FindUpdate(grp.table);
    if (update != nullptr) {
      AUXVIEW_ASSIGN_OR_RETURN(delta, LeafDeltaRelation(grp, *update));
    }
  } else if (ctx.affected.count(g) > 0) {
    auto choice_it = ctx.track->choice.find(g);
    if (choice_it == ctx.track->choice.end()) {
      return Status::Internal("affected group off-track: N" +
                              std::to_string(g));
    }
    const MemoExpr& e = memo_->expr(choice_it->second);
    StatusOr<Relation> natural = [&]() -> StatusOr<Relation> {
      switch (e.kind()) {
        case OpKind::kScan:
          return Status::Internal("scan operation node off a leaf group");
        case OpKind::kSelect:
        case OpKind::kProject: {
          AUXVIEW_ASSIGN_OR_RETURN(Relation in, DeltaOf(e.inputs[0], ctx));
          return ApplyUnaryKernel(*e.op, in);
        }
        case OpKind::kJoin:
          return JoinDelta(e, ctx);
        case OpKind::kAggregate:
          return AggregateDelta(e, ctx);
        case OpKind::kDupElim:
          return DupElimDelta(e, ctx);
      }
      return Status::Internal("unhandled op kind");
    }();
    AUXVIEW_RETURN_IF_ERROR(natural.status());
    AUXVIEW_ASSIGN_OR_RETURN(delta, AlignRelation(*natural, grp.schema));
  }
  ctx.deltas[g] = delta;
  return delta;
}

StatusOr<Relation> DeltaEngine::JoinDelta(const MemoExpr& e,
                                          ApplyContext& ctx) {
  const GroupId left = memo_->Find(e.inputs[0]);
  const GroupId right = memo_->Find(e.inputs[1]);
  const bool l_aff = ctx.affected.count(left) > 0;
  const bool r_aff = ctx.affected.count(right) > 0;
  const std::vector<std::string>& s = e.op->join_attrs();

  Relation out(e.natural_schema);

  // Distinct join keys of a delta, fetched as one batch: a single probe-plan
  // resolution (or push-down plan choice) serves every key, then the delta
  // joins its whole partner set through one hash build.
  auto fetch_partners = [&](const Relation& delta,
                            GroupId other) -> StatusOr<Relation> {
    Relation partners(memo_->group(other).schema);
    std::set<std::string> seen;
    std::vector<Row> probe_keys;
    for (const auto& [row, count] : delta.rows()) {
      (void)count;
      Row key = ProjectRow(row, delta.schema(), s);
      if (!seen.insert(RowToString(key)).second) continue;
      probe_keys.push_back(std::move(key));
    }
    AUXVIEW_ASSIGN_OR_RETURN(
        std::vector<Relation> matches,
        FetchMatchingBatch(other, s, probe_keys, *ctx.marked));
    for (const Relation& m : matches) partners.AddAll(m);
    return partners;
  };

  if (l_aff) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation dl, DeltaOf(left, ctx));
    AUXVIEW_ASSIGN_OR_RETURN(Relation partners, fetch_partners(dl, right));
    AUXVIEW_ASSIGN_OR_RETURN(Relation term,
                             ApplyJoinKernel(*e.op, dl, partners));
    out.AddAll(term);
  }
  if (r_aff) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation dr, DeltaOf(right, ctx));
    AUXVIEW_ASSIGN_OR_RETURN(Relation partners, fetch_partners(dr, left));
    AUXVIEW_ASSIGN_OR_RETURN(Relation term,
                             ApplyJoinKernel(*e.op, partners, dr));
    out.AddAll(term);
  }
  if (l_aff && r_aff) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation dl, DeltaOf(left, ctx));
    AUXVIEW_ASSIGN_OR_RETURN(Relation dr, DeltaOf(right, ctx));
    AUXVIEW_ASSIGN_OR_RETURN(Relation term, ApplyJoinKernel(*e.op, dl, dr));
    out.AddAll(term);
  }
  return out;
}

StatusOr<Relation> DeltaEngine::AggregateDelta(const MemoExpr& e,
                                               ApplyContext& ctx) {
  const GroupId g = memo_->Find(e.group);
  const GroupId input = memo_->Find(e.inputs[0]);
  AUXVIEW_ASSIGN_OR_RETURN(Relation dc, DeltaOf(input, ctx));
  AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child_static, StaticDeltaOf(input, ctx));
  const std::vector<std::string>& group_by = e.op->group_by();
  const bool materialized = ctx.marked->count(g) > 0;
  const bool complete = child_static.CompleteWithin(ToSet(group_by));
  const bool needs_query =
      delta_.AggregateNeedsQuery(e, child_static, materialized);

  // Partition the child delta by group key.
  const Schema& child_schema = dc.schema();
  std::map<std::string, std::pair<Row, Relation>> per_key;
  for (const auto& [row, count] : dc.rows()) {
    Row key = ProjectRow(row, child_schema, group_by);
    const std::string key_str = RowToString(key);
    auto [it, inserted] =
        per_key.try_emplace(key_str, key, Relation(child_schema));
    it->second.second.Add(row, count);
  }

  Relation out_natural(e.natural_schema);
  Relation out_canonical(memo_->group(g).schema);

  const Schema& view_schema = memo_->group(g).schema;
  const Table* view_table =
      materialized ? db_->FindTable(MaterializedViewName(g)) : nullptr;

  // The complete/self-maintenance/query choice below is key-independent, so
  // every group key takes the same branch — prefetch whatever that branch
  // reads with one batched probe over all keys (in per_key order).
  std::vector<Row> group_keys;
  group_keys.reserve(per_key.size());
  for (const auto& [key_str, entry] : per_key) {
    (void)key_str;
    group_keys.push_back(entry.first);
  }
  std::vector<Relation> old_contents;              // query path
  std::vector<std::vector<CountedRow>> view_rows;  // self-maintenance path
  if (!group_keys.empty() && !complete) {
    if (!needs_query && materialized) {
      if (view_table == nullptr) {
        return Status::Internal("materialized view table missing for N" +
                                std::to_string(g));
      }
      // These reads are part of the update cost, so they are not charged.
      ScopedCountingDisabled guard(&db_->counter());
      view_rows = view_table->LookupBatch(group_by, group_keys);
    } else {
      AUXVIEW_ASSIGN_OR_RETURN(
          old_contents,
          FetchMatchingBatch(input, group_by, group_keys, *ctx.marked));
    }
  }

  size_t key_idx = 0;
  for (auto& [key_str, entry] : per_key) {
    (void)key_str;
    const Row& key = entry.first;
    const Relation& sub = entry.second;
    if (complete) {
      Relation old_content(child_schema);
      Relation new_content(child_schema);
      for (const auto& [row, count] : sub.rows()) {
        if (count < 0) old_content.Add(row, -count);
        if (count > 0) new_content.Add(row, count);
      }
      AUXVIEW_ASSIGN_OR_RETURN(Relation old_rows,
                               ApplyUnaryKernel(*e.op, old_content));
      AUXVIEW_ASSIGN_OR_RETURN(Relation new_rows,
                               ApplyUnaryKernel(*e.op, new_content));
      for (const auto& [row, count] : old_rows.rows()) {
        out_natural.Add(row, -count);
      }
      out_natural.AddAll(new_rows);
    } else if (!needs_query && materialized) {
      // Self-maintenance: the old group row came from the batched
      // (uncharged) view probe above; derive the new row algebraically.
      Row old_row;
      bool have_old = false;
      {
        const std::vector<CountedRow>& found = view_rows[key_idx];
        if (found.size() > 1) {
          return Status::Internal("duplicate group row in materialized view");
        }
        if (!found.empty()) {
          old_row = found[0].row;
          have_old = true;
        }
      }
      Row new_row(view_schema.num_columns());
      for (size_t i = 0; i < group_by.size(); ++i) {
        const int col = view_schema.IndexOf(group_by[i]);
        AUXVIEW_CHECK(col >= 0);
        new_row[col] = key[i];
      }
      int64_t new_total_count = -1;
      bool group_becomes_empty = false;
      for (const AggSpec& agg : e.op->aggs()) {
        const int col = view_schema.IndexOf(agg.output_name);
        AUXVIEW_CHECK(col >= 0);
        const Value old_val = have_old ? old_row[col] : Value::Null();
        switch (agg.func) {
          case AggFunc::kSum: {
            double delta_sum = 0;
            bool all_int = old_val.is_null() ||
                           old_val.type() == ValueType::kInt64;
            bool any = false;
            for (const auto& [row, count] : sub.rows()) {
              AUXVIEW_ASSIGN_OR_RETURN(Value v,
                                       agg.arg->Eval(row, child_schema));
              if (v.is_null()) continue;
              delta_sum += v.AsDouble() * static_cast<double>(count);
              if (v.type() != ValueType::kInt64) all_int = false;
              any = true;
            }
            double base = old_val.is_null() ? 0 : old_val.AsDouble();
            if (!any && old_val.is_null()) {
              new_row[col] = Value::Null();
            } else if (all_int) {
              new_row[col] =
                  Value::Int64(static_cast<int64_t>(base + delta_sum));
            } else {
              new_row[col] = Value::Double(base + delta_sum);
            }
            break;
          }
          case AggFunc::kCount: {
            int64_t delta_count = 0;
            for (const auto& [row, count] : sub.rows()) {
              if (agg.arg != nullptr) {
                AUXVIEW_ASSIGN_OR_RETURN(Value v,
                                         agg.arg->Eval(row, child_schema));
                if (v.is_null()) continue;
              }
              delta_count += count;
            }
            const int64_t base = old_val.is_null() ? 0 : old_val.int64();
            const int64_t next = base + delta_count;
            new_row[col] = Value::Int64(next);
            if (agg.arg == nullptr) {
              new_total_count = next;
              if (next <= 0) group_becomes_empty = true;
            }
            break;
          }
          case AggFunc::kMin:
          case AggFunc::kMax: {
            // Statically guaranteed: insert-only deltas.
            Value best = old_val;
            for (const auto& [row, count] : sub.rows()) {
              if (count <= 0) {
                return Status::Internal(
                    "non-insert delta reached MIN/MAX self-maintenance");
              }
              AUXVIEW_ASSIGN_OR_RETURN(Value v,
                                       agg.arg->Eval(row, child_schema));
              if (v.is_null()) continue;
              if (best.is_null() ||
                  (agg.func == AggFunc::kMin ? v.Compare(best) < 0
                                             : v.Compare(best) > 0)) {
                best = v;
              }
            }
            new_row[col] = best;
            break;
          }
          case AggFunc::kAvg:
            return Status::Internal(
                "AVG is not self-maintainable; query path expected");
        }
      }
      (void)new_total_count;
      if (have_old) out_canonical.Add(old_row, -1);
      if (!group_becomes_empty) out_canonical.Add(new_row, 1);
    } else {
      // Query path: the group's current contents came from the batched
      // prefetch above.
      const Relation& old_content = old_contents[key_idx];
      Relation new_content = old_content;
      new_content.AddAll(sub);
      AUXVIEW_ASSIGN_OR_RETURN(Relation old_rows,
                               ApplyUnaryKernel(*e.op, old_content));
      AUXVIEW_ASSIGN_OR_RETURN(Relation new_rows,
                               ApplyUnaryKernel(*e.op, new_content));
      for (const auto& [row, count] : old_rows.rows()) {
        out_natural.Add(row, -count);
      }
      out_natural.AddAll(new_rows);
    }
    ++key_idx;
  }

  AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                           AlignRelation(out_natural, out_canonical.schema()));
  out_canonical.AddAll(aligned);
  return out_canonical;
}

StatusOr<Relation> DeltaEngine::DupElimDelta(const MemoExpr& e,
                                             ApplyContext& ctx) {
  const GroupId input = memo_->Find(e.inputs[0]);
  AUXVIEW_ASSIGN_OR_RETURN(Relation dc, DeltaOf(input, ctx));
  Relation out(e.natural_schema);
  const std::vector<std::string> attrs = SchemaAttrList(dc.schema());
  // One batched probe for every delta row's prior multiplicity (delta rows
  // are distinct, so the batch is too).
  std::vector<Row> probe_rows;
  std::vector<int64_t> probe_counts;
  probe_rows.reserve(dc.distinct_rows());
  for (const auto& [row, count] : dc.rows()) {
    probe_rows.push_back(row);
    probe_counts.push_back(count);
  }
  AUXVIEW_ASSIGN_OR_RETURN(
      std::vector<Relation> existing_per_row,
      FetchMatchingBatch(input, attrs, probe_rows, *ctx.marked));
  for (size_t i = 0; i < probe_rows.size(); ++i) {
    const Row& row = probe_rows[i];
    const int64_t count = probe_counts[i];
    const int64_t old_mult = existing_per_row[i].CountOf(row);
    const int64_t new_mult = old_mult + count;
    if (new_mult < 0) {
      return Status::FailedPrecondition(
          "delta drives a multiplicity negative in DupElim");
    }
    if (old_mult > 0 && new_mult == 0) out.Add(row, -1);
    if (old_mult == 0 && new_mult > 0) out.Add(row, 1);
  }
  return out;
}

StatusOr<Relation> DeltaEngine::FetchMatching(
    GroupId g, const std::vector<std::string>& attrs, const Row& key,
    const ViewSet& marked) {
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> out,
                           FetchMatchingBatch(g, attrs, {key}, marked));
  return std::move(out[0]);
}

StatusOr<std::vector<Relation>> DeltaEngine::FetchMatchingBatch(
    GroupId g, const std::vector<std::string>& attrs,
    const std::vector<Row>& keys, const ViewSet& marked) {
  static obs::Counter* cache_hits =
      obs::MetricsRegistry::Global().GetCounter("maintain.fetch_cache_hits");
  static obs::Counter* cache_misses =
      obs::MetricsRegistry::Global().GetCounter("maintain.fetch_cache_misses");
  g = memo_->Find(g);
  const std::string prefix =
      "N" + std::to_string(g) + "|" + Join(attrs, ",") + "|";
  // Distinct uncached keys, in first-appearance order. A repeated key counts
  // as a hit — the per-key sequence would have cached it by its second
  // occurrence — so the cache counters match that sequence exactly.
  std::vector<std::string> cache_keys;
  cache_keys.reserve(keys.size());
  std::vector<Row> miss_keys;
  std::vector<std::string> miss_cache_keys;
  std::set<std::string> pending;
  for (const Row& key : keys) {
    std::string ck = prefix + RowToString(key);
    if (fetch_cache_.count(ck) > 0 || pending.count(ck) > 0) {
      cache_hits->Add(1);
    } else {
      cache_misses->Add(1);
      AUXVIEW_FAILPOINT("maintain.fetch");
      pending.insert(ck);
      miss_keys.push_back(key);
      miss_cache_keys.push_back(ck);
    }
    cache_keys.push_back(std::move(ck));
  }
  if (!miss_keys.empty()) {
    AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> fetched,
                             FetchUncached(g, attrs, miss_keys, marked));
    AUXVIEW_CHECK(fetched.size() == miss_keys.size());
    for (size_t i = 0; i < fetched.size(); ++i) {
      fetch_cache_[miss_cache_keys[i]] = std::move(fetched[i]);
      FetchCacheGauge()->Set(static_cast<int64_t>(fetch_cache_.size()));
    }
  }
  std::vector<Relation> results;
  results.reserve(keys.size());
  for (const std::string& ck : cache_keys) results.push_back(fetch_cache_.at(ck));
  return results;
}

StatusOr<std::vector<Relation>> DeltaEngine::FetchUncached(
    GroupId g, const std::vector<std::string>& attrs,
    const std::vector<Row>& keys, const ViewSet& marked) {
  const MemoGroup& grp = memo_->group(g);
  std::vector<Relation> out;
  out.reserve(keys.size());

  // Base relation or materialized view: direct (charged) probes — the probe
  // plan resolves once and every key goes through Table::LookupBatch.
  const Table* table = nullptr;
  if (grp.is_leaf) {
    table = db_->FindTable(grp.table);
    if (table == nullptr) {
      return Status::NotFound("missing base table: " + grp.table);
    }
  } else if (marked.count(g) > 0) {
    table = db_->FindTable(MaterializedViewName(g));
    if (table == nullptr) {
      return Status::Internal("missing materialized view table for N" +
                              std::to_string(g));
    }
  }
  if (table != nullptr) {
    if (attrs.empty()) {
      // Fetch-everything keys are all the empty row; distinct keys mean at
      // most one scan.
      for (size_t i = 0; i < keys.size(); ++i) {
        Relation rel(table->schema());
        for (const CountedRow& cr : table->ScanAll()) rel.Add(cr.row, cr.count);
        AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                                 AlignRelation(rel, grp.schema));
        out.push_back(std::move(aligned));
      }
      return out;
    }
    for (const std::vector<CountedRow>& found :
         table->LookupBatch(attrs, keys)) {
      Relation rel(table->schema());
      for (const CountedRow& cr : found) rel.Add(cr.row, cr.count);
      AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                               AlignRelation(rel, grp.schema));
      out.push_back(std::move(aligned));
    }
    return out;
  }

  // Unmaterialized: follow the cheapest plan (same choice as the estimator).
  // The plan cost depends on the probe attrs, never the key value, so one
  // choice serves the whole batch.
  std::set<GroupId> marked_set(marked.begin(), marked.end());
  int best_eid = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int eid : grp.exprs) {
    const MemoExpr& cand = memo_->expr(eid);
    if (cand.dead) continue;
    const double cost = coster_.PlanLookupCost(cand, attrs, 1, marked_set);
    if (cost < best_cost) {
      best_cost = cost;
      best_eid = eid;
    }
  }
  if (best_eid < 0) {
    return Status::Internal("no plan to answer a lookup on N" +
                            std::to_string(g));
  }
  const MemoExpr& e = memo_->expr(best_eid);

  StatusOr<std::vector<Relation>> naturals =
      [&]() -> StatusOr<std::vector<Relation>> {
    std::vector<Relation> nat;
    nat.reserve(keys.size());
    switch (e.kind()) {
      case OpKind::kScan:
        return Status::Internal("scan op in non-leaf group");
      case OpKind::kSelect: {
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            FetchMatchingBatch(e.inputs[0], attrs, keys, marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kProject: {
        std::set<std::string> passthrough;
        for (const ProjectItem& item : e.op->projections()) {
          if (item.expr->op() == ScalarOp::kColumn &&
              item.expr->column_name() == item.name) {
            passthrough.insert(item.name);
          }
        }
        const bool pushable = std::all_of(
            attrs.begin(), attrs.end(),
            [&](const std::string& a) { return passthrough.count(a) > 0; });
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            pushable ? FetchMatchingBatch(e.inputs[0], attrs, keys, marked)
                     : FetchMatchingBatch(e.inputs[0], {},
                                          std::vector<Row>(keys.size(), Row{}),
                                          marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kJoin: {
        const GroupId left = memo_->Find(e.inputs[0]);
        const GroupId right = memo_->Find(e.inputs[1]);
        const std::vector<std::string>& s = e.op->join_attrs();
        // Pick a side that contains every probe attribute.
        int side = -1;
        for (int candidate = 0; candidate < 2 && !attrs.empty(); ++candidate) {
          const GroupId x = candidate == 0 ? left : right;
          const Schema& xs = memo_->group(x).schema;
          if (std::all_of(attrs.begin(), attrs.end(),
                          [&](const std::string& a) {
                            return xs.Contains(a);
                          })) {
            side = candidate;
            break;
          }
        }
        if (attrs.empty() || side < 0) {
          const std::vector<Row> empties(keys.size(), Row{});
          AUXVIEW_ASSIGN_OR_RETURN(
              std::vector<Relation> full_l,
              FetchMatchingBatch(left, {}, empties, marked));
          AUXVIEW_ASSIGN_OR_RETURN(
              std::vector<Relation> full_r,
              FetchMatchingBatch(right, {}, empties, marked));
          for (size_t i = 0; i < keys.size(); ++i) {
            AUXVIEW_ASSIGN_OR_RETURN(
                Relation r, ApplyJoinKernel(*e.op, full_l[i], full_r[i]));
            nat.push_back(std::move(r));
          }
          return nat;
        }
        const GroupId x = side == 0 ? left : right;
        const GroupId y = side == 0 ? right : left;
        AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> subs,
                                 FetchMatchingBatch(x, attrs, keys, marked));
        // Per parent key, dedup its semijoin keys (a single sub never
        // re-fetches a partner key), then fetch every parent's partners in
        // one batch — cross-parent repeats become cache hits.
        std::vector<Row> all_skeys;
        std::vector<size_t> begin_of(keys.size() + 1, 0);
        for (size_t i = 0; i < subs.size(); ++i) {
          begin_of[i] = all_skeys.size();
          std::set<std::string> seen;
          for (const auto& [row, count] : subs[i].rows()) {
            (void)count;
            Row skey = ProjectRow(row, subs[i].schema(), s);
            if (!seen.insert(RowToString(skey)).second) continue;
            all_skeys.push_back(std::move(skey));
          }
        }
        begin_of[subs.size()] = all_skeys.size();
        AUXVIEW_ASSIGN_OR_RETURN(std::vector<Relation> partner_rels,
                                 FetchMatchingBatch(y, s, all_skeys, marked));
        for (size_t i = 0; i < subs.size(); ++i) {
          Relation partners(memo_->group(y).schema);
          for (size_t j = begin_of[i]; j < begin_of[i + 1]; ++j) {
            partners.AddAll(partner_rels[j]);
          }
          AUXVIEW_ASSIGN_OR_RETURN(
              Relation r,
              side == 0 ? ApplyJoinKernel(*e.op, subs[i], partners)
                        : ApplyJoinKernel(*e.op, partners, subs[i]));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kAggregate: {
        const std::set<std::string> gb = ToSet(e.op->group_by());
        const bool pushable =
            !attrs.empty() &&
            std::all_of(attrs.begin(), attrs.end(),
                        [&](const std::string& a) { return gb.count(a) > 0; });
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            pushable ? FetchMatchingBatch(e.inputs[0], attrs, keys, marked)
                     : FetchMatchingBatch(e.inputs[0], {},
                                          std::vector<Row>(keys.size(), Row{}),
                                          marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
      case OpKind::kDupElim: {
        AUXVIEW_ASSIGN_OR_RETURN(
            std::vector<Relation> ins,
            FetchMatchingBatch(e.inputs[0], attrs, keys, marked));
        for (const Relation& in : ins) {
          AUXVIEW_ASSIGN_OR_RETURN(Relation r, ApplyUnaryKernel(*e.op, in));
          nat.push_back(std::move(r));
        }
        return nat;
      }
    }
    return Status::Internal("unhandled op kind");
  }();
  AUXVIEW_RETURN_IF_ERROR(naturals.status());
  for (size_t i = 0; i < keys.size(); ++i) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation aligned,
                             AlignRelation((*naturals)[i], grp.schema));
    out.push_back(FilterByKey(aligned, attrs, keys[i]));
  }
  return out;
}

Status ApplyDeltaToTable(Table* table, const Relation& delta,
                         const std::vector<std::string>& pair_attrs) {
  AUXVIEW_ASSIGN_OR_RETURN(Relation aligned, [&]() -> StatusOr<Relation> {
    if (delta.schema() == table->schema()) return delta;
    // Align by name.
    std::vector<int> mapping;
    for (const Column& c : table->schema().columns()) {
      const int i = delta.schema().IndexOf(c.name);
      if (i < 0) {
        return Status::Internal("delta misses view column " + c.name);
      }
      mapping.push_back(i);
    }
    Relation out(table->schema());
    for (const auto& [row, count] : delta.rows()) {
      Row aligned_row;
      for (int i : mapping) aligned_row.push_back(row[i]);
      out.Add(aligned_row, count);
    }
    return out;
  }());

  // Bucket by pairing key.
  std::vector<int> key_cols;
  for (const std::string& a : pair_attrs) {
    const int i = table->schema().IndexOf(a);
    if (i >= 0) key_cols.push_back(i);
  }
  std::map<std::string, std::vector<std::pair<Row, int64_t>>> buckets;
  for (const auto& [row, count] : aligned.rows()) {
    Row key;
    for (int c : key_cols) key.push_back(row[c]);
    buckets[RowToString(key)].emplace_back(row, count);
  }
  for (auto& [key, entries] : buckets) {
    (void)key;
    // Pair each -n with a +n into in-place modifications (batched: the
    // paper charges one index page for a whole same-key batch); whatever
    // cannot be paired falls back to plain inserts/deletes.
    std::vector<std::pair<Row, int64_t>> negs;
    std::vector<std::pair<Row, int64_t>> poss;
    for (auto& entry : entries) {
      (entry.second < 0 ? negs : poss).push_back(entry);
    }
    std::vector<std::pair<Row, Row>> pairs;
    std::vector<std::pair<Row, int64_t>> leftovers;
    std::vector<bool> pos_used(poss.size(), false);
    for (auto& neg : negs) {
      bool paired = false;
      if (table->CountOf(neg.first) == -neg.second) {
        for (size_t i = 0; i < poss.size(); ++i) {
          if (pos_used[i] || poss[i].second != -neg.second) continue;
          pairs.emplace_back(neg.first, poss[i].first);
          pos_used[i] = true;
          paired = true;
          break;
        }
      }
      if (!paired) leftovers.push_back(neg);
    }
    for (size_t i = 0; i < poss.size(); ++i) {
      if (!pos_used[i]) leftovers.push_back(poss[i]);
    }
    if (!pairs.empty()) {
      AUXVIEW_RETURN_IF_ERROR(table->ModifyBatch(pairs));
    }
    for (const auto& [row, count] : leftovers) {
      AUXVIEW_RETURN_IF_ERROR(table->Apply(row, count));
    }
  }
  return Status::Ok();
}

}  // namespace auxview
