#include "maintain/view_manager.h"

#include <algorithm>

#include "common/failpoint.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "storage/undo_log.h"
#include "storage/wal/wal.h"

namespace auxview {

namespace {

/// Page I/Os charged during one maintenance pass, observed into `hist`
/// when the guard leaves scope (the paper's per-transaction cost unit).
class ScopedIoDelta {
 public:
  ScopedIoDelta(const PageCounter& counter, obs::Histogram* hist)
      : counter_(counter), hist_(hist), start_(counter.total()) {}
  ~ScopedIoDelta() {
    hist_->Observe(static_cast<double>(counter_.total() - start_));
  }

  ScopedIoDelta(const ScopedIoDelta&) = delete;
  ScopedIoDelta& operator=(const ScopedIoDelta&) = delete;

 private:
  const PageCounter& counter_;
  obs::Histogram* hist_;
  int64_t start_;
};

/// 1/2/5-per-decade bounds for per-transaction page-I/O histograms.
std::vector<double> PageIoBounds() {
  std::vector<double> bounds;
  for (double decade = 1; decade <= 1e6; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;
}

}  // namespace

ViewManager::ViewManager(const Memo* memo, const Catalog* catalog,
                         Database* db, MaintainOptions options)
    : memo_(memo),
      catalog_(catalog),
      db_(db),
      options_(options),
      engine_(memo, catalog, db) {
  engine_.set_threads(options_.threads);
  engine_.set_adaptive_partitioning(options_.adaptive_partitioning);
}

namespace {

/// Drops attributes functionally determined by the rest (minimal cover).
std::vector<std::string> FdReduce(std::vector<std::string> attrs,
                                  FdAnalysis* fds, GroupId g) {
  for (size_t i = attrs.size(); i-- > 0 && attrs.size() > 1;) {
    std::set<std::string> rest;
    for (size_t j = 0; j < attrs.size(); ++j) {
      if (j != i) rest.insert(attrs[j]);
    }
    if (fds->Fds(g).Determines(rest, {attrs[i]})) {
      attrs.erase(attrs.begin() + static_cast<long>(i));
    }
  }
  return attrs;
}

}  // namespace

std::vector<std::string> ViewManager::ChooseIndexAttrs(const Memo& memo,
                                                       const Catalog& catalog,
                                                       GroupId g) {
  g = memo.Find(g);
  FdAnalysis fds(&memo, &catalog);
  // Prefer the attributes parent operation nodes probe this group by.
  for (int eid : memo.ParentExprsOf(g)) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind() == OpKind::kJoin) {
      return FdReduce(e.op->join_attrs(), &fds, g);
    }
  }
  for (int eid : memo.ParentExprsOf(g)) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind() == OpKind::kAggregate && !e.op->group_by().empty()) {
      return FdReduce(e.op->group_by(), &fds, g);
    }
  }
  // Fall back to the group's own grouping structure.
  for (int eid : memo.group(g).exprs) {
    const MemoExpr& e = memo.expr(eid);
    if (e.dead) continue;
    if (e.kind() == OpKind::kAggregate && !e.op->group_by().empty()) {
      return FdReduce(e.op->group_by(), &fds, g);
    }
    if (e.kind() == OpKind::kJoin) {
      return FdReduce(e.op->join_attrs(), &fds, g);
    }
  }
  if (memo.group(g).schema.num_columns() > 0) {
    return {memo.group(g).schema.column(0).name};
  }
  return {};
}

Status ViewManager::Materialize(const ViewSet& views) {
  static obs::Counter* materialized =
      obs::MetricsRegistry::Global().GetCounter(
          "maintain.views_materialized");
  views_.clear();
  for (GroupId g : views) views_.insert(memo_->Find(g));
  views_.insert(memo_->root());

  ScopedCountingDisabled guard(&db_->counter());
  Executor executor(db_);
  for (GroupId g : views_) {
    if (memo_->group(g).is_leaf) continue;
    AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr tree, memo_->ExtractOriginalTree(g));
    AUXVIEW_ASSIGN_OR_RETURN(Relation contents, executor.Execute(*tree));
    TableDef def;
    def.name = MaterializedViewName(g);
    def.schema = memo_->group(g).schema;
    std::vector<std::string> idx = ChooseIndexAttrs(*memo_, *catalog_, g);
    if (!idx.empty()) def.indexes.push_back(IndexDef{idx});
    index_attrs_[g] = idx;
    if (db_->HasTable(def.name)) {
      AUXVIEW_RETURN_IF_ERROR(db_->DropTable(def.name));
    }
    AUXVIEW_ASSIGN_OR_RETURN(Table * table, db_->CreateTable(std::move(def)));
    for (const auto& [row, count] : contents.rows()) {
      if (count < 0) {
        return Status::Internal("negative multiplicity when materializing");
      }
      AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
    }
    materialized->Add(1);
  }
  return Status::Ok();
}

void ViewManager::DeclareAssertion(const std::string& name, GroupId g) {
  assertions_[memo_->Find(g)] = name;
}

Status ViewManager::CheckAssertionVerdict(
    const std::map<GroupId, Relation>& deltas) {
  static obs::Counter* aborted = obs::MetricsRegistry::Global().GetCounter(
      "maintain.txns_aborted_assertion");
  for (const auto& [g, name] : assertions_) {
    auto it = deltas.find(g);
    if (it == deltas.end() || it->second.empty()) continue;  // unaffected
    // Pre-update contents of the assertion view: a maintained view is a
    // free inspection (the paper's Section 4 point); an unmaterialized
    // assertion group answers from the cheapest plan, uncharged — the
    // verdict is bookkeeping, not track I/O.
    AUXVIEW_ASSIGN_OR_RETURN(Relation current, [&]() -> StatusOr<Relation> {
      if (views_.count(g) > 0) return ViewContents(g);
      ScopedCountingDisabled guard(&db_->counter());
      return engine_.FetchMatching(g, {}, {}, views_);
    }());
    Relation next = current;
    next.AddAll(it->second);  // zero-multiplicity rows drop out, so
                              // emptiness is exact
    if (!next.empty()) {
      aborted_assertion_ = name;
      aborted->Add(1);
      return Status::Aborted("assertion '" + name +
                             "' would be violated; transaction rejected");
    }
  }
  return Status::Ok();
}

Status ViewManager::CommitTransaction(
    const ConcreteTxn& txn, const std::map<GroupId, Relation>& deltas) {
  // Apply the staged deltas to the materialized views.
  const GroupId root = memo_->root();
  for (const TableUpdate& update : txn.updates) {
    if (!update.empty()) last_commit_tables_.push_back(update.relation);
  }
  for (GroupId g : views_) {
    if (memo_->group(g).is_leaf) continue;
    auto it = deltas.find(g);
    if (it == deltas.end() || it->second.empty()) continue;
    last_commit_tables_.push_back(MaterializedViewName(g));
    Table* table = db_->FindTable(MaterializedViewName(g));
    if (table == nullptr) {
      return Status::Internal("materialized view table missing for N" +
                              std::to_string(g));
    }
    AUXVIEW_FAILPOINT("maintain.apply_view_delta");
    const bool charge = g != root || options_.charge_root_update;
    if (charge) {
      AUXVIEW_RETURN_IF_ERROR(
          ApplyDeltaToTable(table, it->second, index_attrs_[g]));
    } else {
      ScopedCountingDisabled guard(&db_->counter());
      AUXVIEW_RETURN_IF_ERROR(
          ApplyDeltaToTable(table, it->second, index_attrs_[g]));
    }
  }

  // Apply the base-relation updates.
  ScopedCountingDisabled base_guard(&db_->counter());
  if (options_.charge_base_updates) db_->counter().set_enabled(true);
  for (const TableUpdate& update : txn.updates) {
    Table* table = db_->FindTable(update.relation);
    if (table == nullptr) {
      return Status::NotFound("updated base table missing: " +
                              update.relation);
    }
    AUXVIEW_FAILPOINT("maintain.apply_base");
    for (const auto& [row, count] : update.inserts) {
      AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
    }
    for (const auto& [row, count] : update.deletes) {
      AUXVIEW_RETURN_IF_ERROR(table->Delete(row, count));
    }
    // One batch, not per-pair calls: a pair's new row may equal another
    // pair's old row (an UPDATE chain), which only the batch's two-phase
    // application keeps order-independent.
    AUXVIEW_RETURN_IF_ERROR(table->ModifyBatch(update.modifies));
  }
  return Status::Ok();
}

Status ViewManager::ApplyTransaction(const ConcreteTxn& txn,
                                     const TransactionType& type,
                                     const UpdateTrack& track) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Counter* txns = reg.GetCounter("maintain.txns_applied");
  static obs::Counter* rollbacks = reg.GetCounter("maintain.txns_rolled_back");
  static obs::Histogram* io_hist =
      reg.GetHistogram("maintain.txn_page_ios", PageIoBounds());
  static obs::Histogram* timing = reg.GetHistogram("maintain.apply_txn_us");
  txns->Add(1);
  obs::ScopedTimer timer(timing);
  ScopedIoDelta io_delta(db_->counter(), io_hist);
  aborted_assertion_.clear();
  last_commit_tables_.clear();

  // Phase 1 (compute): every delta query and the assertion verdict run
  // against the pre-update state. Nothing has been mutated, so a failure
  // anywhere in this phase aborts with no cleanup.
  AUXVIEW_ASSIGN_OR_RETURN(auto deltas,
                           engine_.ComputeDeltas(txn, type, track, views_));
  AUXVIEW_RETURN_IF_ERROR(CheckAssertionVerdict(deltas));

  // Write-ahead: the transaction's deltas reach the durable log before any
  // in-memory attach, so a crash after this point replays it. Skipped while
  // recovery itself is replaying (the record already exists).
  WriteAheadLog* wal = db_->wal();
  uint64_t lsn = 0;
  if (wal != nullptr && !wal->replaying()) {
    AUXVIEW_ASSIGN_OR_RETURN(lsn, wal->AppendTxn(txn));
  }

  // Phase 2 (commit): all-or-nothing. Every table mutation records its net
  // effect in the undo log; a mid-commit failure (injected fault, missing
  // table, negative multiplicity) rolls everything back, leaving tables
  // and indexes bit-identical to the pre-transaction state.
  UndoLog undo;
  Status committed;
  {
    ScopedUndo undo_scope(db_, &undo, mutable_catalog_);
    committed = CommitTransaction(txn, deltas);
  }
  if (!committed.ok()) {
    rollbacks->Add(1);
    last_commit_tables_.clear();
    AUXVIEW_RETURN_IF_ERROR(undo.RollBack());
    // Compensate the already-durable record. Best-effort: if even the abort
    // append fails, recovery would replay a transaction whose effects
    // memory lost — the same state a crash-before-rollback leaves, and one
    // recovery is defined to reconstruct.
    if (lsn != 0) (void)wal->AppendAbort(lsn);
    return committed;
  }
  undo.Commit();
  return Status::Ok();
}

Status ViewManager::ApplyTransactionByRecompute(const ConcreteTxn& txn,
                                                const TransactionType& type) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Counter* txns = reg.GetCounter("maintain.txns_recomputed");
  static obs::Histogram* io_hist =
      reg.GetHistogram("maintain.recompute_page_ios", PageIoBounds());
  static obs::Histogram* timing =
      reg.GetHistogram("maintain.recompute_txn_us");
  txns->Add(1);
  obs::ScopedTimer timer(timing);
  ScopedIoDelta io_delta(db_->counter(), io_hist);
  aborted_assertion_.clear();
  last_commit_tables_.clear();
  // Write-ahead, as in ApplyTransaction.
  WriteAheadLog* wal = db_->wal();
  uint64_t lsn = 0;
  if (wal != nullptr && !wal->replaying()) {
    AUXVIEW_ASSIGN_OR_RETURN(lsn, wal->AppendTxn(txn));
  }
  // Unlike the staged path, the baseline mutates before it knows the
  // assertion verdict, so the whole mutating body runs under the undo log
  // and an assertion violation (or injected fault) rolls everything back.
  UndoLog undo;
  Status committed;
  {
    ScopedUndo undo_scope(db_, &undo, mutable_catalog_);
    committed = [&]() -> Status {
      // 1. Apply the base updates (uncharged, as in ApplyTransaction).
      {
        ScopedCountingDisabled guard(&db_->counter());
        if (options_.charge_base_updates) db_->counter().set_enabled(true);
        for (const TableUpdate& update : txn.updates) {
          Table* table = db_->FindTable(update.relation);
          if (table == nullptr) {
            return Status::NotFound("updated base table missing: " +
                                    update.relation);
          }
          if (!update.empty()) last_commit_tables_.push_back(update.relation);
          AUXVIEW_FAILPOINT("maintain.apply_base");
          for (const auto& [row, count] : update.inserts) {
            AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
          }
          for (const auto& [row, count] : update.deletes) {
            AUXVIEW_RETURN_IF_ERROR(table->Delete(row, count));
          }
          AUXVIEW_RETURN_IF_ERROR(table->ModifyBatch(update.modifies));
        }
      }

      // 2. Recompute every affected view with charged reads and writes. The
      //    base tables just changed, so cached fetches are stale.
      engine_.ClearFetchCache();
      StatsAnalysis stats(memo_, catalog_);
      DeltaAnalysis analysis(memo_, catalog_, &stats);
      const std::set<GroupId> affected = analysis.AffectedGroups(type);
      const GroupId root = memo_->root();
      for (GroupId g : views_) {
        if (memo_->group(g).is_leaf || affected.count(g) == 0) continue;
        const bool charge = g != root || options_.charge_root_update;
        // Read through the DAG with only base relations available: the cost
        // of evaluating the view as a query.
        AUXVIEW_ASSIGN_OR_RETURN(Relation contents,
                                 [&]() -> StatusOr<Relation> {
          if (!charge) {
            ScopedCountingDisabled guard(&db_->counter());
            return engine_.FetchMatching(g, {}, {}, {});
          }
          return engine_.FetchMatching(g, {}, {}, {});
        }());
        Table* table = db_->FindTable(MaterializedViewName(g));
        if (table == nullptr) {
          return Status::Internal("materialized view table missing for N" +
                                  std::to_string(g));
        }
        last_commit_tables_.push_back(MaterializedViewName(g));
        AUXVIEW_FAILPOINT("maintain.apply_view_delta");
        // Rewrite the table in place.
        ScopedCountingDisabled guard(&db_->counter());
        if (charge) db_->counter().set_enabled(true);
        for (const CountedRow& cr : table->SnapshotUncharged()) {
          AUXVIEW_RETURN_IF_ERROR(table->Delete(cr.row, cr.count));
        }
        for (const auto& [row, count] : contents.rows()) {
          if (count < 0) return Status::Internal("negative recomputed count");
          AUXVIEW_RETURN_IF_ERROR(table->Insert(row, count));
        }
      }

      // 3. Post-recompute assertion verdict.
      return CheckAssertionViewsEmpty();
    }();
  }
  if (!committed.ok()) {
    last_commit_tables_.clear();
    AUXVIEW_RETURN_IF_ERROR(undo.RollBack());
    // Rolled-back views are current again, but cached fetches taken between
    // the base update and the rollback are not.
    engine_.ClearFetchCache();
    if (lsn != 0) (void)wal->AppendAbort(lsn);  // best-effort compensation
    return committed;
  }
  undo.Commit();
  return Status::Ok();
}

Status ViewManager::CheckAssertionViewsEmpty() {
  static obs::Counter* aborted = obs::MetricsRegistry::Global().GetCounter(
      "maintain.txns_aborted_assertion");
  for (const auto& [g, name] : assertions_) {
    AUXVIEW_ASSIGN_OR_RETURN(Relation contents, [&]() -> StatusOr<Relation> {
      if (views_.count(g) > 0) return ViewContents(g);
      ScopedCountingDisabled guard(&db_->counter());
      return engine_.FetchMatching(g, {}, {}, views_);
    }());
    if (!contents.empty()) {
      aborted_assertion_ = name;
      aborted->Add(1);
      return Status::Aborted("assertion '" + name +
                             "' would be violated; transaction rejected");
    }
  }
  return Status::Ok();
}

const Table* ViewManager::ViewTable(GroupId g) const {
  return db_->FindTable(MaterializedViewName(memo_->Find(g)));
}

StatusOr<Relation> ViewManager::ViewContents(GroupId g) const {
  const Table* table = ViewTable(g);
  if (table == nullptr) {
    return Status::NotFound("group not materialized: N" +
                            std::to_string(memo_->Find(g)));
  }
  Relation out(table->schema());
  for (const CountedRow& cr : table->SnapshotUncharged()) {
    out.Add(cr.row, cr.count);
  }
  return out;
}

Status ViewManager::CheckConsistency() const {
  ScopedCountingDisabled guard(&db_->counter());
  Executor executor(db_);
  for (GroupId g : views_) {
    if (memo_->group(g).is_leaf) continue;
    AUXVIEW_ASSIGN_OR_RETURN(Expr::Ptr tree, memo_->ExtractOriginalTree(g));
    AUXVIEW_ASSIGN_OR_RETURN(Relation expected, executor.Execute(*tree));
    AUXVIEW_ASSIGN_OR_RETURN(Relation actual, ViewContents(g));
    if (!expected.BagEquals(actual)) {
      return Status::FailedPrecondition(
          "maintained view N" + std::to_string(g) +
          " diverged from recomputation.\nexpected:\n" + expected.ToString() +
          "actual:\n" + actual.ToString());
    }
  }
  return Status::Ok();
}

}  // namespace auxview
