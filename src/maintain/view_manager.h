#ifndef AUXVIEW_MAINTAIN_VIEW_MANAGER_H_
#define AUXVIEW_MAINTAIN_VIEW_MANAGER_H_

#include <map>
#include <string>
#include <vector>

#include "maintain/delta_engine.h"
#include "optimizer/track.h"
#include "optimizer/view_set.h"

namespace auxview {

/// Options for runtime maintenance.
struct MaintainOptions {
  /// Charge page I/O for applying base-relation updates (the paper's example
  /// excludes it; keep false for comparability with estimated costs).
  bool charge_base_updates = false;
  /// Charge page I/O for updating the top-level view (excluded in the
  /// paper's example).
  bool charge_root_update = false;
  /// Total delta-propagation workers (>= 1; 1 = sequential). Results,
  /// fingerprints and charged costs are bit-identical for every value
  /// (docs/CONCURRENCY.md, "Intra-transaction parallelism").
  int threads = 1;
  /// Adapt the parallel kernels' partitioning threshold to an EWMA of
  /// observed transaction delta sizes instead of the static default.
  /// Thresholds steer only where parallel kernels engage — results,
  /// fingerprints and charged costs are unaffected.
  bool adaptive_partitioning = false;
};

/// Materializes a chosen view set and incrementally maintains it across
/// concrete transactions by executing update tracks — the runtime
/// counterpart of the optimizer's plans. Also provides the recomputation
/// oracle used by tests.
class ViewManager {
 public:
  ViewManager(const Memo* memo, const Catalog* catalog, Database* db,
              MaintainOptions options = {});

  /// Creates and fills the materialized-view tables for `views` (the memo
  /// root is always included). Not charged to the I/O counter. Each view
  /// gets one hash index on the attributes its parents probe it by.
  Status Materialize(const ViewSet& views);

  /// Declares that group `g` backs the SQL-92 assertion `name` (a view
  /// required to stay empty, Section 4). ApplyTransaction computes the
  /// assertion verdict against the staged deltas and aborts — leaving every
  /// table and index untouched — when the view would become non-empty.
  void DeclareAssertion(const std::string& name, GroupId g);

  /// Name of the assertion that aborted the most recent Apply* call (empty
  /// when it committed or failed for another reason).
  const std::string& aborted_assertion() const { return aborted_assertion_; }

  /// Stored-table names the most recent successful Apply* call mutated:
  /// the updated base relations plus every materialized view whose delta was
  /// non-empty. The concurrency layer republishes exactly these tables'
  /// snapshot versions after a commit (src/concurrency/snapshot.h); all
  /// other versions are shared with the previous epoch.
  const std::vector<std::string>& last_commit_tables() const {
    return last_commit_tables_;
  }

  /// Applies a concrete transaction atomically, in two phases. Phase 1
  /// (compute) poses every delta query and the assertion verdict against
  /// the pre-update state without mutating anything. Phase 2 (commit)
  /// applies the staged deltas to the materialized views and the base
  /// relations under an undo log; any mid-commit failure (e.g. an injected
  /// fault) rolls the database back bit-identical to the pre-transaction
  /// state. Returns Aborted on an assertion violation or injected fault.
  Status ApplyTransaction(const ConcreteTxn& txn, const TransactionType& type,
                          const UpdateTrack& track);

  /// The naive baseline the paper argues against: applies the base updates,
  /// then recomputes every affected materialized view from scratch with
  /// charged I/O (reads through base relations, rewrites the view table).
  /// Same end state as ApplyTransaction; vastly more page I/Os.
  Status ApplyTransactionByRecompute(const ConcreteTxn& txn,
                                     const TransactionType& type);

  const ViewSet& views() const { return views_; }

  /// The stored table of a materialized group (nullptr if not materialized).
  const Table* ViewTable(GroupId g) const;

  /// The current contents of a materialized group.
  StatusOr<Relation> ViewContents(GroupId g) const;

  /// Recomputes every materialized view from scratch and compares with the
  /// maintained contents; FailedPrecondition lists any mismatch.
  Status CheckConsistency() const;

  /// Index attributes chosen for a materialized group: the attributes by
  /// which parent operation nodes probe it (join attributes or a parent
  /// aggregate's group-by), falling back to the group's own group-by or
  /// first column — FD-reduced to a minimal set so that e.g. the paper's N4
  /// gets its "single index on DName" rather than (DName, Budget).
  static std::vector<std::string> ChooseIndexAttrs(const Memo& memo,
                                                   const Catalog& catalog,
                                                   GroupId g);

  DeltaEngine& engine() { return engine_; }
  Database& db() { return *db_; }

  /// Reconfigures the propagation worker count between transactions
  /// (mirrors MaintainOptions::threads; the shell's .threads command).
  void set_maintain_threads(int threads) {
    options_.threads = threads < 1 ? 1 : threads;
    engine_.set_threads(options_.threads);
  }
  int maintain_threads() const { return options_.threads; }

  /// Toggles adaptive kernel-partitioning thresholds between transactions
  /// (mirrors MaintainOptions::adaptive_partitioning).
  void set_adaptive_partitioning(bool on) {
    options_.adaptive_partitioning = on;
    engine_.set_adaptive_partitioning(on);
  }
  bool adaptive_partitioning() const { return options_.adaptive_partitioning; }

  /// Opts in to group-level rollback of optimizer state: with a mutable
  /// catalog attached, an aborted transaction also restores any statistics
  /// (and the stats epoch) refreshed while it ran. The construction-time
  /// catalog stays const for all read paths.
  void set_mutable_catalog(Catalog* catalog) { mutable_catalog_ = catalog; }

 private:
  /// Phase-1 helper: Aborted if any declared assertion view would become
  /// non-empty once `deltas` apply. Reads only pre-update state.
  Status CheckAssertionVerdict(const std::map<GroupId, Relation>& deltas);
  /// Phase-2 helper: applies staged view deltas then base updates. Partial
  /// effects on failure are the caller's to roll back via the undo log.
  Status CommitTransaction(const ConcreteTxn& txn,
                           const std::map<GroupId, Relation>& deltas);
  /// Post-recompute assertion check (the baseline path mutates first).
  Status CheckAssertionViewsEmpty();

  const Memo* memo_;
  const Catalog* catalog_;
  Catalog* mutable_catalog_ = nullptr;
  Database* db_;
  MaintainOptions options_;
  DeltaEngine engine_;
  ViewSet views_;
  std::map<GroupId, std::vector<std::string>> index_attrs_;
  std::map<GroupId, std::string> assertions_;
  std::string aborted_assertion_;
  std::vector<std::string> last_commit_tables_;
};

}  // namespace auxview

#endif  // AUXVIEW_MAINTAIN_VIEW_MANAGER_H_
