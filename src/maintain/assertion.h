#ifndef AUXVIEW_MAINTAIN_ASSERTION_H_
#define AUXVIEW_MAINTAIN_ASSERTION_H_

#include <string>
#include <vector>

#include "maintain/view_manager.h"

namespace auxview {

/// Result of checking an SQL-92 assertion (a view required to be empty).
struct AssertionCheck {
  std::string name;
  bool holds = true;
  /// Violating rows (the view contents) when the assertion fails.
  std::vector<Row> violations;

  std::string ToString() const;
};

/// Checks assertions modeled as maintained-to-emptiness views (Section 6):
/// `CREATE ASSERTION a CHECK (NOT EXISTS (SELECT ...))` holds iff the
/// materialized view for the inner query is empty. With the view maintained
/// incrementally, the check is a constant-time inspection.
class AssertionChecker {
 public:
  explicit AssertionChecker(const ViewManager* views) : views_(views) {}

  /// Checks the assertion backed by group `g` (default: the memo root).
  StatusOr<AssertionCheck> Check(const std::string& name, GroupId g) const;

 private:
  const ViewManager* views_;
};

}  // namespace auxview

#endif  // AUXVIEW_MAINTAIN_ASSERTION_H_
