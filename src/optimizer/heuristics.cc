#include <algorithm>
#include <limits>
#include <map>

#include "obs/metrics.h"
#include "optimizer/optimizer.h"

namespace auxview {

namespace {

/// Greedily picks, for each group reachable from `root`, the operation node
/// whose inputs are cheapest to evaluate in full — a single low-cost
/// expression tree for the view treated as a query (Section 5, phase one).
void ChooseTree(const Memo& memo, const QueryCoster& query, GroupId g,
                std::map<GroupId, int>* choice) {
  g = memo.Find(g);
  if (memo.group(g).is_leaf || choice->count(g) > 0) return;
  int best = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int eid : memo.group(g).exprs) {
    const MemoExpr& e = memo.expr(eid);
    if (e.dead) continue;
    double cost = 0;
    for (GroupId in : e.inputs) cost += query.FullCost(in, {});
    if (cost < best_cost) {
      best_cost = cost;
      best = eid;
    }
  }
  (*choice)[g] = best;
  for (GroupId in : memo.expr(best).inputs) {
    ChooseTree(memo, query, in, choice);
  }
}

/// Weighted depth of the updated relations in a chosen tree (Section 5,
/// phase two): sum over transactions of weight x distance from the root to
/// each updated relation's leaf. High values mean frequently-updated
/// relations sit deep in the tree — every view between them and the root
/// would be expensive to maintain.
double WeightedUpdateDepth(const Memo& memo,
                           const std::map<GroupId, int>& choice, GroupId g,
                           int depth,
                           const std::map<std::string, double>& weights) {
  g = memo.Find(g);
  const MemoGroup& grp = memo.group(g);
  if (grp.is_leaf) {
    auto it = weights.find(grp.table);
    return it == weights.end() ? 0 : it->second * depth;
  }
  auto it = choice.find(g);
  if (it == choice.end()) return 0;
  double total = 0;
  for (GroupId in : memo.expr(it->second).inputs) {
    total += WeightedUpdateDepth(memo, choice, in, depth + 1, weights);
  }
  return total;
}

/// The choice map for the original (first-inserted) expression tree.
void OriginalTreeChoice(const Memo& memo, GroupId g,
                        std::map<GroupId, int>* choice) {
  g = memo.Find(g);
  if (memo.group(g).is_leaf || choice->count(g) > 0) return;
  for (int eid : memo.group(g).exprs) {
    if (memo.expr(eid).dead) continue;
    (*choice)[g] = eid;
    for (GroupId in : memo.expr(eid).inputs) {
      OriginalTreeChoice(memo, in, choice);
    }
    return;
  }
}

}  // namespace

StatusOr<OptimizeResult> ViewSelector::SingleTree(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  obs::TraceSpan span("optimizer.single_tree");
  QueryCoster query(memo_, catalog_, &stats_, &fds_, model_, options.query);
  // Phase one: a low-cost tree for the view treated as a query.
  std::map<GroupId, int> greedy_choice;
  ChooseTree(*memo_, query, memo_->root(), &greedy_choice);
  // Phase two (Section 5): prefer a tree whose heavily-updated relations
  // sit close to the root; fall back to the original tree when the
  // query-optimal one buries them.
  std::map<GroupId, int> original_choice;
  OriginalTreeChoice(*memo_, memo_->root(), &original_choice);
  std::map<std::string, double> weights;
  for (const TransactionType& txn : txns) {
    for (const UpdateSpec& spec : txn.updates) {
      weights[spec.relation] += txn.weight;
    }
  }
  const double greedy_depth = WeightedUpdateDepth(
      *memo_, greedy_choice, memo_->root(), 0, weights);
  const double original_depth = WeightedUpdateDepth(
      *memo_, original_choice, memo_->root(), 0, weights);
  const std::map<GroupId, int>& choice =
      greedy_depth <= original_depth ? greedy_choice : original_choice;

  OptimizeOptions restricted = options;
  std::set<GroupId> candidates;
  for (const auto& [g, eid] : choice) {
    candidates.insert(g);
    restricted.tracks.allowed_ops.insert(eid);
  }
  return ExhaustiveOver(txns, restricted, {memo_->root()},
                        std::move(candidates));
}

StatusOr<OptimizeResult> ViewSelector::HeuristicMarking(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  obs::TraceSpan span("optimizer.heuristic_marking");
  QueryCoster query(memo_, catalog_, &stats_, &fds_, model_, options.query);
  std::map<GroupId, int> choice;
  ChooseTree(*memo_, query, memo_->root(), &choice);

  OptimizeOptions restricted = options;
  for (const auto& [g, eid] : choice) {
    (void)g;
    restricted.tracks.allowed_ops.insert(eid);
  }

  // Mark every parent of a join or grouping/aggregation operator and every
  // child of a duplicate elimination operator; never selections.
  ViewSet marking = {memo_->root()};
  for (const auto& [g, eid] : choice) {
    const MemoExpr& e = memo_->expr(eid);
    if (e.kind() == OpKind::kJoin || e.kind() == OpKind::kAggregate) {
      marking.insert(g);
    }
    if (e.kind() == OpKind::kDupElim) {
      const GroupId child = memo_->Find(e.inputs[0]);
      if (!memo_->group(child).is_leaf) marking.insert(child);
    }
  }

  AUXVIEW_ASSIGN_OR_RETURN(OptimizeResult with_marking,
                           CostViewSet(txns, marking, restricted));
  AUXVIEW_ASSIGN_OR_RETURN(OptimizeResult empty_set,
                           CostViewSet(txns, {memo_->root()}, restricted));
  OptimizeResult best = with_marking.weighted_cost <= empty_set.weighted_cost
                            ? std::move(with_marking)
                            : std::move(empty_set);
  best.viewsets_costed = 2;
  return best;
}

StatusOr<OptimizeResult> ViewSelector::Greedy(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  obs::TraceSpan span("optimizer.greedy");
  // Hill-climbing replaces the 2^n view-set enumeration; track enumeration
  // stays as configured (set options.tracks.greedy for the fully
  // approximate variant of Section 5.3).
  const OptimizeOptions& greedy_options = options;

  std::vector<GroupId> candidates;
  const GroupId root = memo_->root();
  for (GroupId g : memo_->NonLeafGroups()) {
    if (g != root) candidates.push_back(g);
  }

  AUXVIEW_ASSIGN_OR_RETURN(OptimizeResult current,
                           CostViewSet(txns, {root}, greedy_options));
  int64_t costed = 1;
  bool improved = true;
  while (improved) {
    improved = false;
    GroupId best_add = -1;
    OptimizeResult best_result;
    best_result.weighted_cost = current.weighted_cost;
    for (GroupId c : candidates) {
      if (current.views.count(c) > 0) continue;
      ViewSet views = current.views;
      views.insert(c);
      AUXVIEW_ASSIGN_OR_RETURN(OptimizeResult result,
                               CostViewSet(txns, views, greedy_options));
      ++costed;
      if (result.weighted_cost < best_result.weighted_cost - 1e-9) {
        best_result = std::move(result);
        best_add = c;
      }
    }
    if (best_add >= 0) {
      current = std::move(best_result);
      improved = true;
    }
  }
  current.viewsets_costed = costed;
  return current;
}

}  // namespace auxview
