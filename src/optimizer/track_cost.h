#ifndef AUXVIEW_OPTIMIZER_TRACK_COST_H_
#define AUXVIEW_OPTIMIZER_TRACK_COST_H_

#include <map>
#include <string>
#include <vector>

#include "cost/query_cost.h"
#include "delta/analysis.h"
#include "optimizer/track.h"
#include "optimizer/view_set.h"

namespace auxview {

/// Options for track costing.
struct TrackCostOptions {
  /// Multi-query optimization (Section 3.4): identical queries generated
  /// along one update track are charged once. Disable for the S1 ablation.
  bool share_queries = true;
  /// The paper's worked example excludes the cost of updating the top-level
  /// view ("We do not count the cost of updating ... the top-level view
  /// ProblemDept"); keep false to match, true for the general algorithm.
  bool include_root_update_cost = false;
  /// Number of hash indexes assumed on each materialized view.
  int indexes_per_view = 1;
  /// Shard count of the database the track will run against. Above 1, the
  /// query cost of a track the LocalityClassifier proves decomposable and
  /// not cross-shard is divided by this fanout: its fetches run on disjoint
  /// shards in parallel, so the modeled latency shrinks even though total
  /// charged I/O is unchanged. Cross-shard tracks keep their full cost.
  int shard_fanout = 1;
};

/// One query generated along an update track (Example 3.2's Q2Ld, Q2Re, ...).
struct QueryRecord {
  int expr_id = -1;        // operation node posing the query
  GroupId on_group = -1;   // equivalence node the query is posed on
  std::vector<std::string> attrs;
  double probes = 0;
  double cost = 0;
  bool shared = false;     // deduplicated by multi-query optimization
  std::string label;

  std::string ToString() const;
};

/// The cost of propagating one transaction along one update track.
struct TrackCost {
  double query_cost = 0;
  double update_cost = 0;
  std::vector<QueryRecord> queries;
  std::map<GroupId, DeltaInfo> deltas;

  double total() const { return query_cost + update_cost; }
};

/// Computes the cost of an update track for a view set and transaction
/// (Section 3.4): the queries posed at each operation node on the track
/// (answered using the materialized views) plus the cost of applying the
/// deltas to each materialized view.
class TrackCoster {
 public:
  TrackCoster(const Memo* memo, const Catalog* catalog, StatsAnalysis* stats,
              FdAnalysis* fds, DeltaAnalysis* delta, const QueryCoster* query,
              TrackCostOptions options = {})
      : memo_(memo),
        catalog_(catalog),
        stats_(stats),
        fds_(fds),
        delta_(delta),
        query_(query),
        options_(options) {}

  StatusOr<TrackCost> Cost(const UpdateTrack& track, const ViewSet& marked,
                           const TransactionType& txn) const;

  const TrackCostOptions& options() const { return options_; }

 private:
  const Memo* memo_;
  const Catalog* catalog_;
  StatsAnalysis* stats_;
  FdAnalysis* fds_;
  DeltaAnalysis* delta_;
  const QueryCoster* query_;
  TrackCostOptions options_;
};

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_TRACK_COST_H_
