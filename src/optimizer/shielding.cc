#include <algorithm>
#include <map>

#include "memo/articulation.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"

namespace auxview {

namespace {

/// The interior of an articulation group: the nodes separated from the root
/// when `a` is removed from the undirected DAG — i.e. the live groups not
/// reachable from the root without passing through `a`.
std::set<GroupId> InteriorOf(const Memo& memo, GroupId a) {
  a = memo.Find(a);
  const GroupId root = memo.root();
  std::set<GroupId> reachable;
  if (root != a) {
    // BFS over the undirected group/op graph, never entering `a`.
    std::vector<GroupId> queue = {root};
    reachable.insert(root);
    while (!queue.empty()) {
      const GroupId g = queue.back();
      queue.pop_back();
      // Neighbors via member ops (their inputs) and via parent ops.
      auto visit = [&](GroupId next) {
        next = memo.Find(next);
        if (next == a) return;
        if (reachable.insert(next).second) queue.push_back(next);
      };
      for (int eid : memo.group(g).exprs) {
        const MemoExpr& e = memo.expr(eid);
        if (e.dead) continue;
        for (GroupId in : e.inputs) visit(in);
      }
      for (int eid : memo.ParentExprsOf(g)) {
        visit(memo.expr(eid).group);
      }
    }
  }
  std::set<GroupId> interior;
  for (GroupId g : memo.LiveGroups()) {
    if (g != a && reachable.count(g) == 0 && !memo.group(g).is_leaf) {
      interior.insert(g);
    }
  }
  return interior;
}

}  // namespace

StatusOr<OptimizeResult> ViewSelector::Shielding(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  obs::TraceSpan span("optimizer.shielding");
  const GroupId root = memo_->root();
  const std::set<GroupId> arts_all = FindArticulationGroups(*memo_);

  // Articulation groups usable for shielding: non-leaf, non-root, with a
  // non-empty interior.
  std::map<GroupId, std::set<GroupId>> interiors;
  for (GroupId a : arts_all) {
    const GroupId canon = memo_->Find(a);
    if (canon == root || memo_->group(canon).is_leaf) continue;
    std::set<GroupId> interior = InteriorOf(*memo_, canon);
    if (!interior.empty()) interiors.emplace(canon, std::move(interior));
  }

  // Local optimization of each shielded sub-DAG (Theorem 4.1: when `a` is
  // materialized in the global optimum, the selection inside its interior
  // equals the local optimum for maintaining `a` alone).
  std::map<GroupId, ViewSet> local_interior_opt;
  for (const auto& [a, interior] : interiors) {
    std::set<GroupId> candidates;
    const std::set<GroupId> desc = DescendantGroups(*memo_, a);
    for (GroupId g : interior) {
      if (desc.count(g) > 0) candidates.insert(g);
    }
    AUXVIEW_ASSIGN_OR_RETURN(
        OptimizeResult local,
        ExhaustiveOver(txns, options, {a}, std::move(candidates)));
    ViewSet chosen;
    for (GroupId g : local.views) {
      if (interior.count(g) > 0) chosen.insert(g);
    }
    local_interior_opt.emplace(a, std::move(chosen));
  }

  // Global enumeration with pruning.
  auto filter = [&](const ViewSet& views) {
    for (const auto& [a, interior] : interiors) {
      if (views.count(a) == 0) continue;
      const ViewSet& expected = local_interior_opt.at(a);
      for (GroupId g : interior) {
        const bool in_views = views.count(g) > 0;
        const bool in_expected = expected.count(g) > 0;
        if (in_views != in_expected) return false;
      }
    }
    return true;
  };

  std::set<GroupId> candidates;
  for (GroupId g : memo_->NonLeafGroups()) candidates.insert(g);
  return ExhaustiveOver(txns, options, {root}, std::move(candidates), filter);
}

}  // namespace auxview
