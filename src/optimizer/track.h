#ifndef AUXVIEW_OPTIMIZER_TRACK_H_
#define AUXVIEW_OPTIMIZER_TRACK_H_

#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "delta/analysis.h"
#include "memo/memo.h"
#include "optimizer/view_set.h"

namespace auxview {

/// An update track (Definition 3.3): for every affected equivalence node
/// that must produce a delta — every marked affected node plus, transitively,
/// every affected input of a chosen operation node — exactly one affected
/// operation-node child is chosen. The choice is global (a shared group gets
/// one operation node), matching the subdag condition of Definition 3.2.
struct UpdateTrack {
  std::map<GroupId, int> choice;  // group -> chosen operation-node id

  std::string ToString(const Memo& memo) const;
};

/// Options for track enumeration.
struct TrackEnumOptions {
  /// Hard cap on enumerated tracks per (view set, transaction).
  int max_tracks = 4096;
  /// When true, pick one locally-cheapest operation node per group instead
  /// of enumerating (Section 5's greedy/approximate costing).
  bool greedy = false;
  /// When non-empty, only these operation nodes may appear on tracks
  /// (Section 5's single-expression-tree restriction).
  std::set<int> allowed_ops;
};

/// Enumerates the update tracks of the DAG for a view set and transaction.
class TrackEnumerator {
 public:
  TrackEnumerator(const Memo* memo, DeltaAnalysis* delta)
      : memo_(memo), delta_(delta) {}

  /// All (or up to max_tracks) update tracks for maintaining `marked` under
  /// `txn`. Returns one empty track when the transaction touches no marked
  /// view. With options.greedy, returns exactly one track built by choosing,
  /// per group, the operation node with the fewest affected inputs (ties by
  /// id) — a cheap deterministic stand-in for local choice.
  StatusOr<std::vector<UpdateTrack>> Enumerate(
      const ViewSet& marked, const TransactionType& txn,
      const TrackEnumOptions& options = {}) const;

 private:
  const Memo* memo_;
  DeltaAnalysis* delta_;
};

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_TRACK_H_
