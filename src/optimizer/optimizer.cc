#include "optimizer/optimizer.h"

#include "optimizer/select_views.h"

namespace auxview {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kExhaustive:
      return "exhaustive";
    case Strategy::kShielding:
      return "shielding";
    case Strategy::kSingleTree:
      return "single-tree";
    case Strategy::kHeuristicMarking:
      return "heuristic-marking";
    case Strategy::kGreedy:
      return "greedy";
  }
  return "?";
}

StatusOr<SelectViewsResult> SelectViews(const Expr::Ptr& view,
                                        const Catalog& catalog,
                                        const std::vector<TransactionType>& txns,
                                        Strategy strategy,
                                        const OptimizeOptions& options,
                                        const ExpandOptions& expand) {
  AUXVIEW_ASSIGN_OR_RETURN(Memo memo, BuildExpandedMemo(view, catalog, expand));
  SelectViewsResult out;
  out.memo = std::move(memo);
  ViewSelector selector(&out.memo, &catalog);
  StatusOr<OptimizeResult> result = [&]() -> StatusOr<OptimizeResult> {
    switch (strategy) {
      case Strategy::kExhaustive:
        return selector.Exhaustive(txns, options);
      case Strategy::kShielding:
        return selector.Shielding(txns, options);
      case Strategy::kSingleTree:
        return selector.SingleTree(txns, options);
      case Strategy::kHeuristicMarking:
        return selector.HeuristicMarking(txns, options);
      case Strategy::kGreedy:
        return selector.Greedy(txns, options);
    }
    return Status::InvalidArgument("unknown strategy");
  }();
  AUXVIEW_RETURN_IF_ERROR(result.status());
  out.result = std::move(result).value();
  return out;
}

}  // namespace auxview
