#include "optimizer/track_cost.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <set>

#include "common/string_util.h"
#include "delta/locality.h"

namespace auxview {

std::string QueryRecord::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "probes=%.4g cost=%.4g", probes, cost);
  return label + " on N" + std::to_string(on_group) + " [" +
         Join(attrs, ",") + "] " + buf + (shared ? " (shared)" : "");
}

StatusOr<TrackCost> TrackCoster::Cost(const UpdateTrack& track,
                                      const ViewSet& marked,
                                      const TransactionType& txn) const {
  TrackCost out;
  if (track.choice.empty()) return out;

  // Canonical marked set.
  std::set<GroupId> marked_canon;
  for (GroupId g : marked) marked_canon.insert(memo_->Find(g));

  const std::set<GroupId> affected = delta_->AffectedGroups(txn);

  // 1. Deltas, bottom-up over the assignment (memoized recursion).
  std::map<GroupId, DeltaInfo> deltas;
  std::function<StatusOr<DeltaInfo>(GroupId)> delta_of =
      [&](GroupId g) -> StatusOr<DeltaInfo> {
    g = memo_->Find(g);
    auto it = deltas.find(g);
    if (it != deltas.end()) return it->second;
    const MemoGroup& grp = memo_->group(g);
    DeltaInfo info;
    if (grp.is_leaf) {
      const UpdateSpec* spec = txn.SpecFor(grp.table);
      if (spec != nullptr) {
        const TableDef* def = catalog_->FindTable(grp.table);
        if (def == nullptr) {
          return Status::NotFound("updated relation missing from catalog: " +
                                  grp.table);
        }
        info = delta_->LeafDelta(*def, *spec);
      }
    } else if (affected.count(g) > 0) {
      auto choice_it = track.choice.find(g);
      if (choice_it == track.choice.end()) {
        return Status::Internal("affected group N" + std::to_string(g) +
                                " has no operation node on the track");
      }
      const MemoExpr& e = memo_->expr(choice_it->second);
      std::vector<DeltaInfo> child_deltas;
      for (GroupId in : e.inputs) {
        AUXVIEW_ASSIGN_OR_RETURN(DeltaInfo child, delta_of(in));
        child_deltas.push_back(std::move(child));
      }
      info = delta_->Propagate(e, child_deltas);
    }
    deltas[g] = info;
    return info;
  };
  for (const auto& [g, eid] : track.choice) {
    (void)eid;
    AUXVIEW_RETURN_IF_ERROR(delta_of(g).status());
  }

  // 2. Queries posed along the track.
  std::set<std::string> seen_queries;
  auto pose_query = [&](int expr_id, GroupId on, std::vector<std::string> attrs,
                        double probes, const std::string& label) {
    if (probes <= 0) return;
    on = memo_->Find(on);
    QueryRecord rec;
    rec.expr_id = expr_id;
    rec.on_group = on;
    rec.attrs = attrs;
    rec.probes = probes;
    rec.label = label;
    char probes_key[32];
    std::snprintf(probes_key, sizeof(probes_key), "%.6g", probes);
    const std::string key = "N" + std::to_string(on) + "|" +
                            Join(attrs, ",") + "|" + probes_key;
    if (options_.share_queries && !seen_queries.insert(key).second) {
      rec.shared = true;
      rec.cost = 0;
    } else {
      rec.cost = query_->LookupCost(on, attrs, probes, marked_canon);
    }
    out.query_cost += rec.cost;
    out.queries.push_back(std::move(rec));
  };

  for (const auto& [g, eid] : track.choice) {
    const MemoExpr& e = memo_->expr(eid);
    switch (e.kind()) {
      case OpKind::kScan:
      case OpKind::kSelect:
      case OpKind::kProject:
        break;
      case OpKind::kJoin: {
        const GroupId left = memo_->Find(e.inputs[0]);
        const GroupId right = memo_->Find(e.inputs[1]);
        const bool l_aff = affected.count(left) > 0;
        const bool r_aff = affected.count(right) > 0;
        const std::vector<std::string>& s = e.op->join_attrs();
        if (l_aff) {
          // Delta arrives from the left: query the right input.
          pose_query(eid, right, s, deltas.at(left).size,
                     "Q@E" + std::to_string(eid) + "R");
        }
        if (r_aff) {
          pose_query(eid, left, s, deltas.at(right).size,
                     "Q@E" + std::to_string(eid) + "L");
        }
        break;
      }
      case OpKind::kAggregate: {
        const GroupId input = memo_->Find(e.inputs[0]);
        const DeltaInfo& child_delta = deltas.at(input);
        const bool materialized = marked_canon.count(g) > 0;
        if (delta_->AggregateNeedsQuery(e, child_delta, materialized)) {
          // Fetch the affected groups' full contents from the input.
          pose_query(eid, input, e.op->group_by(), deltas.at(g).size,
                     "Q@E" + std::to_string(eid));
        }
        break;
      }
      case OpKind::kDupElim: {
        // Computing insert/delete transitions of a duplicate-eliminated view
        // requires the input's current multiplicity for every delta row.
        const GroupId input = memo_->Find(e.inputs[0]);
        const DeltaInfo& child_delta = deltas.at(input);
        std::vector<std::string> all_attrs;
        for (const Column& c : memo_->group(g).schema.columns()) {
          all_attrs.push_back(c.name);
        }
        pose_query(eid, input, all_attrs, child_delta.size,
                   "Q@E" + std::to_string(eid));
        break;
      }
    }
  }

  // 3. Update-application cost for each marked affected group.
  const GroupId root = memo_->root();
  for (GroupId g : marked_canon) {
    if (memo_->group(g).is_leaf) continue;
    if (affected.count(g) == 0) continue;
    if (g == root && !options_.include_root_update_cost) continue;
    auto it = deltas.find(g);
    if (it == deltas.end()) continue;
    const DeltaInfo& d = it->second;
    out.update_cost += query_->model().ApplyDelta(
        d.kind, d.size, options_.indexes_per_view,
        /*indexed_attrs_change=*/false);
  }

  // 4. Shard fanout: a decomposable, non-cross-shard track propagates each
  // shard's slice of the delta independently, so its query latency divides
  // by the shard count. Update application stays in the global commit
  // funnel and keeps its full cost; so do cross-shard tracks.
  if (options_.shard_fanout > 1) {
    LocalityClassifier classifier(memo_, catalog_, delta_);
    AUXVIEW_ASSIGN_OR_RETURN(TrackLocalityReport report,
                             classifier.Classify(track, marked, txn));
    if (report.decomposable &&
        report.locality != TrackLocality::kCrossShard) {
      out.query_cost /= options_.shard_fanout;
    }
  }

  out.deltas = std::move(deltas);
  return out;
}

}  // namespace auxview
