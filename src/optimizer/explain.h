#ifndef AUXVIEW_OPTIMIZER_EXPLAIN_H_
#define AUXVIEW_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "memo/memo.h"
#include "optimizer/optimizer.h"

namespace auxview {

/// Human-readable rendering of one costed update track: the chosen
/// operation node per equivalence node, the queries posed (Example 3.2
/// style, with probe counts and costs), the expected delta at each node,
/// and the update-application cost.
std::string ExplainTrack(const Memo& memo, const UpdateTrack& track,
                         const TrackCost& cost);

/// Full optimizer-result report: the chosen view set (with each auxiliary
/// view's defining expression) and the per-transaction plans.
std::string ExplainPlan(const Memo& memo, const OptimizeResult& result);

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_EXPLAIN_H_
