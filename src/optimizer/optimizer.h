#ifndef AUXVIEW_OPTIMIZER_OPTIMIZER_H_
#define AUXVIEW_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cost/query_cost.h"
#include "delta/analysis.h"
#include "optimizer/track.h"
#include "optimizer/track_cost.h"
#include "optimizer/track_cost_cache.h"
#include "optimizer/view_set.h"

namespace auxview {

/// Options controlling view-set optimization.
struct OptimizeOptions {
  TrackEnumOptions tracks;
  TrackCostOptions cost;
  QueryCostOptions query;
  /// Hard cap on the number of candidate groups for exhaustive subset
  /// enumeration (2^n view sets). Clamped to 63 internally: the mask walk
  /// shifts `1ull << candidates`, which is undefined at 64.
  int max_candidates = 22;
  /// Worker threads for exhaustive enumeration. 1 = the sequential walk;
  /// 0 = one per hardware thread; N > 1 shards the view-set mask space
  /// across N workers with thread-local costers. The result is bit-identical
  /// for every value (per-mask costings are independent and the merge
  /// tie-breaks on the lowest mask); only wall time changes. A caller-
  /// supplied ExhaustiveOver filter must be safe to call concurrently.
  int threads = 1;
  /// Reuse TrackCoster::Cost results across view sets through the
  /// selector's TrackCostCache (see docs/OPTIMIZER.md). Adjacent view sets
  /// share most update tracks, so exhaustive enumeration hits constantly.
  /// Disable to force recomputation (ablations, cache-correctness tests).
  bool use_track_cache = true;
  /// Entry cap for the selector's TrackCostCache: inserts beyond it evict
  /// the least-recently-used entry (cached values are deterministic, so
  /// eviction changes hit rates, never results). 0 = unbounded. Applied at
  /// every optimizer entry point; the live count is the
  /// `optimizer.trackcache_size` gauge.
  size_t track_cache_capacity = 1 << 18;
  /// Record the cost of every view set considered (benches).
  bool keep_all = false;
};

/// The chosen update track and its cost for one transaction type.
struct TxnPlan {
  std::string txn_name;
  double weight = 1;
  UpdateTrack track;
  TrackCost cost;
};

/// Result of view-set optimization.
struct OptimizeResult {
  ViewSet views;               // includes the (local) root
  double weighted_cost = 0;    // sum_i C(V,T_i) f_i / sum_i f_i
  std::vector<TxnPlan> plans;  // per transaction, for the winning view set
  int64_t viewsets_costed = 0;
  int64_t viewsets_pruned = 0;  // skipped by shielding
  /// Tracks considered (cache hits included, so the count is independent of
  /// caching and threading).
  int64_t tracks_costed = 0;
  /// TrackCostCache traffic for this run. Hit+miss ordering is scheduling-
  /// dependent when threads > 1, but hits+misses == tracks evaluated.
  int64_t trackcache_hits = 0;
  int64_t trackcache_misses = 0;
  /// Per-view-set weighted costs when keep_all was set.
  std::vector<std::pair<ViewSet, double>> all_costs;
};

/// The view-selection optimizer: given an expanded expression DAG for a
/// materialized view and a set of weighted transaction types, decides which
/// additional equivalence nodes to materialize (Algorithm OptimalViewSet,
/// Figure 4), with the Section 4 shielding optimization and the Section 5
/// heuristics as alternative strategies.
class ViewSelector {
 public:
  ViewSelector(const Memo* memo, const Catalog* catalog,
               IoCostModel model = IoCostModel());

  /// Exhaustive Algorithm OptimalViewSet over all non-leaf equivalence nodes
  /// (minus the root, which is always materialized).
  StatusOr<OptimizeResult> Exhaustive(const std::vector<TransactionType>& txns,
                                      const OptimizeOptions& options = {});

  /// Section 6 extension: optimal additional views for maintaining a SET of
  /// materialized views (a multi-root expression DAG — add every view's
  /// tree to the memo first). All roots are always materialized and their
  /// update costs are counted.
  StatusOr<OptimizeResult> ExhaustiveMultiView(
      const std::vector<GroupId>& roots,
      const std::vector<TransactionType>& txns,
      const OptimizeOptions& options = {});

  /// Exhaustive search restricted to `candidates`, with `roots` always
  /// marked (building block for shielding and the heuristics). An optional
  /// filter skips view sets without costing them.
  StatusOr<OptimizeResult> ExhaustiveOver(
      const std::vector<TransactionType>& txns, const OptimizeOptions& options,
      std::set<GroupId> roots, std::set<GroupId> candidates,
      const std::function<bool(const ViewSet&)>& filter = nullptr);

  /// Shielding-principle optimization (Section 4.2): sub-DAGs below
  /// articulation equivalence nodes are optimized locally once, and the
  /// global enumeration prunes every view set whose interior selection below
  /// a marked articulation node differs from the local optimum.
  StatusOr<OptimizeResult> Shielding(const std::vector<TransactionType>& txns,
                                     const OptimizeOptions& options = {});

  /// Section 5, "Using a Single Expression Tree": restrict the search to the
  /// groups and operation nodes of one expression tree (chosen greedily as
  /// the cheapest evaluation plan).
  StatusOr<OptimizeResult> SingleTree(const std::vector<TransactionType>& txns,
                                      const OptimizeOptions& options = {});

  /// Section 5, "Choosing a Single View Set": on the single tree, mark every
  /// parent of a join or grouping/aggregation operator; keep the marking only
  /// if it beats materializing nothing.
  StatusOr<OptimizeResult> HeuristicMarking(
      const std::vector<TransactionType>& txns,
      const OptimizeOptions& options = {});

  /// Section 5, "Using Approximate Costing": greedy hill-climbing — starting
  /// from the empty additional set, repeatedly add the candidate whose
  /// addition reduces the weighted cost most, with greedy (single-choice)
  /// track selection.
  StatusOr<OptimizeResult> Greedy(const std::vector<TransactionType>& txns,
                                  const OptimizeOptions& options = {});

  /// Weighted cost of one specific view set (and the per-transaction plans).
  StatusOr<OptimizeResult> CostViewSet(
      const std::vector<TransactionType>& txns, const ViewSet& views,
      const OptimizeOptions& options = {});

  /// Best track and cost for one (view set, transaction).
  StatusOr<TxnPlan> BestTrack(const ViewSet& views, const TransactionType& txn,
                              const OptimizeOptions& options = {});

  const Memo& memo() const { return *memo_; }
  StatsAnalysis& stats() { return stats_; }
  FdAnalysis& fds() { return fds_; }
  DeltaAnalysis& delta() { return delta_; }

 private:
  /// Clears the memoized statistics/FD analyses when Catalog::stats_epoch()
  /// has advanced since they were last used, so a long-lived selector picks
  /// up SetStats/AddTable instead of serving stale derived stats. Called
  /// single-threaded at the costing entry points (BestTrack,
  /// ExhaustiveOver) before any worker threads exist.
  void RefreshAnalyses();

  /// Builds (lazily) and epoch-refreshes the shared track-cost cache and
  /// the descendants index, and applies the entry cap. Called
  /// single-threaded at optimization entry points before any worker may
  /// touch the cache.
  void PrepareTrackCache(size_t capacity);

  const Memo* memo_;
  const Catalog* catalog_;
  IoCostModel model_;
  StatsAnalysis stats_;
  FdAnalysis fds_;
  DeltaAnalysis delta_;
  /// Epoch the analyses' memoized values were derived from.
  uint64_t analyses_epoch_;
  /// Shared across Exhaustive/Shielding/heuristic entry points (and their
  /// worker threads); invalidated when Catalog::stats_epoch() advances.
  std::unique_ptr<TrackCostCache> track_cache_;
  std::unique_ptr<DescendantsIndex> descendants_;
};

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_OPTIMIZER_H_
