#include "optimizer/explain.h"

#include <cstdio>

namespace auxview {

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

std::string ExplainTrack(const Memo& memo, const UpdateTrack& track,
                         const TrackCost& cost) {
  std::string out;
  if (track.choice.empty()) {
    return "  (no marked view is affected; nothing to do)\n";
  }
  out += "  update track:\n";
  for (const auto& [g, eid] : track.choice) {
    const MemoExpr& e = memo.expr(eid);
    out += "    N" + std::to_string(g) + " <- " + e.op->LocalToString();
    auto delta_it = cost.deltas.find(g);
    if (delta_it != cost.deltas.end() && delta_it->second.affected()) {
      out += "   // " + delta_it->second.ToString();
    }
    out += "\n";
  }
  if (!cost.queries.empty()) {
    out += "  queries posed:\n";
    for (const QueryRecord& q : cost.queries) {
      out += "    " + q.ToString() + "\n";
    }
  }
  out += "  query cost " + Num(cost.query_cost) + " + update cost " +
         Num(cost.update_cost) + " = " + Num(cost.total()) + " page I/Os\n";
  return out;
}

std::string ExplainPlan(const Memo& memo, const OptimizeResult& result) {
  std::string out = "view set " + ViewSetToString(result.views) +
                    ", weighted cost " + Num(result.weighted_cost) +
                    " page I/Os per transaction\n";
  for (GroupId g : result.views) {
    if (memo.group(memo.Find(g)).is_leaf) continue;
    auto tree = memo.ExtractOriginalTree(g);
    if (!tree.ok()) continue;
    out += "materialized N" + std::to_string(memo.Find(g)) +
           (memo.Find(g) == memo.root() ? " (root view)" : " (auxiliary)") +
           ":\n";
    std::string rendered = (*tree)->TreeToString();
    // Indent the tree.
    size_t pos = 0;
    while (pos < rendered.size()) {
      const size_t eol = rendered.find('\n', pos);
      out += "  " + rendered.substr(pos, eol - pos) + "\n";
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
  }
  for (const TxnPlan& plan : result.plans) {
    out += "transaction " + plan.txn_name + " (weight " + Num(plan.weight) +
           "):\n";
    out += ExplainTrack(memo, plan.track, plan.cost);
  }
  return out;
}

}  // namespace auxview
