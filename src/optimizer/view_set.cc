#include "optimizer/view_set.h"

namespace auxview {

std::string ViewSetToString(const ViewSet& views) {
  std::string out = "{";
  bool first = true;
  for (GroupId g : views) {
    if (!first) out += ", ";
    out += "N" + std::to_string(g);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace auxview
