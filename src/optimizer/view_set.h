#ifndef AUXVIEW_OPTIMIZER_VIEW_SET_H_
#define AUXVIEW_OPTIMIZER_VIEW_SET_H_

#include <set>
#include <string>

#include "memo/memo.h"

namespace auxview {

/// A view set (Definition 3.1): the equivalence nodes chosen for
/// materialization. Always contains the root view; leaf groups (base
/// relations) are implicitly materialized and never listed.
using ViewSet = std::set<GroupId>;

/// "{N2, N3}" rendering.
std::string ViewSetToString(const ViewSet& views);

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_VIEW_SET_H_
