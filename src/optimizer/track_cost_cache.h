#ifndef AUXVIEW_OPTIMIZER_TRACK_COST_CACHE_H_
#define AUXVIEW_OPTIMIZER_TRACK_COST_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "cost/query_cost.h"
#include "optimizer/track.h"
#include "optimizer/track_cost.h"
#include "optimizer/view_set.h"

namespace auxview {

/// Precomputed descendant closures of every live memo group — `{g} plus
/// every group reachable through operation-node inputs`. Built once per
/// memo (the memo must not be mutated afterwards) and read concurrently by
/// the enumeration workers.
///
/// Its job is to shrink a TrackCost cache key: `TrackCoster::Cost` only
/// ever consults the marked (materialized) status of groups at or below the
/// track's chosen operation nodes — delta queries are posed on the chosen
/// ops' inputs and answered by descending the DAG (`QueryCoster::LookupCost`
/// recurses through inputs only), and update-application charges are taken
/// on marked groups of the track itself. Everything else in the view set is
/// irrelevant to that track's cost, so adjacent view sets that differ only
/// in irrelevant groups share one cache entry.
class DescendantsIndex {
 public:
  explicit DescendantsIndex(const Memo* memo);

  /// The subset of `marked` that can influence `TrackCoster::Cost(track)`:
  /// marked groups on the track itself, plus marked groups in the
  /// descendant closure of an input of a chosen join/aggregate/dup-elim
  /// node (the only places lookup queries are posed). Returned sorted
  /// (canonical ids), ready for key building.
  std::vector<GroupId> RelevantMarked(const UpdateTrack& track,
                                      const ViewSet& marked) const;

 private:
  const Memo* memo_;
  std::map<GroupId, std::set<GroupId>> descendants_;
};

/// Memoizes TrackCoster::Cost results across view sets (and across
/// optimizer entry points): key = (costing-option fingerprint, transaction
/// fingerprint, update track, marked-subset-relevant-to-the-track). The key
/// is the exact canonical serialization — no lossy hashing — so a hit is
/// guaranteed to be the value a recomputation would produce and cached
/// results are bit-identical to uncached ones.
///
/// Thread safety: Lookup/Insert are safe from concurrent enumeration
/// workers (the map is sharded by key hash, one mutex per shard). Because
/// the cached value for a key is a deterministic function of the memo,
/// catalog and options, racing workers that miss on the same key insert the
/// same value — the final contents are deterministic even though hit/miss
/// interleavings are not.
///
/// Invalidation: cost estimates derive from catalog statistics, so the
/// cache records `Catalog::stats_epoch()` when filled and `Refresh()`
/// (called at every optimizer entry point, single-threaded) clears it when
/// the epoch has advanced — i.e. after any `Catalog::SetStats` or
/// `AddTable`. The memo is immutable for the life of the owning
/// ViewSelector, so no memo-based invalidation is needed.
///
/// Bounding: the cache holds at most `capacity` entries (default unbounded
/// until SetCapacity is called; OptimizeOptions::track_cache_capacity feeds
/// it at every optimizer entry point). Beyond the cap, inserts evict the
/// least-recently-used entry of their shard. Eviction is always safe:
/// cached values are deterministic recomputations, so a future miss on an
/// evicted key just pays the costing again — results are bit-identical at
/// every capacity, only hit rates change. The live entry count is exported
/// as the `optimizer.trackcache_size` gauge (delta-maintained, so several
/// coexisting caches aggregate).
class TrackCostCache {
 public:
  explicit TrackCostCache(const Catalog* catalog);
  ~TrackCostCache();

  TrackCostCache(const TrackCostCache&) = delete;
  TrackCostCache& operator=(const TrackCostCache&) = delete;

  /// Drops every entry if the catalog's stats epoch moved since the cache
  /// was last filled. Call before each optimization run, never concurrently
  /// with Lookup/Insert.
  void Refresh();

  /// Sets the total entry cap (0 = unbounded) and evicts down to it, oldest
  /// first. The cap is spread across shards, so the effective bound rounds
  /// up to a multiple of the shard count. Never call concurrently with
  /// Lookup/Insert.
  void SetCapacity(size_t capacity);

  /// Copies the cached cost into `*out` and returns true on a hit (which
  /// refreshes the entry's recency). Maintains the
  /// `optimizer.trackcache_{hits,misses}` counters.
  bool Lookup(const std::string& key, TrackCost* out);

  /// Stores `cost` for `key` (first writer wins; racing duplicates are
  /// identical by construction), evicting its shard's LRU entry when the
  /// shard is at capacity.
  void Insert(const std::string& key, const TrackCost& cost);

  void Clear();

  /// Entries across all shards (tests / introspection).
  size_t size() const;

  /// Key-prefix for everything that is fixed across one optimization run
  /// but may differ between runs sharing this cache: every option that
  /// changes what TrackCoster::Cost returns, plus the transaction's update
  /// specs (weights are applied outside the track cost and are excluded).
  static std::string KeyPrefix(const TrackCostOptions& cost,
                               const QueryCostOptions& query,
                               bool use_completeness,
                               const TransactionType& txn);

  /// Full key: prefix + the track's (group -> op) choices + the relevant
  /// marked subset from DescendantsIndex::RelevantMarked.
  static std::string Key(const std::string& prefix, const UpdateTrack& track,
                         const std::vector<GroupId>& relevant_marked);

 private:
  static constexpr int kShards = 16;
  struct Entry {
    TrackCost cost;
    /// Position in the shard's recency list (for O(1) touch/evict).
    std::list<std::string>::iterator pos;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Most-recently-used first; holds the entry keys.
    std::list<std::string> lru;
    std::unordered_map<std::string, Entry> entries;
  };

  Shard& ShardFor(const std::string& key);
  /// Evicts `shard`'s oldest entries until it holds at most `cap` (callers
  /// hold shard.mu).
  static void EvictDownTo(Shard& shard, size_t cap);

  const Catalog* catalog_;
  uint64_t filled_at_epoch_ = 0;
  /// Per-shard entry cap; 0 = unbounded.
  size_t shard_capacity_ = 0;
  Shard shards_[kShards];
};

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_TRACK_COST_CACHE_H_
