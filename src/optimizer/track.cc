#include "optimizer/track.h"

#include <algorithm>
#include <functional>

namespace auxview {

std::string UpdateTrack::ToString(const Memo& memo) const {
  std::string out = "track{";
  bool first = true;
  for (const auto& [g, eid] : choice) {
    if (!first) out += ", ";
    out += "N" + std::to_string(g) + "<-" +
           memo.expr(eid).op->LocalToString();
    first = false;
  }
  out += "}";
  return out;
}

StatusOr<std::vector<UpdateTrack>> TrackEnumerator::Enumerate(
    const ViewSet& marked, const TransactionType& txn,
    const TrackEnumOptions& options) const {
  const std::set<GroupId> affected = delta_->AffectedGroups(txn);

  // Needed roots: marked affected non-leaf groups.
  std::vector<GroupId> roots;
  for (GroupId g : marked) {
    const GroupId canon = memo_->Find(g);
    if (affected.count(canon) > 0 && !memo_->group(canon).is_leaf) {
      roots.push_back(canon);
    }
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  if (roots.empty()) return std::vector<UpdateTrack>{UpdateTrack{}};

  // Per-group candidate operation nodes (those with an affected input).
  std::map<GroupId, std::vector<int>> candidates;
  for (GroupId g : memo_->LiveGroups()) {
    if (memo_->group(g).is_leaf || affected.count(g) == 0) continue;
    std::vector<int> ops;
    for (int eid : memo_->group(g).exprs) {
      const MemoExpr& e = memo_->expr(eid);
      if (e.dead) continue;
      if (!options.allowed_ops.empty() &&
          options.allowed_ops.count(eid) == 0) {
        continue;
      }
      for (GroupId in : e.inputs) {
        if (affected.count(memo_->Find(in)) > 0) {
          ops.push_back(eid);
          break;
        }
      }
    }
    // A group can lose all its candidates under an allowed_ops restriction;
    // that only matters if a track actually needs it (checked on demand).
    if (ops.empty()) continue;
    if (options.greedy) {
      // Keep the operation node with the fewest affected inputs; ties by id.
      auto affected_inputs = [&](int eid) {
        int n = 0;
        for (GroupId in : memo_->expr(eid).inputs) {
          if (affected.count(memo_->Find(in)) > 0) ++n;
        }
        return n;
      };
      int best = ops[0];
      for (int eid : ops) {
        if (affected_inputs(eid) < affected_inputs(best)) best = eid;
      }
      ops = {best};
    }
    candidates[g] = std::move(ops);
  }

  std::vector<UpdateTrack> tracks;
  UpdateTrack current;
  bool truncated = false;

  // DFS over unassigned needed groups.
  std::function<void(std::vector<GroupId>)> recurse =
      [&](std::vector<GroupId> pending) {
        if (truncated) return;
        // Find the first pending group without an assignment.
        GroupId next = -1;
        while (!pending.empty()) {
          const GroupId g = pending.back();
          if (current.choice.count(g) == 0) {
            next = g;
            break;
          }
          pending.pop_back();
        }
        if (next < 0) {
          tracks.push_back(current);
          if (static_cast<int>(tracks.size()) >= options.max_tracks) {
            truncated = true;
          }
          return;
        }
        pending.pop_back();
        auto cand_it = candidates.find(next);
        if (cand_it == candidates.end()) return;  // dead branch
        for (int eid : cand_it->second) {
          current.choice[next] = eid;
          std::vector<GroupId> next_pending = pending;
          for (GroupId in : memo_->expr(eid).inputs) {
            const GroupId canon = memo_->Find(in);
            if (affected.count(canon) > 0 && !memo_->group(canon).is_leaf &&
                current.choice.count(canon) == 0) {
              next_pending.push_back(canon);
            }
          }
          recurse(std::move(next_pending));
          current.choice.erase(next);
          if (truncated) return;
        }
      };
  recurse(roots);
  return tracks;
}

}  // namespace auxview
