#ifndef AUXVIEW_OPTIMIZER_SELECT_VIEWS_H_
#define AUXVIEW_OPTIMIZER_SELECT_VIEWS_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "memo/expand.h"
#include "optimizer/optimizer.h"

namespace auxview {

/// Optimization strategies (Sections 3-5).
enum class Strategy {
  kExhaustive,
  kShielding,
  kSingleTree,
  kHeuristicMarking,
  kGreedy,
};

const char* StrategyName(Strategy strategy);

/// End-to-end view selection: builds the expression DAG for `view` with the
/// default rule set, expands it, and runs the requested strategy. This is
/// the one-call public entry point; use ViewSelector directly for control
/// over the memo and rule set.
struct SelectViewsResult {
  Memo memo;
  OptimizeResult result;
};

StatusOr<SelectViewsResult> SelectViews(
    const Expr::Ptr& view, const Catalog& catalog,
    const std::vector<TransactionType>& txns,
    Strategy strategy = Strategy::kExhaustive,
    const OptimizeOptions& options = {}, const ExpandOptions& expand = {});

}  // namespace auxview

#endif  // AUXVIEW_OPTIMIZER_SELECT_VIEWS_H_
