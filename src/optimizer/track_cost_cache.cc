#include "optimizer/track_cost_cache.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "memo/articulation.h"
#include "obs/metrics.h"

namespace auxview {

namespace {

struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;

  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return CacheMetrics{
          reg.GetCounter("optimizer.trackcache_hits"),
          reg.GetCounter("optimizer.trackcache_misses"),
      };
    }();
    return m;
  }
};

void AppendAttrs(const std::vector<std::string>& attrs, std::string* out) {
  for (const std::string& a : attrs) {
    *out += a;
    *out += ',';
  }
}

/// Live entries across all TrackCostCache instances, maintained by deltas
/// on insert/evict/clear so coexisting caches aggregate correctly.
obs::Gauge* SizeGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("optimizer.trackcache_size");
  return gauge;
}

}  // namespace

DescendantsIndex::DescendantsIndex(const Memo* memo) : memo_(memo) {
  for (GroupId g : memo->LiveGroups()) {
    descendants_.emplace(g, DescendantGroups(*memo, g));
  }
}

std::vector<GroupId> DescendantsIndex::RelevantMarked(
    const UpdateTrack& track, const ViewSet& marked) const {
  // The marked-set dependence of TrackCoster::Cost (keep in sync with
  // track_cost.cc):
  //  - the update-application charge and the aggregate materialized-check
  //    only look at marked groups ON the track (track.choice keys);
  //  - lookup queries are posed only on inputs of chosen join, aggregate
  //    and duplicate-elimination nodes, and QueryCoster::LookupCost
  //    descends strictly through inputs, so a query on q reads only
  //    marked ∩ ({q} ∪ descendants(q)). Selects/projects pose no queries.
  // Any other marked group cannot change the track's cost, so it stays out
  // of the cache key and adjacent view sets share the entry.
  std::set<GroupId> choice_canon;
  std::vector<GroupId> queried;
  for (const auto& [g, eid] : track.choice) {
    choice_canon.insert(memo_->Find(g));
    const MemoExpr& e = memo_->expr(eid);
    switch (e.kind()) {
      case OpKind::kJoin:
      case OpKind::kAggregate:
      case OpKind::kDupElim:
        for (GroupId in : e.inputs) queried.push_back(memo_->Find(in));
        break;
      default:
        break;
    }
  }
  std::vector<GroupId> out;
  for (GroupId m : marked) {
    const GroupId canon = memo_->Find(m);
    bool relevant = choice_canon.count(canon) > 0;
    for (size_t i = 0; !relevant && i < queried.size(); ++i) {
      if (queried[i] == canon) {
        relevant = true;
        break;
      }
      auto it = descendants_.find(queried[i]);
      if (it != descendants_.end() && it->second.count(canon) > 0) {
        relevant = true;
      }
    }
    if (relevant) out.push_back(canon);
  }
  // `marked` may alias canonical ids, so dedup while keeping them sorted.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TrackCostCache::TrackCostCache(const Catalog* catalog)
    : catalog_(catalog), filled_at_epoch_(catalog->stats_epoch()) {}

TrackCostCache::~TrackCostCache() { Clear(); }

void TrackCostCache::Refresh() {
  const uint64_t epoch = catalog_->stats_epoch();
  if (epoch != filled_at_epoch_) {
    Clear();
    filled_at_epoch_ = epoch;
  }
}

void TrackCostCache::SetCapacity(size_t capacity) {
  shard_capacity_ =
      capacity == 0 ? 0 : std::max<size_t>(1, (capacity + kShards - 1) / kShards);
  if (shard_capacity_ == 0) return;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictDownTo(shard, shard_capacity_);
  }
}

TrackCostCache::Shard& TrackCostCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

void TrackCostCache::EvictDownTo(Shard& shard, size_t cap) {
  int64_t evicted = 0;
  while (shard.entries.size() > cap) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
    ++evicted;
  }
  if (evicted > 0) SizeGauge()->Add(-evicted);
}

bool TrackCostCache::Lookup(const std::string& key, TrackCost* out) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      *out = it->second.cost;
      // Touch: move to the front of the recency list.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      CacheMetrics::Get().hits->Add(1);
      return true;
    }
  }
  CacheMetrics::Get().misses->Add(1);
  return false;
}

void TrackCostCache::Insert(const std::string& key, const TrackCost& cost) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) return;  // first writer wins
  if (shard_capacity_ > 0 && shard.entries.size() >= shard_capacity_) {
    EvictDownTo(shard, shard_capacity_ - 1);
  }
  shard.lru.push_front(key);
  shard.entries.emplace(key, Entry{cost, shard.lru.begin()});
  SizeGauge()->Add(1);
}

void TrackCostCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    SizeGauge()->Add(-static_cast<int64_t>(shard.entries.size()));
    shard.entries.clear();
    shard.lru.clear();
  }
}

size_t TrackCostCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

std::string TrackCostCache::KeyPrefix(const TrackCostOptions& cost,
                                      const QueryCostOptions& query,
                                      bool use_completeness,
                                      const TransactionType& txn) {
  std::string out;
  out += cost.share_queries ? 'S' : 's';
  out += cost.include_root_update_cost ? 'R' : 'r';
  out += query.materialized_views_indexed ? 'I' : 'i';
  out += use_completeness ? 'C' : 'c';
  out += std::to_string(cost.indexes_per_view);
  out += 'F';
  out += std::to_string(cost.shard_fanout);
  out += '|';
  for (const UpdateSpec& spec : txn.updates) {
    out += spec.relation;
    out += '#';
    out += UpdateKindName(spec.kind);
    char count_buf[32];
    std::snprintf(count_buf, sizeof(count_buf), "#%.17g#", spec.count);
    out += count_buf;
    AppendAttrs(spec.modified_attrs, &out);
    out += '#';
    AppendAttrs(spec.selected_by, &out);
    out += ';';
  }
  out += '|';
  return out;
}

std::string TrackCostCache::Key(const std::string& prefix,
                                const UpdateTrack& track,
                                const std::vector<GroupId>& relevant_marked) {
  std::string key = prefix;
  for (const auto& [g, eid] : track.choice) {
    key += std::to_string(g);
    key += ':';
    key += std::to_string(eid);
    key += ',';
  }
  key += '|';
  for (GroupId m : relevant_marked) {
    key += std::to_string(m);
    key += ',';
  }
  return key;
}

}  // namespace auxview
