#include <algorithm>
#include <limits>
#include <thread>

#include "obs/metrics.h"
#include "optimizer/optimizer.h"

namespace auxview {

namespace {

/// Shared optimizer counters (see docs/OBSERVABILITY.md).
struct OptimizerMetrics {
  obs::Counter* viewsets_costed;
  obs::Counter* viewsets_pruned;
  obs::Counter* tracks_costed;
  obs::Counter* workers_spawned;
  obs::Histogram* enumerate_us;
  obs::Histogram* worker_us;

  static const OptimizerMetrics& Get() {
    static const OptimizerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return OptimizerMetrics{
          reg.GetCounter("optimizer.viewsets_costed"),
          reg.GetCounter("optimizer.viewsets_pruned"),
          reg.GetCounter("optimizer.tracks_costed"),
          reg.GetCounter("optimizer.workers_spawned"),
          reg.GetHistogram("optimizer.enumerate_us"),
          reg.GetHistogram("optimizer.worker_us"),
      };
    }();
    return m;
  }
};

/// TrackCoster::Cost routed through the cross-view-set cache. `cache` may
/// be null (caching disabled), in which case this is a plain Cost call.
/// `hits`/`misses` accumulate into the caller's (thread-local) tallies.
StatusOr<TrackCost> CostThroughCache(const TrackCoster& coster,
                                     const UpdateTrack& track,
                                     const ViewSet& views,
                                     const TransactionType& txn,
                                     const std::string& key_prefix,
                                     TrackCostCache* cache,
                                     const DescendantsIndex* descendants,
                                     int64_t* hits, int64_t* misses) {
  if (cache == nullptr) return coster.Cost(track, views, txn);
  const std::string key = TrackCostCache::Key(
      key_prefix, track, descendants->RelevantMarked(track, views));
  TrackCost cached;
  if (cache->Lookup(key, &cached)) {
    ++*hits;
    return cached;
  }
  ++*misses;
  AUXVIEW_ASSIGN_OR_RETURN(TrackCost cost, coster.Cost(track, views, txn));
  cache->Insert(key, cost);
  return cost;
}

/// One enumeration worker's accumulated state. Workers never touch shared
/// mutable state except the TrackCostCache (internally locked); everything
/// else merges deterministically after the join.
struct ShardResult {
  double best_cost = std::numeric_limits<double>::infinity();
  uint64_t best_mask = ~0ull;
  ViewSet best_views;
  std::vector<TxnPlan> best_plans;
  int64_t viewsets_costed = 0;
  int64_t viewsets_pruned = 0;
  int64_t tracks_costed = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// (mask, views, cost) for keep_all; merged in mask order.
  std::vector<std::tuple<uint64_t, ViewSet, double>> all_costs;
  Status error = Status::Ok();
  uint64_t error_mask = ~0ull;
};

}  // namespace

ViewSelector::ViewSelector(const Memo* memo, const Catalog* catalog,
                           IoCostModel model)
    : memo_(memo),
      catalog_(catalog),
      model_(model),
      stats_(memo, catalog),
      fds_(memo, catalog),
      delta_(memo, catalog, &stats_),
      analyses_epoch_(catalog->stats_epoch()) {}

void ViewSelector::RefreshAnalyses() {
  const uint64_t epoch = catalog_->stats_epoch();
  if (epoch == analyses_epoch_) return;
  stats_.Clear();
  fds_.Clear();
  analyses_epoch_ = epoch;
}

void ViewSelector::PrepareTrackCache(size_t capacity) {
  if (track_cache_ == nullptr) {
    track_cache_ = std::make_unique<TrackCostCache>(catalog_);
  }
  track_cache_->Refresh();
  track_cache_->SetCapacity(capacity);
  if (descendants_ == nullptr) {
    descendants_ = std::make_unique<DescendantsIndex>(memo_);
  }
}

StatusOr<TxnPlan> ViewSelector::BestTrack(const ViewSet& views,
                                          const TransactionType& txn,
                                          const OptimizeOptions& options) {
  RefreshAnalyses();
  QueryCoster query(memo_, catalog_, &stats_, &fds_, model_, options.query);
  TrackCoster coster(memo_, catalog_, &stats_, &fds_, &delta_, &query,
                     options.cost);
  TrackEnumerator enumerator(memo_, &delta_);
  TrackCostCache* cache = nullptr;
  std::string key_prefix;
  if (options.use_track_cache) {
    PrepareTrackCache(options.track_cache_capacity);
    cache = track_cache_.get();
    key_prefix = TrackCostCache::KeyPrefix(
        options.cost, options.query, delta_.use_completeness(), txn);
  }
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<UpdateTrack> tracks,
                           enumerator.Enumerate(views, txn, options.tracks));
  TxnPlan best;
  best.txn_name = txn.name;
  best.weight = txn.weight;
  double best_cost = std::numeric_limits<double>::infinity();
  OptimizerMetrics::Get().tracks_costed->Add(
      static_cast<int64_t>(tracks.size()));
  int64_t hits = 0;
  int64_t misses = 0;
  for (const UpdateTrack& track : tracks) {
    AUXVIEW_ASSIGN_OR_RETURN(
        TrackCost cost,
        CostThroughCache(coster, track, views, txn, key_prefix, cache,
                         descendants_.get(), &hits, &misses));
    if (cost.total() < best_cost) {
      best_cost = cost.total();
      best.track = track;
      best.cost = std::move(cost);
    }
  }
  if (tracks.empty()) {
    return Status::Internal("no update track for transaction " + txn.name);
  }
  return best;
}

StatusOr<OptimizeResult> ViewSelector::CostViewSet(
    const std::vector<TransactionType>& txns, const ViewSet& views,
    const OptimizeOptions& options) {
  OptimizeResult result;
  result.views = views;
  result.views.insert(memo_->root());
  double weighted = 0;
  double total_weight = 0;
  for (const TransactionType& txn : txns) {
    AUXVIEW_ASSIGN_OR_RETURN(TxnPlan plan,
                             BestTrack(result.views, txn, options));
    weighted += plan.cost.total() * txn.weight;
    total_weight += txn.weight;
    result.plans.push_back(std::move(plan));
  }
  result.weighted_cost = total_weight > 0 ? weighted / total_weight : 0;
  result.viewsets_costed = 1;
  OptimizerMetrics::Get().viewsets_costed->Add(1);
  return result;
}

StatusOr<OptimizeResult> ViewSelector::ExhaustiveOver(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options,
    std::set<GroupId> roots, std::set<GroupId> candidates,
    const std::function<bool(const ViewSet&)>& filter) {
  RefreshAnalyses();
  std::set<GroupId> roots_canon;
  for (GroupId r : roots) roots_canon.insert(memo_->Find(r));
  for (GroupId r : roots_canon) candidates.erase(r);
  std::vector<GroupId> cand(candidates.begin(), candidates.end());
  // `1ull << cand.size()` below is undefined at >= 64 candidates, so the
  // cap holds regardless of how high callers push max_candidates.
  const int max_candidates = std::min(options.max_candidates, 63);
  if (static_cast<int>(cand.size()) > max_candidates) {
    return Status::FailedPrecondition(
        "too many candidate groups for exhaustive enumeration (" +
        std::to_string(cand.size()) + " > " +
        std::to_string(max_candidates) +
        "); raise max_candidates or use a heuristic strategy");
  }

  TrackCostCache* cache = nullptr;
  if (options.use_track_cache) {
    PrepareTrackCache(options.track_cache_capacity);
    cache = track_cache_.get();
  }
  // Per-transaction cache-key prefixes: fixed for the whole enumeration,
  // shared read-only by every worker.
  std::vector<std::string> key_prefixes(txns.size());
  if (cache != nullptr) {
    for (size_t t = 0; t < txns.size(); ++t) {
      key_prefixes[t] = TrackCostCache::KeyPrefix(
          options.cost, options.query, delta_.use_completeness(), txns[t]);
    }
  }

  const OptimizerMetrics& metrics = OptimizerMetrics::Get();
  obs::ScopedTimer enum_timer(metrics.enumerate_us);

  const uint64_t num_sets = 1ull << cand.size();
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, threads);
  threads = static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(threads), num_sets));

  // The mask shard [w, w+threads, w+2*threads, ...) for one worker, with
  // thread-local costing machinery. Mutable shared state is limited to the
  // internally-synchronized TrackCostCache; results merge after the join.
  auto run_shard = [&](int worker, const TrackCoster* coster,
                       const TrackEnumerator* enumerator, ShardResult* out) {
    for (uint64_t mask = static_cast<uint64_t>(worker); mask < num_sets;
         mask += static_cast<uint64_t>(threads)) {
      ViewSet views = roots_canon;
      for (size_t i = 0; i < cand.size(); ++i) {
        if (mask & (1ull << i)) views.insert(cand[i]);
      }
      if (filter != nullptr && !filter(views)) {
        ++out->viewsets_pruned;
        continue;
      }
      double weighted = 0;
      double total_weight = 0;
      std::vector<TxnPlan> plans;
      bool feasible = true;
      for (size_t t = 0; t < txns.size(); ++t) {
        const TransactionType& txn = txns[t];
        StatusOr<std::vector<UpdateTrack>> tracks =
            enumerator->Enumerate(views, txn, options.tracks);
        if (!tracks.ok()) {
          out->error = tracks.status();
          out->error_mask = mask;
          return;
        }
        double txn_best = std::numeric_limits<double>::infinity();
        TxnPlan plan;
        plan.txn_name = txn.name;
        plan.weight = txn.weight;
        for (const UpdateTrack& track : *tracks) {
          StatusOr<TrackCost> cost = CostThroughCache(
              *coster, track, views, txn, key_prefixes[t], cache,
              descendants_.get(), &out->cache_hits, &out->cache_misses);
          if (!cost.ok()) {
            out->error = cost.status();
            out->error_mask = mask;
            return;
          }
          ++out->tracks_costed;
          if (cost->total() < txn_best) {
            txn_best = cost->total();
            plan.track = track;
            plan.cost = std::move(cost).value();
          }
        }
        if (tracks->empty()) {
          feasible = false;
          break;
        }
        weighted += txn_best * txn.weight;
        total_weight += txn.weight;
        plans.push_back(std::move(plan));
      }
      if (!feasible) continue;
      const double avg = total_weight > 0 ? weighted / total_weight : 0;
      ++out->viewsets_costed;
      if (options.keep_all) out->all_costs.emplace_back(mask, views, avg);
      if (avg < out->best_cost) {
        out->best_cost = avg;
        out->best_mask = mask;
        out->best_views = views;
        out->best_plans = std::move(plans);
      }
    }
  };

  std::vector<ShardResult> shards(threads);
  if (threads == 1) {
    // Sequential walk on the selector's own (warm) analyses.
    QueryCoster query(memo_, catalog_, &stats_, &fds_, model_, options.query);
    TrackCoster coster(memo_, catalog_, &stats_, &fds_, &delta_, &query,
                       options.cost);
    TrackEnumerator enumerator(memo_, &delta_);
    run_shard(0, &coster, &enumerator, &shards[0]);
  } else {
    metrics.workers_spawned->Add(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        // Thread-local analyses: StatsAnalysis/FdAnalysis memoize into
        // unsynchronized maps, so each worker owns a private copy. They
        // recompute the same deterministic values the sequential walk uses.
        obs::ScopedTimer worker_timer(metrics.worker_us);
        StatsAnalysis stats(memo_, catalog_);
        FdAnalysis fds(memo_, catalog_);
        DeltaAnalysis delta(memo_, catalog_, &stats);
        delta.set_use_completeness(delta_.use_completeness());
        QueryCoster query(memo_, catalog_, &stats, &fds, model_,
                          options.query);
        TrackCoster coster(memo_, catalog_, &stats, &fds, &delta, &query,
                           options.cost);
        TrackEnumerator enumerator(memo_, &delta);
        run_shard(w, &coster, &enumerator, &shards[w]);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Deterministic merge. Errors first: the sequential walk would have
  // surfaced the error of the lowest failing mask.
  const ShardResult* failed = nullptr;
  for (const ShardResult& s : shards) {
    if (s.error.ok()) continue;
    if (failed == nullptr || s.error_mask < failed->error_mask) failed = &s;
  }
  if (failed != nullptr) return failed->error;

  OptimizeResult best;
  best.weighted_cost = std::numeric_limits<double>::infinity();
  uint64_t best_mask = ~0ull;
  for (ShardResult& s : shards) {
    best.viewsets_costed += s.viewsets_costed;
    best.viewsets_pruned += s.viewsets_pruned;
    best.tracks_costed += s.tracks_costed;
    best.trackcache_hits += s.cache_hits;
    best.trackcache_misses += s.cache_misses;
    // Same (cost, mask) lexicographic order the sequential walk follows:
    // strictly lower cost wins; at equal cost the lowest mask wins.
    if (s.best_mask != ~0ull &&
        (s.best_cost < best.weighted_cost ||
         (s.best_cost == best.weighted_cost && s.best_mask < best_mask))) {
      best.weighted_cost = s.best_cost;
      best_mask = s.best_mask;
      best.views = std::move(s.best_views);
      best.plans = std::move(s.best_plans);
    }
  }
  metrics.viewsets_costed->Add(best.viewsets_costed);
  metrics.viewsets_pruned->Add(best.viewsets_pruned);
  metrics.tracks_costed->Add(best.tracks_costed);
  if (options.keep_all) {
    std::vector<std::tuple<uint64_t, ViewSet, double>> all;
    for (ShardResult& s : shards) {
      for (auto& entry : s.all_costs) all.push_back(std::move(entry));
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) {
                return std::get<0>(a) < std::get<0>(b);
              });
    best.all_costs.reserve(all.size());
    for (auto& [mask, views, cost] : all) {
      (void)mask;
      best.all_costs.emplace_back(std::move(views), cost);
    }
  }
  return best;
}

StatusOr<OptimizeResult> ViewSelector::Exhaustive(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  std::set<GroupId> candidates;
  for (GroupId g : memo_->NonLeafGroups()) candidates.insert(g);
  return ExhaustiveOver(txns, options, {memo_->root()},
                        std::move(candidates));
}

StatusOr<OptimizeResult> ViewSelector::ExhaustiveMultiView(
    const std::vector<GroupId>& roots,
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  if (roots.empty()) {
    return Status::InvalidArgument("multi-view optimization needs roots");
  }
  std::set<GroupId> root_set(roots.begin(), roots.end());
  std::set<GroupId> candidates;
  for (GroupId g : memo_->NonLeafGroups()) candidates.insert(g);
  // User views are first-class materializations: count their update costs.
  OptimizeOptions multi = options;
  multi.cost.include_root_update_cost = true;
  return ExhaustiveOver(txns, multi, std::move(root_set),
                        std::move(candidates));
}

}  // namespace auxview
