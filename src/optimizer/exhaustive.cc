#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "optimizer/optimizer.h"

namespace auxview {

namespace {

/// Shared optimizer counters (see docs/OBSERVABILITY.md).
struct OptimizerMetrics {
  obs::Counter* viewsets_costed;
  obs::Counter* viewsets_pruned;
  obs::Counter* tracks_costed;
  obs::Histogram* enumerate_us;

  static const OptimizerMetrics& Get() {
    static const OptimizerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return OptimizerMetrics{
          reg.GetCounter("optimizer.viewsets_costed"),
          reg.GetCounter("optimizer.viewsets_pruned"),
          reg.GetCounter("optimizer.tracks_costed"),
          reg.GetHistogram("optimizer.enumerate_us"),
      };
    }();
    return m;
  }
};

}  // namespace

ViewSelector::ViewSelector(const Memo* memo, const Catalog* catalog,
                           IoCostModel model)
    : memo_(memo),
      catalog_(catalog),
      model_(model),
      stats_(memo, catalog),
      fds_(memo, catalog),
      delta_(memo, catalog, &stats_) {}

StatusOr<TxnPlan> ViewSelector::BestTrack(const ViewSet& views,
                                          const TransactionType& txn,
                                          const OptimizeOptions& options) {
  QueryCoster query(memo_, catalog_, &stats_, &fds_, model_, options.query);
  TrackCoster coster(memo_, catalog_, &stats_, &fds_, &delta_, &query,
                     options.cost);
  TrackEnumerator enumerator(memo_, &delta_);
  AUXVIEW_ASSIGN_OR_RETURN(std::vector<UpdateTrack> tracks,
                           enumerator.Enumerate(views, txn, options.tracks));
  TxnPlan best;
  best.txn_name = txn.name;
  best.weight = txn.weight;
  double best_cost = std::numeric_limits<double>::infinity();
  OptimizerMetrics::Get().tracks_costed->Add(
      static_cast<int64_t>(tracks.size()));
  for (const UpdateTrack& track : tracks) {
    AUXVIEW_ASSIGN_OR_RETURN(TrackCost cost, coster.Cost(track, views, txn));
    if (cost.total() < best_cost) {
      best_cost = cost.total();
      best.track = track;
      best.cost = std::move(cost);
    }
  }
  if (tracks.empty()) {
    return Status::Internal("no update track for transaction " + txn.name);
  }
  return best;
}

StatusOr<OptimizeResult> ViewSelector::CostViewSet(
    const std::vector<TransactionType>& txns, const ViewSet& views,
    const OptimizeOptions& options) {
  OptimizeResult result;
  result.views = views;
  result.views.insert(memo_->root());
  double weighted = 0;
  double total_weight = 0;
  for (const TransactionType& txn : txns) {
    AUXVIEW_ASSIGN_OR_RETURN(TxnPlan plan,
                             BestTrack(result.views, txn, options));
    weighted += plan.cost.total() * txn.weight;
    total_weight += txn.weight;
    result.plans.push_back(std::move(plan));
  }
  result.weighted_cost = total_weight > 0 ? weighted / total_weight : 0;
  result.viewsets_costed = 1;
  OptimizerMetrics::Get().viewsets_costed->Add(1);
  return result;
}

StatusOr<OptimizeResult> ViewSelector::ExhaustiveOver(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options,
    std::set<GroupId> roots, std::set<GroupId> candidates,
    const std::function<bool(const ViewSet&)>& filter) {
  std::set<GroupId> roots_canon;
  for (GroupId r : roots) roots_canon.insert(memo_->Find(r));
  for (GroupId r : roots_canon) candidates.erase(r);
  std::vector<GroupId> cand(candidates.begin(), candidates.end());
  if (static_cast<int>(cand.size()) > options.max_candidates) {
    return Status::FailedPrecondition(
        "too many candidate groups for exhaustive enumeration (" +
        std::to_string(cand.size()) + " > " +
        std::to_string(options.max_candidates) +
        "); raise max_candidates or use a heuristic strategy");
  }

  QueryCoster query(memo_, catalog_, &stats_, &fds_, model_, options.query);
  TrackCoster coster(memo_, catalog_, &stats_, &fds_, &delta_, &query,
                     options.cost);
  TrackEnumerator enumerator(memo_, &delta_);

  const OptimizerMetrics& metrics = OptimizerMetrics::Get();
  obs::ScopedTimer enum_timer(metrics.enumerate_us);

  OptimizeResult best;
  best.weighted_cost = std::numeric_limits<double>::infinity();

  const uint64_t num_sets = 1ull << cand.size();
  for (uint64_t mask = 0; mask < num_sets; ++mask) {
    ViewSet views = roots_canon;
    for (size_t i = 0; i < cand.size(); ++i) {
      if (mask & (1ull << i)) views.insert(cand[i]);
    }
    if (filter != nullptr && !filter(views)) {
      ++best.viewsets_pruned;
      metrics.viewsets_pruned->Add(1);
      continue;
    }
    double weighted = 0;
    double total_weight = 0;
    std::vector<TxnPlan> plans;
    bool feasible = true;
    for (const TransactionType& txn : txns) {
      AUXVIEW_ASSIGN_OR_RETURN(std::vector<UpdateTrack> tracks,
                               enumerator.Enumerate(views, txn,
                                                    options.tracks));
      double txn_best = std::numeric_limits<double>::infinity();
      TxnPlan plan;
      plan.txn_name = txn.name;
      plan.weight = txn.weight;
      for (const UpdateTrack& track : tracks) {
        AUXVIEW_ASSIGN_OR_RETURN(TrackCost cost,
                                 coster.Cost(track, views, txn));
        ++best.tracks_costed;
        metrics.tracks_costed->Add(1);
        if (cost.total() < txn_best) {
          txn_best = cost.total();
          plan.track = track;
          plan.cost = std::move(cost);
        }
      }
      if (tracks.empty()) {
        feasible = false;
        break;
      }
      weighted += txn_best * txn.weight;
      total_weight += txn.weight;
      plans.push_back(std::move(plan));
    }
    if (!feasible) continue;
    const double avg = total_weight > 0 ? weighted / total_weight : 0;
    ++best.viewsets_costed;
    metrics.viewsets_costed->Add(1);
    if (options.keep_all) best.all_costs.emplace_back(views, avg);
    if (avg < best.weighted_cost) {
      best.weighted_cost = avg;
      best.views = views;
      best.plans = std::move(plans);
    }
  }
  return best;
}

StatusOr<OptimizeResult> ViewSelector::Exhaustive(
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  std::set<GroupId> candidates;
  for (GroupId g : memo_->NonLeafGroups()) candidates.insert(g);
  return ExhaustiveOver(txns, options, {memo_->root()},
                        std::move(candidates));
}

StatusOr<OptimizeResult> ViewSelector::ExhaustiveMultiView(
    const std::vector<GroupId>& roots,
    const std::vector<TransactionType>& txns, const OptimizeOptions& options) {
  if (roots.empty()) {
    return Status::InvalidArgument("multi-view optimization needs roots");
  }
  std::set<GroupId> root_set(roots.begin(), roots.end());
  std::set<GroupId> candidates;
  for (GroupId g : memo_->NonLeafGroups()) candidates.insert(g);
  // User views are first-class materializations: count their update costs.
  OptimizeOptions multi = options;
  multi.cost.include_root_update_cost = true;
  return ExhaustiveOver(txns, multi, std::move(root_set),
                        std::move(candidates));
}

}  // namespace auxview
