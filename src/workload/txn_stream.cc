#include "workload/txn_stream.h"

#include <algorithm>

namespace auxview {

StatusOr<ConcreteTxn> TxnGenerator::Generate(const TransactionType& type,
                                             const Database& db) {
  ConcreteTxn txn;
  txn.type_name = type.name;
  for (const UpdateSpec& spec : type.updates) {
    const Table* table = db.FindTable(spec.relation);
    if (table == nullptr) {
      return Status::NotFound("no such relation: " + spec.relation);
    }
    const std::vector<CountedRow> rows = table->SnapshotUncharged();
    TableUpdate update;
    update.relation = spec.relation;
    const int count = std::max(1, static_cast<int>(spec.count));
    const Schema& schema = table->schema();

    auto random_row = [&]() -> const Row& {
      return rows[static_cast<size_t>(
                      rng_.Uniform(0, static_cast<int64_t>(rows.size()) - 1))]
          .row;
    };

    for (int i = 0; i < count && !rows.empty(); ++i) {
      switch (spec.kind) {
        case UpdateKind::kModify: {
          const Row old_row = random_row();
          // Skip rows already chosen this transaction.
          bool dup = false;
          for (const auto& [prev_old, prev_new] : update.modifies) {
            (void)prev_new;
            if (RowEq()(prev_old, old_row)) dup = true;
          }
          if (dup) {
            --i;
            continue;
          }
          Row new_row = old_row;
          for (const std::string& attr : spec.modified_attrs) {
            const int col = schema.IndexOf(attr);
            if (col < 0) {
              return Status::InvalidArgument("modified attr missing: " + attr);
            }
            const Value& old_val = old_row[col];
            switch (old_val.type()) {
              case ValueType::kInt64:
                new_row[col] =
                    Value::Int64(old_val.int64() + rng_.Uniform(1, 1000));
                break;
              case ValueType::kDouble:
                new_row[col] = Value::Double(old_val.dbl() +
                                             rng_.NextDouble() * 100 + 1);
                break;
              case ValueType::kString:
                // Draw from the same column of another row (domain value).
                new_row[col] = random_row()[col];
                break;
              default:
                return Status::InvalidArgument("unsupported modify type");
            }
          }
          if (!RowEq()(old_row, new_row)) {
            update.modifies.emplace_back(old_row, new_row);
          }
          break;
        }
        case UpdateKind::kDelete: {
          const Row victim = random_row();
          bool dup = false;
          for (const auto& [prev, c] : update.deletes) {
            (void)c;
            if (RowEq()(prev, victim)) dup = true;
          }
          if (dup) {
            --i;
            continue;
          }
          update.deletes.emplace_back(victim, table->CountOf(victim));
          break;
        }
        case UpdateKind::kInsert: {
          Row fresh = random_row();
          // Fresh primary key values.
          for (const std::string& pk : table->def().primary_key) {
            const int col = schema.IndexOf(pk);
            switch (schema.column(col).type) {
              case ValueType::kInt64:
                fresh[col] = Value::Int64(900000000 + fresh_counter_++);
                break;
              case ValueType::kString:
                fresh[col] = Value::String(
                    "fresh_" + std::to_string(fresh_counter_++));
                break;
              default:
                return Status::InvalidArgument("unsupported key type");
            }
          }
          update.inserts.emplace_back(std::move(fresh), 1);
          break;
        }
      }
    }
    txn.updates.push_back(std::move(update));
  }
  return txn;
}

}  // namespace auxview
