#include "workload/fig5.h"

#include "algebra/builder.h"
#include "common/check.h"
#include "common/rng.h"

namespace auxview {

Fig5Workload::Fig5Workload(Fig5Config config) : config_(config) {
  const double items = config_.num_items;
  const double orders = items * config_.orders_per_item;
  const double r_rows = items * config_.r_rows_per_item;

  TableDef s;
  s.name = "S";
  s.schema = Schema::Create({{"OrderId", ValueType::kInt64},
                             {"Item", ValueType::kInt64},
                             {"Quantity", ValueType::kInt64}})
                 .value();
  s.primary_key = {"OrderId"};
  s.indexes = {IndexDef{{"Item"}}};
  // All three relations shard on Item, the join/group-by attribute.
  s.shard_key = {"Item"};
  s.stats.row_count = orders;
  s.stats.distinct = {{"OrderId", orders}, {"Item", items},
                      {"Quantity", 100}};
  AUXVIEW_CHECK(catalog_.AddTable(std::move(s)).ok());

  TableDef t;
  t.name = "T";
  t.schema = Schema::Create(
                 {{"Item", ValueType::kInt64}, {"Price", ValueType::kInt64}})
                 .value();
  t.primary_key = {"Item"};
  t.shard_key = {"Item"};
  t.stats.row_count = items;
  t.stats.distinct = {{"Item", items}, {"Price", items / 2}};
  AUXVIEW_CHECK(catalog_.AddTable(std::move(t)).ok());

  TableDef r;
  r.name = "R";
  r.schema = Schema::Create({{"RowId", ValueType::kInt64},
                             {"Item", ValueType::kInt64},
                             {"Target", ValueType::kInt64}})
                 .value();
  r.primary_key = {"RowId"};
  r.indexes = {IndexDef{{"Item"}}};
  r.shard_key = {"Item"};
  r.stats.row_count = r_rows;
  r.stats.distinct = {{"RowId", r_rows}, {"Item", items},
                      {"Target", r_rows / 2}};
  AUXVIEW_CHECK(catalog_.AddTable(std::move(r)).ok());
}

Status Fig5Workload::Populate(Database* db) const {
  ScopedCountingDisabled guard(&db->counter());
  Rng rng(config_.seed);
  AUXVIEW_ASSIGN_OR_RETURN(TableDef s_def, catalog_.GetTable("S"));
  AUXVIEW_ASSIGN_OR_RETURN(Table * s, db->CreateTable(s_def));
  AUXVIEW_ASSIGN_OR_RETURN(TableDef t_def, catalog_.GetTable("T"));
  AUXVIEW_ASSIGN_OR_RETURN(Table * t, db->CreateTable(t_def));
  AUXVIEW_ASSIGN_OR_RETURN(TableDef r_def, catalog_.GetTable("R"));
  AUXVIEW_ASSIGN_OR_RETURN(Table * r, db->CreateTable(r_def));

  int64_t order_id = 0;
  int64_t row_id = 0;
  for (int item = 0; item < config_.num_items; ++item) {
    AUXVIEW_RETURN_IF_ERROR(t->Insert(
        {Value::Int64(item), Value::Int64(rng.Uniform(1, 100))}));
    for (int k = 0; k < config_.orders_per_item; ++k) {
      AUXVIEW_RETURN_IF_ERROR(
          s->Insert({Value::Int64(order_id++), Value::Int64(item),
                     Value::Int64(rng.Uniform(1, 50))}));
    }
    for (int k = 0; k < config_.r_rows_per_item; ++k) {
      AUXVIEW_RETURN_IF_ERROR(
          r->Insert({Value::Int64(row_id++), Value::Int64(item),
                     Value::Int64(rng.Uniform(100, 10000))}));
    }
  }
  return Status::Ok();
}

StatusOr<Expr::Ptr> Fig5Workload::ViewTree() const {
  ExprBuilder b(&catalog_);
  Expr::Ptr agg = b.Aggregate(
      b.Join(b.Scan("S"), b.Scan("T"), {"Item"}), {"Item"},
      {{AggFunc::kSum, Scalar::Mul(Col("Quantity"), Col("Price")), "Rev"}});
  Expr::Ptr tree = b.Join(b.Scan("R"), agg, {"Item"});
  return b.Take(tree);
}

TransactionType Fig5Workload::TxnModS(double weight) const {
  return SingleModifyTxn(">S", "S", {"Quantity"}, weight);
}

TransactionType Fig5Workload::TxnModT(double weight) const {
  return SingleModifyTxn(">T", "T", {"Price"}, weight);
}

TransactionType Fig5Workload::TxnModR(double weight) const {
  return SingleModifyTxn(">R", "R", {"Target"}, weight);
}

}  // namespace auxview
