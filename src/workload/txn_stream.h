#ifndef AUXVIEW_WORKLOAD_TXN_STREAM_H_
#define AUXVIEW_WORKLOAD_TXN_STREAM_H_

#include "common/rng.h"
#include "common/status.h"
#include "delta/transaction.h"
#include "maintain/concrete.h"
#include "storage/database.h"

namespace auxview {

/// Generates concrete transaction instances matching a declared
/// TransactionType against the database's current contents:
///  - modify: picks `count` random existing rows and perturbs the modified
///    attributes (numbers are nudged; strings are replaced with a value
///    drawn from the same column of another row, preserving the domain);
///  - delete: removes random existing rows;
///  - insert: builds new rows with fresh primary-key values and other
///    attributes drawn from existing rows.
class TxnGenerator {
 public:
  explicit TxnGenerator(uint64_t seed) : rng_(seed) {}

  StatusOr<ConcreteTxn> Generate(const TransactionType& type,
                                 const Database& db);

 private:
  Rng rng_;
  int64_t fresh_counter_ = 0;
};

}  // namespace auxview

#endif  // AUXVIEW_WORKLOAD_TXN_STREAM_H_
