#ifndef AUXVIEW_WORKLOAD_STAR_H_
#define AUXVIEW_WORKLOAD_STAR_H_

#include <cstdint>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "delta/transaction.h"
#include "storage/database.h"

namespace auxview {

/// A star-schema rollup workload: Fact(FId, D1..Dk, M) joined to dimensions
/// Dim_i(D_i, A_i), with the view SUM(M) BY A_1 [, A_2]. Every join is on a
/// dimension key, so the eager-aggregation rule can pre-aggregate the fact
/// table — the classic data-warehouse instance of the paper's problem.
struct StarConfig {
  int num_dims = 3;
  int fact_rows = 2000;
  int dim_rows = 50;
  /// Distinct values of each dimension attribute A_i.
  int attr_values = 10;
  /// Group by A_1 and A_2 (else only A_1).
  bool group_by_two = false;
  uint64_t seed = 21;
};

class StarWorkload {
 public:
  explicit StarWorkload(StarConfig config);

  const Catalog& catalog() const { return catalog_; }
  const StarConfig& config() const { return config_; }

  Status Populate(Database* db) const;

  /// The rollup view: Aggregate(SUM(M) BY A1 [, A2]) over the star join.
  StatusOr<Expr::Ptr> RollupTree() const;

  /// Modify the measure of one fact row.
  TransactionType TxnModMeasure(double weight = 1) const;
  /// Modify A_i of one dimension row (moves whole slices between groups).
  TransactionType TxnModDimAttr(int dim, double weight = 1) const;
  /// Insert one fact row.
  TransactionType TxnInsertFact(double weight = 1) const;

  std::string DimName(int i) const;

 private:
  StarConfig config_;
  Catalog catalog_;
};

}  // namespace auxview

#endif  // AUXVIEW_WORKLOAD_STAR_H_
