#ifndef AUXVIEW_WORKLOAD_EMP_DEPT_H_
#define AUXVIEW_WORKLOAD_EMP_DEPT_H_

#include <cstdint>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "delta/transaction.h"
#include "storage/database.h"

namespace auxview {

/// The paper's running example (Examples 1.1 and 3.1): a corporate database
/// with Dept(DName, MName, Budget), Emp(EName, DName, Salary) and optionally
/// ADepts(DName).
struct EmpDeptConfig {
  int num_depts = 1000;
  int emps_per_dept = 10;
  /// Salaries are uniform in [salary_min, salary_max].
  int64_t salary_min = 40000;
  int64_t salary_max = 60000;
  /// Fraction of departments whose budget is below their salary sum
  /// (assertion violations); 0 reproduces the paper's "rarely violated".
  double violation_fraction = 0;
  bool with_adepts = false;
  int num_adepts = 50;
  uint64_t seed = 42;
};

class EmpDeptWorkload {
 public:
  explicit EmpDeptWorkload(EmpDeptConfig config);

  const Catalog& catalog() const { return catalog_; }
  const EmpDeptConfig& config() const { return config_; }

  /// Creates and fills Emp/Dept (and ADepts) tables. Not I/O-charged.
  Status Populate(Database* db) const;

  /// The ProblemDept view exactly as the paper's Figure 1 right tree:
  /// Select(SumSal > Budget, Aggregate(Join(Emp, Dept, DName),
  ///                                   {DName, Budget}, SUM(Salary))).
  StatusOr<Expr::Ptr> ProblemDeptTree() const;

  /// Figure 1 left tree: Select over Join(Aggregate(Emp BY DName), Dept).
  StatusOr<Expr::Ptr> ProblemDeptLeftTree() const;

  /// Example 3.1's ADeptsStatus view:
  /// Aggregate(Join(Join(Emp, Dept), ADepts), {DName, Budget}, SUM(Salary)).
  StatusOr<Expr::Ptr> ADeptsStatusTree() const;

  /// The paper's transactions: ">Emp" modifies the Salary of one employee,
  /// ">Dept" modifies the Budget of one department.
  TransactionType TxnModEmp(double weight = 1) const;
  TransactionType TxnModDept(double weight = 1) const;
  /// Example 3.1: insert one department into ADepts.
  TransactionType TxnInsertADept(double weight = 1) const;

 private:
  EmpDeptConfig config_;
  Catalog catalog_;
};

}  // namespace auxview

#endif  // AUXVIEW_WORKLOAD_EMP_DEPT_H_
