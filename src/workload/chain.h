#ifndef AUXVIEW_WORKLOAD_CHAIN_H_
#define AUXVIEW_WORKLOAD_CHAIN_H_

#include <cstdint>
#include <vector>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "delta/transaction.h"
#include "storage/database.h"

namespace auxview {

/// A k-relation chain-join workload for scaling and heuristic-quality
/// experiments: R1(A0, A1, V1), R2(A1, A2, V2), ..., joined on the shared
/// A_i attributes, with A_{i-1} the key of R_i. The view is the full chain
/// join, optionally topped with SUM(V_k) BY A0.
struct ChainConfig {
  int num_relations = 3;
  int rows_per_relation = 1000;
  /// Average matching tuples per join value in the next relation.
  int fanout = 4;
  bool with_aggregate = false;
  uint64_t seed = 7;
};

class ChainWorkload {
 public:
  explicit ChainWorkload(ChainConfig config);

  const Catalog& catalog() const { return catalog_; }
  const ChainConfig& config() const { return config_; }

  Status Populate(Database* db) const;

  /// The left-deep chain-join view (with the optional aggregate on top).
  StatusOr<Expr::Ptr> ChainViewTree() const;

  /// A transaction modifying the value column of one tuple of relation `i`
  /// (0-based).
  TransactionType TxnModify(int i, double weight = 1) const;

  /// One modify transaction per relation, with the given weights (padded
  /// with 1s).
  std::vector<TransactionType> AllTxns(std::vector<double> weights = {}) const;

  std::string RelationName(int i) const;

 private:
  ChainConfig config_;
  Catalog catalog_;
};

}  // namespace auxview

#endif  // AUXVIEW_WORKLOAD_CHAIN_H_
