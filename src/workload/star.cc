#include "workload/star.h"

#include "algebra/builder.h"
#include "common/check.h"
#include "common/rng.h"

namespace auxview {

StarWorkload::StarWorkload(StarConfig config) : config_(config) {
  AUXVIEW_CHECK(config_.num_dims >= 1);
  const double facts = config_.fact_rows;
  const double dims = config_.dim_rows;

  TableDef fact;
  fact.name = "Fact";
  std::vector<Column> cols = {{"FId", ValueType::kInt64}};
  for (int i = 1; i <= config_.num_dims; ++i) {
    cols.push_back({"D" + std::to_string(i), ValueType::kInt64});
  }
  cols.push_back({"M", ValueType::kInt64});
  fact.schema = Schema::Create(std::move(cols)).value();
  fact.primary_key = {"FId"};
  // Shard on the first dimension key only: a deliberate cross-shard layout
  // (the rollup joins every dimension), exercising the global fallback.
  fact.shard_key = {"D1"};
  fact.stats.row_count = facts;
  fact.stats.distinct["FId"] = facts;
  fact.stats.distinct["M"] = facts / 2;
  for (int i = 1; i <= config_.num_dims; ++i) {
    fact.indexes.push_back(IndexDef{{"D" + std::to_string(i)}});
    fact.stats.distinct["D" + std::to_string(i)] = dims;
  }
  AUXVIEW_CHECK(catalog_.AddTable(std::move(fact)).ok());

  for (int i = 1; i <= config_.num_dims; ++i) {
    TableDef dim;
    dim.name = DimName(i);
    dim.schema = Schema::Create({{"D" + std::to_string(i), ValueType::kInt64},
                                 {"A" + std::to_string(i), ValueType::kInt64}})
                     .value();
    dim.primary_key = {"D" + std::to_string(i)};
    dim.shard_key = {"D" + std::to_string(i)};
    dim.stats.row_count = dims;
    dim.stats.distinct["D" + std::to_string(i)] = dims;
    dim.stats.distinct["A" + std::to_string(i)] =
        static_cast<double>(config_.attr_values);
    AUXVIEW_CHECK(catalog_.AddTable(std::move(dim)).ok());
  }
}

std::string StarWorkload::DimName(int i) const {
  return "Dim" + std::to_string(i);
}

Status StarWorkload::Populate(Database* db) const {
  ScopedCountingDisabled guard(&db->counter());
  Rng rng(config_.seed);
  for (int i = 1; i <= config_.num_dims; ++i) {
    AUXVIEW_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable(DimName(i)));
    AUXVIEW_ASSIGN_OR_RETURN(Table * dim, db->CreateTable(def));
    for (int j = 0; j < config_.dim_rows; ++j) {
      AUXVIEW_RETURN_IF_ERROR(dim->Insert(
          {Value::Int64(j),
           Value::Int64(rng.Uniform(0, config_.attr_values - 1))}));
    }
  }
  AUXVIEW_ASSIGN_OR_RETURN(TableDef def, catalog_.GetTable("Fact"));
  AUXVIEW_ASSIGN_OR_RETURN(Table * fact, db->CreateTable(def));
  for (int j = 0; j < config_.fact_rows; ++j) {
    Row row = {Value::Int64(j)};
    for (int i = 1; i <= config_.num_dims; ++i) {
      row.push_back(Value::Int64(rng.Uniform(0, config_.dim_rows - 1)));
    }
    row.push_back(Value::Int64(rng.Uniform(1, 100)));
    AUXVIEW_RETURN_IF_ERROR(fact->Insert(row));
  }
  return Status::Ok();
}

StatusOr<Expr::Ptr> StarWorkload::RollupTree() const {
  ExprBuilder b(&catalog_);
  Expr::Ptr tree = b.Scan("Fact");
  for (int i = 1; i <= config_.num_dims; ++i) {
    tree = b.Join(tree, b.Scan(DimName(i)), {"D" + std::to_string(i)});
  }
  std::vector<std::string> group_by = {"A1"};
  if (config_.group_by_two && config_.num_dims >= 2) {
    group_by.push_back("A2");
  }
  tree = b.Aggregate(tree, group_by,
                     {{AggFunc::kSum, Col("M"), "Total"},
                      {AggFunc::kCount, nullptr, "N"}});
  return b.Take(tree);
}

TransactionType StarWorkload::TxnModMeasure(double weight) const {
  return SingleModifyTxn(">Fact.M", "Fact", {"M"}, weight);
}

TransactionType StarWorkload::TxnModDimAttr(int dim, double weight) const {
  return SingleModifyTxn(">" + DimName(dim) + ".A", DimName(dim),
                         {"A" + std::to_string(dim)}, weight);
}

TransactionType StarWorkload::TxnInsertFact(double weight) const {
  TransactionType txn;
  txn.name = "+Fact";
  txn.weight = weight;
  txn.updates.push_back(UpdateSpec{"Fact", UpdateKind::kInsert, 1, {}, {}});
  return txn;
}

}  // namespace auxview
