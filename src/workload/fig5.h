#ifndef AUXVIEW_WORKLOAD_FIG5_H_
#define AUXVIEW_WORKLOAD_FIG5_H_

#include <cstdint>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "delta/transaction.h"
#include "storage/database.h"

namespace auxview {

/// The paper's Figure 5 workload: an order-lines schema where the view is
///
///   Join (Item) ( R, Aggregate (SUM(Quantity * Price) BY Item) (S Join T) )
///
/// with S(OrderId, Item, Quantity), T(Item, Price), R(RowId, Item, Target).
/// The aggregate cannot be pushed below the S-T join (its argument spans
/// both inputs) nor pulled above the R join (Item is not a key of R), so the
/// aggregate's equivalence node is an articulation node of the DAG — the
/// Shielding Principle's showcase.
struct Fig5Config {
  int num_items = 500;
  int orders_per_item = 8;
  int r_rows_per_item = 3;
  uint64_t seed = 13;
};

class Fig5Workload {
 public:
  explicit Fig5Workload(Fig5Config config);

  const Catalog& catalog() const { return catalog_; }

  Status Populate(Database* db) const;

  /// The Figure 5 view tree.
  StatusOr<Expr::Ptr> ViewTree() const;

  /// Transactions: modify one S.Quantity, one T.Price, one R.Target.
  TransactionType TxnModS(double weight = 1) const;
  TransactionType TxnModT(double weight = 1) const;
  TransactionType TxnModR(double weight = 1) const;

 private:
  Fig5Config config_;
  Catalog catalog_;
};

}  // namespace auxview

#endif  // AUXVIEW_WORKLOAD_FIG5_H_
