#include "workload/chain.h"

#include "algebra/builder.h"
#include "common/check.h"
#include "common/rng.h"

namespace auxview {

ChainWorkload::ChainWorkload(ChainConfig config) : config_(config) {
  AUXVIEW_CHECK(config_.num_relations >= 2);
  AUXVIEW_CHECK(config_.fanout >= 1);
  const double rows = config_.rows_per_relation;
  for (int i = 1; i <= config_.num_relations; ++i) {
    const std::string key = "A" + std::to_string(i - 1);
    const std::string next = "A" + std::to_string(i);
    const std::string val = "V" + std::to_string(i);
    TableDef def;
    def.name = RelationName(i - 1);
    def.schema = Schema::Create({{key, ValueType::kInt64},
                                 {next, ValueType::kInt64},
                                 {val, ValueType::kInt64}})
                     .value();
    def.primary_key = {key};
    def.indexes = {IndexDef{{next}}};
    // Shard on the incoming join attribute; successive relations still join
    // on different attributes, so chain tracks classify cross-shard.
    def.shard_key = {key};
    def.stats.row_count = rows;
    def.stats.distinct = {
        {key, rows},
        {next, std::max(1.0, rows / config_.fanout)},
        {val, rows / 2}};
    AUXVIEW_CHECK(catalog_.AddTable(std::move(def)).ok());
  }
}

std::string ChainWorkload::RelationName(int i) const {
  return "R" + std::to_string(i + 1);
}

Status ChainWorkload::Populate(Database* db) const {
  ScopedCountingDisabled guard(&db->counter());
  Rng rng(config_.seed);
  const int rows = config_.rows_per_relation;
  const int64_t next_domain = std::max(1, rows / config_.fanout);
  for (int i = 1; i <= config_.num_relations; ++i) {
    AUXVIEW_ASSIGN_OR_RETURN(TableDef def,
                             catalog_.GetTable(RelationName(i - 1)));
    AUXVIEW_ASSIGN_OR_RETURN(Table * table, db->CreateTable(def));
    for (int j = 0; j < rows; ++j) {
      const int64_t key = static_cast<int64_t>(i) * 1000000 + j;
      const int64_t next = static_cast<int64_t>(i + 1) * 1000000 +
                           rng.Uniform(0, next_domain - 1);
      const int64_t val = rng.Uniform(0, 1000);
      AUXVIEW_RETURN_IF_ERROR(table->Insert(
          {Value::Int64(key), Value::Int64(next), Value::Int64(val)}));
    }
  }
  return Status::Ok();
}

StatusOr<Expr::Ptr> ChainWorkload::ChainViewTree() const {
  ExprBuilder b(&catalog_);
  Expr::Ptr tree = b.Scan(RelationName(0));
  for (int i = 1; i < config_.num_relations; ++i) {
    tree = b.Join(tree, b.Scan(RelationName(i)), {"A" + std::to_string(i)});
  }
  if (config_.with_aggregate) {
    tree = b.Aggregate(
        tree, {"A0"},
        {{AggFunc::kSum,
          Col("V" + std::to_string(config_.num_relations)), "VSum"}});
  }
  return b.Take(tree);
}

TransactionType ChainWorkload::TxnModify(int i, double weight) const {
  return SingleModifyTxn(">" + RelationName(i), RelationName(i),
                         {"V" + std::to_string(i + 1)}, weight);
}

std::vector<TransactionType> ChainWorkload::AllTxns(
    std::vector<double> weights) const {
  std::vector<TransactionType> out;
  for (int i = 0; i < config_.num_relations; ++i) {
    const double w = i < static_cast<int>(weights.size()) ? weights[i] : 1;
    out.push_back(TxnModify(i, w));
  }
  return out;
}

}  // namespace auxview
