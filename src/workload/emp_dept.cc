#include "workload/emp_dept.h"

#include <cstdio>

#include "algebra/builder.h"
#include "common/check.h"
#include "common/rng.h"

namespace auxview {

namespace {

std::string DeptName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "d%04d", i);
  return buf;
}

std::string EmpName(int dept, int k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "e%04d_%03d", dept, k);
  return buf;
}

}  // namespace

EmpDeptWorkload::EmpDeptWorkload(EmpDeptConfig config)
    : config_(config) {
  const double depts = config_.num_depts;
  const double emps = depts * config_.emps_per_dept;

  TableDef emp;
  emp.name = "Emp";
  emp.schema = Schema::Create({{"EName", ValueType::kString},
                               {"DName", ValueType::kString},
                               {"Salary", ValueType::kInt64}})
                   .value();
  emp.primary_key = {"EName"};
  emp.indexes = {IndexDef{{"DName"}}};
  // Shard everything on DName: the join/group-by attribute, so all delta
  // rows of a department colocate (docs/SHARDING.md).
  emp.shard_key = {"DName"};
  emp.stats.row_count = emps;
  emp.stats.distinct = {{"EName", emps},
                        {"DName", depts},
                        {"Salary", emps / 2}};
  AUXVIEW_CHECK(catalog_.AddTable(std::move(emp)).ok());

  TableDef dept;
  dept.name = "Dept";
  dept.schema = Schema::Create({{"DName", ValueType::kString},
                                {"MName", ValueType::kString},
                                {"Budget", ValueType::kInt64}})
                    .value();
  dept.primary_key = {"DName"};
  dept.shard_key = {"DName"};
  dept.stats.row_count = depts;
  dept.stats.distinct = {{"DName", depts},
                         {"MName", depts},
                         {"Budget", depts}};
  AUXVIEW_CHECK(catalog_.AddTable(std::move(dept)).ok());

  if (config_.with_adepts) {
    TableDef adepts;
    adepts.name = "ADepts";
    adepts.schema =
        Schema::Create({{"DName", ValueType::kString}}).value();
    adepts.primary_key = {"DName"};
    adepts.shard_key = {"DName"};
    adepts.stats.row_count = config_.num_adepts;
    adepts.stats.distinct = {
        {"DName", static_cast<double>(config_.num_adepts)}};
    AUXVIEW_CHECK(catalog_.AddTable(std::move(adepts)).ok());
  }
}

Status EmpDeptWorkload::Populate(Database* db) const {
  ScopedCountingDisabled guard(&db->counter());
  Rng rng(config_.seed);

  AUXVIEW_ASSIGN_OR_RETURN(TableDef dept_def, catalog_.GetTable("Dept"));
  AUXVIEW_ASSIGN_OR_RETURN(Table * dept, db->CreateTable(dept_def));
  AUXVIEW_ASSIGN_OR_RETURN(TableDef emp_def, catalog_.GetTable("Emp"));
  AUXVIEW_ASSIGN_OR_RETURN(Table * emp, db->CreateTable(emp_def));

  for (int d = 0; d < config_.num_depts; ++d) {
    int64_t salary_sum = 0;
    for (int k = 0; k < config_.emps_per_dept; ++k) {
      const int64_t salary =
          rng.Uniform(config_.salary_min, config_.salary_max);
      salary_sum += salary;
      AUXVIEW_RETURN_IF_ERROR(
          emp->Insert({Value::String(EmpName(d, k)),
                       Value::String(DeptName(d)), Value::Int64(salary)}));
    }
    const bool violated = rng.Bernoulli(config_.violation_fraction);
    const int64_t budget = violated
                               ? salary_sum - rng.Uniform(1, 10000)
                               : salary_sum + rng.Uniform(1, 100000);
    AUXVIEW_RETURN_IF_ERROR(
        dept->Insert({Value::String(DeptName(d)),
                      Value::String("m" + std::to_string(d)),
                      Value::Int64(budget)}));
  }

  if (config_.with_adepts) {
    AUXVIEW_ASSIGN_OR_RETURN(TableDef adepts_def, catalog_.GetTable("ADepts"));
    AUXVIEW_ASSIGN_OR_RETURN(Table * adepts, db->CreateTable(adepts_def));
    for (int i = 0; i < config_.num_adepts; ++i) {
      AUXVIEW_RETURN_IF_ERROR(adepts->Insert(
          {Value::String(DeptName(static_cast<int>(
              rng.Uniform(0, config_.num_depts - 1))))},
          1));
    }
  }
  return Status::Ok();
}

StatusOr<Expr::Ptr> EmpDeptWorkload::ProblemDeptTree() const {
  ExprBuilder b(&catalog_);
  Expr::Ptr tree = b.Select(
      b.Aggregate(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}),
                  {"DName", "Budget"},
                  {{AggFunc::kSum, Col("Salary"), "SumSal"}}),
      Scalar::Gt(Col("SumSal"), Col("Budget")));
  return b.Take(tree);
}

StatusOr<Expr::Ptr> EmpDeptWorkload::ProblemDeptLeftTree() const {
  ExprBuilder b(&catalog_);
  Expr::Ptr tree = b.Select(
      b.Join(b.Aggregate(b.Scan("Emp"), {"DName"},
                         {{AggFunc::kSum, Col("Salary"), "SumSal"}}),
             b.Scan("Dept"), {"DName"}),
      Scalar::Gt(Col("SumSal"), Col("Budget")));
  return b.Take(tree);
}

StatusOr<Expr::Ptr> EmpDeptWorkload::ADeptsStatusTree() const {
  if (!config_.with_adepts) {
    return Status::FailedPrecondition("configure with_adepts first");
  }
  ExprBuilder b(&catalog_);
  Expr::Ptr tree = b.Aggregate(
      b.Join(b.Join(b.Scan("Emp"), b.Scan("Dept"), {"DName"}),
             b.Scan("ADepts"), {"DName"}),
      {"DName", "Budget"}, {{AggFunc::kSum, Col("Salary"), "SumSal"}});
  return b.Take(tree);
}

TransactionType EmpDeptWorkload::TxnModEmp(double weight) const {
  return SingleModifyTxn(">Emp", "Emp", {"Salary"}, weight);
}

TransactionType EmpDeptWorkload::TxnModDept(double weight) const {
  return SingleModifyTxn(">Dept", "Dept", {"Budget"}, weight);
}

TransactionType EmpDeptWorkload::TxnInsertADept(double weight) const {
  TransactionType txn;
  txn.name = ">ADepts";
  txn.weight = weight;
  UpdateSpec spec;
  spec.relation = "ADepts";
  spec.kind = UpdateKind::kInsert;
  spec.count = 1;
  txn.updates.push_back(std::move(spec));
  return txn;
}

}  // namespace auxview
