#include "common/worker_pool.h"

#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace auxview {

namespace {

obs::Counter* TasksSpawnedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("maintain.pool.tasks_spawned");
  return c;
}

obs::Histogram* WorkerUsHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "maintain.pool.worker_us", obs::Histogram::DefaultTimeBoundsUs());
  return h;
}

}  // namespace

WorkerPool& WorkerPool::Shared() {
  static WorkerPool* pool = new WorkerPool();  // intentionally leaked
  return *pool;
}

WorkerPool::~WorkerPool() { Resize(0); }

void WorkerPool::Resize(int workers) {
  if (workers < 0) workers = 0;
  std::vector<std::thread> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<size_t>(workers) == workers_.size()) return;
    stopping_ = true;
    old.swap(workers_);
  }
  work_cv_.notify_all();
  for (std::thread& t : old) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

int WorkerPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void WorkerPool::ExecuteTask(Job* job, size_t index,
                             std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  TasksSpawnedCounter()->Add(1);
  Status status;
  {
    obs::ScopedTimer timer(WorkerUsHistogram());
    status = FailpointRegistry::Global().Check("pool.task.fail");
    if (status.ok()) status = (*job->tasks)[index]();
  }
  lock.lock();
  if (!status.ok() && (!job->failed || index < job->first_error_index)) {
    job->failed = true;
    job->first_error_index = index;
    job->first_error = status;
  }
  ++job->done;
  if (job->done == job->tasks->size()) job->done_cv.notify_all();
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
    if (stopping_) return;
    Job* job = jobs_.front();
    const size_t index = job->next++;
    if (job->next >= job->tasks->size()) jobs_.pop_front();
    ExecuteTask(job, index, lock);
  }
}

Status WorkerPool::RunAll(std::vector<std::function<Status()>> tasks,
                          int parallelism) {
  if (tasks.empty()) return Status::Ok();
  Job job;
  job.tasks = &tasks;
  std::unique_lock<std::mutex> lock(mu_);
  if (parallelism <= 1 || workers_.empty()) {
    // Inline path: index order, first error stops (same error as the
    // parallel path would pick — the lowest failing index).
    for (size_t i = 0; i < tasks.size() && !job.failed; ++i) {
      ExecuteTask(&job, i, lock);
    }
    return job.failed ? job.first_error : Status::Ok();
  }
  jobs_.push_back(&job);
  work_cv_.notify_all();
  // Help with our *own* job only (see the class comment for why stealing
  // another job's tasks could deadlock), then wait for the stragglers.
  while (job.next < tasks.size()) {
    const size_t index = job.next++;
    if (job.next >= tasks.size()) {
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (*it == &job) {
          jobs_.erase(it);
          break;
        }
      }
    }
    ExecuteTask(&job, index, lock);
  }
  job.done_cv.wait(lock, [&job, &tasks] { return job.done == tasks.size(); });
  return job.failed ? job.first_error : Status::Ok();
}

}  // namespace auxview
