#include "common/failpoint.h"

#include <cstdlib>

#include "obs/metrics.h"

namespace auxview {

namespace {

/// The catalog: every failpoint threaded through the code base. Keeping the
/// list here (rather than registering lazily at each site) lets the sweep
/// harness enumerate all sites before any code has run.
constexpr const char* kCatalog[] = {
    "storage.table.apply",         // Table::Apply, before any mutation
    "storage.table.index_update",  // Table::Apply, before the index update
    "storage.table.modify_batch",  // Table::ModifyBatch, before the batch
    "storage.table.modify_pair",   // Table::ModifyBatch, before each pair
    "maintain.compute_deltas",     // DeltaEngine::ComputeDeltas entry
    "maintain.fetch",              // DeltaEngine::FetchMatching cache miss
    "maintain.apply_view_delta",   // ViewManager commit, per view delta
    "maintain.apply_base",         // ViewManager commit, per base update
    "wal.append.partial",          // WAL append: torn half-written frame
    "wal.fsync.fail",              // WAL append: fsync failure after write
    "wal.checkpoint.mid",          // WAL checkpoint: between tmp and rename
    "pool.task.fail",              // WorkerPool task execution, before body
};

/// splitmix64 step (matches common/rng.h; kept local so the registry does
/// not depend on the header's class shape).
double NextDouble(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

obs::Counter* TriggerCounter(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter("failpoint." + name +
                                                   ".triggers");
}

}  // namespace

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  for (const char* name : kCatalog) points_[name];
  const char* env = std::getenv("AUXVIEW_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    // A malformed spec must not silently disable fault injection someone
    // asked for; fail loudly instead.
    Status st = LoadSpec(env);
    AUXVIEW_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
}

FailpointRegistry::State& FailpointRegistry::StateFor(
    const std::string& name) {
  return points_[name];
}

std::vector<std::string> FailpointRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) out.push_back(name);
  return out;
}

void FailpointRegistry::Arm(const std::string& name, Arming arming) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = StateFor(name);
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.countdown = arming.nth_hit > 0 ? arming.nth_hit : 1;
  state.probability = arming.probability;
}

void FailpointRegistry::ArmAfter(const std::string& name, int64_t nth_hit) {
  Arming arming;
  arming.nth_hit = nth_hit;
  Arm(name, arming);
}

void FailpointRegistry::ArmProbability(const std::string& name, double p,
                                       uint64_t seed) {
  Arming arming;
  arming.probability = p;
  Arm(name, arming);
  std::lock_guard<std::mutex> lock(mu_);
  StateFor(name).rng_state = seed;
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) {
    if (state.armed) {
      state.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool FailpointRegistry::armed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it != points_.end() && it->second.armed;
}

int64_t FailpointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FailpointRegistry::triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.triggers;
}

Status FailpointRegistry::Check(const char* name) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::Ok();
  if (suspended_.load(std::memory_order_relaxed) > 0) return Status::Ok();
  static obs::Counter* total_triggers =
      obs::MetricsRegistry::Global().GetCounter("failpoint.triggers");
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end() || !it->second.armed) return Status::Ok();
    State& state = it->second;
    ++state.hits;
    if (state.probability > 0) {
      fire = NextDouble(&state.rng_state) < state.probability;
    } else if (--state.countdown <= 0) {
      fire = true;
      state.armed = false;  // nth-hit mode is one-shot
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (fire) ++state.triggers;
  }
  if (!fire) return Status::Ok();
  total_triggers->Add(1);
  TriggerCounter(name)->Add(1);
  return Status::Aborted(std::string("failpoint '") + name + "' triggered");
}

Status FailpointRegistry::LoadSpec(const std::string& spec) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find_first_of(",;", start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return Status::InvalidArgument("bad failpoint spec entry: " + entry);
    }
    const std::string name = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    char* parse_end = nullptr;
    if (value[0] == 'p') {
      const double p = std::strtod(value.c_str() + 1, &parse_end);
      if (*parse_end != '\0' || p <= 0 || p > 1) {
        return Status::InvalidArgument("bad failpoint probability: " + entry);
      }
      ArmProbability(name, p);
    } else {
      const long long n = std::strtoll(value.c_str(), &parse_end, 10);
      if (*parse_end != '\0' || n <= 0) {
        return Status::InvalidArgument("bad failpoint hit count: " + entry);
      }
      ArmAfter(name, n);
    }
  }
  return Status::Ok();
}

}  // namespace auxview
