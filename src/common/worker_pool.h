#ifndef AUXVIEW_COMMON_WORKER_POOL_H_
#define AUXVIEW_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace auxview {

/// A shared pool of background workers for intra-transaction parallelism:
/// delta propagation fans one transaction's update track out across
/// independent equivalence nodes (topological waves), and the batch kernels
/// fan a large RowBatch out across hash partitions. Both go through RunAll.
///
/// Design constraints (docs/CONCURRENCY.md, "Intra-transaction
/// parallelism"):
///  - Results must be bit-identical for every worker count, so the pool
///    never influences *what* runs — only *where*. Task sets, their order
///    of submission and the error chosen on failure (lowest task index) are
///    all decided by the caller.
///  - A caller waiting for its own submission executes its *own* unclaimed
///    tasks ("help with your own job only"). A waiting thread must never
///    steal another job's task: a stolen delta-node task could block on a
///    fetch whose owner is the stealer itself, which deadlocks. Partition
///    subtasks never block, so nested RunAll calls (a kernel partitioning
///    inside a wave task) always make progress through self-help even when
///    every background worker is busy.
///  - Every task execution passes the `pool.task.fail` failpoint, including
///    the inline (0-worker / parallelism 1) path, so the fault-injection
///    sweep covers mid-propagation worker faults deterministically.
///
/// Metrics: maintain.pool.tasks_spawned counts task executions,
/// maintain.pool.worker_us observes per-task wall time (docs/OBSERVABILITY.md).
class WorkerPool {
 public:
  /// The process-wide pool used by delta propagation and the partitioned
  /// kernels. Starts with zero background workers (fully inline).
  static WorkerPool& Shared();

  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Sets the number of background workers (>= 0). Callers configure
  /// `threads` total parallelism as `Resize(threads - 1)`: the submitting
  /// thread is the extra worker. Must not run concurrently with RunAll.
  void Resize(int workers);
  int workers() const;

  /// Runs every task to completion and returns Ok, or — when any tasks
  /// failed — the error of the failing task with the lowest index
  /// (deterministic for every worker count). With `parallelism <= 1` or no
  /// background workers the tasks run inline on the calling thread, in
  /// index order, stopping at the first error; otherwise background workers
  /// claim tasks in index order while the caller works through the rest.
  /// Parallelism above 1 is not throttled further: the effective width is
  /// min(tasks, workers + 1).
  Status RunAll(std::vector<std::function<Status()>> tasks,
                int parallelism = 1 << 20);

 private:
  /// One RunAll invocation: tasks, claim cursor and completion accounting.
  struct Job {
    std::vector<std::function<Status()>>* tasks = nullptr;
    size_t next = 0;  // next unclaimed task index
    size_t done = 0;
    bool failed = false;
    size_t first_error_index = 0;
    Status first_error;
    std::condition_variable done_cv;
  };

  /// Runs task `index` of `job` (failpoint + metrics + error recording).
  /// `lock` is held on entry and exit, released around the task body.
  void ExecuteTask(Job* job, size_t index, std::unique_lock<std::mutex>& lock);

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  /// Jobs that still have unclaimed tasks, in submission order.
  std::deque<Job*> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace auxview

#endif  // AUXVIEW_COMMON_WORKER_POOL_H_
