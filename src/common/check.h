#ifndef AUXVIEW_COMMON_CHECK_H_
#define AUXVIEW_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checks. These guard programmer errors, not user input
// (user-facing errors are reported through Status). A failed check aborts.
#define AUXVIEW_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AUXVIEW_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define AUXVIEW_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "AUXVIEW_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // AUXVIEW_COMMON_CHECK_H_
