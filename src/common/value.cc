#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/check.h"

namespace auxview {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "?";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

int64_t Value::int64() const {
  AUXVIEW_CHECK(std::holds_alternative<int64_t>(rep_));
  return std::get<int64_t>(rep_);
}

double Value::dbl() const {
  AUXVIEW_CHECK(std::holds_alternative<double>(rep_));
  return std::get<double>(rep_);
}

const std::string& Value::str() const {
  AUXVIEW_CHECK(std::holds_alternative<std::string>(rep_));
  return std::get<std::string>(rep_);
}

bool Value::boolean() const {
  AUXVIEW_CHECK(std::holds_alternative<bool>(rep_));
  return std::get<bool>(rep_);
}

double Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(int64());
    case ValueType::kDouble:
      return dbl();
    case ValueType::kBool:
      return boolean() ? 1.0 : 0.0;
    default:
      AUXVIEW_CHECK_MSG(false, "AsDouble on non-numeric Value");
      return 0.0;
  }
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType ta = type();
  const ValueType tb = other.type();
  const int ra = TypeRank(ta);
  const int rb = TypeRank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      const int a = boolean() ? 1 : 0;
      const int b = other.boolean() ? 1 : 0;
      return a - b;
    }
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Exact comparison when both are int64 avoids double rounding.
      if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
        const int64_t a = int64();
        const int64_t b = other.int64();
        if (a < b) return -1;
        if (a > b) return 1;
        return 0;
      }
      return CompareDoubles(AsDouble(), other.AsDouble());
    }
    case ValueType::kString: {
      const int c = str().compare(other.str());
      if (c < 0) return -1;
      if (c > 0) return 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return boolean() ? 0x517cc1b727220a95ULL : 0x2545f4914f6cdd1dULL;
    case ValueType::kInt64:
      // Hash int64 via its double value so 1 and 1.0 hash alike (they
      // compare equal, so they must hash equal).
      return std::hash<double>()(static_cast<double>(int64()));
    case ValueType::kDouble:
      return std::hash<double>()(dbl());
    case ValueType::kString:
      return std::hash<std::string>()(str());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return boolean() ? "TRUE" : "FALSE";
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", dbl());
      return buf;
    }
    case ValueType::kString:
      return "'" + str() + "'";
  }
  return "?";
}

size_t HashRow(const Row& row) {
  size_t h = 0x811c9dc5ULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace auxview
