#ifndef AUXVIEW_COMMON_VALUE_H_
#define AUXVIEW_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace auxview {

/// Scalar column types supported by the engine.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kBool,
};

/// Returns "NULL", "INT64", "DOUBLE", "STRING" or "BOOL".
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar value (SQL-style, with a distinguished NULL).
///
/// Values order NULL first, then by numeric/lexicographic value; numeric
/// comparisons across kInt64/kDouble promote to double, matching SQL.
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Value(Rep(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  int64_t int64() const;
  double dbl() const;
  const std::string& str() const;
  bool boolean() const;

  /// Numeric value as double; valid for kInt64/kDouble/kBool.
  double AsDouble() const;

  /// Three-way comparison. NULL < everything; numerics compare as double;
  /// mixed non-numeric types compare by type tag (total order for sorting).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// SQL-literal-ish rendering, e.g. 42, 3.5, 'abc', NULL, TRUE.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// A tuple: one value per column of the owning schema.
using Row = std::vector<Value>;

size_t HashRow(const Row& row);
std::string RowToString(const Row& row);

struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

}  // namespace auxview

#endif  // AUXVIEW_COMMON_VALUE_H_
