#ifndef AUXVIEW_COMMON_STATUS_H_
#define AUXVIEW_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace auxview {

/// Error codes for the library's Status-based error handling (the library
/// does not throw exceptions across its public API).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// The operation was cleanly rejected and every effect undone (assertion
  /// violations, injected faults). Distinct from kFailedPrecondition: an
  /// aborted transaction leaves the database exactly as it found it.
  kAborted,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result, modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit from Status so `return Status::NotFound(...)` works.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    AUXVIEW_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  /// Implicit from T so `return value;` works.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AUXVIEW_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    AUXVIEW_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    AUXVIEW_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define AUXVIEW_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::auxview::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define AUXVIEW_ASSIGN_OR_RETURN(lhs, expr)      \
  AUXVIEW_ASSIGN_OR_RETURN_IMPL(                 \
      AUXVIEW_STATUS_CONCAT(_statusor_, __LINE__), lhs, expr)

#define AUXVIEW_STATUS_CONCAT_INNER(a, b) a##b
#define AUXVIEW_STATUS_CONCAT(a, b) AUXVIEW_STATUS_CONCAT_INNER(a, b)
#define AUXVIEW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace auxview

#endif  // AUXVIEW_COMMON_STATUS_H_
