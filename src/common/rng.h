#ifndef AUXVIEW_COMMON_RNG_H_
#define AUXVIEW_COMMON_RNG_H_

#include <cstdint>

namespace auxview {

/// Deterministic splitmix64-based RNG for workload generation and property
/// tests. Cheap, seedable, and stable across platforms (unlike std::mt19937
/// distributions, whose outputs are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace auxview

#endif  // AUXVIEW_COMMON_RNG_H_
